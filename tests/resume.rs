//! Crash/resume property: killing a run after `k` of `n` replications
//! and resuming from its snapshot yields results bit-identical to an
//! uninterrupted run — at any worker count, because replication `k`
//! always draws from seed `base + k` regardless of scheduling.
//!
//! The same property for the `ckptsim optimize` policy search
//! (interrupted mid-sweep, resumed, byte-identical report) is covered
//! in `tests/policy_equivalence.rs`.

use ckpt_harness::snapshot::metrics_to_json;
use ckpt_harness::{ExperimentSpec, SweepJournal};
use ckptsim::des::SimTime;
use ckptsim::model::{
    CachedReplication, Estimate, ExperimentError, Metrics, ReplicationStore, RunControl,
    SystemConfig,
};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

fn small_config(procs: u64) -> SystemConfig {
    SystemConfig::builder()
        .processors(procs)
        .mttf_per_node(SimTime::from_years(0.25))
        .build()
        .expect("valid test config")
}

fn spec(cfg: &SystemConfig, reps: u32, seed: u64, jobs: usize) -> ExperimentSpec {
    ExperimentSpec::builder(cfg.clone())
        .transient(SimTime::from_hours(10.0))
        .horizon(SimTime::from_hours(120.0))
        .replications(reps)
        .seed(seed)
        .jobs(jobs)
        .build()
        .expect("valid test spec")
}

/// A [`ReplicationStore`] that forwards to the journal and trips the
/// interrupt flag once `k` replications have been recorded — the
/// in-process equivalent of SIGTERM arriving mid-run.
struct KillAfter<'a, S: ReplicationStore> {
    inner: S,
    recorded: AtomicU32,
    k: u32,
    flag: &'a AtomicBool,
}

impl<S: ReplicationStore> ReplicationStore for KillAfter<'_, S> {
    fn lookup(&self, rep: u32) -> Option<CachedReplication> {
        self.inner.lookup(rep)
    }

    fn record(&self, rep: u32, metrics: &Metrics, events: u64) {
        self.inner.record(rep, metrics, events);
        if self.recorded.fetch_add(1, Ordering::SeqCst) + 1 >= self.k {
            self.flag.store(true, Ordering::SeqCst);
        }
    }
}

fn assert_bit_identical(a: &Estimate, b: &Estimate) {
    let fa = a.useful_work_fraction();
    let fb = b.useful_work_fraction();
    assert_eq!(fa.mean.to_bits(), fb.mean.to_bits());
    assert_eq!(fa.half_width.to_bits(), fb.half_width.to_bits());
    let ta = a.total_useful_work();
    let tb = b.total_useful_work();
    assert_eq!(ta.mean.to_bits(), tb.mean.to_bits());
    assert_eq!(ta.half_width.to_bits(), tb.half_width.to_bits());
    assert_eq!(a.replicates().len(), b.replicates().len());
    for (ma, mb) in a.replicates().iter().zip(b.replicates()) {
        // The canonical JSON rendering round-trips every f64 bitwise,
        // so string equality here is full bit equality of the metrics.
        assert_eq!(metrics_to_json(ma).to_json(), metrics_to_json(mb).to_json());
    }
}

fn snapshot_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ckptsim_resume_tests");
    std::fs::create_dir_all(&dir).expect("create snapshot dir");
    dir.join(format!("{tag}.json"))
}

/// Runs the full interrupt-then-resume cycle for one parameter point
/// and checks bit-identity against `baseline` at the given worker count.
fn kill_resume_check(
    cfg: &SystemConfig,
    reps: u32,
    kill_after: u32,
    seed: u64,
    baseline: &Estimate,
    tag: &str,
) {
    let path = snapshot_path(tag);
    let _ = std::fs::remove_file(&path);
    let fingerprint = spec(cfg, reps, seed, 1).fingerprint();

    // Phase 1: run sequentially, "killed" after `kill_after` records.
    let journal = SweepJournal::create(&path, fingerprint, 1);
    let flag = AtomicBool::new(false);
    let store = KillAfter {
        inner: journal.cell_store(0),
        recorded: AtomicU32::new(0),
        k: kill_after,
        flag: &flag,
    };
    let err = spec(cfg, reps, seed, 1)
        .to_experiment()
        .run_controlled(RunControl {
            store: Some(&store),
            interrupt: Some(&flag),
            progress: None,
        })
        .expect_err("run must report the interrupt");
    match err {
        ExperimentError::Interrupted { completed } => {
            assert_eq!(completed, kill_after as usize);
        }
        other => panic!("expected Interrupted, got {other}"),
    }
    journal.persist().expect("persist snapshot");
    assert_eq!(journal.completed(), kill_after as usize);
    drop(journal);

    // Phase 2: resume from disk and finish, sequentially and on eight
    // workers. Both must be bit-identical to the uninterrupted run.
    // Each resume persists to its own target so the interrupted
    // snapshot is loaded fresh both times.
    for jobs in [1usize, 8] {
        let target = snapshot_path(&format!("{tag}_resumed_j{jobs}"));
        let _ = std::fs::remove_file(&target);
        let resumed =
            SweepJournal::resume_into(&path, &target, fingerprint, 1).expect("snapshot loads");
        assert_eq!(resumed.completed(), kill_after as usize);
        let store = resumed.cell_store(0);
        let est = spec(cfg, reps, seed, jobs)
            .to_experiment()
            .run_controlled(RunControl {
                store: Some(&store),
                interrupt: None,
                progress: None,
            })
            .expect("resumed run completes");
        assert_bit_identical(baseline, &est);
        let _ = std::fs::remove_file(&target);
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn resume_after_interrupt_is_bit_identical() {
    let cfg = small_config(1024);
    let reps = 4;
    let seed = 0x5eed;
    let baseline = spec(&cfg, reps, seed, 1)
        .to_experiment()
        .run()
        .expect("baseline runs");
    for kill_after in 1..reps {
        kill_resume_check(
            &cfg,
            reps,
            kill_after,
            seed,
            &baseline,
            &format!("fixed_k{kill_after}"),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        .. ProptestConfig::default()
    })]

    /// For any replication count, kill point, and seed: interrupt after
    /// `k` of `n`, resume, and land bitwise on the uninterrupted result
    /// at one worker and at eight.
    #[test]
    fn killed_then_resumed_runs_match_exactly(
        reps in 2u32..5,
        kill_frac in 0.0f64..1.0,
        seed in 0u64..1_000,
    ) {
        let kill_after = 1 + (kill_frac * f64::from(reps - 1)) as u32;
        let kill_after = kill_after.min(reps - 1);
        let cfg = small_config(512);
        let baseline = spec(&cfg, reps, seed, 1)
            .to_experiment()
            .run()
            .expect("baseline runs");
        kill_resume_check(
            &cfg,
            reps,
            kill_after,
            seed,
            &baseline,
            &format!("prop_n{reps}_k{kill_after}_s{seed}"),
        );
    }
}
