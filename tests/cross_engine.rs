//! Cross-validation of the two independently written simulators: the
//! paper-faithful SAN composition and the direct event simulator must
//! agree on every configuration they both support.

use ckptsim::des::SimTime;
use ckptsim::model::config::{ErrorPropagation, GenericCorrelated};
use ckptsim::model::{CoordinationMode, EngineKind, Experiment, SystemConfig};

/// Runs both engines and asserts their useful-work fractions agree
/// within `tol` (they use different random streams, so agreement is
/// statistical, not exact).
fn assert_engines_agree(cfg: SystemConfig, tol: f64, what: &str) {
    let run = |engine| {
        Experiment::new(cfg.clone())
            .engine(engine)
            .transient(SimTime::from_hours(500.0))
            .horizon(SimTime::from_hours(8_000.0))
            .replications(3)
            .run()
            .expect("experiment must run")
            .useful_work_fraction()
            .mean
    };
    let direct = run(EngineKind::Direct);
    let san = run(EngineKind::San);
    assert!(
        (direct - san).abs() < tol,
        "{what}: direct {direct} vs SAN {san} (tol {tol})"
    );
}

#[test]
fn agree_on_base_model() {
    let cfg = SystemConfig::builder().build().unwrap();
    assert_engines_agree(cfg, 0.03, "base model");
}

#[test]
fn agree_without_failures_exactly() {
    // Deterministic protocol: both engines must match to numerical noise.
    let cfg = SystemConfig::builder()
        .failures_enabled(false)
        .compute_fraction(1.0)
        .build()
        .unwrap();
    assert_engines_agree(cfg, 1e-3, "failure-free deterministic");
}

#[test]
fn agree_with_app_io_and_no_failures() {
    let cfg = SystemConfig::builder()
        .failures_enabled(false)
        .compute_fraction(0.88)
        .build()
        .unwrap();
    assert_engines_agree(cfg, 1e-2, "app I/O, failure-free");
}

#[test]
fn agree_at_small_and_large_scale() {
    for procs in [8_192u64, 262_144] {
        let cfg = SystemConfig::builder()
            .processors(procs)
            .mttf_per_node(SimTime::from_years(3.0))
            .build()
            .unwrap();
        assert_engines_agree(cfg, 0.03, &format!("{procs} processors"));
    }
}

#[test]
fn agree_with_max_of_n_coordination_and_timeout() {
    let cfg = SystemConfig::builder()
        .mttf_per_node(SimTime::from_years(3.0))
        .coordination(CoordinationMode::MaxOfN)
        .timeout(Some(SimTime::from_secs(100.0)))
        .build()
        .unwrap();
    assert_engines_agree(cfg, 0.03, "max-of-n + 100 s timeout");
}

#[test]
fn agree_with_aggressive_timeout() {
    // 60 s timeout at 256K processors: heavy aborts; both engines must
    // model the probabilistic checkpoint-abort identically.
    let cfg = SystemConfig::builder()
        .processors(262_144)
        .mttf_per_node(SimTime::from_years(3.0))
        .coordination(CoordinationMode::MaxOfN)
        .timeout(Some(SimTime::from_secs(60.0)))
        .build()
        .unwrap();
    assert_engines_agree(cfg, 0.04, "aggressive timeout");
}

#[test]
fn agree_with_error_propagation() {
    let cfg = SystemConfig::builder()
        .processors(131_072)
        .mttf_per_node(SimTime::from_years(3.0))
        .error_propagation(Some(ErrorPropagation {
            probability: 0.15,
            factor: 800.0,
            window: 180.0,
        }))
        .build()
        .unwrap();
    assert_engines_agree(cfg, 0.03, "error propagation");
}

#[test]
fn agree_with_generic_correlation() {
    let cfg = SystemConfig::builder()
        .mttf_per_node(SimTime::from_years(3.0))
        .generic_correlated(Some(GenericCorrelated {
            coefficient: 0.0025,
            factor: 400.0,
        }))
        .build()
        .unwrap();
    assert_engines_agree(cfg, 0.03, "generic correlation");
}

#[test]
fn agree_under_extreme_failure_pressure() {
    // Reboot-heavy regime exercises the severe-failure escalation in
    // both engines.
    let cfg = SystemConfig::builder()
        .processors(65_536)
        .mttf_per_node(SimTime::from_hours(500.0))
        .severe_failure_threshold(2)
        .build()
        .unwrap();
    assert_engines_agree(cfg, 0.05, "extreme failure pressure");
}
