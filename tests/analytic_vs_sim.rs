//! Agreement between the analytic baselines and the simulators in the
//! regimes where the closed forms are valid — and documented divergence
//! where the paper says they break down.

use ckptsim::analytic::{availability, coordination, daly, phase_model, young};
use ckptsim::des::SimTime;
use ckptsim::model::{CoordinationMode, EngineKind, Experiment, SystemConfig};

fn simulate(cfg: SystemConfig) -> f64 {
    Experiment::new(cfg)
        .engine(EngineKind::Direct)
        .transient(SimTime::from_hours(500.0))
        .horizon(SimTime::from_hours(10_000.0))
        .replications(3)
        .run()
        .expect("experiment runs")
        .useful_work_fraction()
        .mean
}

/// Non-overlapped checkpoint overhead of a config: broadcast + quiesce +
/// dump (the background FS write does not block).
fn overhead(cfg: &SystemConfig) -> f64 {
    cfg.quiesce_broadcast_latency().as_secs()
        + cfg.mttq().as_secs()
        + cfg.checkpoint_dump_time().as_secs()
}

#[test]
fn daly_tracks_simulation_across_scales() {
    for procs in [8_192u64, 65_536, 262_144] {
        let cfg = SystemConfig::builder().processors(procs).build().unwrap();
        let sim = simulate(cfg.clone());
        let pred = availability::predicted_useful_work_fraction(
            cfg.checkpoint_interval().as_secs(),
            overhead(&cfg),
            cfg.mttr_system().as_secs(),
            cfg.compute_failure_rate(),
        );
        assert!(
            (sim - pred).abs() < 0.05,
            "{procs} procs: sim {sim} vs Daly {pred}"
        );
    }
}

#[test]
fn daly_reproduces_papers_fig4a_numbers() {
    // The paper's Figure-4a MTTF=1y curve is quantitatively consistent
    // with Daly's closed form on our parameters; spot-check the quoted
    // 128K peak of ≈56000 job units (±20 %).
    let cfg = SystemConfig::builder().processors(131_072).build().unwrap();
    let pred = availability::predicted_total_useful_work(
        131_072,
        cfg.checkpoint_interval().as_secs(),
        overhead(&cfg),
        cfg.mttr_system().as_secs(),
        cfg.compute_failure_rate(),
    );
    assert!(
        (45_000.0..70_000.0).contains(&pred),
        "Daly at 128K procs: {pred}"
    );
}

#[test]
fn simulated_interval_sweep_brackets_the_daly_optimum() {
    // In the small-overhead regime the simulated best interval must sit
    // near Daly's τ*; at 64K processors τ* ≈ 10 minutes, so 15 min beats
    // 240 min decisively.
    let frac = |mins: f64| {
        simulate(
            SystemConfig::builder()
                .checkpoint_interval(SimTime::from_mins(mins))
                .build()
                .unwrap(),
        )
    };
    let cfg = SystemConfig::builder().build().unwrap();
    let tau = daly::optimal_interval(overhead(&cfg), 1.0 / cfg.compute_failure_rate());
    assert!(
        (5.0..25.0).contains(&(tau / 60.0)),
        "Daly τ* = {} min",
        tau / 60.0
    );
    let f15 = frac(15.0);
    let f240 = frac(240.0);
    assert!(f15 > f240 + 0.1, "15 min {f15} vs 240 min {f240}");
}

#[test]
fn young_and_daly_agree_in_the_small_overhead_limit() {
    let mtbf = 100_000.0;
    let delta = 10.0;
    let y = young::optimal_interval(delta, mtbf);
    let d = daly::optimal_interval(delta, mtbf);
    assert!(
        ((y - d) / y).abs() < 0.01,
        "Young {y} vs Daly {d} should converge for δ ≪ M"
    );
}

#[test]
fn coordination_closed_form_matches_simulated_overhead() {
    // Failure-free, max-of-n coordination: simulated fraction must match
    // interval / (interval + broadcast + E[Y] + dump).
    for procs in [4_096u64, 65_536] {
        let cfg = SystemConfig::builder()
            .processors(procs)
            .procs_per_node(1)
            .failures_enabled(false)
            .coordination(CoordinationMode::MaxOfN)
            .compute_fraction(1.0)
            .build()
            .unwrap();
        let sim = simulate(cfg.clone());
        let pred = coordination::useful_work_fraction(
            procs,
            cfg.mttq().as_secs(),
            cfg.checkpoint_interval().as_secs(),
            cfg.quiesce_broadcast_latency().as_secs(),
            cfg.checkpoint_dump_time().as_secs(),
        );
        assert!(
            (sim - pred).abs() < 0.005,
            "{procs} procs: sim {sim} vs closed form {pred}"
        );
    }
}

#[test]
fn timeout_abort_ratio_matches_closed_form() {
    // With failures off, the fraction of aborted checkpoints must equal
    // P(Y > T) from the analytic module.
    let procs = 65_536u64;
    let timeout = 100.0;
    let cfg = SystemConfig::builder()
        .processors(procs)
        .failures_enabled(false)
        .coordination(CoordinationMode::MaxOfN)
        .compute_fraction(1.0)
        .timeout(Some(SimTime::from_secs(timeout)))
        .build()
        .unwrap();
    let est = Experiment::new(cfg)
        .engine(EngineKind::Direct)
        .transient(SimTime::from_hours(100.0))
        .horizon(SimTime::from_hours(30_000.0))
        .replications(3)
        .run()
        .unwrap();
    let measured = est.mean_of(|m| {
        let attempts = m.counters.checkpoints_completed + m.counters.checkpoints_aborted_timeout;
        m.counters.checkpoints_aborted_timeout as f64 / attempts as f64
    });
    // Coordination is the max over the compute *nodes* (Section 5).
    let predicted = coordination::timeout_probability(procs / 8, 10.0, timeout);
    assert!(
        (measured - predicted).abs() < 0.01,
        "abort ratio {measured} vs P(Y>T) {predicted}"
    );
}

#[test]
fn ctmc_phase_model_predicts_phase_occupancies() {
    // The 5-state CTMC abstraction should land close to the simulated
    // *phase occupancies* even though it is too crude for useful work —
    // quantifying the paper's "simple Markov models are insufficient"
    // argument.
    let cfg = SystemConfig::builder().build().unwrap();
    let model = phase_model::PhaseModel {
        interval: cfg.checkpoint_interval().as_secs(),
        coordination: cfg.quiesce_broadcast_latency().as_secs() + cfg.mttq().as_secs(),
        dump: cfg.checkpoint_dump_time().as_secs(),
        recovery: cfg.mttr_system().as_secs(),
        failure_rate: cfg.compute_failure_rate(),
        reboot: cfg.reboot_time().as_secs(),
        severe_rate: 0.0,
    };
    let pi = model.occupancy().unwrap();

    let est = Experiment::new(cfg)
        .engine(EngineKind::Direct)
        .transient(SimTime::from_hours(500.0))
        .horizon(SimTime::from_hours(10_000.0))
        .replications(3)
        .run()
        .unwrap();
    use ckptsim::model::PhaseKind;
    let sim_exec = est.mean_of(|m| m.phase_fraction(PhaseKind::Executing));
    let sim_recover = est.mean_of(|m| m.phase_fraction(PhaseKind::Recovering));
    let sim_dump = est.mean_of(|m| m.phase_fraction(PhaseKind::Dumping));
    assert!(
        (pi[0] - sim_exec).abs() < 0.03,
        "computing: CTMC {} vs sim {sim_exec}",
        pi[0]
    );
    assert!(
        (pi[3] - sim_recover).abs() < 0.03,
        "recovering: CTMC {} vs sim {sim_recover}",
        pi[3]
    );
    assert!(
        (pi[2] - sim_dump).abs() < 0.02,
        "dumping: CTMC {} vs sim {sim_dump}",
        pi[2]
    );

    // The useful-work estimate is cruder but must stay in the
    // neighbourhood (the paper's point is that it cannot be exact).
    let f_ctmc = model.useful_work_fraction().unwrap();
    let f_sim = est.useful_work_fraction().mean;
    assert!(
        (f_ctmc - f_sim).abs() < 0.08,
        "useful work: CTMC {f_ctmc} vs sim {f_sim}"
    );
}

#[test]
fn job_completion_time_matches_daly_expected_wall_time() {
    // Terminating analysis: the measured wall-clock time to finish a
    // fixed amount of useful work should track Daly's T(τ) — the
    // quantity his model actually predicts.
    use ckptsim::model::direct::DirectSimulator;
    let cfg = SystemConfig::builder().build().unwrap();
    let solve = SimTime::from_hours(50.0).as_secs();
    let predicted = daly::expected_wall_time(
        solve,
        cfg.checkpoint_interval().as_secs(),
        overhead(&cfg),
        cfg.mttr_system().as_secs(),
        1.0 / cfg.compute_failure_rate(),
    );
    let mut total = 0.0;
    let reps = 8;
    for seed in 0..reps {
        let mut sim = DirectSimulator::new(&cfg, 1_000 + seed);
        let done = sim
            .run_until_useful_work(solve, SimTime::from_hours(10_000.0))
            .expect("job must finish well before the deadline");
        total += done.as_secs();
    }
    let measured = total / f64::from(reps as u32);
    assert!(
        ((measured - predicted) / predicted).abs() < 0.10,
        "mean completion {measured:.0} s vs Daly {predicted:.0} s"
    );
}

#[test]
fn job_completion_deadline_is_respected() {
    use ckptsim::model::direct::DirectSimulator;
    // A machine that can never finish: 256K procs, 4-hour interval —
    // failures arrive before any checkpoint completes.
    let cfg = SystemConfig::builder()
        .processors(262_144)
        .checkpoint_interval(SimTime::from_mins(240.0))
        .build()
        .unwrap();
    let mut sim = DirectSimulator::new(&cfg, 0);
    let result = sim.run_until_useful_work(
        SimTime::from_hours(100.0).as_secs(),
        SimTime::from_hours(500.0),
    );
    assert!(
        result.is_none(),
        "an unfinishable job must hit the deadline"
    );
}

#[test]
fn paper_divergence_no_interior_interval_optimum_in_simulation() {
    // Young/Daly predict an interior optimum near 10 minutes, i.e.
    // *below* the practical 15-minute floor — which is exactly why the
    // paper reports "no optimal checkpoint interval" within 15 min–4 h.
    let cfg = SystemConfig::builder().build().unwrap();
    let tau_opt = daly::optimal_interval(overhead(&cfg), 1.0 / cfg.compute_failure_rate());
    assert!(
        tau_opt < 15.0 * 60.0,
        "Daly τ* = {tau_opt} s should fall below the 15-minute floor"
    );
}
