//! The fixed-interval policy is the pre-PR behavior, bit for bit.
//!
//! The policy abstraction threads a `CheckpointPolicy` through both
//! engines; these tests pin the contract that introducing it changed
//! nothing observable for the default (fixed) policy:
//!
//! * spec fingerprints captured from the pre-policy code are unchanged,
//!   so old snapshots still resume;
//! * useful-work fractions captured from the pre-policy code are
//!   reproduced bitwise, on both engines, at any worker count;
//! * the Daly policy is exactly a fixed policy at the closed-form
//!   interval — same simulator, same draws, same bits;
//! * the adaptive policy is rejected by the SAN engine (its master
//!   submodel needs a static firing rate);
//! * `ckptsim optimize` interrupted after some cells and resumed from
//!   its snapshot emits the byte-identical report.

use ckpt_bench::sweep::Metric;
use ckpt_bench::{run_sweep_controlled, RunOptions, SweepControl};
use ckpt_cli::optimize::{candidates, cells, run_search};
use ckpt_harness::{ExperimentSpec, SpecError, SweepJournal};
use ckptsim::des::SimTime;
use ckptsim::model::{EngineKind, PolicySpec, SystemConfig};
use std::path::PathBuf;

/// Golden values captured from the pre-policy tree (same capture
/// recipe as below, run before `PolicySpec` existed). A mismatch means
/// the default policy is no longer bit-compatible with the paper
/// baseline — a regression, not a test to update.
const DEFAULT_SPEC_FINGERPRINT: u64 = 0x373e_33fa_1b29_d7fa;
const SMALL_SPEC_FINGERPRINT: u64 = 0x2199_cd19_c00d_39d4;
const DIRECT_UWF_MEAN_BITS: u64 = 0x3fee_5085_efee_0b1a;
const DIRECT_UWF_HALF_BITS: u64 = 0x3f87_6d3a_eb91_543b;
const SAN_SPEC_FINGERPRINT: u64 = 0x69af_528a_e83f_e2dd;
const SAN_UWF_MEAN_BITS: u64 = 0x3fee_4d1c_cbed_f1ee;
const SAN_UWF_HALF_BITS: u64 = 0x3f93_5503_6c40_cb1a;

fn small_config(procs: u64) -> SystemConfig {
    SystemConfig::builder()
        .processors(procs)
        .mttf_per_node(SimTime::from_years(0.25))
        .build()
        .expect("valid test config")
}

fn small_spec(cfg: &SystemConfig, engine: EngineKind, jobs: usize) -> ExperimentSpec {
    ExperimentSpec::builder(cfg.clone())
        .engine(engine)
        .transient(SimTime::from_hours(10.0))
        .horizon(SimTime::from_hours(120.0))
        .replications(4)
        .seed(0x5eed)
        .jobs(jobs)
        .build()
        .expect("valid test spec")
}

#[test]
fn default_config_fingerprint_is_unchanged() {
    let cfg = SystemConfig::builder().build().expect("default config");
    assert_eq!(cfg.policy(), PolicySpec::Fixed);
    let spec = ExperimentSpec::builder(cfg).build().expect("spec");
    assert_eq!(spec.fingerprint(), DEFAULT_SPEC_FINGERPRINT);
}

#[test]
fn fixed_policy_is_bit_identical_to_pre_policy_direct_engine() {
    let cfg = small_config(1024);
    for jobs in [1usize, 4] {
        let spec = small_spec(&cfg, EngineKind::Direct, jobs);
        assert_eq!(spec.fingerprint(), SMALL_SPEC_FINGERPRINT);
        let est = spec.to_experiment().run().expect("direct runs");
        let uwf = est.useful_work_fraction();
        assert_eq!(uwf.mean.to_bits(), DIRECT_UWF_MEAN_BITS, "jobs={jobs}");
        assert_eq!(
            uwf.half_width.to_bits(),
            DIRECT_UWF_HALF_BITS,
            "jobs={jobs}"
        );
    }
}

#[test]
fn fixed_policy_is_bit_identical_to_pre_policy_san_engine() {
    let cfg = small_config(1024);
    for jobs in [1usize, 4] {
        let spec = small_spec(&cfg, EngineKind::San, jobs);
        assert_eq!(spec.fingerprint(), SAN_SPEC_FINGERPRINT);
        let est = spec.to_experiment().run().expect("san runs");
        let uwf = est.useful_work_fraction();
        assert_eq!(uwf.mean.to_bits(), SAN_UWF_MEAN_BITS, "jobs={jobs}");
        assert_eq!(uwf.half_width.to_bits(), SAN_UWF_HALF_BITS, "jobs={jobs}");
    }
}

/// The Daly policy is pure interval selection: simulating it must be
/// bitwise the same as a fixed policy manually configured at the
/// closed-form interval.
#[test]
fn daly_policy_equals_fixed_policy_at_the_closed_form_interval() {
    let daly_cfg = small_config(1024)
        .to_builder()
        .policy(PolicySpec::DalyOptimal)
        .build()
        .expect("daly config");
    let tau = daly_cfg
        .policy()
        .static_interval(&daly_cfg)
        .expect("daly has a static interval");
    let manual_cfg = small_config(1024)
        .to_builder()
        .checkpoint_interval(tau)
        .policy(PolicySpec::Fixed)
        .build()
        .expect("manual config");

    for engine in [EngineKind::Direct, EngineKind::San] {
        let daly = small_spec(&daly_cfg, engine, 1)
            .to_experiment()
            .run()
            .expect("daly runs");
        let manual = small_spec(&manual_cfg, engine, 1)
            .to_experiment()
            .run()
            .expect("manual runs");
        let (d, m) = (daly.useful_work_fraction(), manual.useful_work_fraction());
        assert_eq!(d.mean.to_bits(), m.mean.to_bits(), "engine={engine:?}");
        assert_eq!(
            d.half_width.to_bits(),
            m.half_width.to_bits(),
            "engine={engine:?}"
        );
    }
}

#[test]
fn adaptive_policy_is_rejected_by_the_san_engine() {
    let cfg = small_config(1024)
        .to_builder()
        .policy(PolicySpec::load_adaptive_default())
        .build()
        .expect("adaptive config");
    let err = ExperimentSpec::builder(cfg.clone())
        .engine(EngineKind::San)
        .build()
        .expect_err("SAN must reject the adaptive policy");
    match err {
        SpecError::UnsupportedAblation { switch } => {
            assert_eq!(switch, "load_adaptive_policy");
        }
        other => panic!("expected UnsupportedAblation, got {other}"),
    }
    // The direct engine accepts it.
    ExperimentSpec::builder(cfg)
        .engine(EngineKind::Direct)
        .build()
        .expect("direct accepts the adaptive policy");
}

fn snapshot_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ckptsim_policy_tests");
    std::fs::create_dir_all(&dir).expect("create snapshot dir");
    dir.join(format!("{tag}.json"))
}

fn optimize_opts(jobs: usize) -> RunOptions {
    RunOptions {
        engine: EngineKind::Direct,
        reps: 2,
        horizon: SimTime::from_hours(60.0),
        transient: SimTime::from_hours(5.0),
        seed: 0x5eed,
        jobs,
        exec: ckpt_harness::ExecFlags {
            quiet: true,
            ..ckpt_harness::ExecFlags::default()
        },
        ..RunOptions::default()
    }
}

/// `ckptsim optimize` killed after the first cells and resumed from
/// its snapshot emits the byte-identical report (at a different worker
/// count, too — the snapshot excludes `--jobs`).
#[test]
fn optimize_resumed_after_interrupt_matches_uninterrupted() {
    let cfg = small_config(512);
    let baseline = run_search(&cfg, &optimize_opts(2)).expect("uninterrupted search");

    // Phase 1: the in-process equivalent of SIGTERM landing after the
    // first `killed` cells completed — journal exactly that prefix
    // under the full search's fingerprint, then "die".
    let cands = candidates(&cfg, EngineKind::Direct).expect("candidates");
    let all_cells = cells(&cands);
    let killed = 3usize.min(all_cells.len() - 1);
    let opts = optimize_opts(1);
    let fingerprint =
        ckpt_bench::sweep_fingerprint("optimize", &all_cells, &opts).expect("fingerprint");
    let path = snapshot_path("optimize_interrupted");
    let target = snapshot_path("optimize_resumed");
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&target);
    let journal = SweepJournal::create(&path, fingerprint, 1);
    let labels: Vec<String> = cands[..killed].iter().map(|c| c.label.clone()).collect();
    run_sweep_controlled(
        &labels,
        all_cells[..killed].to_vec(),
        Metric::UsefulWorkFraction,
        &opts,
        SweepControl {
            journal: Some(&journal),
            interrupt: None,
            progress: None,
        },
    )
    .expect("prefix sweep runs");
    journal.persist().expect("persist interrupted snapshot");
    assert_eq!(journal.completed(), killed * opts.reps as usize);
    drop(journal);

    // Phase 2: resume through the real optimize path, on more workers.
    let base = optimize_opts(4);
    let resumed_opts = RunOptions {
        exec: ckpt_harness::ExecFlags {
            resume: Some(path.to_string_lossy().into_owned()),
            snapshot: Some(target.to_string_lossy().into_owned()),
            ..base.exec.clone()
        },
        ..base
    };
    let resumed = run_search(&cfg, &resumed_opts).expect("resumed search");
    assert_eq!(resumed, baseline, "resumed report must be byte-identical");
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&target);
}

/// The report itself is deterministic: worker count changes
/// scheduling, never sampling — the bytes must not move.
#[test]
fn optimize_report_is_worker_count_invariant() {
    let cfg = small_config(512);
    let a = run_search(&cfg, &optimize_opts(1)).expect("jobs=1");
    let b = run_search(&cfg, &optimize_opts(4)).expect("jobs=4");
    assert_eq!(a, b);
}
