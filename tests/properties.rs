//! Property-based tests: model invariants must hold for *any* valid
//! configuration, not just the paper's parameter points.

use ckptsim::des::SimTime;
use ckptsim::model::config::{ErrorPropagation, GenericCorrelated};
use ckptsim::model::direct::DirectSimulator;
use ckptsim::model::{CoordinationMode, PhaseKind, SystemConfig};
use proptest::prelude::*;

/// Strategy over valid system configurations spanning the paper's
/// parameter ranges (and a little beyond).
fn config_strategy() -> impl Strategy<Value = SystemConfig> {
    let procs_per_node = prop_oneof![Just(1u32), Just(8), Just(16), Just(32)];
    (
        procs_per_node,
        1u64..=4096,     // nodes
        (5.0f64..240.0), // checkpoint interval, minutes
        (0.05f64..25.0), // MTTF per node, years
        (1.0f64..80.0),  // MTTR, minutes
        (0.5f64..10.0),  // MTTQ, seconds
        (0.85f64..=1.0), // compute fraction
        prop_oneof![
            Just(CoordinationMode::FixedQuiesce),
            Just(CoordinationMode::SystemExponential),
            Just(CoordinationMode::MaxOfN)
        ],
        proptest::option::of(20.0f64..120.0), // timeout, seconds
        proptest::option::of((0.01f64..0.3, 100.0f64..1600.0)), // error propagation
        proptest::option::of(0.0005f64..0.005), // generic correlation α (r = 400)
    )
        .prop_map(
            |(ppn, nodes, int_min, mttf_y, mttr_min, mttq, frac, coord, timeout, ep, gc)| {
                SystemConfig::builder()
                    .processors(nodes * u64::from(ppn))
                    .procs_per_node(ppn)
                    .checkpoint_interval(SimTime::from_mins(int_min))
                    .mttf_per_node(SimTime::from_years(mttf_y))
                    .mttr_system(SimTime::from_mins(mttr_min))
                    .mttq(SimTime::from_secs(mttq))
                    .compute_fraction(frac)
                    .coordination(coord)
                    .timeout(timeout.map(SimTime::from_secs))
                    .error_propagation(ep.map(|(p, r)| ErrorPropagation {
                        probability: p,
                        factor: r,
                        window: 180.0,
                    }))
                    .generic_correlated(gc.map(|a| GenericCorrelated {
                        coefficient: a,
                        factor: 400.0,
                    }))
                    .build()
                    .expect("strategy yields valid configs")
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    /// The fundamental sanity bundle, on every config: the fraction is a
    /// fraction, phase times tile the window, useful work never exceeds
    /// executing time, and losses are non-negative.
    #[test]
    fn simulator_invariants_hold(cfg in config_strategy(), seed in 0u64..1_000) {
        let mut sim = DirectSimulator::new(&cfg, seed);
        sim.run(SimTime::from_hours(200.0));
        sim.reset_metrics();
        sim.run(SimTime::from_hours(2_000.0));
        let m = sim.metrics();

        prop_assert!(m.useful_work_fraction() <= 1.0 + 1e-9,
            "fraction {} > 1", m.useful_work_fraction());
        // Useful work can be negative over a window only through a
        // rollback past the window start; bounded by one interval+window.
        prop_assert!(m.useful_work_secs >= -(cfg.checkpoint_interval().as_secs() + 200.0 * 3600.0),
            "useful work absurdly negative: {}", m.useful_work_secs);
        prop_assert!(m.work_lost_secs >= 0.0);

        let total = m.phase_times.total();
        prop_assert!((total - m.window_secs).abs() < 1e-6 * m.window_secs.max(1.0),
            "phase times {total} vs window {}", m.window_secs);

        // Useful work accrues while executing, plus during the slice of
        // the coordinating phase where non-preemptive application I/O is
        // still finishing under a pending quiesce.
        let accruable = m.phase_times.get(PhaseKind::Executing)
            + m.phase_times.get(PhaseKind::Coordinating);
        prop_assert!(m.useful_work_secs <= accruable + 1e-6,
            "useful {} > accruable {accruable}", m.useful_work_secs);
    }

    /// Same seed ⇒ bit-identical trajectory; different seed ⇒ different
    /// trajectory (statistically certain on 2000 h of failures).
    #[test]
    fn determinism(cfg in config_strategy()) {
        let run = |seed: u64| {
            let mut sim = DirectSimulator::new(&cfg, seed);
            sim.run(SimTime::from_hours(2_000.0));
            (sim.metrics().useful_work_secs, sim.events_processed())
        };
        let a = run(7);
        prop_assert_eq!(a, run(7));
    }

    /// Checkpoint accounting: completed + aborted never exceeds the
    /// number of initiation opportunities (one per interval), and with
    /// failures disabled nothing is ever lost.
    #[test]
    fn checkpoint_accounting(cfg in config_strategy()) {
        let mut sim = DirectSimulator::new(&cfg, 3);
        sim.run(SimTime::from_hours(2_000.0));
        let m = sim.metrics();
        let attempts = m.counters.checkpoints_completed
            + m.counters.checkpoints_aborted_timeout
            + m.counters.checkpoints_aborted_master
            + m.counters.checkpoints_aborted_io;
        let upper = (2_000.0 * 3600.0 / cfg.checkpoint_interval().as_secs()) as u64 + 2;
        prop_assert!(attempts <= upper, "{attempts} attempts > {upper} opportunities");
    }

    /// Monotonicity in the failure rate: a strictly harsher MTTF must
    /// not (beyond noise) improve the useful work fraction.
    #[test]
    fn harsher_mttf_does_not_help(seed in 0u64..100) {
        let frac = |years: f64| {
            let cfg = SystemConfig::builder()
                .mttf_per_node(SimTime::from_years(years))
                .build()
                .unwrap();
            let mut sim = DirectSimulator::new(&cfg, seed);
            sim.run(SimTime::from_hours(500.0));
            sim.reset_metrics();
            sim.run(SimTime::from_hours(5_000.0));
            sim.metrics().useful_work_fraction()
        };
        let good = frac(8.0);
        let bad = frac(0.25);
        prop_assert!(good > bad, "MTTF 8 y ({good}) must beat 0.25 y ({bad})");
    }
}
