//! `ckptsim report` against committed fixtures: the `--json` rendering
//! is a deterministic function of the input documents, so the report
//! over a PR 2-era (schema v1) run manifest is pinned byte-for-byte.
//! If this test fails after an intentional layout change, bump
//! `REPORT_SCHEMA_VERSION` and regenerate the expected file.

use ckpt_cli::report::{report_json, summarize};
use ckptsim::harness::json::parse;

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

#[test]
fn v1_manifest_report_matches_pinned_output() {
    let doc = parse(&fixture("run_manifest_v1.json")).expect("fixture parses");
    let entries = vec![("tests/fixtures/run_manifest_v1.json".to_string(), doc)];
    let actual = report_json(&entries).expect("report renders");
    let expected = fixture("report_v1_expected.json");
    assert_eq!(
        actual, expected,
        "report --json drifted from the pinned fixture; if the change is \
         intentional, bump REPORT_SCHEMA_VERSION and regenerate"
    );
}

#[test]
fn v1_manifest_summary_defaults_missing_fields() {
    // The v1 layout predates `policy`, `warmup`, and `faults`; the
    // report must parse it leniently with documented defaults rather
    // than reject old artifacts.
    let doc = parse(&fixture("run_manifest_v1.json")).expect("fixture parses");
    let s = summarize("old.json", &doc).expect("summarizes");
    let get = |k: &str| s.get(k).cloned().expect(k).to_json();
    assert_eq!(get("schema_version"), "1");
    assert_eq!(get("policy"), "\"\"");
    assert_eq!(get("warmup"), "0");
    assert_eq!(get("faults"), "0");
    // Fields v1 did record come through verbatim.
    assert_eq!(get("jobs"), "2");
    assert_eq!(get("host_parallelism"), "8");
    assert_eq!(get("events_total"), "359750");
}
