//! Shape checks: quick re-runs of the paper's figures must reproduce the
//! qualitative results the paper reports (who wins, where the optimum
//! sits, where the cliffs are). Absolute values get the generous
//! tolerance of `ckpt_bench::paper` — the substrate is a
//! reimplementation, not the authors' Möbius install.

use ckpt_bench::figures;
use ckpt_bench::paper::{self, claims};
use ckpt_bench::sweep::{run_sweep, Series};
use ckpt_bench::RunOptions;
use ckpt_des::SimTime;

fn quick_opts() -> RunOptions {
    RunOptions {
        reps: 3,
        horizon: SimTime::from_hours(8_000.0),
        transient: SimTime::from_hours(500.0),
        ..RunOptions::default()
    }
}

fn run(spec: figures::FigureSpec) -> Vec<Series> {
    run_sweep(&spec.labels, spec.cells, spec.metric, &quick_opts()).expect("valid figure sweep")
}

fn series<'a>(all: &'a [Series], label: &str) -> &'a Series {
    all.iter()
        .find(|s| s.label == label)
        .unwrap_or_else(|| panic!("missing series '{label}'"))
}

fn argmax(s: &Series) -> f64 {
    paper::argmax(&s.points.iter().map(|p| (p.x, p.y)).collect::<Vec<_>>())
}

#[test]
fn fig4a_has_interior_optimum_that_moves_with_mttf() {
    let all = run(figures::fig4a());
    // MTTF 1 y: optimum at 128K processors (the paper's headline claim).
    let mttf1 = series(&all, "MTTF (yrs) = 1");
    assert_eq!(
        argmax(mttf1) as u64,
        claims::FIG4A_OPTIMUM_PROCS_MTTF1Y,
        "MTTF 1 y curve: {:?}",
        mttf1.points
    );
    // Peak value within tolerance of the paper's 56000 job units.
    let peak = mttf1.points.iter().map(|p| p.y).fold(f64::MIN, f64::max);
    assert!(
        paper::close_to_reference(peak, claims::FIG4A_PEAK_TOTAL_USEFUL_WORK),
        "peak {peak} vs paper {}",
        claims::FIG4A_PEAK_TOTAL_USEFUL_WORK
    );
    // Halving the MTTF halves the optimum (128K → 64K).
    let half = series(&all, "MTTF (yrs) = 0.5");
    assert!(
        (argmax(half) as u64) <= claims::FIG4A_OPTIMUM_PROCS_MTTF_HALF_Y,
        "MTTF 0.5 y optimum at {}",
        argmax(half)
    );
    // Larger MTTF dominates pointwise.
    let worse = series(&all, "MTTF (yrs) = 0.25");
    for (a, b) in mttf1.points.iter().zip(&worse.points) {
        assert!(a.y > b.y, "MTTF 1 y must beat 0.25 y at {}", a.x);
    }
    // Useful work fraction at the peak stays below 50 % (paper's
    // conclusion about failure-dominated machines).
    let frac = peak / claims::FIG4A_OPTIMUM_PROCS_MTTF1Y as f64;
    assert!(
        frac < claims::MTTF1Y_FRACTION_CEILING,
        "peak fraction {frac}"
    );
}

#[test]
fn fig4b_shows_no_practical_optimal_interval() {
    let all = run(figures::fig4b());
    // For every machine size, total useful work is (weakly) maximal at
    // the shortest interval in the practical range — the paper's
    // contradiction of Young/Daly's interior optimum.
    for s in &all {
        let first = s.points.first().unwrap();
        let best = s.points.iter().map(|p| p.y).fold(f64::MIN, f64::max);
        assert!(
            first.y >= 0.97 * best,
            "{}: 15-minute interval ({}) must be within noise of the best ({best})",
            s.label,
            first.y
        );
        // Intervals in the hours range are worse everywhere, and
        // *sharply* worse for the large machines the paper targets
        // (small machines fail too rarely for the interval to bite).
        let last = s.points.last().unwrap();
        assert!(
            last.y < first.y,
            "{}: 4-hour interval must cost: {} vs {}",
            s.label,
            last.y,
            first.y
        );
        let procs: f64 = s
            .label
            .trim_start_matches("processors = ")
            .parse()
            .expect("label carries the processor count");
        if procs >= 65_536.0 {
            assert!(
                last.y < 0.8 * first.y,
                "{}: 4-hour interval must cost >20 % at scale: {} vs {}",
                s.label,
                last.y,
                first.y
            );
        }
    }
}

#[test]
fn fig4c_larger_mttr_lowers_optimum_and_curves() {
    let all = run(figures::fig4c());
    let m10 = series(&all, "MTTR (mins) = 10");
    let m80 = series(&all, "MTTR (mins) = 80");
    for (a, b) in m10.points.iter().zip(&m80.points) {
        assert!(a.y > b.y, "MTTR 10 min must dominate 80 min at {}", a.x);
    }
    assert!(
        argmax(m80) <= argmax(m10),
        "optimum must not grow with MTTR"
    );
    // MTTR 40 min moves the optimum down to ≤64K (paper's claim).
    let m40 = series(&all, "MTTR (mins) = 40");
    assert!(
        (argmax(m40) as u64) <= claims::FIG4C_OPTIMUM_PROCS_MTTR40,
        "MTTR 40 min optimum at {}",
        argmax(m40)
    );
}

#[test]
fn fig4f_mttf8_matches_papers_quoted_values() {
    let all = run(figures::fig4f());
    let mttf8 = series(&all, "MTTF per node (yrs) = 8");
    for (mins, reference) in claims::FIG4F_MTTF8_BY_INTERVAL {
        let p = mttf8
            .points
            .iter()
            .find(|p| p.x == mins)
            .expect("interval point exists");
        assert!(
            paper::close_to_reference(p.y, reference),
            "MTTF 8 y at {mins} min: measured {} vs paper {reference}",
            p.y
        );
    }
}

#[test]
fn fig4g_more_procs_per_node_raises_total_useful_work() {
    let g = run(figures::fig4gh(32));
    let h = run(figures::fig4gh(16));
    // At equal node count the 32-way nodes deliver ~2× the work of the
    // 16-way nodes (same failure rate, double the compute).
    let g1 = series(&g, "MTTF per node (yrs) = 1");
    let h1 = series(&h, "MTTF per node (yrs) = 1");
    for (a, b) in g1.points.iter().zip(&h1.points) {
        assert!(
            a.y > 1.6 * b.y,
            "32-way nodes must far outwork 16-way at {} nodes: {} vs {}",
            a.x,
            a.y,
            b.y
        );
    }
}

#[test]
fn fig5_coordination_effect_is_logarithmic_and_small() {
    let all = run(figures::fig5());
    for s in &all {
        // Fractions decline monotonically in n...
        for w in s.points.windows(2) {
            assert!(
                w[1].y <= w[0].y + 0.002,
                "{}: fraction must not grow with n",
                s.label
            );
        }
        // ...but remain high even at 2^30 processors (paper's Figure 5
        // spans ~0.80–0.98 for MTTQ 10 s).
        let last = s.points.last().unwrap().y;
        assert!(
            last > 0.78,
            "{}: fraction at 2^30 processors is {last}, not logarithmic decline",
            s.label
        );
    }
    // Larger MTTQ costs more.
    let q10 = series(&all, "MTTQ=10s").points.last().unwrap().y;
    let q05 = series(&all, "MTTQ=0.5s").points.last().unwrap().y;
    assert!(q05 > q10);
}

#[test]
fn fig6_timeout_cliff_sits_between_80_and_100_seconds() {
    let all = run(figures::fig6());
    let no_timeout = series(&all, "no timeout");
    let t100 = series(&all, "timeout=100s");
    let t20 = series(&all, "timeout=20s");
    for ((a, b), c) in no_timeout.points.iter().zip(&t100.points).zip(&t20.points) {
        // ≥ safe threshold: near the no-timeout curve up to the scale
        // where the coordination tail outgrows 100 s (the paper's
        // "insensitive provided the timeout is large enough").
        if a.x <= 65_536.0 {
            assert!(
                (a.y - b.y).abs() < 0.06,
                "100 s timeout must track no-timeout at {}: {} vs {}",
                a.x,
                b.y,
                a.y
            );
        }
        // 20 s: the checkpoint always aborts → fraction collapses.
        assert!(
            c.y < a.y - 0.2,
            "20 s timeout must collapse at {}: {} vs {}",
            a.x,
            c.y,
            a.y
        );
    }
    // Longer timeouts can only help: the curves are ordered in the
    // timeout at every machine size.
    for ts in [
        ("timeout=120s", "timeout=80s"),
        ("timeout=80s", "timeout=60s"),
        ("timeout=60s", "timeout=40s"),
        ("timeout=40s", "timeout=20s"),
    ] {
        let hi = series(&all, ts.0);
        let lo = series(&all, ts.1);
        for (a, b) in hi.points.iter().zip(&lo.points) {
            assert!(
                a.y >= b.y - 0.03,
                "{} must not lose to {} at {}: {} vs {}",
                ts.0,
                ts.1,
                a.x,
                a.y,
                b.y
            );
        }
    }
    // "No coordination" is the upper envelope.
    let none = series(&all, "no coordination");
    for (a, b) in none.points.iter().zip(&no_timeout.points) {
        assert!(a.y >= b.y - 0.02);
    }
}

#[test]
fn fig7_error_propagation_moves_fraction_little() {
    let all = run(figures::fig7());
    for s in &all {
        let ys: Vec<f64> = s.points.iter().map(|p| p.y).collect();
        let min = ys.iter().copied().fold(f64::MAX, f64::min);
        let max = ys.iter().copied().fold(f64::MIN, f64::max);
        // The paper's band is 0.51–0.56; allow reimplementation offset
        // but insist the spread stays small.
        assert!(
            max - min < 0.06,
            "{}: spread {min}..{max} too wide for Figure 7",
            s.label
        );
        assert!(
            min > claims::FIG7_FRACTION_BAND.0 - 0.1 && max < claims::FIG7_FRACTION_BAND.1 + 0.1,
            "{}: band {min}..{max} far from the paper's {:?}",
            s.label,
            claims::FIG7_FRACTION_BAND
        );
    }
}

#[test]
fn fig8_generic_correlation_degrades_scaling() {
    let all = run(figures::fig8());
    let without = series(&all, "without correlated failure");
    let with = series(&all, "with correlated failure");
    for (a, b) in without.points.iter().zip(&with.points) {
        assert!(a.y > b.y, "correlation must hurt at {}", a.x);
    }
    // At 256K processors the drop is large (paper: ≈0.24, i.e. 51 %).
    let a = without.points.last().unwrap().y;
    let b = with.points.last().unwrap().y;
    let drop = a - b;
    assert!(
        drop > 0.5 * claims::FIG8_FRACTION_DROP_AT_256K,
        "drop at 256K procs is {drop}, paper reports {}",
        claims::FIG8_FRACTION_DROP_AT_256K
    );
}
