//! Compatibility contract for the deprecated `run_steady_state*`
//! wrappers: they must keep compiling (warning-only) for one release
//! and return exactly what the unified `run(&RunOptions)` entry point
//! returns on the same seed. This is the only place in the workspace
//! allowed to call them.

#![allow(deprecated)]

use ckpt_san::Scheduling;
use ckptsim::des::SimTime;
use ckptsim::model::san_model::{CheckpointSan, RunOptions};
use ckptsim::model::{Metrics, SystemConfig};
use ckptsim::obs::TraceBuffer;

fn model() -> CheckpointSan {
    let cfg = SystemConfig::builder()
        .processors(1024)
        .mttf_per_node(SimTime::from_years(0.25))
        .build()
        .expect("valid test config");
    CheckpointSan::build(&cfg).expect("model builds")
}

fn opts() -> RunOptions {
    RunOptions {
        seed: 77,
        transient: SimTime::from_hours(10.0),
        horizon: SimTime::from_hours(120.0),
        scheduling: Scheduling::default(),
        ..RunOptions::default()
    }
}

fn assert_same_metrics(a: &Metrics, b: &Metrics) {
    assert_eq!(a.window_secs.to_bits(), b.window_secs.to_bits());
    assert_eq!(a.useful_work_secs.to_bits(), b.useful_work_secs.to_bits());
    assert_eq!(a.work_lost_secs.to_bits(), b.work_lost_secs.to_bits());
    assert_eq!(a.counters, b.counters);
}

#[test]
fn run_steady_state_matches_run() {
    let m = model();
    let o = opts();
    let new = m.run(&o).expect("run succeeds");
    let old = m
        .run_steady_state(o.seed, o.transient, o.horizon)
        .expect("wrapper succeeds");
    assert_same_metrics(&old, &new.metrics);
}

#[test]
fn run_steady_state_profiled_matches_run() {
    let m = model();
    let o = opts();
    let new = m.run(&o).expect("run succeeds");
    let (old, events) = m
        .run_steady_state_profiled(o.seed, o.transient, o.horizon)
        .expect("wrapper succeeds");
    assert_same_metrics(&old, &new.metrics);
    assert_eq!(events, new.events);
}

#[test]
fn run_steady_state_profiled_with_matches_run() {
    let m = model();
    for scheduling in [Scheduling::Incremental, Scheduling::FullScan] {
        let o = RunOptions {
            scheduling,
            ..opts()
        };
        let new = m.run(&o).expect("run succeeds");
        let (old, events) = m
            .run_steady_state_profiled_with(o.seed, o.transient, o.horizon, scheduling)
            .expect("wrapper succeeds");
        assert_same_metrics(&old, &new.metrics);
        assert_eq!(events, new.events);
    }
}

#[test]
fn run_steady_state_observed_matches_run_observed() {
    let m = model();
    let o = opts();
    let mut new_buf = TraceBuffer::new(4096);
    let new = m.run_observed(&o, &mut new_buf).expect("run succeeds");
    let mut old_buf = TraceBuffer::new(4096);
    let (old, events) = m
        .run_steady_state_observed(o.seed, o.transient, o.horizon, &mut old_buf)
        .expect("wrapper succeeds");
    assert_same_metrics(&old, &new.metrics);
    assert_eq!(events, new.events);
    assert_eq!(old_buf.len(), new_buf.len());
}
