//! The incremental scheduler against the full-scan oracle on the real
//! checkpoint model: metrics must be **bitwise identical**, not merely
//! statistically close — both schedulers consume the same RNG stream in
//! the same order by construction, and these tests enforce it on every
//! paper configuration class the SAN engine supports.

use ckptsim::des::SimTime;
use ckptsim::model::config::{ErrorPropagation, GenericCorrelated};
use ckptsim::model::san_model::{CheckpointSan, RunOptions};
use ckptsim::model::{CoordinationMode, SystemConfig};
use ckptsim::san::Scheduling;

fn assert_bit_identical(cfg: SystemConfig, what: &str) {
    let model = CheckpointSan::build(&cfg).expect("model builds");
    for seed in [1, 42] {
        let run = |scheduling| {
            let outcome = model
                .run(&RunOptions {
                    seed,
                    transient: SimTime::from_hours(50.0),
                    horizon: SimTime::from_hours(500.0),
                    scheduling,
                    ..RunOptions::default()
                })
                .expect("replication runs");
            (outcome.metrics, outcome.events)
        };
        let (m_inc, ev_inc) = run(Scheduling::Incremental);
        let (m_full, ev_full) = run(Scheduling::FullScan);
        assert_eq!(
            ev_inc, ev_full,
            "{what} (seed {seed}): event counts diverged"
        );
        // Metrics is PartialEq over raw f64 fields, so this is an exact
        // bit-level comparison (no tolerances).
        assert_eq!(m_inc, m_full, "{what} (seed {seed}): metrics diverged");
        assert!(
            m_inc.useful_work_fraction() > 0.0,
            "{what} (seed {seed}): degenerate run"
        );
    }
}

#[test]
fn baseline_config_is_scheduler_invariant() {
    let cfg = SystemConfig::builder().build().unwrap();
    assert_bit_identical(cfg, "baseline");
}

#[test]
fn large_system_with_timeout_is_scheduler_invariant() {
    let cfg = SystemConfig::builder()
        .processors(65_536)
        .timeout(Some(SimTime::from_secs(600.0)))
        .build()
        .unwrap();
    assert_bit_identical(cfg, "large system with timeout");
}

#[test]
fn correlated_failures_are_scheduler_invariant() {
    let cfg = SystemConfig::builder()
        .error_propagation(Some(ErrorPropagation {
            probability: 0.1,
            factor: 10.0,
            window: 180.0,
        }))
        .generic_correlated(Some(GenericCorrelated {
            coefficient: 0.0025,
            factor: 400.0,
        }))
        .build()
        .unwrap();
    assert_bit_identical(cfg, "correlated failures");
}

#[test]
fn max_of_n_coordination_is_scheduler_invariant() {
    let cfg = SystemConfig::builder()
        .coordination(CoordinationMode::MaxOfN)
        .compute_fraction(0.88)
        .build()
        .unwrap();
    assert_bit_identical(cfg, "max-of-n coordination with app I/O");
}
