//! Parallelism must never change sampling: the same configuration and
//! seed produce byte-identical per-replication results no matter how
//! many worker threads run them. Replication `k` always draws from
//! seed `base_seed + k`, so a parallel run is a reordering of the same
//! sample paths — these tests pin that contract for both engines, for
//! sequential stopping, and for job-completion runs.

use ckptsim::des::SimTime;
use ckptsim::model::{EngineKind, Estimate, Experiment, SystemConfig};

const SEED: u64 = 0x0D15_EA5E;

fn experiment(cfg: &SystemConfig, engine: EngineKind, jobs: usize) -> Experiment {
    Experiment::new(cfg.clone())
        .engine(engine)
        .transient(SimTime::from_hours(100.0))
        .horizon(SimTime::from_hours(1_000.0))
        .replications(4)
        .seed(SEED)
        .jobs(jobs)
}

fn assert_bitwise_equal(a: &Estimate, b: &Estimate) {
    assert_eq!(a.replicates().len(), b.replicates().len());
    for (k, (x, y)) in a.replicates().iter().zip(b.replicates()).enumerate() {
        assert_eq!(
            x.useful_work_secs.to_bits(),
            y.useful_work_secs.to_bits(),
            "replication {k}: useful_work_secs diverged across worker counts"
        );
        assert_eq!(
            x.work_lost_secs.to_bits(),
            y.work_lost_secs.to_bits(),
            "replication {k}: work_lost_secs diverged across worker counts"
        );
        assert_eq!(x.counters, y.counters, "replication {k}: counters diverged");
    }
}

#[test]
fn direct_engine_is_identical_across_jobs() {
    let cfg = SystemConfig::builder().build().unwrap();
    let seq = experiment(&cfg, EngineKind::Direct, 1).run().unwrap();
    let par = experiment(&cfg, EngineKind::Direct, 8).run().unwrap();
    assert_bitwise_equal(&seq, &par);
}

#[test]
fn san_engine_is_identical_across_jobs() {
    let cfg = SystemConfig::builder().build().unwrap();
    let seq = experiment(&cfg, EngineKind::San, 1).run().unwrap();
    let par = experiment(&cfg, EngineKind::San, 8).run().unwrap();
    assert_bitwise_equal(&seq, &par);
}

/// Sequential stopping launches chunks of `jobs` replications per
/// round, so a parallel run may add *more* replications than `jobs(1)`
/// — but every replication `k` it runs must still be the seed-`k`
/// sample path. Verify each against an independent single-replication
/// run with that exact seed.
#[test]
fn sequential_stopping_preserves_per_replication_seeds() {
    let cfg = SystemConfig::builder().build().unwrap();
    let loose = experiment(&cfg, EngineKind::Direct, 1)
        .replications(2)
        .run()
        .unwrap();
    let target = loose.useful_work_fraction().relative_half_width() / 2.0;

    let stopped = experiment(&cfg, EngineKind::Direct, 8)
        .replications(2)
        .target_precision(target, 12)
        .run()
        .unwrap();
    assert!(
        stopped.replicates().len() > 2,
        "stopping rule was expected to add replications"
    );
    for (k, rep) in stopped.replicates().iter().enumerate() {
        let single = Experiment::new(cfg.clone())
            .transient(SimTime::from_hours(100.0))
            .horizon(SimTime::from_hours(1_000.0))
            .replications(1)
            .seed(SEED + k as u64)
            .jobs(1)
            .run()
            .unwrap();
        assert_eq!(
            rep.useful_work_secs.to_bits(),
            single.replicates()[0].useful_work_secs.to_bits(),
            "replication {k} did not use seed base_seed + {k}"
        );
    }
}

#[test]
fn job_completion_is_identical_across_jobs() {
    let cfg = SystemConfig::builder().build().unwrap();
    let solve = SimTime::from_hours(20.0);
    let deadline = SimTime::from_hours(1_000.0);
    let seq = experiment(&cfg, EngineKind::Direct, 1).job_completion(solve, deadline);
    let par = experiment(&cfg, EngineKind::Direct, 8).job_completion(solve, deadline);
    assert_eq!(seq.timed_out(), par.timed_out());
    assert_eq!(seq.times_secs().len(), par.times_secs().len());
    for (k, (a, b)) in seq.times_secs().iter().zip(par.times_secs()).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "completion replication {k} diverged across worker counts"
        );
    }
}

/// Profiles ride along with every replication and carry real event
/// counts for both engines.
#[test]
fn profiles_report_events_for_both_engines() {
    let cfg = SystemConfig::builder().build().unwrap();
    for engine in [EngineKind::Direct, EngineKind::San] {
        let est = experiment(&cfg, engine, 2).run().unwrap();
        assert_eq!(est.profiles().len(), est.replicates().len());
        for p in est.profiles() {
            assert!(p.events > 0, "{engine:?}: replication processed no events");
            assert!(p.wall_secs >= 0.0);
        }
        assert!(est.total_wall_secs() > 0.0);
        assert!(est.events_per_sec() > 0.0, "{engine:?}: zero throughput");
    }
}
