//! Property tests for the service result cache: the content-addressed
//! contract must hold for *any* valid spec, not just the ones the
//! integration tests pin down.
//!
//! * fingerprint-equal specs hit the cache and the hit is
//!   byte-identical to the original execution,
//! * fingerprint-distinct specs miss,
//! * a partially-executed job (journal present, result absent) is
//!   resumed — never trusted as complete — and the resumed result is
//!   byte-identical to an uninterrupted run.

use ckptsim::des::SimTime;
use ckptsim::harness::ExperimentSpec;
use ckptsim::model::SystemConfig;
use ckptsim::svc::exec::{run_job, run_local, LocalRun};
use ckptsim::svc::JobStore;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct SpecParams {
    processors: u64,
    reps: u32,
    seed: u64,
    horizon_h: f64,
    transient_h: f64,
}

fn params_strategy() -> impl Strategy<Value = SpecParams> {
    (
        prop_oneof![Just(256u64), Just(512), Just(1024)],
        2u32..=4,
        0u64..1000,
        40.0f64..80.0,
        4.0f64..8.0,
    )
        .prop_map(
            |(processors, reps, seed, horizon_h, transient_h)| SpecParams {
                processors,
                reps,
                seed,
                horizon_h,
                transient_h,
            },
        )
}

fn build_spec(p: &SpecParams, seed: u64, jobs: usize) -> ExperimentSpec {
    let cfg = SystemConfig::builder()
        .processors(p.processors)
        .build()
        .unwrap();
    ExperimentSpec::builder(cfg)
        .transient(SimTime::from_hours(p.transient_h))
        .horizon(SimTime::from_hours(p.horizon_h))
        .replications(p.reps)
        .seed(seed)
        .jobs(jobs)
        .build()
        .unwrap()
}

fn fresh_store(tag: &str, fingerprint: u64) -> JobStore {
    let dir = std::env::temp_dir().join(format!(
        "ckpt_svc_prop_{tag}_{fingerprint:016x}_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    JobStore::open(&dir).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        .. ProptestConfig::default()
    })]

    #[test]
    fn fingerprint_equal_specs_hit_byte_identically_and_distinct_specs_miss(
        p in params_strategy()
    ) {
        let spec_a = build_spec(&p, p.seed, 1);
        let spec_b = build_spec(&p, p.seed, 3); // jobs differ, fingerprint equal
        let spec_c = build_spec(&p, p.seed + 1, 1); // seed differs, fingerprint distinct
        prop_assert_eq!(spec_a.fingerprint(), spec_b.fingerprint());
        prop_assert_ne!(spec_a.fingerprint(), spec_c.fingerprint());

        let store = fresh_store("hit", spec_a.fingerprint());
        prop_assert!(store.lookup(spec_a.fingerprint()).unwrap().is_none());
        let body_a = run_job(&store, &spec_a, 1, None, None).unwrap();
        // The second call finds the result on disk: anything it returns
        // comes from the cache, and must be the stored bytes verbatim.
        prop_assert!(store.lookup(spec_b.fingerprint()).unwrap().is_some());
        let body_b = run_job(&store, &spec_b, 1, None, None).unwrap();
        prop_assert_eq!(&body_a, &body_b);
        let stored = store.lookup(spec_a.fingerprint()).unwrap();
        prop_assert_eq!(stored.as_deref(), Some(body_a.as_str()));
        // A fingerprint-distinct spec misses this cache entry.
        prop_assert!(store.lookup(spec_c.fingerprint()).unwrap().is_none());
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn an_interrupted_job_is_resumed_not_trusted(p in params_strategy()) {
        let spec = build_spec(&p, p.seed, 1);
        let fingerprint = spec.fingerprint();

        // Reference: an uninterrupted run.
        let reference = fresh_store("ref", fingerprint);
        let body_ref = run_job(&reference, &spec, 1, None, None).unwrap();

        // Forge the aftermath of an interrupt: a journal holding the
        // first k replications, no result file.
        let est = run_local(&spec, LocalRun::default()).unwrap();
        let store = fresh_store("resume", fingerprint);
        let journal = store.open_journal(fingerprint, 1).unwrap();
        let k = (p.reps - 1) as usize;
        for (rep, metrics) in est.replicates().iter().take(k).enumerate() {
            let events = est.profiles()[rep].events;
            journal.record(0, u32::try_from(rep).unwrap(), metrics, events);
        }
        journal.persist().unwrap();
        drop(journal);
        prop_assert!(
            store.lookup(fingerprint).unwrap().is_none(),
            "a journal without a result must not be served as complete"
        );

        // Resume: only the missing replications run, and the published
        // result is byte-identical to the uninterrupted one.
        let body_resumed = run_job(&store, &spec, 1, None, None).unwrap();
        prop_assert_eq!(&body_resumed, &body_ref);
        let _ = std::fs::remove_dir_all(store.root());
        let _ = std::fs::remove_dir_all(reference.root());
    }
}
