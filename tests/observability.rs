//! The observability layer as seen from outside: protocol-order
//! invariants on both engines' traces, phase-time accounting that
//! telescopes to the window length, registry-vs-engine reconciliation,
//! and the guarantee that observers never perturb the simulation.

use ckptsim::des::SimTime;
use ckptsim::model::direct::DirectSimulator;
use ckptsim::model::san_model::CheckpointSan;
use ckptsim::model::{EngineKind, Experiment, ObserveSpec, SystemConfig};
use ckptsim::obs::TraceBuffer;

fn small_config(failures: bool) -> SystemConfig {
    SystemConfig::builder()
        .processors(8_192)
        .failures_enabled(failures)
        .build()
        .expect("valid config")
}

/// Collects a failure-free trace from either engine over `hours`.
fn traced(engine: EngineKind, hours: f64, seed: u64) -> TraceBuffer {
    let cfg = small_config(false);
    let horizon = SimTime::from_hours(hours);
    match engine {
        EngineKind::Direct => {
            let mut buf = TraceBuffer::new(1 << 14);
            let mut sim = DirectSimulator::new(&cfg, seed);
            sim.set_observer(&mut buf);
            sim.run(horizon);
            buf
        }
        EngineKind::San => {
            let (_, buf) = CheckpointSan::build(&cfg)
                .expect("SAN builds")
                .run_traced(seed, horizon, 1 << 14)
                .expect("SAN runs");
            buf
        }
    }
}

#[test]
fn checkpoint_lifecycle_order_holds_on_both_engines() {
    // Failure-free, the protocol must cycle strictly through
    // initiated → coordination complete → completed → on fs.
    const CYCLE: [&str; 4] = [
        "checkpoint_initiated",
        "coordination_complete",
        "checkpoint_completed",
        "checkpoint_on_fs",
    ];
    for engine in [EngineKind::Direct, EngineKind::San] {
        let trace = traced(engine, 50.0, 42);
        assert!(
            trace.len() >= 4 * 10,
            "{engine:?}: expected dozens of lifecycle events, got {}",
            trace.len()
        );
        for (i, entry) in trace.iter().enumerate() {
            assert_eq!(
                entry.event.key(),
                CYCLE[i % 4],
                "{engine:?}: lifecycle out of order at entry {i}"
            );
        }
        // Timestamps never go backwards.
        let times: Vec<f64> = trace.iter().map(|e| e.at.as_secs()).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }
}

#[test]
fn engines_produce_identical_failure_free_traces() {
    let direct = traced(EngineKind::Direct, 24.0, 7);
    let san = traced(EngineKind::San, 24.0, 7);
    assert_eq!(direct.len(), san.len(), "trace lengths differ");
    for (i, (d, s)) in direct.iter().zip(san.iter()).enumerate() {
        assert_eq!(d.event, s.event, "event mismatch at entry {i}");
        assert!(
            (d.at - s.at).as_secs().abs() < 1e-6,
            "time mismatch at entry {i}: direct {} vs san {}",
            d.at.as_secs(),
            s.at.as_secs()
        );
    }
}

fn observed_estimate(engine: EngineKind) -> ckptsim::model::Estimate {
    Experiment::new(small_config(true))
        .engine(engine)
        .transient(SimTime::from_hours(50.0))
        .horizon(SimTime::from_hours(500.0))
        .replications(2)
        .observe(ObserveSpec::full(1 << 14))
        .run()
        .expect("experiment runs")
}

#[test]
fn phase_times_telescope_to_window_length() {
    // The registry integrates phase transitions against sim time; the
    // increments telescope, so the per-phase sums must reproduce the
    // window length to floating-point accuracy on both engines.
    for engine in [EngineKind::Direct, EngineKind::San] {
        let est = observed_estimate(engine);
        assert_eq!(est.recordings().len(), 2);
        for (rep, rec) in est.recordings().iter().enumerate() {
            let reg = rec.registry().expect("registry recorded");
            let window = reg.window_secs();
            assert!(window > 0.0);
            let total = reg.phase_times().total();
            assert!(
                (total - window).abs() <= 1e-9 * window,
                "{engine:?} rep {rep}: phases sum to {total}, window {window}"
            );
        }
    }
}

#[test]
fn registry_reconciles_with_engine_phase_estimates() {
    // The registry accumulates phase time from observed events only,
    // independently of the direct simulator's clock accounting and the
    // SAN engine's rate rewards — agreement is a real cross-check.
    for engine in [EngineKind::Direct, EngineKind::San] {
        let est = observed_estimate(engine);
        for (rep, rec) in est.recordings().iter().enumerate() {
            let reg = rec.registry().expect("registry recorded");
            let metrics = &est.replicates()[rep];
            reg.reconcile(&metrics.phase_times, 1e-6)
                .unwrap_or_else(|e| panic!("{engine:?} rep {rep}: {e}"));
            // Counters line up with the engine's native ones too.
            assert_eq!(
                reg.count("checkpoint_completed"),
                metrics.counters.checkpoints_completed,
                "{engine:?} rep {rep}: checkpoint counter mismatch"
            );
            assert_eq!(
                reg.count("io_failure"),
                metrics.counters.io_failures,
                "{engine:?} rep {rep}: I/O failure counter mismatch"
            );
        }
    }
}

#[test]
fn observers_do_not_perturb_the_san_engine() {
    // (The direct engine's equivalent lives in ckpt-core's unit tests.)
    let run = |observe: bool| {
        let mut exp = Experiment::new(small_config(true))
            .engine(EngineKind::San)
            .transient(SimTime::from_hours(50.0))
            .horizon(SimTime::from_hours(500.0))
            .replications(2);
        if observe {
            exp = exp.observe(ObserveSpec::metrics());
        }
        exp.run().expect("experiment runs")
    };
    let plain = run(false);
    let observed = run(true);
    for (a, b) in plain.replicates().iter().zip(observed.replicates()) {
        assert_eq!(a.useful_work_secs, b.useful_work_secs);
        assert_eq!(a.window_secs, b.window_secs);
        assert_eq!(a.counters, b.counters);
    }
}

#[test]
fn recordings_are_identical_at_any_job_count() {
    let run = |jobs: usize| {
        Experiment::new(small_config(true))
            .transient(SimTime::from_hours(50.0))
            .horizon(SimTime::from_hours(500.0))
            .replications(4)
            .jobs(jobs)
            .observe(ObserveSpec::full(1 << 12))
            .run()
            .expect("experiment runs")
    };
    let seq = run(1);
    let par = run(4);
    assert_eq!(seq.recordings().len(), 4);
    assert_eq!(par.recordings().len(), 4);
    for (rep, (a, b)) in seq.recordings().iter().zip(par.recordings()).enumerate() {
        assert_eq!(a.registry(), b.registry(), "rep {rep}: registry differs");
        let (ta, tb) = (a.trace().unwrap(), b.trace().unwrap());
        assert_eq!(ta.len(), tb.len(), "rep {rep}: trace length differs");
        assert!(
            ta.iter().zip(tb.iter()).all(|(x, y)| x == y),
            "rep {rep}: trace entries differ"
        );
    }
}

#[test]
fn registry_reconciles_with_telemetry_enabled() {
    // Turning the telemetry histograms on must not disturb the metrics
    // pipeline: the registry still reconciles against the engine's own
    // phase accounting to 1e-6 relative tolerance.
    for engine in [EngineKind::Direct, EngineKind::San] {
        let est = Experiment::new(small_config(true))
            .engine(engine)
            .transient(SimTime::from_hours(50.0))
            .horizon(SimTime::from_hours(500.0))
            .replications(2)
            .observe(ObserveSpec::metrics().with_histograms())
            .run()
            .expect("experiment runs");
        for (rep, rec) in est.recordings().iter().enumerate() {
            let reg = rec.registry().expect("registry recorded");
            let metrics = &est.replicates()[rep];
            reg.reconcile(&metrics.phase_times, 1e-6)
                .unwrap_or_else(|e| panic!("{engine:?} rep {rep}: {e}"));
        }
        let merged = est.merged_telemetry().expect("telemetry recorded");
        // Failure gaps come from the recorder, so they are populated in
        // every build; engine-side probes need `--features telemetry`.
        assert!(
            !merged.failure_gaps.is_empty(),
            "{engine:?}: no failure gaps"
        );
    }
}

#[test]
fn merged_telemetry_is_identical_at_any_job_count() {
    // Histograms merge in replication-index order regardless of which
    // worker finished first, so the merged JSON must be byte-identical
    // across serial and parallel runs.
    let run = |jobs: usize| {
        Experiment::new(small_config(true))
            .transient(SimTime::from_hours(50.0))
            .horizon(SimTime::from_hours(500.0))
            .replications(4)
            .jobs(jobs)
            .observe(ObserveSpec::metrics().with_histograms())
            .run()
            .expect("experiment runs")
            .merged_telemetry()
            .expect("telemetry recorded")
    };
    let seq = run(1);
    let par = run(8);
    assert_eq!(seq.to_json(), par.to_json());
}

#[test]
fn span_tree_aggregates_replications() {
    let est = Experiment::new(small_config(true))
        .transient(SimTime::from_hours(50.0))
        .horizon(SimTime::from_hours(500.0))
        .replications(3)
        .observe(ObserveSpec::metrics().with_histograms())
        .run()
        .expect("experiment runs");
    let tree = est.span_tree("obs-test");
    assert_eq!(tree.children.len(), 3);
    let child_events: u64 = tree.children.iter().map(|c| c.events).sum();
    assert_eq!(tree.events, child_events);
    assert!(tree.events > 0, "replications processed no events");
    let json = ckptsim::obs::spans_json(std::slice::from_ref(&tree));
    assert!(
        json.contains("\"kind\":\"experiment\""),
        "bad spans json: {json}"
    );
    assert!(
        json.contains("\"kind\":\"replication\""),
        "bad spans json: {json}"
    );
}
