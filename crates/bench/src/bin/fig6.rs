//! Regenerates Figure 6 of the paper. Flags: see `ckpt_bench::args`.

fn main() {
    let opts = ckpt_bench::RunOptions::from_env();
    ckpt_bench::figure_main("fig6", ckpt_bench::figures::fig6(), &opts);
}
