//! Extension experiment: spatially correlated compute/I-O co-failures.
//!
//! The paper models temporal correlation only ("We consider temporal
//! correlations in our model, but not spatial correlations"). This
//! extension quantifies what spatial correlation would do: when a
//! compute-node failure also takes down its I/O node (shared rack/power
//! domain) with probability `p`, the buffered checkpoint dies exactly
//! when the rollback needs it, forcing a stage-1 read of the older
//! file-system copy.

use ckpt_bench::figures::FigureSpec;
use ckpt_bench::sweep::{Cell, Metric};
use ckpt_core::SystemConfig;
use ckpt_des::SimTime;

fn main() {
    let opts = ckpt_bench::RunOptions::from_env();
    let (labels, cells) = spec();
    ckpt_bench::figure_main(
        "ext_spatial",
        FigureSpec {
            title: "Extension: spatially correlated compute/I-O co-failures \
                    (interval 30 min, MTTR 10 min)"
                .into(),
            x_name: "p_spatial".into(),
            metric: Metric::UsefulWorkFraction,
            labels,
            cells,
        },
        &opts,
    );
}

fn spec() -> (Vec<String>, Vec<Cell>) {
    let probs = [0.0, 0.1, 0.25, 0.5, 0.75, 1.0];
    let mut labels = Vec::new();
    let mut cells = Vec::new();
    for (s, (procs, mttf)) in [(65_536u64, 1.0), (262_144, 1.0), (262_144, 0.5)]
        .into_iter()
        .enumerate()
    {
        labels.push(format!("procs={procs}, MTTF={mttf}y"));
        for &p in &probs {
            cells.push(Cell {
                series: s,
                x: p,
                config: SystemConfig::builder()
                    .processors(procs)
                    .mttf_per_node(SimTime::from_years(mttf))
                    .spatial_correlation(if p > 0.0 { Some(p) } else { None })
                    .build()
                    .expect("valid ext_spatial config"),
            });
        }
    }
    (labels, cells)
}
