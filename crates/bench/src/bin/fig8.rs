//! Regenerates Figure 8 of the paper. Flags: see `ckpt_bench::args`.

fn main() {
    let opts = ckpt_bench::RunOptions::from_env();
    ckpt_bench::figure_main("fig8", ckpt_bench::figures::fig8(), &opts);
}
