//! Measures the parallel replication engine: one full-size Figure 4
//! point (65536 processors, paper defaults) run with `--jobs 1` and
//! `--jobs 4`, written to `BENCH_parallel.json`.
//!
//! The two runs must produce byte-identical metrics — replication `k`
//! always draws from seed `base_seed + k` — so the only thing allowed
//! to differ is wall time. Speedup is bounded by the host's core
//! count, which is recorded alongside the measurements.
//!
//! Flags: see `ckpt_bench::args` (`--quick` shrinks the horizon for a
//! smoke run; `--seed`, `--hours`, `--transient` carry through).

use ckpt_bench::RunOptions;
use ckpt_core::{Estimate, Experiment, SystemConfig};
use std::time::Instant;

const REPLICATIONS: u32 = 4;

fn run_point(cfg: &SystemConfig, opts: &RunOptions, jobs: usize) -> (Estimate, f64) {
    let start = Instant::now();
    let est = Experiment::new(cfg.clone())
        .engine(opts.engine)
        .transient(opts.transient)
        .horizon(opts.horizon)
        .replications(REPLICATIONS)
        .seed(opts.seed)
        .jobs(jobs)
        .run()
        .expect("benchmark point failed to run");
    (est, start.elapsed().as_secs_f64())
}

fn main() {
    let opts = RunOptions::from_env();
    // The Figure 4 reference point: 65536 processors at Table 3 defaults
    // (MTTF 1 yr/node, MTTR 10 min, checkpoint interval 30 min).
    let cfg = SystemConfig::builder()
        .processors(65_536)
        .build()
        .expect("valid benchmark config");
    let host = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    let mut runs = String::new();
    let mut baseline: Option<(Estimate, f64)> = None;
    let mut identical = true;
    let mut wall_by_jobs = Vec::new();
    for jobs in [1usize, 4] {
        let (est, wall) = run_point(&cfg, &opts, jobs);
        eprintln!(
            "jobs={jobs}: {wall:.2} s wall, {:.0} events/s per worker",
            est.events_per_sec()
        );
        if let Some((ref base, _)) = baseline {
            identical &= base
                .replicates()
                .iter()
                .zip(est.replicates())
                .all(|(a, b)| a.useful_work_secs == b.useful_work_secs);
        }
        if !runs.is_empty() {
            runs.push(',');
        }
        runs.push_str(&format!(
            "\n    {{\"jobs\": {jobs}, \"wall_secs\": {wall:.3}, \
             \"events_per_sec_per_worker\": {:.0}}}",
            est.events_per_sec()
        ));
        wall_by_jobs.push(wall);
        if baseline.is_none() {
            baseline = Some((est, wall));
        }
    }
    assert!(identical, "jobs=1 and jobs=4 metrics diverged");

    let speedup = wall_by_jobs[0] / wall_by_jobs[1].max(1e-9);
    let json = format!(
        "{{\n  \"benchmark\": \"fig4 point, 65536 processors, Table 3 defaults\",\n  \
         \"engine\": \"{:?}\",\n  \
         \"replications\": {REPLICATIONS},\n  \
         \"transient_hours\": {:.0},\n  \
         \"horizon_hours\": {:.0},\n  \
         \"seed\": {},\n  \
         \"host_parallelism\": {host},\n  \
         \"runs\": [{runs}\n  ],\n  \
         \"speedup_jobs4_vs_jobs1\": {speedup:.2},\n  \
         \"identical_results\": {identical},\n  \
         \"note\": \"speedup is bounded by host_parallelism; replication k always \
         draws from seed + k, so all runs return identical metrics\"\n}}\n",
        opts.engine,
        opts.transient.as_hours(),
        opts.horizon.as_hours(),
        opts.seed,
    );
    std::fs::write("BENCH_parallel.json", &json).expect("write BENCH_parallel.json");
    println!("{json}");
}
