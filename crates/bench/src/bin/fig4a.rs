//! Regenerates Figure 4a of the paper. Flags: see `ckpt_bench::args`.

fn main() {
    let opts = ckpt_bench::RunOptions::from_env();
    ckpt_bench::figure_main("fig4a", ckpt_bench::figures::fig4a(), &opts);
}
