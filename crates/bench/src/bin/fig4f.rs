//! Regenerates Figure 4f of the paper. Flags: see `ckpt_bench::args`.

fn main() {
    let opts = ckpt_bench::RunOptions::from_env();
    ckpt_bench::figure_main("fig4f", ckpt_bench::figures::fig4f(), &opts);
}
