//! Runs every figure of the paper and writes one CSV per figure into
//! `results/`, plus a `.manifest.json` with the run's provenance
//! (version, engine, seeds, host parallelism, wall time), printing a
//! one-line summary per figure. This is the one-shot command behind
//! EXPERIMENTS.md.

use ckpt_bench::sweep::Metric;
use ckpt_bench::{figures, run_sweep, svg, sweep_manifest_json, table, RunOptions};
use std::fs;
use std::time::Instant;

fn main() {
    let opts = RunOptions::from_env();
    let out_dir = std::path::Path::new("results");
    fs::create_dir_all(out_dir).expect("create results dir");

    for (id, spec) in figures::all_figures() {
        let started = Instant::now();
        let cell_count = spec.cells.len();
        let series = run_sweep(&spec.labels, spec.cells, spec.metric, &opts);
        let csv = table::to_csv(&spec.x_name, &series);
        fs::write(out_dir.join(format!("{id}.csv")), &csv).expect("write figure csv");
        let manifest = sweep_manifest_json(id, cell_count, &opts, started.elapsed().as_secs_f64());
        fs::write(out_dir.join(format!("{id}.manifest.json")), &manifest)
            .expect("write figure manifest");
        let y_name = match spec.metric {
            Metric::UsefulWorkFraction => "useful work fraction",
            Metric::TotalUsefulWork => "total useful work (job units)",
        };
        let x_scale = if spec.x_name.contains("processors") || spec.x_name == "nodes" {
            svg::XScale::Log2
        } else {
            svg::XScale::Linear
        };
        let chart = svg::render(&spec.title, &spec.x_name, y_name, &series, x_scale);
        let path = out_dir.join(format!("{id}.svg"));
        fs::write(&path, &chart).expect("write figure svg");
        println!(
            "{id}: {} series × {} points → results/{id}.csv + .svg ({:.1}s)",
            series.len(),
            series.first().map_or(0, |s| s.points.len()),
            started.elapsed().as_secs_f64()
        );
    }
    println!("done; open results/*.svg or plot results/*.csv");
}
