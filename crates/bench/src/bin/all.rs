//! Runs every figure of the paper and writes one CSV per figure into
//! `results/`, plus a `.manifest.json` with the run's provenance
//! (version, engine, seeds, host parallelism, wall time), printing a
//! one-line summary per figure. This is the one-shot command behind
//! EXPERIMENTS.md.

use ckpt_bench::sweep::Metric;
use ckpt_bench::{figures, run_sweep, svg, sweep_manifest_json, table, RunOptions};
use ckpt_harness::CkptError;
use std::fs;
use std::process::exit;
use std::time::Instant;

fn fail(e: &CkptError) -> ! {
    eprintln!("error: {e}");
    exit(e.exit_code());
}

fn write_or_fail(path: &std::path::Path, contents: &str) {
    if let Err(e) = fs::write(path, contents) {
        fail(&CkptError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        });
    }
}

fn main() {
    let opts = RunOptions::from_env();
    if opts.exec.journaling() {
        // One journal cannot span figures (cell indices collide); point
        // users at the per-figure binaries, which support both flags.
        fail(&CkptError::Usage(
            "--snapshot/--resume are per-figure; use the individual figure \
             binaries (e.g. fig4a) or 'ckptsim figure <id>'"
                .into(),
        ));
    }
    let out_dir = std::path::Path::new("results");
    if let Err(e) = fs::create_dir_all(out_dir) {
        fail(&CkptError::Io {
            path: out_dir.display().to_string(),
            message: e.to_string(),
        });
    }

    for (id, spec) in figures::all_figures() {
        let started = Instant::now();
        let cell_count = spec.cells.len();
        let series = match run_sweep(&spec.labels, spec.cells, spec.metric, &opts) {
            Ok(series) => series,
            Err(e) => fail(&e),
        };
        let csv = table::to_csv(&spec.x_name, &series);
        write_or_fail(&out_dir.join(format!("{id}.csv")), &csv);
        let manifest = sweep_manifest_json(id, cell_count, &opts, started.elapsed().as_secs_f64());
        write_or_fail(&out_dir.join(format!("{id}.manifest.json")), &manifest);
        let y_name = match spec.metric {
            Metric::UsefulWorkFraction => "useful work fraction",
            Metric::TotalUsefulWork => "total useful work (job units)",
        };
        let x_scale = if spec.x_name.contains("processors") || spec.x_name == "nodes" {
            svg::XScale::Log2
        } else {
            svg::XScale::Linear
        };
        let chart = svg::render(&spec.title, &spec.x_name, y_name, &series, x_scale);
        let path = out_dir.join(format!("{id}.svg"));
        fs::write(&path, &chart).expect("write figure svg");
        println!(
            "{id}: {} series × {} points → results/{id}.csv + .svg ({:.1}s)",
            series.len(),
            series.first().map_or(0, |s| s.points.len()),
            started.elapsed().as_secs_f64()
        );
    }
    println!("done; open results/*.svg or plot results/*.csv");
}
