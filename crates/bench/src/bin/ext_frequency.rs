//! Extension experiment: coordination effect vs checkpoint frequency
//! (one of the paper's "figures not shown here").

fn main() {
    let opts = ckpt_bench::RunOptions::from_env();
    ckpt_bench::figure_main("ext_frequency", ckpt_bench::figures::ext_frequency(), &opts);
}
