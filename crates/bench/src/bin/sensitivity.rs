//! Sensitivity analysis: numerical elasticities of the useful-work
//! fraction with respect to every major model parameter, at the paper's
//! base point.
//!
//! For each parameter `p` the harness perturbs the configuration by ±20 %
//! and reports the elasticity `(Δf/f) / (Δp/p)` — which knobs actually
//! move the answer. The ranking reproduces the paper's qualitative
//! sensitivity story: MTTF dominates, MTTR and the interval matter,
//! coordination overheads barely register at the base point.

use ckpt_bench::{experiment_spec, RunOptions};
use ckpt_core::config::SystemConfigBuilder;
use ckpt_core::{EngineKind, SystemConfig};
use ckpt_des::SimTime;

struct Knob {
    name: &'static str,
    apply: fn(SystemConfigBuilder, f64) -> SystemConfigBuilder,
    base: f64,
}

fn fraction(cfg: SystemConfig, opts: &RunOptions) -> f64 {
    experiment_spec(cfg, EngineKind::Direct, opts)
        .expect("valid sensitivity spec")
        .to_experiment()
        .run()
        .expect("direct engine cannot fail")
        .useful_work_fraction()
        .mean
}

fn main() {
    let opts = RunOptions::from_env();
    let knobs: Vec<Knob> = vec![
        Knob {
            name: "MTTF per node (yr)",
            apply: |b, v| b.mttf_per_node(SimTime::from_years(v)),
            base: 1.0,
        },
        Knob {
            name: "MTTR (min)",
            apply: |b, v| b.mttr_system(SimTime::from_mins(v)),
            base: 10.0,
        },
        Knob {
            name: "checkpoint interval (min)",
            apply: |b, v| b.checkpoint_interval(SimTime::from_mins(v)),
            base: 30.0,
        },
        Knob {
            name: "MTTQ (s)",
            apply: |b, v| b.mttq(SimTime::from_secs(v)),
            base: 10.0,
        },
        Knob {
            name: "checkpoint size (MB/node)",
            apply: SystemConfigBuilder::checkpoint_size_per_node_mb,
            base: 256.0,
        },
        Knob {
            name: "compute-I/O bandwidth (MB/s)",
            apply: SystemConfigBuilder::compute_io_bandwidth_mbps,
            base: 350.0,
        },
        Knob {
            name: "FS bandwidth (MB/s)",
            apply: SystemConfigBuilder::fs_bandwidth_per_io_mbps,
            base: 125.0,
        },
        Knob {
            name: "reboot time (h)",
            apply: |b, v| b.reboot_time(SimTime::from_hours(v)),
            base: 1.0,
        },
    ];

    let base_cfg = SystemConfig::builder().build().unwrap();
    let f0 = fraction(base_cfg, &opts);
    println!("Sensitivity at the base point (64K procs, MTTF 1 y): f = {f0:.4}\n");
    if opts.csv {
        println!("parameter,f_minus20,f_plus20,elasticity");
    } else {
        println!(
            "{:<30} {:>10} {:>10} {:>12}",
            "parameter", "f(-20%)", "f(+20%)", "elasticity"
        );
    }

    let mut rows = Vec::new();
    for knob in &knobs {
        let lo = fraction(
            (knob.apply)(SystemConfig::builder(), knob.base * 0.8)
                .build()
                .unwrap(),
            &opts,
        );
        let hi = fraction(
            (knob.apply)(SystemConfig::builder(), knob.base * 1.2)
                .build()
                .unwrap(),
            &opts,
        );
        // Central-difference elasticity.
        let elasticity = ((hi - lo) / f0) / 0.4;
        rows.push((knob.name, lo, hi, elasticity));
    }
    rows.sort_by(|a, b| {
        b.3.abs()
            .partial_cmp(&a.3.abs())
            .expect("elasticities are finite")
    });
    for (name, lo, hi, e) in rows {
        if opts.csv {
            println!("{name},{lo:.6},{hi:.6},{e:.4}");
        } else {
            println!("{name:<30} {lo:>10.4} {hi:>10.4} {e:>+12.4}");
        }
    }
}
