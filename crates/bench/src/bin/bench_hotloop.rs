//! The hot-loop benchmark behind `BENCH_hotloop.json`: before/after
//! events/sec for the profile-guided kernel optimizations on the
//! Figure 4 reference point (65536 processors, Table 3 defaults).
//!
//! Baseline legs, all on the incremental scheduler's workload:
//!
//! 1. `incremental_inverse_cdf` — the default configuration (eager
//!    `Resample` reactivation, indexed binary heap). Bit-identical to
//!    the pre-optimization RNG stream by construction.
//! 2. `full_scan_inverse_cdf` — the O(A) reference scheduler on the
//!    same stream; its metrics are asserted bit-identical to leg 1
//!    (the benchmark doubles as an equivalence check).
//! 3. `incremental_ziggurat` — leg 1 with the ziggurat exponential
//!    sampler. Distribution-equivalent, not stream-identical; validated
//!    separately by the KS/moment tests in `ckpt-stats` and the
//!    figure-level CI-overlap test in `ckpt-core`.
//!
//! Then the execution-mode matrix (reactivation × queue backend):
//!
//! * `resample_calendar` — the oracle sampling mode on the calendar
//!   queue; metrics asserted **bit-identical** to leg 1 (the calendar
//!   pops the heap's exact (time, FIFO) order).
//! * `lazy_heap` / `lazy_calendar` — lazy reactivation (memoryless
//!   exponential timers survive marking changes without a redraw);
//!   distribution-equivalent to the oracle with a shorter RNG stream,
//!   and asserted bit-identical *across queue backends*.
//! * `lazy_ziggurat_calendar` — the headline: every opt-in fast path
//!   at once, targeting <100 ns/event on this workload.
//!
//! The `gate_*_quick` legs run the `--quick` workload once per mode
//! combination; `scripts/bench_gate.sh` compares fresh `--quick`
//! measurements against the committed values and fails CI on a >15 %
//! events/sec regression in any mode.
//!
//! Extra flags on top of `ckpt_bench::args`:
//!
//! * `--pr4-baseline-eps N` — the pre-optimization incremental
//!   events/sec (from the previous PR's `BENCH_engines.json`, same
//!   workload, same host) used for the before/after speedups.
//!
//! Phase attribution lives in the separate `BENCH_phases.json` artifact
//! (written by a `--features prof` build of `bench_engines --phases`;
//! profiled builds inflate wall time, so phases and headline numbers
//! come from separate builds). This file only *references* it via
//! `phases_file` — earlier revisions embedded a copy, which let the two
//! drift apart.

use ckpt_bench::RunOptions;
use ckpt_core::san_model::{CheckpointSan, RunOptions as SanRunOptions};
use ckpt_core::{Metrics, QueueKind, ReactivationMode, SystemConfig};
use ckpt_des::{Sampling, SimTime};
use ckpt_san::Scheduling;
use std::time::Instant;

/// Incremental events/sec on this workload at the previous PR's tip
/// (BENCH_engines.json, fig4 65536 processors, same container class).
const DEFAULT_PR4_BASELINE_EPS: f64 = 3_965_698.0;

#[derive(Clone, Copy)]
struct Mode {
    scheduling: Scheduling,
    sampling: Sampling,
    reactivation: ReactivationMode,
    queue: QueueKind,
}

impl Mode {
    fn default_path() -> Mode {
        Mode {
            scheduling: Scheduling::Incremental,
            sampling: Sampling::InverseCdf,
            reactivation: ReactivationMode::Resample,
            queue: QueueKind::IndexedHeap,
        }
    }
}

struct Leg {
    name: &'static str,
    mode: Mode,
    metrics: Vec<Metrics>,
    rep_eps: Vec<f64>,
    wall_secs: f64,
    events: u64,
}

impl Leg {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_secs.max(1e-9)
    }

    fn ns_per_event(&self) -> f64 {
        self.wall_secs * 1e9 / (self.events.max(1)) as f64
    }
}

fn run_leg(model: &CheckpointSan, opts: &RunOptions, mode: Mode, name: &'static str) -> Leg {
    let run_opts = |seed: u64| SanRunOptions {
        seed,
        transient: opts.transient,
        horizon: opts.horizon,
        scheduling: mode.scheduling,
        sampling: mode.sampling,
        reactivation: mode.reactivation,
        queue: mode.queue,
    };
    for w in 0..u64::from(opts.warmup) {
        model
            .run(&run_opts(opts.seed + w))
            .expect("warm-up replication failed");
    }
    let mut metrics = Vec::with_capacity(opts.reps as usize);
    let mut rep_eps = Vec::with_capacity(opts.reps as usize);
    let mut events = 0u64;
    let start = Instant::now();
    for k in 0..u64::from(opts.reps) {
        let rep_start = Instant::now();
        let outcome = model
            .run(&run_opts(opts.seed + k))
            .expect("benchmark replication failed");
        let secs = rep_start.elapsed().as_secs_f64();
        rep_eps.push(outcome.events as f64 / secs.max(1e-9));
        metrics.push(outcome.metrics);
        events += outcome.events;
    }
    Leg {
        name,
        mode,
        metrics,
        rep_eps,
        wall_secs: start.elapsed().as_secs_f64(),
        events,
    }
}

fn leg_json(leg: &Leg) -> String {
    let reps = leg
        .rep_eps
        .iter()
        .map(|e| format!("{e:.0}"))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "\n    {{\"leg\": \"{}\", \"reactivation\": \"{}\", \"queue\": \"{}\", \
         \"wall_secs\": {:.3}, \"events\": {}, \
         \"events_per_sec\": {:.0}, \"ns_per_event\": {:.1}, \
         \"rep_events_per_sec\": [{reps}]}}",
        leg.name,
        leg.mode.reactivation.name(),
        leg.mode.queue.name(),
        leg.wall_secs,
        leg.events,
        leg.events_per_sec(),
        leg.ns_per_event(),
    )
}

fn gate_json(leg: &Leg) -> String {
    format!(
        "\n    {{\"leg\": \"{}\", \"reactivation\": \"{}\", \"queue\": \"{}\", \
         \"events_per_sec\": {:.0}, \"ns_per_event\": {:.1}, \
         \"max_regression_pct\": 15}}",
        leg.name,
        leg.mode.reactivation.name(),
        leg.mode.queue.name(),
        leg.events_per_sec(),
        leg.ns_per_event(),
    )
}

fn main() {
    let mut pr4_baseline_eps = DEFAULT_PR4_BASELINE_EPS;
    let mut rest = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--pr4-baseline-eps" {
            pr4_baseline_eps = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("--pr4-baseline-eps expects a number (events/sec)");
                std::process::exit(2);
            });
        } else {
            rest.push(arg);
        }
    }
    let opts = match RunOptions::parse(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let cfg = SystemConfig::builder()
        .processors(65_536)
        .build()
        .expect("valid benchmark config");
    let model = CheckpointSan::build(&cfg).expect("model builds");
    let host = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    let base = Mode::default_path();
    let inv = run_leg(&model, &opts, base, "incremental_inverse_cdf");
    let full = run_leg(
        &model,
        &opts,
        Mode {
            scheduling: Scheduling::FullScan,
            ..base
        },
        "full_scan_inverse_cdf",
    );
    let zig = run_leg(
        &model,
        &opts,
        Mode {
            sampling: Sampling::Ziggurat,
            ..base
        },
        "incremental_ziggurat",
    );
    assert_eq!(
        inv.metrics, full.metrics,
        "schedulers diverged on the inverse-CDF stream — bit-identity broken"
    );

    // The execution-mode matrix. `resample_calendar` runs the pinned
    // oracle sampling mode on the calendar backend and must reproduce
    // the heap's metrics bit for bit; the two lazy legs must agree
    // with each other for the same reason.
    let res_cal = run_leg(
        &model,
        &opts,
        Mode {
            queue: QueueKind::Calendar,
            ..base
        },
        "resample_calendar",
    );
    assert_eq!(
        inv.metrics, res_cal.metrics,
        "calendar queue diverged from the heap on the oracle mode — bit-identity broken"
    );
    let lazy_heap = run_leg(
        &model,
        &opts,
        Mode {
            reactivation: ReactivationMode::Lazy,
            ..base
        },
        "lazy_heap",
    );
    let lazy_cal = run_leg(
        &model,
        &opts,
        Mode {
            reactivation: ReactivationMode::Lazy,
            queue: QueueKind::Calendar,
            ..base
        },
        "lazy_calendar",
    );
    assert_eq!(
        lazy_heap.metrics, lazy_cal.metrics,
        "calendar queue diverged from the heap under lazy reactivation — bit-identity broken"
    );
    let headline = run_leg(
        &model,
        &opts,
        Mode {
            sampling: Sampling::Ziggurat,
            reactivation: ReactivationMode::Lazy,
            queue: QueueKind::Calendar,
            ..base
        },
        "lazy_ziggurat_calendar",
    );

    // Gate references: the fast smoke workload bench_gate.sh re-measures
    // on every PR, once per mode combination CI exercises.
    let quick_opts = RunOptions {
        reps: 2,
        horizon: SimTime::from_hours(2_000.0),
        transient: SimTime::from_hours(200.0),
        warmup: 1,
        ..opts.clone()
    };
    let gate = run_leg(&model, &quick_opts, base, "gate_reference_quick");
    let gate_modes = [
        run_leg(
            &model,
            &quick_opts,
            Mode {
                queue: QueueKind::Calendar,
                ..base
            },
            "gate_resample_calendar_quick",
        ),
        run_leg(
            &model,
            &quick_opts,
            Mode {
                reactivation: ReactivationMode::Lazy,
                ..base
            },
            "gate_lazy_heap_quick",
        ),
        run_leg(
            &model,
            &quick_opts,
            Mode {
                reactivation: ReactivationMode::Lazy,
                queue: QueueKind::Calendar,
                ..base
            },
            "gate_lazy_calendar_quick",
        ),
    ];

    let mut all: Vec<&Leg> = vec![
        &inv, &full, &zig, &res_cal, &lazy_heap, &lazy_cal, &headline, &gate,
    ];
    all.extend(gate_modes.iter());
    for leg in &all {
        eprintln!(
            "{}: {:.2} s wall, {:.0} events/s, {:.1} ns/event",
            leg.name,
            leg.wall_secs,
            leg.events_per_sec(),
            leg.ns_per_event()
        );
    }

    let legs = [
        &inv, &full, &zig, &res_cal, &lazy_heap, &lazy_cal, &headline,
    ]
    .into_iter()
    .map(leg_json)
    .collect::<Vec<_>>()
    .join(",");
    let gates = gate_modes
        .iter()
        .map(gate_json)
        .collect::<Vec<_>>()
        .join(",");
    let json = format!(
        "{{\n  \"benchmark\": \"hot-loop kernels, fig4 point (65536 processors, \
         Table 3 defaults)\",\n  \
         \"replications\": {},\n  \
         \"transient_hours\": {:.0},\n  \
         \"horizon_hours\": {:.0},\n  \
         \"seed\": {},\n  \
         \"warmup\": {},\n  \
         \"host_parallelism\": {host},\n  \
         \"legs\": [{legs}\n  ],\n  \
         \"pr4_baseline_events_per_sec\": {pr4_baseline_eps:.0},\n  \
         \"pr4_baseline_source\": \"previous PR's BENCH_engines.json, incremental \
         scheduler, same workload and host class\",\n  \
         \"speedup_inverse_cdf_vs_pr4\": {:.2},\n  \
         \"speedup_ziggurat_vs_pr4\": {:.2},\n  \
         \"speedup_ziggurat_vs_inverse_cdf\": {:.2},\n  \
         \"speedup_lazy_calendar_vs_default\": {:.2},\n  \
         \"speedup_headline_vs_default\": {:.2},\n  \
         \"headline_ns_per_event\": {:.1},\n  \
         \"identical_metrics_inverse_cdf\": true,\n  \
         \"identical_metrics_calendar_vs_heap\": true,\n  \
         \"gate\": {{\"leg\": \"gate_reference_quick\", \
         \"events_per_sec\": {:.0}, \"ns_per_event\": {:.1}, \
         \"max_regression_pct\": 15}},\n  \
         \"gate_modes\": [{gates}\n  ],\n  \
         \"note\": \"InverseCdf preserves the exact pre-optimization RNG stream \
         (metrics bit-identical across schedulers and queue backends, asserted); \
         Ziggurat and lazy reactivation are distribution-equivalent, validated by \
         KS/moment and CI-overlap tests\",\n  \
         \"phases_file\": \"BENCH_phases.json\"\n}}\n",
        opts.reps,
        opts.transient.as_hours(),
        opts.horizon.as_hours(),
        opts.seed,
        opts.warmup,
        inv.events_per_sec() / pr4_baseline_eps.max(1e-9),
        zig.events_per_sec() / pr4_baseline_eps.max(1e-9),
        zig.events_per_sec() / inv.events_per_sec().max(1e-9),
        lazy_cal.events_per_sec() / inv.events_per_sec().max(1e-9),
        headline.events_per_sec() / inv.events_per_sec().max(1e-9),
        headline.ns_per_event(),
        gate.events_per_sec(),
        gate.ns_per_event(),
    );
    std::fs::write("BENCH_hotloop.json", &json).expect("write BENCH_hotloop.json");
    println!("{json}");
}
