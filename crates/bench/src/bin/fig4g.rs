//! Regenerates Figure 4g (32 processors per node).

fn main() {
    let opts = ckpt_bench::RunOptions::from_env();
    ckpt_bench::figure_main("fig4g", ckpt_bench::figures::fig4gh(32), &opts);
}
