//! Extension experiment: coordination effect vs MTTQ (one of the paper's
//! "figures not shown here").

fn main() {
    let opts = ckpt_bench::RunOptions::from_env();
    let spec = ckpt_bench::figures::ext_mttq();
    let series = ckpt_bench::run_sweep(&spec.labels, spec.cells, spec.metric, &opts);
    ckpt_bench::table::emit(&spec.title, &spec.x_name, &series, opts.csv);
}
