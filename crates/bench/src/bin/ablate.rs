//! Ablation studies for the design choices called out in DESIGN.md §6:
//! background vs. blocking checkpoint writes, buffered-recovery fast
//! path, coordination models, and the recovery-time distribution.
//!
//! Each ablation runs the direct simulator (the SAN model implements the
//! paper's semantics only) on the base system at MTTF 3 y and reports
//! the useful work fraction.

use ckpt_bench::{experiment_spec, RunOptions};
use ckpt_core::config::{CoordinationMode, RecoveryTimeModel, SystemConfigBuilder};
use ckpt_core::{EngineKind, SystemConfig};
use ckpt_des::SimTime;

fn base() -> SystemConfigBuilder {
    SystemConfig::builder()
        .processors(65_536)
        .mttf_per_node(SimTime::from_years(3.0))
}

fn fraction(cfg: SystemConfig, opts: &RunOptions) -> (f64, f64) {
    let ci = experiment_spec(cfg, EngineKind::Direct, opts)
        .expect("valid ablation spec")
        .to_experiment()
        .run()
        .expect("direct engine cannot fail")
        .useful_work_fraction();
    (ci.mean, ci.half_width)
}

fn main() {
    let opts = RunOptions::from_env();
    println!("Ablation studies (64K procs, MTTF 3 yr/node, interval 30 min)");
    println!("==============================================================");

    let rows: Vec<(&str, SystemConfig)> = vec![
        (
            "paper defaults (background write, buffered)",
            base().build().unwrap(),
        ),
        (
            "blocking checkpoint FS write",
            base().background_checkpoint_write(false).build().unwrap(),
        ),
        (
            "no buffered-recovery fast path",
            base().buffered_recovery(false).build().unwrap(),
        ),
        (
            "coordination: fixed quiesce",
            base()
                .coordination(CoordinationMode::FixedQuiesce)
                .build()
                .unwrap(),
        ),
        (
            "coordination: system exponential",
            base()
                .coordination(CoordinationMode::SystemExponential)
                .build()
                .unwrap(),
        ),
        (
            "coordination: max-of-n",
            base()
                .coordination(CoordinationMode::MaxOfN)
                .build()
                .unwrap(),
        ),
        (
            "max-of-n + 100 s timeout",
            base()
                .coordination(CoordinationMode::MaxOfN)
                .timeout(Some(SimTime::from_secs(100.0)))
                .build()
                .unwrap(),
        ),
        (
            "max-of-n + 40 s timeout",
            base()
                .coordination(CoordinationMode::MaxOfN)
                .timeout(Some(SimTime::from_secs(40.0)))
                .build()
                .unwrap(),
        ),
        (
            "deterministic recovery time",
            base()
                .recovery_time_model(RecoveryTimeModel::Deterministic)
                .build()
                .unwrap(),
        ),
        (
            "exponential recovery time",
            base()
                .recovery_time_model(RecoveryTimeModel::Exponential)
                .build()
                .unwrap(),
        ),
        (
            "log-normal recovery (cv = 2)",
            base()
                .recovery_time_model(RecoveryTimeModel::LogNormal { cv: 2.0 })
                .build()
                .unwrap(),
        ),
        (
            "no I/O-node failures",
            base().model_io_failures(false).build().unwrap(),
        ),
        (
            "no master failures",
            base().model_master_failures(false).build().unwrap(),
        ),
        (
            "spatial co-failures (p = 0.5)",
            base().spatial_correlation(Some(0.5)).build().unwrap(),
        ),
        (
            "workload jitter (0.88-1.0)",
            base()
                .compute_fraction_jitter(Some((0.88, 1.0)))
                .build()
                .unwrap(),
        ),
    ];

    if opts.csv {
        println!("ablation,useful_work_fraction,ci");
    }
    for (name, cfg) in rows {
        let (f, hw) = fraction(cfg, &opts);
        if opts.csv {
            println!("{name},{f:.6},{hw:.6}");
        } else {
            println!("{name:<42} {f:.4} ±{hw:.4}");
        }
    }
}
