//! Regenerates Figure 4h (16 processors per node).

fn main() {
    let opts = ckpt_bench::RunOptions::from_env();
    let spec = ckpt_bench::figures::fig4gh(16);
    let series = ckpt_bench::run_sweep(&spec.labels, spec.cells, spec.metric, &opts);
    ckpt_bench::table::emit(&spec.title, &spec.x_name, &series, opts.csv);
}
