//! Regenerates Figure 4h (16 processors per node).

fn main() {
    let opts = ckpt_bench::RunOptions::from_env();
    ckpt_bench::figure_main("fig4h", ckpt_bench::figures::fig4gh(16), &opts);
}
