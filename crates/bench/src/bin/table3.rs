//! Regenerates Table 3 of the paper: the model parameters, as encoded in
//! `SystemConfig::default()` plus the derived quantities both simulators
//! use.

use ckpt_core::SystemConfig;

fn main() {
    let c = SystemConfig::builder().build().expect("default config");
    println!("Table 3: Model Parameters (defaults; paper ranges in brackets)");
    println!("===============================================================");
    let rows: Vec<(&str, String, &str)> = vec![
        (
            "Checkpoint interval",
            format!("{} min", c.checkpoint_interval().as_mins()),
            "[15 min – 4 hr]",
        ),
        (
            "MTTF per node",
            format!("{:.2} yr", c.mttf_per_node().as_years()),
            "[1 – 25 yr]",
        ),
        (
            "MTTR (compute nodes)",
            format!("{} min", c.mttr_system().as_mins()),
            "10 min",
        ),
        (
            "MTTR of IO nodes",
            format!("{} min", c.mttr_io().as_mins()),
            "1 min",
        ),
        (
            "Compute processors",
            format!("{}", c.processors()),
            "[8K – 256K]",
        ),
        (
            "Processors per node",
            format!("{}", c.procs_per_node()),
            "8 (16/32 in Fig. 4g/4h)",
        ),
        (
            "MTTQ (per node)",
            format!("{} s", c.mttq().as_secs()),
            "[0.5 – 10 s]",
        ),
        (
            "Broadcast + software overhead",
            format!("{} ms", c.quiesce_broadcast_latency().as_secs() * 1e3),
            "1 ms + 1 ms",
        ),
        (
            "I/O–compute cycle period",
            format!("{} min", c.app_cycle_period().as_mins()),
            "3 min",
        ),
        (
            "Fraction of computation",
            format!("{}", c.compute_fraction()),
            "[0.88 – 1.0]",
        ),
        (
            "Timeout value",
            c.timeout()
                .map_or("none".to_string(), |t| format!("{} s", t.as_secs())),
            "[20 s – 2 min]",
        ),
        (
            "System reboot time",
            format!("{} hr", c.reboot_time().as_hours()),
            "1 hr",
        ),
        ("Compute→I/O bandwidth", "350 MB/s".to_string(), "350 MBps"),
        ("Compute nodes per I/O node", format!("{}", 64), "64"),
        (
            "FS bandwidth per I/O node",
            "125 MB/s".to_string(),
            "1 Gbps",
        ),
        ("Checkpoint size per node", "256 MB".to_string(), "256 MB"),
        ("App I/O data per node", "10 MB".to_string(), "10 MB"),
    ];
    for (name, value, range) in rows {
        println!("{name:<32} {value:>14}   {range}");
    }
    println!();
    println!("Derived quantities");
    println!("------------------");
    println!("{:<32} {:>14}", "Compute nodes", c.node_count());
    println!("{:<32} {:>14}", "I/O nodes", c.io_node_count());
    println!(
        "{:<32} {:>13.1}s",
        "Checkpoint dump time",
        c.checkpoint_dump_time().as_secs()
    );
    println!(
        "{:<32} {:>13.1}s",
        "Checkpoint FS write time",
        c.checkpoint_fs_write_time().as_secs()
    );
    println!(
        "{:<32} {:>13.2}s",
        "App data write time",
        c.app_data_write_time().as_secs()
    );
    println!(
        "{:<32} {:>11.4}/h",
        "System failure rate",
        c.compute_failure_rate() * 3600.0
    );
}
