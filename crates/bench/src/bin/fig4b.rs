//! Regenerates Figure 4b of the paper. Flags: see `ckpt_bench::args`.

fn main() {
    let opts = ckpt_bench::RunOptions::from_env();
    ckpt_bench::figure_main("fig4b", ckpt_bench::figures::fig4b(), &opts);
}
