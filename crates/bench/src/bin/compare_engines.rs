//! Cross-validation report: the paper-faithful SAN engine and the
//! independent direct simulator, side by side over a spread of
//! configurations. The integration tests enforce agreement; this binary
//! makes it visible.

use ckpt_bench::{experiment_spec, RunOptions};
use ckpt_core::config::{CoordinationMode, ErrorPropagation, GenericCorrelated};
use ckpt_core::{EngineKind, SystemConfig};
use ckpt_des::SimTime;

fn fraction(cfg: &SystemConfig, engine: EngineKind, opts: &RunOptions) -> (f64, f64) {
    let ci = experiment_spec(cfg.clone(), engine, opts)
        .expect("both engines support these configs")
        .to_experiment()
        .run()
        .expect("both engines support these configs")
        .useful_work_fraction();
    (ci.mean, ci.half_width)
}

fn main() {
    let opts = RunOptions::from_env();
    let configs: Vec<(&str, SystemConfig)> = vec![
        (
            "base model (64K, MTTF 1y)",
            SystemConfig::builder().build().unwrap(),
        ),
        (
            "small machine (8K, MTTF 3y)",
            SystemConfig::builder()
                .processors(8_192)
                .mttf_per_node(SimTime::from_years(3.0))
                .build()
                .unwrap(),
        ),
        (
            "large machine (256K, MTTF 3y)",
            SystemConfig::builder()
                .processors(262_144)
                .mttf_per_node(SimTime::from_years(3.0))
                .build()
                .unwrap(),
        ),
        (
            "max-of-n + 100s timeout",
            SystemConfig::builder()
                .mttf_per_node(SimTime::from_years(3.0))
                .coordination(CoordinationMode::MaxOfN)
                .timeout(Some(SimTime::from_secs(100.0)))
                .build()
                .unwrap(),
        ),
        (
            "error propagation (pe=0.15, r=800)",
            SystemConfig::builder()
                .mttf_per_node(SimTime::from_years(3.0))
                .error_propagation(Some(ErrorPropagation {
                    probability: 0.15,
                    factor: 800.0,
                    window: 180.0,
                }))
                .build()
                .unwrap(),
        ),
        (
            "generic correlation (α·r = 1)",
            SystemConfig::builder()
                .mttf_per_node(SimTime::from_years(3.0))
                .generic_correlated(Some(GenericCorrelated {
                    coefficient: 0.0025,
                    factor: 400.0,
                }))
                .build()
                .unwrap(),
        ),
        (
            "failure-free, deterministic",
            SystemConfig::builder()
                .failures_enabled(false)
                .compute_fraction(1.0)
                .build()
                .unwrap(),
        ),
    ];

    println!("Engine cross-validation (useful work fraction)");
    println!("==============================================");
    if opts.csv {
        println!("config,direct,direct_ci,san,san_ci,delta");
    } else {
        println!(
            "{:<36} {:>16} {:>16} {:>8}",
            "configuration", "direct", "SAN", "Δ"
        );
    }
    let mut worst: f64 = 0.0;
    for (name, cfg) in &configs {
        let (fd, hd) = fraction(cfg, EngineKind::Direct, &opts);
        let (fs, hs) = fraction(cfg, EngineKind::San, &opts);
        let delta = fd - fs;
        worst = worst.max(delta.abs());
        if opts.csv {
            println!("{name},{fd:.6},{hd:.6},{fs:.6},{hs:.6},{delta:+.6}");
        } else {
            println!("{name:<36} {fd:>8.4} ±{hd:<6.4} {fs:>8.4} ±{hs:<6.4} {delta:>+8.4}");
        }
    }
    println!("\nworst |Δ| = {worst:.4} (the integration tests enforce < 0.03–0.05)");
}
