//! Head-to-head of the SAN executor's two scheduling strategies — the
//! incremental place→activity dependency scheduler against the O(A)
//! full-scan reference — on the Figure 4 point (65536 processors,
//! Table 3 defaults). Written to `BENCH_engines.json`.
//!
//! The two schedulers consume the same RNG stream in the same order, so
//! every replication must return **bit-identical** metrics; the binary
//! asserts this (making it double as an equivalence smoke test — CI
//! runs it with `--quick`) and reports events/sec and ns/event for
//! each, with per-replication profiles recorded through the standard
//! [`RunManifest`] provenance machinery.
//!
//! Flags: see `ckpt_bench::args` (`--quick` shrinks the run for a smoke
//! pass; `--seed`, `--hours`, `--transient`, `--reps`, `--warmup` carry
//! through — warm-up replications run and are discarded before each
//! engine's timed loop, so cold-start effects stay out of the numbers).
//! Additionally `--baseline-eps <events/sec>` records a pre-PR full-scan
//! baseline measurement (produced by `scripts/bench_baseline.sh`, which
//! builds the parent commit in a throwaway worktree and runs the same
//! workload) so the emitted JSON carries the before/after comparison,
//! and `--phases` writes the per-engine hot-phase breakdown to
//! `BENCH_phases.json` (requires a build with `--features prof`; a
//! profiled build inflates wall time, so use `--phases` for *where the
//! time goes* and a plain build for the headline events/sec).
//! `--reactivation` and `--queue` select the execution modes under
//! test; the bit-identity assertion between the two schedulers holds
//! in every mode (lazy elides the same redraws on both paths, and the
//! calendar queue pops the heap's exact order).

use ckpt_bench::RunOptions;
use ckpt_core::san_model::{CheckpointSan, RunOptions as SanRunOptions};
use ckpt_core::{Metrics, SystemConfig};
use ckpt_des::prof::PhaseProfile;
use ckpt_obs::{phases_json, RunManifest, RunProfile};
use ckpt_san::Scheduling;
use std::time::Instant;

struct EngineRun {
    name: &'static str,
    metrics: Vec<Metrics>,
    profiles: Vec<RunProfile>,
    phases: PhaseProfile,
    wall_secs: f64,
    events: u64,
}

fn run_engine(
    model: &CheckpointSan,
    opts: &RunOptions,
    scheduling: Scheduling,
    name: &'static str,
) -> EngineRun {
    let run_opts = |seed: u64| SanRunOptions {
        seed,
        transient: opts.transient,
        horizon: opts.horizon,
        scheduling,
        reactivation: opts.exec.reactivation,
        queue: opts.exec.queue,
        ..SanRunOptions::default()
    };
    // Warm-up: same workload, results discarded, nothing timed yet.
    for w in 0..u64::from(opts.warmup) {
        model
            .run(&run_opts(opts.seed + w))
            .expect("warm-up replication failed");
    }
    let mut metrics = Vec::with_capacity(opts.reps as usize);
    let mut profiles = Vec::with_capacity(opts.reps as usize);
    let mut phases = PhaseProfile::default();
    let mut events = 0u64;
    let start = Instant::now();
    for k in 0..u64::from(opts.reps) {
        let rep_start = Instant::now();
        let outcome = model
            .run(&run_opts(opts.seed + k))
            .expect("benchmark replication failed");
        let (m, ev) = (outcome.metrics, outcome.events);
        profiles.push(RunProfile {
            wall_secs: rep_start.elapsed().as_secs_f64(),
            events: ev,
        });
        phases.merge(&outcome.phases);
        metrics.push(m);
        events += ev;
    }
    EngineRun {
        name,
        metrics,
        profiles,
        phases,
        wall_secs: start.elapsed().as_secs_f64(),
        events,
    }
}

fn main() {
    // Peel off the flag specific to this binary before handing the rest
    // to the shared option parser (which rejects unknown flags).
    let mut baseline_eps: Option<f64> = None;
    let mut emit_phases = false;
    let mut rest = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--baseline-eps" {
            let v = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("--baseline-eps expects a number (events/sec)");
                std::process::exit(2);
            });
            baseline_eps = Some(v);
        } else if arg == "--phases" {
            emit_phases = true;
        } else {
            rest.push(arg);
        }
    }
    if emit_phases && !ckpt_des::prof::ENABLED {
        eprintln!(
            "--phases needs the hot-phase profiler compiled in; rebuild with\n  \
             cargo run -p ckpt-bench --release --features prof --bin bench_engines -- --phases"
        );
        std::process::exit(2);
    }
    let opts = match RunOptions::parse(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    // The Figure 4 reference point: 65536 processors at Table 3 defaults.
    let cfg = SystemConfig::builder()
        .processors(65_536)
        .build()
        .expect("valid benchmark config");
    let model = CheckpointSan::build(&cfg).expect("model builds");
    let host = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    let full = run_engine(&model, &opts, Scheduling::FullScan, "full_scan");
    let inc = run_engine(&model, &opts, Scheduling::Incremental, "incremental");

    assert_eq!(
        full.events, inc.events,
        "schedulers processed different event counts"
    );
    let identical = full.metrics == inc.metrics;
    assert!(
        identical,
        "scheduler metrics diverged — bit-identity broken"
    );

    let mut runs = String::new();
    for r in [&full, &inc] {
        let events_per_sec = r.events as f64 / r.wall_secs.max(1e-9);
        let ns_per_event = r.wall_secs * 1e9 / (r.events.max(1)) as f64;
        eprintln!(
            "{}: {:.2} s wall, {:.0} events/s, {:.0} ns/event",
            r.name, r.wall_secs, events_per_sec, ns_per_event
        );
        let manifest = RunManifest {
            tool: "ckptsim".into(),
            version: env!("CARGO_PKG_VERSION").into(),
            engine: format!("san/{}", r.name),
            estimation: "replications".into(),
            base_seed: opts.seed,
            transient_hours: opts.transient.as_hours(),
            horizon_hours: opts.horizon.as_hours(),
            replications: opts.reps as usize,
            faults: 0,
            jobs: 1,
            host_parallelism: host,
            warmup: opts.warmup,
            policy: "fixed".into(),
            config: vec![("processors".into(), "65536".into())],
            profiles: r.profiles.clone(),
        };
        if !runs.is_empty() {
            runs.push(',');
        }
        // Indent the embedded manifest to keep the file readable.
        let manifest = manifest.to_json().trim_end().replace('\n', "\n      ");
        runs.push_str(&format!(
            "\n    {{\"scheduler\": \"{}\", \"wall_secs\": {:.3}, \
             \"events\": {}, \"events_per_sec\": {:.0}, \
             \"ns_per_event\": {:.1},\n      \"manifest\": {manifest}}}",
            r.name, r.wall_secs, r.events, events_per_sec, ns_per_event
        ));
    }

    let speedup = full.wall_secs / inc.wall_secs.max(1e-9);
    // The in-binary full scan is NOT the pre-PR baseline: it already
    // shares the slab queue, impulse map, and scratch buffers with the
    // incremental engine. The true "before" number comes from
    // scripts/bench_baseline.sh, which benchmarks the parent commit's
    // executor (HashSet-probed queue, per-firing allocations) on the
    // same workload and feeds it back via --baseline-eps.
    let baseline = baseline_eps.map_or(String::new(), |eps| {
        let inc_eps = inc.events as f64 / inc.wall_secs.max(1e-9);
        format!(
            "\n  \"pre_pr_baseline_events_per_sec\": {eps:.0},\n  \
             \"pre_pr_baseline_source\": \"scripts/bench_baseline.sh \
             (parent commit, same workload, same host)\",\n  \
             \"speedup_incremental_vs_pre_pr_baseline\": {:.2},",
            inc_eps / eps.max(1e-9)
        )
    });
    let json = format!(
        "{{\n  \"benchmark\": \"SAN scheduler comparison, fig4 point \
         (65536 processors, Table 3 defaults)\",\n  \
         \"replications\": {},\n  \
         \"transient_hours\": {:.0},\n  \
         \"horizon_hours\": {:.0},\n  \
         \"seed\": {},\n  \
         \"host_parallelism\": {host},\n  \
         \"telemetry_probes\": {},\n  \
         \"reactivation\": \"{}\",\n  \
         \"queue\": \"{}\",\n  \
         \"runs\": [{runs}\n  ],\n  \
         \"speedup_incremental_vs_full_scan\": {speedup:.2},{baseline}\n  \
         \"identical_results\": {identical},\n  \
         \"note\": \"both schedulers draw the same RNG stream in the same \
         order; metrics are asserted bit-identical, so only wall time may \
         differ\"\n}}\n",
        opts.reps,
        opts.transient.as_hours(),
        opts.horizon.as_hours(),
        opts.seed,
        ckpt_des::telem::ENABLED,
        opts.exec.reactivation.name(),
        opts.exec.queue.name(),
    );
    std::fs::write("BENCH_engines.json", &json).expect("write BENCH_engines.json");
    println!("{json}");

    if emit_phases {
        let mut out = String::from("[\n");
        for (i, r) in [&full, &inc].into_iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            let label = format!("fig4-65536-{}", r.name);
            out.push_str(phases_json(&label, &r.phases, r.wall_secs, r.events).trim_end());
        }
        out.push_str("\n]\n");
        std::fs::write("BENCH_phases.json", &out).expect("write BENCH_phases.json");
        eprintln!("phase breakdown written to BENCH_phases.json");
    }
}
