//! Regenerates Figure 4c of the paper. Flags: see `ckpt_bench::args`.

fn main() {
    let opts = ckpt_bench::RunOptions::from_env();
    ckpt_bench::figure_main("fig4c", ckpt_bench::figures::fig4c(), &opts);
}
