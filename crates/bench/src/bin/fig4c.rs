//! Regenerates Figure 4c of the paper. Flags: see `ckpt_bench::args`.

fn main() {
    let opts = ckpt_bench::RunOptions::from_env();
    let spec = ckpt_bench::figures::fig4c();
    let series = ckpt_bench::run_sweep(&spec.labels, spec.cells, spec.metric, &opts);
    ckpt_bench::table::emit(&spec.title, &spec.x_name, &series, opts.csv);
}
