//! Baseline comparison: the simulated useful-work fraction next to the
//! predictions of the analytic models the paper positions itself
//! against (Young 1974, Daly 2003/2006, Vaidya 1995), across the
//! checkpoint-interval axis.
//!
//! This is where the paper's disagreement with the closed forms becomes
//! visible: the analytic optimum interval falls below the practical
//! 15-minute floor, so within the studied range the simulated curve is
//! monotone.

use ckpt_analytic::{daly, vaidya, young};
use ckpt_bench::{experiment_spec, RunOptions};
use ckpt_core::{EngineKind, SystemConfig};
use ckpt_des::SimTime;

fn main() {
    let opts = RunOptions::from_env();
    let procs = 65_536u64;
    let base = SystemConfig::builder().processors(procs).build().unwrap();
    let mtbf = 1.0 / base.compute_failure_rate();
    let overhead = base.quiesce_broadcast_latency().as_secs()
        + base.mttq().as_secs()
        + base.checkpoint_dump_time().as_secs();
    let latency = overhead + base.checkpoint_fs_write_time().as_secs();
    let restart = base.mttr_system().as_secs();

    println!(
        "Baselines at {procs} processors (system MTBF {:.2} h)",
        mtbf / 3600.0
    );
    println!(
        "Analytic optimum intervals: Young {:.1} min, Daly {:.1} min, Vaidya {:.1} min",
        young::optimal_interval(overhead, mtbf) / 60.0,
        daly::optimal_interval(overhead, mtbf) / 60.0,
        vaidya::optimal_interval(overhead, mtbf) / 60.0,
    );
    println!();
    if opts.csv {
        println!("interval_mins,simulated,simulated_ci,young,daly,vaidya");
    } else {
        println!(
            "{:>14} {:>20} {:>10} {:>10} {:>10}",
            "interval (min)", "simulated", "Young", "Daly", "Vaidya"
        );
    }

    for mins in [15.0, 30.0, 60.0, 120.0, 240.0] {
        let tau = mins * 60.0;
        let cfg = SystemConfig::builder()
            .processors(procs)
            .checkpoint_interval(SimTime::from_mins(mins))
            .build()
            .unwrap();
        let ci = experiment_spec(cfg, EngineKind::Direct, &opts)
            .expect("valid baseline spec")
            .to_experiment()
            .run()
            .expect("direct engine cannot fail")
            .useful_work_fraction();
        let y = young::useful_work_fraction(tau, overhead, mtbf);
        let d = daly::useful_work_fraction(tau, overhead, restart, mtbf);
        let v = vaidya::useful_work_fraction(tau, overhead, latency, mtbf);
        if opts.csv {
            println!(
                "{mins},{:.6},{:.6},{y:.6},{d:.6},{v:.6}",
                ci.mean, ci.half_width
            );
        } else {
            println!(
                "{mins:>14} {:>12.4} ±{:<6.4} {y:>10.4} {d:>10.4} {v:>10.4}",
                ci.mean, ci.half_width
            );
        }
    }
}
