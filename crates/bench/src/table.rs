//! Output formatting: aligned text tables and CSV for the figure
//! binaries.

use crate::sweep::Series;
use std::fmt::Write as _;

/// Renders a figure's series as CSV: header `x,<label1>,<label1>_ci,...`
/// followed by one row per x value (series are joined on x order).
#[must_use]
pub fn to_csv(x_name: &str, series: &[Series]) -> String {
    let mut out = String::new();
    let mut header = vec![x_name.to_string()];
    for s in series {
        header.push(s.label.clone());
        header.push(format!("{}_ci", s.label));
    }
    let _ = writeln!(out, "{}", header.join(","));
    let rows = series.first().map_or(0, |s| s.points.len());
    for r in 0..rows {
        let mut row = vec![format!("{}", series[0].points[r].x)];
        for s in series {
            row.push(format!("{:.6}", s.points[r].y));
            row.push(format!("{:.6}", s.points[r].half_width));
        }
        let _ = writeln!(out, "{}", row.join(","));
    }
    out
}

/// Renders a figure's series as an aligned text table mirroring the
/// paper's figure layout (one column per curve).
#[must_use]
pub fn to_table(title: &str, x_name: &str, series: &[Series]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(out, "{}", "=".repeat(title.chars().count()));
    let mut widths = vec![x_name.chars().count().max(12)];
    for s in series {
        widths.push(s.label.chars().count().max(14));
    }
    let mut header = format!("{:>w$}", x_name, w = widths[0]);
    for (s, w) in series.iter().zip(widths.iter().skip(1)) {
        let _ = write!(header, "  {:>w$}", s.label, w = w);
    }
    let _ = writeln!(out, "{header}");
    let rows = series.first().map_or(0, |s| s.points.len());
    for r in 0..rows {
        let x = series[0].points[r].x;
        let x_str = if x.fract() == 0.0 && x.abs() < 1e15 {
            format!("{}", x as i64)
        } else {
            format!("{x:.3}")
        };
        let mut line = format!("{:>w$}", x_str, w = widths[0]);
        for (s, w) in series.iter().zip(widths.iter().skip(1)) {
            let cell = format!("{:.4} ±{:.4}", s.points[r].y, s.points[r].half_width);
            let _ = write!(line, "  {:>w$}", cell, w = w);
        }
        let _ = writeln!(out, "{line}");
    }
    out
}

/// Prints a figure in the format selected by `csv`, with a trailing
/// blank line.
pub fn emit(title: &str, x_name: &str, series: &[Series], csv: bool) {
    if csv {
        print!("{}", to_csv(x_name, series));
    } else {
        println!("{}", to_table(title, x_name, series));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::Point;

    fn sample() -> Vec<Series> {
        vec![
            Series {
                label: "MTTF=1".into(),
                points: vec![
                    Point {
                        x: 8192.0,
                        y: 0.5,
                        half_width: 0.01,
                    },
                    Point {
                        x: 16384.0,
                        y: 0.4,
                        half_width: 0.02,
                    },
                ],
            },
            Series {
                label: "MTTF=2".into(),
                points: vec![
                    Point {
                        x: 8192.0,
                        y: 0.6,
                        half_width: 0.01,
                    },
                    Point {
                        x: 16384.0,
                        y: 0.5,
                        half_width: 0.01,
                    },
                ],
            },
        ]
    }

    #[test]
    fn csv_shape() {
        let csv = to_csv("processors", &sample());
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "processors,MTTF=1,MTTF=1_ci,MTTF=2,MTTF=2_ci"
        );
        assert_eq!(
            lines.next().unwrap(),
            "8192,0.500000,0.010000,0.600000,0.010000"
        );
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn table_contains_all_labels_and_values() {
        let t = to_table("Figure 4a", "processors", &sample());
        assert!(t.contains("Figure 4a"));
        assert!(t.contains("MTTF=1"));
        assert!(t.contains("MTTF=2"));
        assert!(t.contains("8192"));
        assert!(t.contains("0.5000"));
        assert!(t.contains("±"));
    }

    #[test]
    fn empty_series_render() {
        assert_eq!(to_csv("x", &[]).lines().count(), 1);
        let t = to_table("t", "x", &[]);
        assert!(t.contains('t'));
    }
}
