//! Reference values published in the paper, used for paper-vs-measured
//! reporting (EXPERIMENTS.md) and for the shape checks in the
//! integration tests.
//!
//! Numbers quoted in the paper's prose are exact; per-curve values are
//! approximate digitizations of the printed figures and carry generous
//! tolerances. Absolute agreement is *not* expected — the substrate
//! differs — but the shapes (who wins, where optima sit, where the
//! cliffs are) must hold.

/// Exact statements from the paper's text (Section 7 / conclusions).
pub mod claims {
    /// Optimum processor count for MTTF 1 y/node, MTTR 10 min, 30-minute
    /// interval ("there is an optimum number of processors (128 K)").
    pub const FIG4A_OPTIMUM_PROCS_MTTF1Y: u64 = 131_072;

    /// Total useful work at that optimum ("the peak of total useful work
    /// is obtained with 128K processors, for which the useful work
    /// fraction is only about 56000/131072 = 42.7%").
    pub const FIG4A_PEAK_TOTAL_USEFUL_WORK: f64 = 56_000.0;

    /// Useful work fraction at the Figure-4a peak.
    pub const FIG4A_PEAK_FRACTION: f64 = 0.427;

    /// Figure 4f, MTTF 8 y: total useful work at 15 / 30 / 60-minute
    /// intervals (43000 → 40000 → 30000 job units).
    pub const FIG4F_MTTF8_BY_INTERVAL: [(f64, f64); 3] =
        [(15.0, 43_000.0), (30.0, 40_000.0), (60.0, 30_000.0)];

    /// The optimum moves from 128K to 64K processors when the MTTF
    /// halves from 1 y to 0.5 y (Figure 4a).
    pub const FIG4A_OPTIMUM_PROCS_MTTF_HALF_Y: u64 = 65_536;

    /// The optimum moves to 64K when the MTTR grows to 40 min (Fig. 4c).
    pub const FIG4C_OPTIMUM_PROCS_MTTR40: u64 = 65_536;

    /// The optimum moves to 64K when the interval grows to 60 min
    /// (Figure 4e).
    pub const FIG4E_OPTIMUM_PROCS_INT60: u64 = 65_536;

    /// Figure 6: timeouts at or above this value barely degrade the
    /// useful work fraction; below it the curves collapse.
    pub const FIG6_SAFE_TIMEOUT_SECS: f64 = 100.0;

    /// Figure 7: the useful work fraction stays within this band for all
    /// studied error-propagation settings (256K procs, MTTF 3 y).
    pub const FIG7_FRACTION_BAND: (f64, f64) = (0.51, 0.56);

    /// Figure 8: at 256K processors generic correlated failures
    /// (α·r = 1) cut the useful work fraction by about 0.24 (51 %).
    pub const FIG8_FRACTION_DROP_AT_256K: f64 = 0.24;

    /// Conclusion: with MTTF 1 y/node the useful work fraction never
    /// reaches 50 % — more than half the machine is overhead.
    pub const MTTF1Y_FRACTION_CEILING: f64 = 0.50;
}

/// Approximate digitization of Figure 4a's MTTF = 1 y curve
/// (processors → total useful work, job units).
pub const FIG4A_MTTF1Y_CURVE: [(u64, f64); 6] = [
    (8_192, 7_000.0),
    (16_384, 13_000.0),
    (32_768, 24_000.0),
    (65_536, 40_000.0),
    (131_072, 56_000.0),
    (262_144, 50_000.0),
];

/// Relative tolerance applied to digitized curve values when comparing
/// against measurements (the substrate is a reimplementation, not the
/// authors' Möbius install).
pub const CURVE_TOLERANCE: f64 = 0.35;

/// True if `measured` lies within [`CURVE_TOLERANCE`] of `reference`.
#[must_use]
pub fn close_to_reference(measured: f64, reference: f64) -> bool {
    if reference == 0.0 {
        return measured.abs() < 1e-9;
    }
    ((measured - reference) / reference).abs() <= CURVE_TOLERANCE
}

/// Returns the x value whose y is maximal in a curve (ties: first).
#[must_use]
pub fn argmax(points: &[(f64, f64)]) -> f64 {
    let mut best = (f64::NAN, f64::MIN);
    for &(x, y) in points {
        if y > best.1 {
            best = (x, y);
        }
    }
    best.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digitized_curve_peaks_at_the_claimed_optimum() {
        let pts: Vec<(f64, f64)> = FIG4A_MTTF1Y_CURVE
            .iter()
            .map(|&(x, y)| (x as f64, y))
            .collect();
        assert_eq!(argmax(&pts) as u64, claims::FIG4A_OPTIMUM_PROCS_MTTF1Y);
    }

    #[test]
    fn peak_fraction_is_consistent() {
        let frac = claims::FIG4A_PEAK_TOTAL_USEFUL_WORK / claims::FIG4A_OPTIMUM_PROCS_MTTF1Y as f64;
        assert!((frac - claims::FIG4A_PEAK_FRACTION).abs() < 0.01);
        assert!(frac < claims::MTTF1Y_FRACTION_CEILING);
    }

    #[test]
    fn tolerance_check() {
        assert!(close_to_reference(56_000.0, 56_000.0));
        assert!(close_to_reference(45_000.0, 56_000.0));
        assert!(!close_to_reference(20_000.0, 56_000.0));
        assert!(close_to_reference(0.0, 0.0));
    }
}
