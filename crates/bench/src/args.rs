//! Minimal command-line options shared by the figure binaries.

use ckpt_core::EngineKind;
use ckpt_des::SimTime;
use ckpt_harness::{CkptError, ExecFlags};
use std::fmt;

/// Options accepted by every figure binary.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Simulation engine.
    pub engine: EngineKind,
    /// Replications per point.
    pub reps: u32,
    /// Measurement horizon per replication.
    pub horizon: SimTime,
    /// Transient discard before measuring.
    pub transient: SimTime,
    /// Base RNG seed.
    pub seed: u64,
    /// Emit CSV instead of an aligned table.
    pub csv: bool,
    /// Smoke-test parameters (few short replications).
    pub quick: bool,
    /// Worker threads for sweep cells and replications (default: all
    /// available cores; 1 forces the sequential path).
    pub jobs: usize,
    /// Warm-up replications run and discarded before the measured ones
    /// (recorded in manifests; never changes sampling).
    pub warmup: u32,
    /// Write the merged model-event trace as JSON Lines to this path.
    pub trace: Option<String>,
    /// Write the metrics report (manifest + merged registry +
    /// per-replication registries) as JSON to this path.
    pub metrics: Option<String>,
    /// Write just the run manifest as JSON to this path.
    pub manifest: Option<String>,
    /// The shared execution-control switches
    /// (`--snapshot/--snapshot-every/--resume/--progress/--quiet/`
    /// `--reactivation/--queue`), parsed and validated by [`ExecFlags`]
    /// — one implementation for every command.
    pub exec: ExecFlags,
    /// Write the merged telemetry document (histograms + spans) as
    /// JSON to this path.
    pub histograms: Option<String>,
    /// Write the Prometheus text exposition to this path at exit.
    pub prom: Option<String>,
}

impl Default for RunOptions {
    fn default() -> RunOptions {
        RunOptions {
            engine: EngineKind::Direct,
            reps: 3,
            horizon: SimTime::from_hours(20_000.0),
            transient: SimTime::from_hours(1_000.0),
            seed: 0x5eed,
            csv: false,
            quick: false,
            jobs: default_jobs(),
            warmup: 0,
            trace: None,
            metrics: None,
            manifest: None,
            exec: ExecFlags::default(),
            histograms: None,
            prom: None,
        }
    }
}

/// Default worker count: available parallelism, 1 if unknown.
#[must_use]
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Error from option parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

impl RunOptions {
    /// Parses options from an argument iterator (without the program
    /// name). Unknown flags are rejected.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] on unknown flags or malformed values.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<RunOptions, ParseError> {
        let mut opts = RunOptions::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            let mut value_for = |name: &str| {
                it.next()
                    .ok_or_else(|| ParseError(format!("{name} expects a value")))
            };
            match arg.as_str() {
                "--engine" => {
                    let v = value_for("--engine")?;
                    opts.engine = match v.as_str() {
                        "direct" => EngineKind::Direct,
                        "san" => EngineKind::San,
                        other => {
                            return Err(ParseError(format!(
                                "unknown engine '{other}' (expected direct|san)"
                            )))
                        }
                    };
                }
                "--reps" => {
                    opts.reps = value_for("--reps")?
                        .parse()
                        .map_err(|e| ParseError(format!("--reps: {e}")))?;
                }
                "--hours" => {
                    let h: f64 = value_for("--hours")?
                        .parse()
                        .map_err(|e| ParseError(format!("--hours: {e}")))?;
                    opts.horizon = SimTime::from_hours(h);
                }
                "--transient" => {
                    let h: f64 = value_for("--transient")?
                        .parse()
                        .map_err(|e| ParseError(format!("--transient: {e}")))?;
                    opts.transient = SimTime::from_hours(h);
                }
                "--seed" => {
                    opts.seed = value_for("--seed")?
                        .parse()
                        .map_err(|e| ParseError(format!("--seed: {e}")))?;
                }
                "--jobs" => {
                    let n: usize = value_for("--jobs")?
                        .parse()
                        .map_err(|e| ParseError(format!("--jobs: {e}")))?;
                    opts.jobs = n.max(1);
                }
                "--warmup" => {
                    opts.warmup = value_for("--warmup")?
                        .parse()
                        .map_err(|e| ParseError(format!("--warmup: {e}")))?;
                }
                "--trace" => opts.trace = Some(value_for("--trace")?),
                "--metrics" => opts.metrics = Some(value_for("--metrics")?),
                "--manifest" => opts.manifest = Some(value_for("--manifest")?),
                "--histograms" => opts.histograms = Some(value_for("--histograms")?),
                "--prom" => opts.prom = Some(value_for("--prom")?),
                "--csv" => opts.csv = true,
                "--quick" => {
                    opts.quick = true;
                    opts.reps = 2;
                    opts.horizon = SimTime::from_hours(2_000.0);
                    opts.transient = SimTime::from_hours(200.0);
                }
                "--help" | "-h" => {
                    return Err(ParseError(
                        "usage: [--engine direct|san] [--reps N] [--hours H] \
                         [--transient H] [--seed S] [--jobs N] [--warmup N] [--csv] \
                         [--quick] [--trace FILE] [--metrics FILE] [--manifest FILE] \
                         [--quiet] [--snapshot FILE] [--snapshot-every N] [--resume FILE] \
                         [--progress FILE] [--histograms FILE] [--prom FILE] \
                         [--reactivation resample|lazy] [--queue heap|calendar]"
                            .to_string(),
                    ))
                }
                other => {
                    let consumed = opts
                        .exec
                        .accept(other, |name| value_for(name).map_err(|e| e.to_string()))
                        .map_err(ParseError)?;
                    if !consumed {
                        return Err(ParseError(format!("unknown flag '{other}'")));
                    }
                }
            }
        }
        Ok(opts)
    }

    /// Builds the progress-sink stack these options imply: a human
    /// heartbeat on stderr unless `--csv` or `--quiet` suppressed it,
    /// plus a deterministic JSONL stream when `--progress FILE` was
    /// given. The `--quiet` contract itself lives in
    /// [`ExecFlags::progress_sink`]; `--csv` is this crate's only
    /// addition (machine output implies no human heartbeat).
    ///
    /// # Errors
    ///
    /// Propagates the `--progress` file-creation error as
    /// [`CkptError::Io`].
    pub fn progress_sink(&self) -> Result<ckpt_obs::MultiSink, CkptError> {
        self.exec.progress_sink(!self.csv)
    }

    /// Parses from the process environment, printing errors/usage and
    /// exiting on failure — the entry point used by the binaries.
    #[must_use]
    pub fn from_env() -> RunOptions {
        match RunOptions::parse(std::env::args().skip(1)) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> Result<RunOptions, ParseError> {
        RunOptions::parse(s.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.engine, EngineKind::Direct);
        assert_eq!(o.reps, 3);
        assert!(!o.csv);
    }

    #[test]
    fn full_flag_set() {
        let o = parse(&[
            "--engine",
            "san",
            "--reps",
            "7",
            "--hours",
            "500",
            "--transient",
            "50",
            "--seed",
            "99",
            "--csv",
        ])
        .unwrap();
        assert_eq!(o.engine, EngineKind::San);
        assert_eq!(o.reps, 7);
        assert_eq!(o.horizon, SimTime::from_hours(500.0));
        assert_eq!(o.transient, SimTime::from_hours(50.0));
        assert_eq!(o.seed, 99);
        assert!(o.csv);
    }

    #[test]
    fn quick_shrinks_run() {
        let o = parse(&["--quick"]).unwrap();
        assert!(o.quick);
        assert!(o.horizon < RunOptions::default().horizon);
    }

    #[test]
    fn rejects_unknown_flags_and_bad_values() {
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--engine", "magic"]).is_err());
        assert!(parse(&["--reps", "many"]).is_err());
        assert!(parse(&["--reps"]).is_err());
        assert!(parse(&["--help"]).is_err());
        assert!(parse(&["--jobs", "zero"]).is_err());
    }

    #[test]
    fn observability_flags_parse() {
        let o = parse(&[
            "--trace",
            "t.jsonl",
            "--metrics",
            "m.json",
            "--manifest",
            "r.json",
            "--quiet",
        ])
        .unwrap();
        assert_eq!(o.trace.as_deref(), Some("t.jsonl"));
        assert_eq!(o.metrics.as_deref(), Some("m.json"));
        assert_eq!(o.manifest.as_deref(), Some("r.json"));
        assert!(o.exec.quiet);
        assert!(parse(&["--trace"]).is_err());
        assert!(parse(&["--metrics"]).is_err());
        let d = parse(&[]).unwrap();
        assert!(d.trace.is_none() && d.metrics.is_none() && d.manifest.is_none() && !d.exec.quiet);
    }

    #[test]
    fn snapshot_flags_parse() {
        let o = parse(&[
            "--snapshot",
            "s.json",
            "--snapshot-every",
            "4",
            "--resume",
            "r.json",
        ])
        .unwrap();
        assert_eq!(o.exec.snapshot.as_deref(), Some("s.json"));
        assert_eq!(o.exec.snapshot_every, 4);
        assert_eq!(o.exec.resume.as_deref(), Some("r.json"));
        assert!(parse(&["--snapshot"]).is_err());
        assert!(parse(&["--snapshot-every", "often"]).is_err());
        assert!(parse(&["--resume"]).is_err());
        let d = parse(&[]).unwrap();
        assert!(d.exec.snapshot.is_none() && d.exec.resume.is_none());
        assert_eq!(d.exec.snapshot_every, 1);
    }

    #[test]
    fn telemetry_flags_parse() {
        let o = parse(&[
            "--progress",
            "p.jsonl",
            "--histograms",
            "h.json",
            "--prom",
            "m.prom",
        ])
        .unwrap();
        assert_eq!(o.exec.progress.as_deref(), Some("p.jsonl"));
        assert_eq!(o.histograms.as_deref(), Some("h.json"));
        assert_eq!(o.prom.as_deref(), Some("m.prom"));
        assert!(parse(&["--progress"]).is_err());
        assert!(parse(&["--histograms"]).is_err());
        assert!(parse(&["--prom"]).is_err());
        let d = parse(&[]).unwrap();
        assert!(d.exec.progress.is_none() && d.histograms.is_none() && d.prom.is_none());
    }

    #[test]
    fn quiet_and_csv_suppress_the_human_sink_but_not_progress_files() {
        // No flags: one HumanSink. Quiet or csv: none.
        assert_eq!(parse(&[]).unwrap().progress_sink().unwrap().len(), 1);
        assert!(parse(&["--quiet"])
            .unwrap()
            .progress_sink()
            .unwrap()
            .is_empty());
        assert!(parse(&["--csv"])
            .unwrap()
            .progress_sink()
            .unwrap()
            .is_empty());
        // An explicit --progress file survives --quiet.
        let path =
            std::env::temp_dir().join(format!("ckpt_args_sink_{}.jsonl", std::process::id()));
        let o = parse(&["--quiet", "--progress", path.to_str().unwrap()]).unwrap();
        assert_eq!(o.progress_sink().unwrap().len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn execution_mode_flags_parse() {
        use ckpt_core::{QueueKind, ReactivationMode};
        let o = parse(&["--reactivation", "lazy", "--queue", "calendar"]).unwrap();
        assert_eq!(o.exec.reactivation, ReactivationMode::Lazy);
        assert_eq!(o.exec.queue, QueueKind::Calendar);
        let d = parse(&[]).unwrap();
        assert_eq!(d.exec.reactivation, ReactivationMode::Resample);
        assert_eq!(d.exec.queue, QueueKind::IndexedHeap);
        assert!(parse(&["--reactivation", "eager"]).is_err());
        assert!(parse(&["--queue", "wheel"]).is_err());
        assert!(parse(&["--reactivation"]).is_err());
        assert!(parse(&["--queue"]).is_err());
    }

    #[test]
    fn warmup_parses_and_defaults_to_zero() {
        assert_eq!(parse(&[]).unwrap().warmup, 0);
        assert_eq!(parse(&["--warmup", "3"]).unwrap().warmup, 3);
        assert!(parse(&["--warmup", "some"]).is_err());
        assert!(parse(&["--warmup"]).is_err());
    }

    #[test]
    fn jobs_parses_and_clamps() {
        assert_eq!(parse(&["--jobs", "6"]).unwrap().jobs, 6);
        // 0 would deadlock a worker pool; clamp to the sequential path.
        assert_eq!(parse(&["--jobs", "0"]).unwrap().jobs, 1);
        assert!(parse(&[]).unwrap().jobs >= 1);
    }
}
