//! Shared crash-safe driver for the figure binaries.
//!
//! Every `fig*` / `ext_*` binary is a three-liner over
//! [`figure_main`]: it installs the graceful SIGINT/SIGTERM handler,
//! opens (or resumes) the progress journal when `--snapshot` /
//! `--resume` are given, runs the sweep through
//! [`crate::sweep::run_sweep_controlled`], persists the journal, and
//! renders the figure. Failures never panic: they map to a typed
//! [`CkptError`] and its exit code (interrupts exit `128 + signal`
//! after saving the snapshot).

use crate::args::RunOptions;
use crate::figures::FigureSpec;
use crate::sweep::{run_sweep_controlled, sweep_fingerprint, Series, SweepControl};
use crate::table;
use ckpt_core::ExperimentError;
use ckpt_harness::{signal, CkptError, SweepJournal};
/// Opens the journal requested by `--snapshot` / `--resume`, validating
/// a resumed snapshot against `fingerprint` — a thin wrapper over
/// [`ckpt_harness::ExecFlags::open_journal`], the single
/// implementation of the journal-open policy.
///
/// # Errors
///
/// Any [`ckpt_harness::SnapshotError`] from loading or validating the
/// resumed snapshot.
pub fn open_journal(
    fingerprint: u64,
    opts: &RunOptions,
) -> Result<Option<SweepJournal>, CkptError> {
    opts.exec.open_journal(fingerprint).map_err(CkptError::from)
}

/// Persists `journal` (if any) and translates a cooperative interrupt
/// into [`CkptError::Interrupted`] with the delivering signal. Shared
/// by the figure runner and the CLI front end.
pub fn seal_interrupted(journal: Option<&SweepJournal>, error: CkptError) -> CkptError {
    if let Some(j) = journal {
        match j.persist() {
            Ok(()) => eprintln!(
                "snapshot saved: {} ({} replication(s) recorded); resume with --resume",
                j.path().display(),
                j.completed()
            ),
            Err(e) => eprintln!("warning: could not save snapshot: {e}"),
        }
    }
    if matches!(
        error,
        CkptError::Experiment(ExperimentError::Interrupted { .. })
    ) {
        CkptError::Interrupted {
            signal: signal::signal_number().unwrap_or(signal::SIGTERM),
        }
    } else {
        error
    }
}

/// Runs one figure end to end: signal handling, journal, sweep,
/// manifest, table. Returns the evaluated series.
///
/// # Errors
///
/// Everything [`run_sweep_controlled`] can return, plus journal I/O;
/// an interrupt surfaces as [`CkptError::Interrupted`] *after* the
/// snapshot is persisted.
pub fn run_figure(id: &str, spec: FigureSpec, opts: &RunOptions) -> Result<Vec<Series>, CkptError> {
    signal::install();
    let fingerprint = sweep_fingerprint(id, &spec.cells, opts)?;
    let journal = open_journal(fingerprint, opts)?;
    let sink = opts.progress_sink()?;
    let control = SweepControl {
        journal: journal.as_ref(),
        interrupt: Some(signal::interrupt_flag()),
        progress: (!sink.is_empty()).then_some(&sink as &dyn ckpt_obs::ProgressSink),
    };
    let cell_count = spec.cells.len();
    let started = std::time::Instant::now();
    match run_sweep_controlled(&spec.labels, spec.cells, spec.metric, opts, control) {
        Ok(series) => {
            if let Some(j) = &journal {
                j.persist()?;
            }
            let wall_secs = started.elapsed().as_secs_f64();
            ckpt_obs::ProgressSink::message(
                &sink,
                &format!(
                    "sweep: {cell_count} cells on {} worker(s) in {wall_secs:.2} s",
                    opts.jobs
                ),
            );
            if let Some(path) = &opts.manifest {
                let manifest = crate::sweep_manifest_json(id, cell_count, opts, wall_secs);
                std::fs::write(path, &manifest).map_err(|e| CkptError::Io {
                    path: path.clone(),
                    message: e.to_string(),
                })?;
            }
            table::emit(&spec.title, &spec.x_name, &series, opts.csv);
            Ok(series)
        }
        Err(e) => Err(seal_interrupted(journal.as_ref(), e)),
    }
}

/// [`run_figure`] plus error reporting and process exit — the entry
/// point the figure binaries call from `main`.
pub fn figure_main(id: &str, spec: FigureSpec, opts: &RunOptions) {
    if let Err(e) = run_figure(id, spec, opts) {
        eprintln!("error: {e}");
        std::process::exit(e.exit_code());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures;
    use ckpt_des::SimTime;

    fn quick_opts() -> RunOptions {
        RunOptions {
            reps: 1,
            horizon: SimTime::from_hours(100.0),
            transient: SimTime::from_hours(10.0),
            exec: ckpt_harness::ExecFlags {
                quiet: true,
                ..ckpt_harness::ExecFlags::default()
            },
            csv: true,
            ..RunOptions::default()
        }
    }

    #[test]
    fn run_figure_without_journal_matches_plain_sweep() {
        let spec = figures::fig4gh(16);
        let opts = quick_opts();
        let series = run_figure("fig4h", spec, &opts).unwrap();
        assert_eq!(series.len(), 2);
        assert!(series.iter().all(|s| !s.points.is_empty()));
    }

    #[test]
    fn snapshot_then_resume_round_trips_through_the_runner() {
        let dir = std::env::temp_dir().join("ckpt_bench_runner_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("runner.json");
        let _ = std::fs::remove_file(&path);

        let mut opts = quick_opts();
        opts.exec.snapshot = Some(path.display().to_string());
        let first = run_figure("fig4h", figures::fig4gh(16), &opts).unwrap();
        assert!(path.exists());

        let mut resume_opts = quick_opts();
        resume_opts.exec.resume = Some(path.display().to_string());
        let resumed = run_figure("fig4h", figures::fig4gh(16), &resume_opts).unwrap();
        for (a, b) in first.iter().zip(&resumed) {
            for (pa, pb) in a.points.iter().zip(&b.points) {
                assert_eq!(pa.y.to_bits(), pb.y.to_bits());
                assert_eq!(pa.half_width.to_bits(), pb.half_width.to_bits());
            }
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn resuming_under_different_run_options_is_refused() {
        let dir = std::env::temp_dir().join("ckpt_bench_runner_fp_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fp.json");
        let _ = std::fs::remove_file(&path);

        let mut opts = quick_opts();
        opts.exec.snapshot = Some(path.display().to_string());
        run_figure("fig4h", figures::fig4gh(16), &opts).unwrap();

        let mut other = quick_opts();
        other.exec.resume = Some(path.display().to_string());
        other.seed = 1234; // different sampling → different fingerprint
        let err = run_figure("fig4h", figures::fig4gh(16), &other).unwrap_err();
        assert!(matches!(
            err,
            CkptError::Snapshot(ckpt_harness::SnapshotError::FingerprintMismatch { .. })
        ));
        assert_eq!(err.exit_code(), 3);
        std::fs::remove_file(&path).unwrap();
    }
}
