//! Parallel parameter-sweep driver.
//!
//! Each cell of a sweep is described by a validated
//! [`ExperimentSpec`] (built from the cell's configuration and the
//! shared run options), so an invalid sweep definition surfaces as a
//! typed [`CkptError`] before any simulation starts — the driver has no
//! panicking paths.
//!
//! Crash safety: [`run_sweep_controlled`] threads a
//! [`SweepControl`] through to the experiment layer — an optional
//! [`SweepJournal`] that caches completed replications (keyed by cell
//! index) and an optional cooperative-interrupt flag. An interrupted
//! sweep returns [`ckpt_core::ExperimentError::Interrupted`]; resuming
//! with the same journal re-runs only the missing replications and
//! produces bit-identical series at any worker count.

use crate::args::RunOptions;
use ckpt_core::{Estimate, ExperimentError, ReplicationStore, RunControl, SystemConfig};
use ckpt_harness::spec::ExperimentSpec;
use ckpt_harness::{CkptError, SweepJournal};
use ckpt_obs::{ProgressSink, ProgressSnapshot};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// One evaluated point of a figure: the x value, the estimated metric
/// (mean over replications) and its 95 % half-width.
#[derive(Debug, Clone)]
pub struct Point {
    /// The x-axis value (e.g. number of processors).
    pub x: f64,
    /// Estimated y value.
    pub y: f64,
    /// Half-width of the 95 % confidence interval on y.
    pub half_width: f64,
}

/// A labeled curve of a figure.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label, matching the paper's (e.g. "MTTF (yrs) = 1").
    pub label: String,
    /// The evaluated points, in x order.
    pub points: Vec<Point>,
}

/// Which metric a sweep extracts from each [`Estimate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Useful work fraction (Figures 5–8).
    UsefulWorkFraction,
    /// Total useful work in job units (Figure 4).
    TotalUsefulWork,
}

impl Metric {
    fn extract(self, est: &Estimate) -> (f64, f64) {
        let ci = match self {
            Metric::UsefulWorkFraction => est.useful_work_fraction(),
            Metric::TotalUsefulWork => est.total_useful_work(),
        };
        (ci.mean, ci.half_width)
    }
}

/// A sweep job: one (series, x) cell with its configuration.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Index of the series this cell belongs to.
    pub series: usize,
    /// x-axis value.
    pub x: f64,
    /// Full model configuration for this cell.
    pub config: SystemConfig,
}

/// Crash-safety and liveness hooks for a sweep: an optional journal of
/// completed replications (cells are keyed by their index in the
/// `cells` vector), an optional cooperative-interrupt flag, and an
/// optional progress sink that replaces the old ad-hoc heartbeat
/// prints.
#[derive(Clone, Copy, Default)]
pub struct SweepControl<'a> {
    /// Journal that caches completed replications across runs.
    pub journal: Option<&'a SweepJournal>,
    /// Flag polled before starting each cell and each replication.
    pub interrupt: Option<&'a AtomicBool>,
    /// Receives one snapshot per completed cell, emitted under a lock
    /// in strictly increasing `completed` order.
    pub progress: Option<&'a dyn ProgressSink>,
}

impl std::fmt::Debug for SweepControl<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepControl")
            .field("journal", &self.journal)
            .field("interrupt", &self.interrupt)
            .field("progress", &self.progress.map(|_| "dyn ProgressSink"))
            .finish()
    }
}

/// Builds a validated [`ExperimentSpec`] from a configuration, an
/// engine override and the shared run options — the single construction
/// path every bench binary goes through.
///
/// # Errors
///
/// [`CkptError::Spec`] if the combination fails validation (e.g. a SAN
/// run with an unsupported ablation switch).
pub fn experiment_spec(
    config: SystemConfig,
    engine: ckpt_core::EngineKind,
    opts: &RunOptions,
) -> Result<ExperimentSpec, CkptError> {
    ExperimentSpec::builder(config)
        .engine(engine)
        .transient(opts.transient)
        .horizon(opts.horizon)
        .replications(opts.reps)
        .seed(opts.seed)
        .jobs(opts.jobs)
        .reactivation(opts.exec.reactivation)
        .queue(opts.exec.queue)
        .build()
        .map_err(CkptError::from)
}

/// Builds the validated per-cell experiment spec shared by the sweep
/// driver and the resume fingerprint.
fn cell_spec(cell: &Cell, opts: &RunOptions, jobs: usize) -> Result<ExperimentSpec, CkptError> {
    ExperimentSpec::builder(cell.config.clone())
        .engine(opts.engine)
        .transient(opts.transient)
        .horizon(opts.horizon)
        .replications(opts.reps)
        .seed(opts.seed)
        .jobs(jobs)
        .reactivation(opts.exec.reactivation)
        .queue(opts.exec.queue)
        .build()
        .map_err(CkptError::from)
}

/// The resume fingerprint of a whole sweep: FNV-1a 64 over the sweep id
/// and every cell's spec fingerprint, in cell order. Worker count is
/// excluded (the per-cell fingerprints already exclude `jobs`), so a
/// snapshot taken at one `--jobs` resumes at any other.
///
/// # Errors
///
/// [`CkptError::Spec`] if any cell's spec fails validation.
pub fn sweep_fingerprint(id: &str, cells: &[Cell], opts: &RunOptions) -> Result<u64, CkptError> {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = FNV_OFFSET;
    let mut eat = |byte: u8| {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    };
    for byte in id.bytes() {
        eat(byte);
    }
    eat(0);
    for cell in cells {
        for byte in cell_spec(cell, opts, 1)?.fingerprint().to_le_bytes() {
            eat(byte);
        }
    }
    Ok(hash)
}

/// Evaluates every cell in parallel (up to `opts.jobs` OS threads) and
/// assembles the labeled series — [`run_sweep_controlled`] with no
/// journal and no interrupt flag.
///
/// # Errors
///
/// See [`run_sweep_controlled`].
pub fn run_sweep(
    labels: &[String],
    cells: Vec<Cell>,
    metric: Metric,
    opts: &RunOptions,
) -> Result<Vec<Series>, CkptError> {
    run_sweep_controlled(labels, cells, metric, opts, SweepControl::default())
}

/// Evaluates every cell in parallel (up to `opts.jobs` OS threads) and
/// assembles the labeled series. Cells of a series are returned in the
/// order they were supplied, and every cell's result is independent of
/// the worker count — parallelism only changes scheduling, never
/// sampling.
///
/// When there are fewer cells than `opts.jobs`, leftover parallelism is
/// pushed one level down: each cell's experiment runs its replications
/// on `opts.jobs / workers` threads.
///
/// Long sweeps report each completed cell through `control.progress`
/// (the figure runner wires a stderr heartbeat unless `--csv` /
/// `--quiet`, plus a `--progress` JSONL stream), so a multi-minute
/// figure run is visibly alive. Snapshots are emitted under a lock in
/// strictly increasing `completed` order, and the deterministic fields
/// (label, completed, total) are scheduling-independent — a JSONL
/// stream is byte-identical at any worker count. The per-cell *detail*
/// text reflects completion order and is rendered by the human sink
/// only.
///
/// # Errors
///
/// * [`CkptError::Spec`] if any cell's configuration is invalid for the
///   selected engine (checked up front, before any cell runs);
/// * [`CkptError::Experiment`] if a cell fails mid-run — the first
///   failing cell in *index* order, so the reported error is
///   deterministic. A cooperative interrupt surfaces as
///   [`ExperimentError::Interrupted`] carrying the number of fully
///   evaluated cells.
pub fn run_sweep_controlled(
    labels: &[String],
    cells: Vec<Cell>,
    metric: Metric,
    opts: &RunOptions,
    control: SweepControl<'_>,
) -> Result<Vec<Series>, CkptError> {
    let workers = opts.jobs.max(1).min(cells.len().max(1));
    let inner_jobs = (opts.jobs.max(1) / workers).max(1);
    // Validate the whole sweep before running any of it.
    let specs = cells
        .iter()
        .map(|c| cell_spec(c, opts, inner_jobs))
        .collect::<Result<Vec<_>, _>>()?;

    let next = AtomicUsize::new(0);
    type Slot = Option<Result<(usize, Point), ExperimentError>>;
    let results: Mutex<Vec<Slot>> = Mutex::new((0..cells.len()).map(|_| None).collect());
    // The counter lives under the sink's lock so `completed` arrives
    // strictly increasing at every sink, whatever the scheduling.
    let progress = control.progress.map(|sink| (sink, Mutex::new(0usize)));
    let started = Instant::now();
    let stop = |flag: Option<&AtomicBool>| flag.is_some_and(|f| f.load(Ordering::SeqCst));

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                if stop(control.interrupt) {
                    return;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= cells.len() {
                    return;
                }
                let cell = &cells[i];
                let store = control
                    .journal
                    .map(|j| j.cell_store(u32::try_from(i).unwrap_or(u32::MAX)));
                // Warm-up is a runtime-only option (it never changes
                // sampling), so it rides on the experiment rather than
                // the spec — the resume fingerprint stays warmup-blind.
                let outcome = specs[i]
                    .to_experiment()
                    .warmup(opts.warmup)
                    .run_controlled(RunControl {
                        store: store.as_ref().map(|s| s as &dyn ReplicationStore),
                        interrupt: control.interrupt,
                        // Sweeps report at cell granularity; forwarding
                        // the sink here would interleave replication
                        // counts from unrelated cells.
                        progress: None,
                    })
                    .map(|est| {
                        let (y, half_width) = metric.extract(&est);
                        (
                            cell.series,
                            Point {
                                x: cell.x,
                                y,
                                half_width,
                            },
                        )
                    });
                let ok = outcome.is_ok();
                results.lock().expect("sweep mutex poisoned")[i] = Some(outcome);
                if !ok {
                    return;
                }
                if let Some((sink, counter)) = &progress {
                    let mut finished = counter.lock().expect("progress counter poisoned");
                    *finished += 1;
                    let detail = format!(
                        "{} x={} done",
                        labels.get(cell.series).map_or("", |l| l.as_str()),
                        cell.x
                    );
                    let mut snap = ProgressSnapshot::new("sweep", *finished, cells.len());
                    snap.detail = Some(&detail);
                    snap.workers = Some(workers);
                    if *finished < cells.len() {
                        let per_cell = started.elapsed().as_secs_f64() / *finished as f64;
                        snap.eta_secs = Some(per_cell * (cells.len() - *finished) as f64);
                    }
                    sink.progress(&snap);
                }
            });
        }
    });

    let mut series: Vec<Series> = labels
        .iter()
        .map(|l| Series {
            label: l.clone(),
            points: Vec::new(),
        })
        .collect();
    let mut interrupted = false;
    let mut completed = 0usize;
    let mut first_error: Option<ExperimentError> = None;
    for slot in results.into_inner().expect("sweep mutex poisoned") {
        match slot {
            Some(Ok((s, p))) => {
                completed += 1;
                series[s].points.push(p);
            }
            Some(Err(ExperimentError::Interrupted { .. })) | None => interrupted = true,
            Some(Err(e)) => {
                if first_error.is_none() {
                    first_error = Some(e);
                }
            }
        }
    }
    if let Some(e) = first_error {
        return Err(e.into());
    }
    if interrupted {
        return Err(ExperimentError::Interrupted { completed }.into());
    }
    Ok(series)
}

/// Provenance manifest for one figure sweep: which figure ran, with
/// which engine/seed/horizon/worker settings, on how much host
/// parallelism, and how long it took. Pure provenance — nothing in the
/// simulation path reads it, so the wall-clock value does not affect
/// determinism.
#[must_use]
pub fn sweep_manifest_json(id: &str, cells: usize, opts: &RunOptions, wall_secs: f64) -> String {
    format!(
        "{{\n  \"schema_version\": 1,\n  \"tool\": \"ckptsim\",\n  \
         \"version\": \"{}\",\n  \"figure\": \"{}\",\n  \"engine\": \"{}\",\n  \
         \"base_seed\": {},\n  \"transient_hours\": {:.6},\n  \
         \"horizon_hours\": {:.6},\n  \"replications\": {},\n  \"jobs\": {},\n  \
         \"warmup\": {},\n  \
         \"host_parallelism\": {},\n  \"cells\": {},\n  \"wall_secs\": {:.6}\n}}\n",
        env!("CARGO_PKG_VERSION"),
        ckpt_obs::json_escape(id),
        opts.engine.name(),
        opts.seed,
        opts.transient.as_hours(),
        opts.horizon.as_hours(),
        opts.reps,
        opts.jobs,
        opts.warmup,
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        cells,
        wall_secs,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckpt_des::SimTime;
    use std::sync::atomic::AtomicBool;

    fn small_cells(labels: &[String]) -> Vec<Cell> {
        let mut cells = Vec::new();
        for (s, _) in labels.iter().enumerate() {
            for procs in [8_192u64, 16_384] {
                cells.push(Cell {
                    series: s,
                    x: procs as f64,
                    config: SystemConfig::builder()
                        .processors(procs)
                        .failures_enabled(false)
                        .build()
                        .unwrap(),
                });
            }
        }
        cells
    }

    #[test]
    fn sweep_preserves_order_and_labels() {
        let labels = vec!["a".to_string(), "b".to_string()];
        let cells = small_cells(&labels);
        let opts = RunOptions {
            reps: 2,
            horizon: SimTime::from_hours(200.0),
            transient: SimTime::from_hours(20.0),
            ..RunOptions::default()
        };
        let series = run_sweep(&labels, cells, Metric::UsefulWorkFraction, &opts).unwrap();
        assert_eq!(series.len(), 2);
        for s in &series {
            assert_eq!(s.points.len(), 2);
            assert_eq!(s.points[0].x, 8_192.0);
            assert_eq!(s.points[1].x, 16_384.0);
            for p in &s.points {
                assert!(p.y > 0.9, "failure-free fraction high, got {}", p.y);
            }
        }
        // Identical configs in both series → identical results.
        assert_eq!(series[0].points[0].y, series[1].points[0].y);
    }

    #[test]
    fn sweep_manifest_renders_provenance() {
        let opts = RunOptions::default();
        let j = sweep_manifest_json("fig4a", 12, &opts, 1.5);
        assert!(j.contains("\"figure\": \"fig4a\""));
        assert!(j.contains("\"cells\": 12"));
        assert!(j.contains("\"engine\": \"direct\""));
        assert!(j.contains("\"schema_version\": 1"));
        assert!(j.contains("\"warmup\": 0"));
        assert!(j.ends_with("}\n"));
    }

    #[test]
    fn total_useful_work_metric_scales_fraction() {
        let labels = vec!["x".to_string()];
        let cells = vec![Cell {
            series: 0,
            x: 8_192.0,
            config: SystemConfig::builder()
                .processors(8_192)
                .failures_enabled(false)
                .build()
                .unwrap(),
        }];
        let opts = RunOptions {
            reps: 1,
            horizon: SimTime::from_hours(100.0),
            transient: SimTime::from_hours(10.0),
            ..RunOptions::default()
        };
        let frac = run_sweep(&labels, cells.clone(), Metric::UsefulWorkFraction, &opts).unwrap();
        let total = run_sweep(&labels, cells, Metric::TotalUsefulWork, &opts).unwrap();
        let f = frac[0].points[0].y;
        let t = total[0].points[0].y;
        assert!((t - f * 8_192.0).abs() < 1e-6);
    }

    #[test]
    fn invalid_sweep_definition_is_a_typed_error_not_a_panic() {
        // SAN engine + an ablation switch it refuses: caught up front.
        let labels = vec!["bad".to_string()];
        let cells = vec![Cell {
            series: 0,
            x: 1.0,
            config: SystemConfig::builder()
                .processors(8_192)
                .buffered_recovery(false)
                .build()
                .unwrap(),
        }];
        let opts = RunOptions {
            engine: ckpt_core::EngineKind::San,
            ..RunOptions::default()
        };
        let err = run_sweep(&labels, cells, Metric::UsefulWorkFraction, &opts).unwrap_err();
        assert!(matches!(err, CkptError::Spec(_)), "got {err:?}");
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn preset_interrupt_flag_stops_the_sweep() {
        let labels = vec!["a".to_string()];
        let cells = small_cells(&labels);
        let opts = RunOptions {
            reps: 1,
            horizon: SimTime::from_hours(100.0),
            transient: SimTime::from_hours(10.0),
            ..RunOptions::default()
        };
        let flag = AtomicBool::new(true);
        let err = run_sweep_controlled(
            &labels,
            cells,
            Metric::UsefulWorkFraction,
            &opts,
            SweepControl {
                journal: None,
                interrupt: Some(&flag),
                progress: None,
            },
        )
        .unwrap_err();
        assert!(matches!(
            err,
            CkptError::Experiment(ExperimentError::Interrupted { completed: 0 })
        ));
    }

    #[test]
    fn journal_resume_reproduces_an_uninterrupted_sweep_bitwise() {
        let labels = vec!["a".to_string(), "b".to_string()];
        let cells = small_cells(&labels);
        let opts = RunOptions {
            reps: 2,
            jobs: 2,
            horizon: SimTime::from_hours(200.0),
            transient: SimTime::from_hours(20.0),
            ..RunOptions::default()
        };
        let clean = run_sweep(&labels, cells.clone(), Metric::UsefulWorkFraction, &opts).unwrap();

        let dir = std::env::temp_dir().join("ckpt_bench_sweep_resume_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.json");
        let fp = sweep_fingerprint("test", &cells, &opts).unwrap();

        // "Interrupted" run: journal only the first cell's replications
        // by running a truncated sweep, then persist.
        let journal = SweepJournal::create(&path, fp, 0);
        let partial: Vec<Cell> = cells[..1].to_vec();
        run_sweep_controlled(
            &labels,
            partial,
            Metric::UsefulWorkFraction,
            &opts,
            SweepControl {
                journal: Some(&journal),
                interrupt: None,
                progress: None,
            },
        )
        .unwrap();
        journal.persist().unwrap();
        assert_eq!(journal.completed(), 2);

        // Resume the full sweep at both jobs=1 and jobs=4.
        for jobs in [1usize, 4] {
            let resumed_journal = SweepJournal::resume(&path, fp, 0).unwrap();
            let resumed_opts = RunOptions {
                jobs,
                ..opts.clone()
            };
            let resumed = run_sweep_controlled(
                &labels,
                cells.clone(),
                Metric::UsefulWorkFraction,
                &resumed_opts,
                SweepControl {
                    journal: Some(&resumed_journal),
                    interrupt: None,
                    progress: None,
                },
            )
            .unwrap();
            for (cs, rs) in clean.iter().zip(&resumed) {
                assert_eq!(cs.label, rs.label);
                for (cp, rp) in cs.points.iter().zip(&rs.points) {
                    assert_eq!(cp.x, rp.x);
                    assert_eq!(cp.y.to_bits(), rp.y.to_bits(), "jobs={jobs}");
                    assert_eq!(cp.half_width.to_bits(), rp.half_width.to_bits());
                }
            }
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fingerprint_tracks_run_parameters_but_not_jobs() {
        let labels = vec!["a".to_string()];
        let cells = small_cells(&labels);
        let opts = RunOptions::default();
        let base = sweep_fingerprint("fig", &cells, &opts).unwrap();
        let other_jobs = RunOptions {
            jobs: opts.jobs + 3,
            ..opts.clone()
        };
        assert_eq!(base, sweep_fingerprint("fig", &cells, &other_jobs).unwrap());
        let reseeded = RunOptions { seed: 1, ..opts };
        assert_ne!(base, sweep_fingerprint("fig", &cells, &reseeded).unwrap());
        assert_ne!(
            base,
            sweep_fingerprint("gif", &cells, &RunOptions::default()).unwrap()
        );
    }
}
