//! Parallel parameter-sweep driver.

use crate::args::RunOptions;
use ckpt_core::{Estimate, Experiment, SystemConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One evaluated point of a figure: the x value, the estimated metric
/// (mean over replications) and its 95 % half-width.
#[derive(Debug, Clone)]
pub struct Point {
    /// The x-axis value (e.g. number of processors).
    pub x: f64,
    /// Estimated y value.
    pub y: f64,
    /// Half-width of the 95 % confidence interval on y.
    pub half_width: f64,
}

/// A labeled curve of a figure.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label, matching the paper's (e.g. "MTTF (yrs) = 1").
    pub label: String,
    /// The evaluated points, in x order.
    pub points: Vec<Point>,
}

/// Which metric a sweep extracts from each [`Estimate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Useful work fraction (Figures 5–8).
    UsefulWorkFraction,
    /// Total useful work in job units (Figure 4).
    TotalUsefulWork,
}

impl Metric {
    fn extract(self, est: &Estimate) -> (f64, f64) {
        let ci = match self {
            Metric::UsefulWorkFraction => est.useful_work_fraction(),
            Metric::TotalUsefulWork => est.total_useful_work(),
        };
        (ci.mean, ci.half_width)
    }
}

/// A sweep job: one (series, x) cell with its configuration.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Index of the series this cell belongs to.
    pub series: usize,
    /// x-axis value.
    pub x: f64,
    /// Full model configuration for this cell.
    pub config: SystemConfig,
}

/// Evaluates every cell in parallel (up to `opts.jobs` OS threads) and
/// assembles the labeled series. Cells of a series are returned in the
/// order they were supplied, and every cell's result is independent of
/// the worker count — parallelism only changes scheduling, never
/// sampling.
///
/// When there are fewer cells than `opts.jobs`, leftover parallelism is
/// pushed one level down: each cell's experiment runs its replications
/// on `opts.jobs / workers` threads.
///
/// Long sweeps print a heartbeat line to stderr as each cell completes
/// (suppressed by `--csv` and `--quiet`), so a multi-minute figure run
/// is visibly alive. The heartbeat is purely cosmetic: completion
/// *order* depends on scheduling, but every cell's result does not.
///
/// # Panics
///
/// Panics if a cell's experiment fails (SAN build error), which
/// indicates an invalid sweep definition.
#[must_use]
pub fn run_sweep(
    labels: &[String],
    cells: Vec<Cell>,
    metric: Metric,
    opts: &RunOptions,
) -> Vec<Series> {
    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<(usize, Point)>>> = Mutex::new(vec![None; cells.len()]);
    let workers = opts.jobs.max(1).min(cells.len().max(1));
    let inner_jobs = (opts.jobs.max(1) / workers).max(1);
    let heartbeat = !opts.csv && !opts.quiet;

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= cells.len() {
                    return;
                }
                let cell = &cells[i];
                let est = Experiment::new(cell.config.clone())
                    .engine(opts.engine)
                    .transient(opts.transient)
                    .horizon(opts.horizon)
                    .replications(opts.reps)
                    .seed(opts.seed)
                    .jobs(inner_jobs)
                    .run()
                    .expect("sweep cell failed to run");
                let (y, half_width) = metric.extract(&est);
                let point = Point {
                    x: cell.x,
                    y,
                    half_width,
                };
                results.lock().expect("sweep mutex poisoned")[i] = Some((cell.series, point));
                let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                if heartbeat {
                    eprintln!(
                        "  [{finished}/{}] {} x={} done",
                        cells.len(),
                        labels.get(cell.series).map_or("", |l| l.as_str()),
                        cell.x
                    );
                }
            });
        }
    });

    let mut series: Vec<Series> = labels
        .iter()
        .map(|l| Series {
            label: l.clone(),
            points: Vec::new(),
        })
        .collect();
    for slot in results.into_inner().expect("sweep mutex poisoned") {
        let (s, p) = slot.expect("sweep cell not evaluated");
        series[s].points.push(p);
    }
    series
}

/// Provenance manifest for one figure sweep: which figure ran, with
/// which engine/seed/horizon/worker settings, on how much host
/// parallelism, and how long it took. Pure provenance — nothing in the
/// simulation path reads it, so the wall-clock value does not affect
/// determinism.
#[must_use]
pub fn sweep_manifest_json(id: &str, cells: usize, opts: &RunOptions, wall_secs: f64) -> String {
    format!(
        "{{\n  \"schema_version\": 1,\n  \"tool\": \"ckptsim\",\n  \
         \"version\": \"{}\",\n  \"figure\": \"{}\",\n  \"engine\": \"{}\",\n  \
         \"base_seed\": {},\n  \"transient_hours\": {:.6},\n  \
         \"horizon_hours\": {:.6},\n  \"replications\": {},\n  \"jobs\": {},\n  \
         \"host_parallelism\": {},\n  \"cells\": {},\n  \"wall_secs\": {:.6}\n}}\n",
        env!("CARGO_PKG_VERSION"),
        ckpt_obs::json_escape(id),
        opts.engine.name(),
        opts.seed,
        opts.transient.as_hours(),
        opts.horizon.as_hours(),
        opts.reps,
        opts.jobs,
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        cells,
        wall_secs,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckpt_des::SimTime;

    #[test]
    fn sweep_preserves_order_and_labels() {
        let labels = vec!["a".to_string(), "b".to_string()];
        let mut cells = Vec::new();
        for (s, _) in labels.iter().enumerate() {
            for procs in [8_192u64, 16_384] {
                cells.push(Cell {
                    series: s,
                    x: procs as f64,
                    config: SystemConfig::builder()
                        .processors(procs)
                        .failures_enabled(false)
                        .build()
                        .unwrap(),
                });
            }
        }
        let opts = RunOptions {
            reps: 2,
            horizon: SimTime::from_hours(200.0),
            transient: SimTime::from_hours(20.0),
            ..RunOptions::default()
        };
        let series = run_sweep(&labels, cells, Metric::UsefulWorkFraction, &opts);
        assert_eq!(series.len(), 2);
        for s in &series {
            assert_eq!(s.points.len(), 2);
            assert_eq!(s.points[0].x, 8_192.0);
            assert_eq!(s.points[1].x, 16_384.0);
            for p in &s.points {
                assert!(p.y > 0.9, "failure-free fraction high, got {}", p.y);
            }
        }
        // Identical configs in both series → identical results.
        assert_eq!(series[0].points[0].y, series[1].points[0].y);
    }

    #[test]
    fn sweep_manifest_renders_provenance() {
        let opts = RunOptions::default();
        let j = sweep_manifest_json("fig4a", 12, &opts, 1.5);
        assert!(j.contains("\"figure\": \"fig4a\""));
        assert!(j.contains("\"cells\": 12"));
        assert!(j.contains("\"engine\": \"direct\""));
        assert!(j.contains("\"schema_version\": 1"));
        assert!(j.ends_with("}\n"));
    }

    #[test]
    fn total_useful_work_metric_scales_fraction() {
        let labels = vec!["x".to_string()];
        let cells = vec![Cell {
            series: 0,
            x: 8_192.0,
            config: SystemConfig::builder()
                .processors(8_192)
                .failures_enabled(false)
                .build()
                .unwrap(),
        }];
        let opts = RunOptions {
            reps: 1,
            horizon: SimTime::from_hours(100.0),
            transient: SimTime::from_hours(10.0),
            ..RunOptions::default()
        };
        let frac = run_sweep(&labels, cells.clone(), Metric::UsefulWorkFraction, &opts);
        let total = run_sweep(&labels, cells, Metric::TotalUsefulWork, &opts);
        let f = frac[0].points[0].y;
        let t = total[0].points[0].y;
        assert!((t - f * 8_192.0).abs() < 1e-6);
    }
}
