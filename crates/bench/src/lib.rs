//! Figure-regeneration harness for the DSN'05 reproduction.
//!
//! One binary per table/figure of the paper's evaluation section (run
//! them with `cargo run -p ckpt-bench --release --bin fig4a`, etc.):
//!
//! | Binary | Regenerates |
//! |---|---|
//! | `table3` | Table 3 (model parameters / config defaults) |
//! | `fig4a`…`fig4h` | Figure 4 sensitivity study of the base model |
//! | `fig5` | Figure 5: coordination-only scalability (no failures) |
//! | `fig6` | Figure 6: coordination + timeout under failures |
//! | `fig7` | Figure 7: error-propagation correlated failures |
//! | `fig8` | Figure 8: generic correlated failures |
//! | `ablate` | Design-choice ablations called out in DESIGN.md |
//! | `all` | Everything above, writing CSVs into `results/` |
//!
//! Common flags: `--engine direct|san`, `--reps N`, `--hours H`,
//! `--transient H`, `--seed S`, `--quick` (fast smoke parameters),
//! `--csv` (machine-readable output).
//!
//! The library half hosts the sweep driver ([`sweep`]), the output
//! formatting ([`table`]), the per-figure sweep definitions
//! ([`figures`]), the paper's published curves ([`paper`]) used by the
//! integration tests for shape checks, and the tiny argument parser
//! ([`args`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod figures;
pub mod paper;
pub mod runner;
pub mod svg;
pub mod sweep;
pub mod table;

pub use args::RunOptions;
pub use runner::{figure_main, run_figure};
pub use sweep::{
    experiment_spec, run_sweep, run_sweep_controlled, sweep_fingerprint, sweep_manifest_json,
    Point, Series, SweepControl,
};
