//! Dependency-free SVG line charts for the figure results.
//!
//! Good enough to eyeball every reproduced figure without leaving the
//! repository: linear or log₂ x-axis, auto-scaled y-axis from zero,
//! per-series colors, legend, and error whiskers from the confidence
//! half-widths.

use crate::sweep::Series;
use std::fmt::Write as _;

const WIDTH: f64 = 860.0;
const HEIGHT: f64 = 520.0;
const MARGIN_L: f64 = 90.0;
const MARGIN_R: f64 = 230.0;
const MARGIN_T: f64 = 60.0;
const MARGIN_B: f64 = 70.0;

/// Colorblind-safe categorical palette (Okabe–Ito).
const PALETTE: [&str; 8] = [
    "#0072B2", "#D55E00", "#009E73", "#CC79A7", "#E69F00", "#56B4E9", "#F0E442", "#000000",
];

/// Axis scaling for the x dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XScale {
    /// Linear axis.
    Linear,
    /// Logarithmic (base-2) axis — for the processor-count sweeps.
    Log2,
}

/// Renders a figure as a standalone SVG document.
///
/// # Panics
///
/// Panics if every series is empty or a log axis sees a non-positive x.
#[must_use]
pub fn render(
    title: &str,
    x_name: &str,
    y_name: &str,
    series: &[Series],
    x_scale: XScale,
) -> String {
    let points: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| (p.x, p.y)))
        .collect();
    assert!(!points.is_empty(), "cannot render an empty figure");

    let tx = |x: f64| -> f64 {
        match x_scale {
            XScale::Linear => x,
            XScale::Log2 => {
                assert!(x > 0.0, "log axis requires positive x, got {x}");
                x.log2()
            }
        }
    };
    let x_min = points.iter().map(|p| tx(p.0)).fold(f64::MAX, f64::min);
    let x_max = points.iter().map(|p| tx(p.0)).fold(f64::MIN, f64::max);
    let y_max_raw = points.iter().map(|p| p.1).fold(f64::MIN, f64::max);
    let y_min_raw = points.iter().map(|p| p.1).fold(f64::MAX, f64::min);
    let y_min = y_min_raw.min(0.0);
    let y_max = if y_max_raw > y_min {
        y_max_raw
    } else {
        y_min + 1.0
    };
    let x_span = if x_max > x_min { x_max - x_min } else { 1.0 };
    let y_span = y_max - y_min;

    let plot_w = WIDTH - MARGIN_L - MARGIN_R;
    let plot_h = HEIGHT - MARGIN_T - MARGIN_B;
    let px = |x: f64| MARGIN_L + (tx(x) - x_min) / x_span * plot_w;
    let py = |y: f64| MARGIN_T + (1.0 - (y - y_min) / y_span) * plot_h;

    let mut out = String::new();
    let _ = writeln!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" font-family="sans-serif">"#
    );
    let _ = writeln!(out, r#"<rect width="100%" height="100%" fill="white"/>"#);
    let _ = writeln!(
        out,
        r#"<text x="{:.1}" y="28" font-size="15" font-weight="bold">{}</text>"#,
        MARGIN_L,
        escape(title)
    );

    // Axes.
    let x0 = MARGIN_L;
    let x1 = WIDTH - MARGIN_R;
    let y0 = HEIGHT - MARGIN_B;
    let y1 = MARGIN_T;
    let _ = writeln!(
        out,
        r#"<line x1="{x0}" y1="{y0}" x2="{x1}" y2="{y0}" stroke="black"/>"#
    );
    let _ = writeln!(
        out,
        r#"<line x1="{x0}" y1="{y0}" x2="{x0}" y2="{y1}" stroke="black"/>"#
    );

    // Y ticks (5 divisions) with faint gridlines.
    for k in 0..=5 {
        let v = y_min + y_span * f64::from(k) / 5.0;
        let y = py(v);
        let _ = writeln!(
            out,
            r##"<line x1="{x0}" y1="{y:.1}" x2="{x1}" y2="{y:.1}" stroke="#dddddd"/>"##
        );
        let _ = writeln!(
            out,
            r#"<text x="{:.1}" y="{:.1}" font-size="11" text-anchor="end">{}</text>"#,
            x0 - 8.0,
            y + 4.0,
            format_tick(v)
        );
    }

    // X ticks: one per distinct x of the first series.
    if let Some(first) = series.first() {
        for p in &first.points {
            let x = px(p.x);
            let _ = writeln!(
                out,
                r#"<line x1="{x:.1}" y1="{y0}" x2="{x:.1}" y2="{}" stroke="black"/>"#,
                y0 + 5.0
            );
            let _ = writeln!(
                out,
                r#"<text x="{x:.1}" y="{}" font-size="11" text-anchor="middle">{}</text>"#,
                y0 + 20.0,
                format_tick(p.x)
            );
        }
    }

    // Axis labels.
    let _ = writeln!(
        out,
        r#"<text x="{:.1}" y="{:.1}" font-size="12" text-anchor="middle">{}</text>"#,
        (x0 + x1) / 2.0,
        HEIGHT - 18.0,
        escape(x_name)
    );
    let _ = writeln!(
        out,
        r#"<text x="20" y="{:.1}" font-size="12" text-anchor="middle" transform="rotate(-90 20 {:.1})">{}</text>"#,
        (y0 + y1) / 2.0,
        (y0 + y1) / 2.0,
        escape(y_name)
    );

    // Series.
    for (i, s) in series.iter().enumerate() {
        let color = PALETTE[i % PALETTE.len()];
        let path: Vec<String> = s
            .points
            .iter()
            .map(|p| format!("{:.1},{:.1}", px(p.x), py(p.y)))
            .collect();
        let _ = writeln!(
            out,
            r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="2"/>"#,
            path.join(" ")
        );
        for p in &s.points {
            let (cx, cy) = (px(p.x), py(p.y));
            let _ = writeln!(
                out,
                r#"<circle cx="{cx:.1}" cy="{cy:.1}" r="3" fill="{color}"/>"#
            );
            if p.half_width > 0.0 {
                let lo = py(p.y - p.half_width);
                let hi = py(p.y + p.half_width);
                let _ = writeln!(
                    out,
                    r#"<line x1="{cx:.1}" y1="{hi:.1}" x2="{cx:.1}" y2="{lo:.1}" stroke="{color}" stroke-width="1"/>"#
                );
            }
        }
        // Legend entry.
        let ly = MARGIN_T + 18.0 * i as f64;
        let lx = WIDTH - MARGIN_R + 16.0;
        let _ = writeln!(
            out,
            r#"<line x1="{lx}" y1="{ly:.1}" x2="{}" y2="{ly:.1}" stroke="{color}" stroke-width="2"/>"#,
            lx + 22.0
        );
        let _ = writeln!(
            out,
            r#"<text x="{}" y="{:.1}" font-size="11">{}</text>"#,
            lx + 28.0,
            ly + 4.0,
            escape(&s.label)
        );
    }

    let _ = writeln!(out, "</svg>");
    out
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

fn format_tick(v: f64) -> String {
    let a = v.abs();
    if a >= 1_000_000.0 {
        format!("{:.1}M", v / 1e6)
    } else if a >= 10_000.0 {
        format!("{:.0}K", v / 1e3)
    } else if a >= 100.0 || v.fract() == 0.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::Point;

    fn sample() -> Vec<Series> {
        vec![
            Series {
                label: "MTTF=1 & more".into(),
                points: vec![
                    Point {
                        x: 8192.0,
                        y: 7500.0,
                        half_width: 30.0,
                    },
                    Point {
                        x: 16384.0,
                        y: 14000.0,
                        half_width: 60.0,
                    },
                    Point {
                        x: 32768.0,
                        y: 26000.0,
                        half_width: 100.0,
                    },
                ],
            },
            Series {
                label: "MTTF=2".into(),
                points: vec![
                    Point {
                        x: 8192.0,
                        y: 7700.0,
                        half_width: 0.0,
                    },
                    Point {
                        x: 16384.0,
                        y: 15000.0,
                        half_width: 0.0,
                    },
                    Point {
                        x: 32768.0,
                        y: 28000.0,
                        half_width: 0.0,
                    },
                ],
            },
        ]
    }

    #[test]
    fn renders_well_formed_svg() {
        let svg = render(
            "Figure 4a",
            "processors",
            "total useful work",
            &sample(),
            XScale::Log2,
        );
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        // 6 data points → 6 markers.
        assert_eq!(svg.matches("<circle").count(), 6);
        // Only series 1 has non-zero whiskers (3), plus the 2 axes and
        // legend/tick lines — just check whisker color pairing exists.
        assert!(svg.contains("Figure 4a"));
        assert!(svg.contains("processors"));
    }

    #[test]
    fn escapes_markup_in_labels() {
        let svg = render("a < b & c", "x", "y", &sample(), XScale::Linear);
        assert!(svg.contains("a &lt; b &amp; c"));
        assert!(svg.contains("MTTF=1 &amp; more"));
        assert!(!svg.contains("a < b"));
    }

    #[test]
    fn linear_and_log_scales_differ() {
        let lin = render("t", "x", "y", &sample(), XScale::Linear);
        let log = render("t", "x", "y", &sample(), XScale::Log2);
        assert_ne!(lin, log);
        // In log2 the three x positions are equidistant: extract circle
        // cx values of the second series (zero whiskers simplify).
        let cxs: Vec<f64> = log
            .lines()
            .filter(|l| l.contains("<circle"))
            .filter_map(|l| {
                let i = l.find("cx=\"")? + 4;
                let j = l[i..].find('"')? + i;
                l[i..j].parse().ok()
            })
            .collect();
        let (a, b, c) = (cxs[0], cxs[1], cxs[2]);
        assert!(((b - a) - (c - b)).abs() < 0.5, "log2 spacing {a} {b} {c}");
    }

    #[test]
    fn tick_formatting() {
        assert_eq!(format_tick(8192.0), "8192");
        assert_eq!(format_tick(131072.0), "131K");
        assert_eq!(format_tick(1_048_576.0), "1.0M");
        assert_eq!(format_tick(0.525), "0.525");
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn rejects_empty_figure() {
        let _ = render("t", "x", "y", &[], XScale::Linear);
    }

    #[test]
    #[should_panic(expected = "positive x")]
    fn log_rejects_nonpositive() {
        let s = vec![Series {
            label: "s".into(),
            points: vec![Point {
                x: 0.0,
                y: 1.0,
                half_width: 0.0,
            }],
        }];
        let _ = render("t", "x", "y", &s, XScale::Log2);
    }
}
