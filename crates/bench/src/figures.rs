//! Sweep definitions for every figure of the paper's evaluation
//! (Section 7). Each function returns the complete job description that
//! [`crate::sweep::run_sweep`] evaluates; the figure binaries are thin
//! wrappers around these.

use crate::sweep::{Cell, Metric};
use ckpt_core::config::{CoordinationMode, ErrorPropagation, GenericCorrelated};
use ckpt_core::SystemConfig;
use ckpt_des::SimTime;

/// A fully described figure: title, axis name, metric, series labels and
/// the cells to evaluate.
#[derive(Debug, Clone)]
pub struct FigureSpec {
    /// Human-readable title (matches the paper's caption).
    pub title: String,
    /// Name of the x axis.
    pub x_name: String,
    /// Metric plotted on the y axis.
    pub metric: Metric,
    /// Series labels.
    pub labels: Vec<String>,
    /// Cells to evaluate.
    pub cells: Vec<Cell>,
}

/// The paper's processor axis: 8K to 256K in powers of two.
pub const PROC_AXIS: [u64; 6] = [8_192, 16_384, 32_768, 65_536, 131_072, 262_144];
/// The paper's checkpoint-interval axis, minutes.
pub const INTERVAL_AXIS_MIN: [f64; 5] = [15.0, 30.0, 60.0, 120.0, 240.0];

fn base(procs: u64) -> ckpt_core::config::SystemConfigBuilder {
    SystemConfig::builder().processors(procs)
}

/// Figure 4a: total useful work vs. processors for MTTF ∈
/// {0.125,…,2} years (MTTR 10 min, interval 30 min).
#[must_use]
pub fn fig4a() -> FigureSpec {
    let mttfs = [0.125, 0.25, 0.5, 1.0, 2.0];
    let mut cells = Vec::new();
    let mut labels = Vec::new();
    for (s, &mttf) in mttfs.iter().enumerate() {
        labels.push(format!("MTTF (yrs) = {mttf}"));
        for &p in &PROC_AXIS {
            cells.push(Cell {
                series: s,
                x: p as f64,
                config: base(p)
                    .mttf_per_node(SimTime::from_years(mttf))
                    .build()
                    .expect("valid fig4a config"),
            });
        }
    }
    FigureSpec {
        title: "Figure 4a: Useful Work vs Number of Processors for different MTTFs \
                (MTTR = 10 mins, checkpoint interval = 30 mins)"
            .into(),
        x_name: "processors".into(),
        metric: Metric::TotalUsefulWork,
        labels,
        cells,
    }
}

/// Figure 4b: total useful work vs. checkpoint interval for each
/// processor count (MTTF 1 y, MTTR 10 min).
#[must_use]
pub fn fig4b() -> FigureSpec {
    let mut cells = Vec::new();
    let mut labels = Vec::new();
    for (s, &p) in PROC_AXIS.iter().enumerate() {
        labels.push(format!("processors = {p}"));
        for &mins in &INTERVAL_AXIS_MIN {
            cells.push(Cell {
                series: s,
                x: mins,
                config: base(p)
                    .checkpoint_interval(SimTime::from_mins(mins))
                    .build()
                    .expect("valid fig4b config"),
            });
        }
    }
    FigureSpec {
        title: "Figure 4b: Useful Work vs Checkpoint Interval for different numbers \
                of processors (MTTF per node = 1 yr, MTTR = 10 mins)"
            .into(),
        x_name: "interval_mins".into(),
        metric: Metric::TotalUsefulWork,
        labels,
        cells,
    }
}

/// Figure 4c: total useful work vs. processors for MTTR ∈ {10,20,40,80}
/// minutes (MTTF 1 y, interval 30 min).
#[must_use]
pub fn fig4c() -> FigureSpec {
    let mttrs = [10.0, 20.0, 40.0, 80.0];
    let mut cells = Vec::new();
    let mut labels = Vec::new();
    for (s, &mttr) in mttrs.iter().enumerate() {
        labels.push(format!("MTTR (mins) = {mttr}"));
        for &p in &PROC_AXIS {
            cells.push(Cell {
                series: s,
                x: p as f64,
                config: base(p)
                    .mttr_system(SimTime::from_mins(mttr))
                    .build()
                    .expect("valid fig4c config"),
            });
        }
    }
    FigureSpec {
        title: "Figure 4c: Useful Work vs Number of Processors for different MTTRs \
                (MTTF per node = 1 yr, chkpt_interval = 30 mins)"
            .into(),
        x_name: "processors".into(),
        metric: Metric::TotalUsefulWork,
        labels,
        cells,
    }
}

/// Figure 4d: total useful work vs. interval for MTTR ∈ {10,20,40,80}
/// minutes (64K processors, MTTF 1 y).
#[must_use]
pub fn fig4d() -> FigureSpec {
    let mttrs = [10.0, 20.0, 40.0, 80.0];
    let mut cells = Vec::new();
    let mut labels = Vec::new();
    for (s, &mttr) in mttrs.iter().enumerate() {
        labels.push(format!("MTTR (mins) = {mttr}"));
        for &mins in &INTERVAL_AXIS_MIN {
            cells.push(Cell {
                series: s,
                x: mins,
                config: base(65_536)
                    .mttr_system(SimTime::from_mins(mttr))
                    .checkpoint_interval(SimTime::from_mins(mins))
                    .build()
                    .expect("valid fig4d config"),
            });
        }
    }
    FigureSpec {
        title: "Figure 4d: Useful Work vs Checkpoint Interval for different MTTRs \
                (MTTF per node = 1 yr, number of processors = 65536)"
            .into(),
        x_name: "interval_mins".into(),
        metric: Metric::TotalUsefulWork,
        labels,
        cells,
    }
}

/// Figure 4e: total useful work vs. processors for each checkpoint
/// interval (MTTF 1 y, MTTR 10 min).
#[must_use]
pub fn fig4e() -> FigureSpec {
    let mut cells = Vec::new();
    let mut labels = Vec::new();
    for (s, &mins) in INTERVAL_AXIS_MIN.iter().enumerate() {
        labels.push(format!("chkpt_interval (mins) = {mins}"));
        for &p in &PROC_AXIS {
            cells.push(Cell {
                series: s,
                x: p as f64,
                config: base(p)
                    .checkpoint_interval(SimTime::from_mins(mins))
                    .build()
                    .expect("valid fig4e config"),
            });
        }
    }
    FigureSpec {
        title: "Figure 4e: Useful Work vs Number of Processors for different \
                checkpoint intervals (MTTF per node = 1 yr, MTTR = 10 mins)"
            .into(),
        x_name: "processors".into(),
        metric: Metric::TotalUsefulWork,
        labels,
        cells,
    }
}

/// Figure 4f: total useful work vs. interval for MTTF ∈ {1,…,16} years
/// (64K processors, MTTR 10 min).
///
/// The legend values are interpreted as **per-processor** MTTFs
/// (per-node MTTF = value / 8): only that reading reproduces the job-unit
/// sequence the paper quotes for the MTTF-8 curve (43000 → 40000 → 30000
/// at 15/30/60 minutes), which corresponds to a 1-year per-node MTTF.
#[must_use]
pub fn fig4f() -> FigureSpec {
    let mttfs = [1.0, 2.0, 4.0, 8.0, 16.0];
    let mut cells = Vec::new();
    let mut labels = Vec::new();
    for (s, &mttf) in mttfs.iter().enumerate() {
        labels.push(format!("MTTF per node (yrs) = {mttf}"));
        for &mins in &INTERVAL_AXIS_MIN {
            cells.push(Cell {
                series: s,
                x: mins,
                config: base(65_536)
                    .mttf_per_node(SimTime::from_years(mttf / 8.0))
                    .checkpoint_interval(SimTime::from_mins(mins))
                    .build()
                    .expect("valid fig4f config"),
            });
        }
    }
    FigureSpec {
        title: "Figure 4f: Useful Work vs Checkpoint Interval for different MTTFs \
                (MTTR = 10 mins, number of processors = 65536)"
            .into(),
        x_name: "interval_mins".into(),
        metric: Metric::TotalUsefulWork,
        labels,
        cells,
    }
}

/// Figures 4g/4h: total useful work vs. node count with 32 (g) or 16 (h)
/// processors per node, MTTF ∈ {1,2} years.
#[must_use]
pub fn fig4gh(procs_per_node: u32) -> FigureSpec {
    let nodes_axis: &[u64] = if procs_per_node == 32 {
        &[8_192, 16_384, 32_768]
    } else {
        &[8_192, 16_384, 32_768, 65_536]
    };
    let mut cells = Vec::new();
    let mut labels = Vec::new();
    for (s, &mttf) in [1.0, 2.0].iter().enumerate() {
        labels.push(format!("MTTF per node (yrs) = {mttf}"));
        for &nodes in nodes_axis {
            cells.push(Cell {
                series: s,
                x: nodes as f64,
                config: base(nodes * u64::from(procs_per_node))
                    .procs_per_node(procs_per_node)
                    .mttf_per_node(SimTime::from_years(mttf))
                    .build()
                    .expect("valid fig4gh config"),
            });
        }
    }
    let letter = if procs_per_node == 32 { 'g' } else { 'h' };
    FigureSpec {
        title: format!(
            "Figure 4{letter}: Variation of Total Useful Work with Number of Nodes, \
             Number of Processors/Node = {procs_per_node}"
        ),
        x_name: "nodes".into(),
        metric: Metric::TotalUsefulWork,
        labels,
        cells,
    }
}

/// Figure 5: useful work fraction vs. processors (1 → 2³⁰) under
/// coordination only — no failures, no timeout — for MTTQ ∈
/// {10, 2, 0.5} s.
#[must_use]
pub fn fig5() -> FigureSpec {
    let mttqs = [10.0, 2.0, 0.5];
    // Powers of four from 1 to 2^30, the paper's x axis.
    let procs: Vec<u64> = (0..=15).map(|k| 1u64 << (2 * k)).collect();
    let mut cells = Vec::new();
    let mut labels = Vec::new();
    for (s, &mttq) in mttqs.iter().enumerate() {
        labels.push(format!("MTTQ={mttq}s"));
        for &p in &procs {
            cells.push(Cell {
                series: s,
                x: p as f64,
                config: SystemConfig::builder()
                    .processors(p)
                    .procs_per_node(1)
                    .failures_enabled(false)
                    .coordination(CoordinationMode::MaxOfN)
                    .mttq(SimTime::from_secs(mttq))
                    .build()
                    .expect("valid fig5 config"),
            });
        }
    }
    FigureSpec {
        title: "Figure 5: Useful work fraction with coordination \
                (checkpoint interval = 30 min; no timeouts or failures)"
            .into(),
        x_name: "processors".into(),
        metric: Metric::UsefulWorkFraction,
        labels,
        cells,
    }
}

/// Figure 6: useful work fraction vs. processors with coordination,
/// timeouts and failures (MTTF 3 y, MTTQ 10 s, interval 30 min).
#[must_use]
pub fn fig6() -> FigureSpec {
    let mut cells = Vec::new();
    let mut labels = Vec::new();
    let mut add_series = |label: &str, mode: CoordinationMode, timeout: Option<f64>| {
        let s = labels.len();
        labels.push(label.to_string());
        for &p in &PROC_AXIS {
            cells.push(Cell {
                series: s,
                x: p as f64,
                config: base(p)
                    .mttf_per_node(SimTime::from_years(3.0))
                    .coordination(mode)
                    .timeout(timeout.map(SimTime::from_secs))
                    .build()
                    .expect("valid fig6 config"),
            });
        }
    };
    add_series("no coordination", CoordinationMode::SystemExponential, None);
    add_series("no timeout", CoordinationMode::MaxOfN, None);
    for t in [120.0, 100.0, 80.0, 60.0, 40.0, 20.0] {
        add_series(&format!("timeout={t}s"), CoordinationMode::MaxOfN, Some(t));
    }
    FigureSpec {
        title: "Figure 6: Useful work fraction with coordination and timeout \
                (MTTF per node = 3 yrs, checkpoint interval = 30 min)"
            .into(),
        x_name: "processors".into(),
        metric: Metric::UsefulWorkFraction,
        labels,
        cells,
    }
}

/// Figure 7: useful work fraction vs. probability of correlated failure
/// for `frate_correlated_factor` ∈ {400, 800, 1600} (256K processors,
/// MTTF 3 y, window 3 min).
#[must_use]
pub fn fig7() -> FigureSpec {
    let factors = [400.0, 800.0, 1_600.0];
    let probs = [0.0, 0.05, 0.10, 0.15, 0.20];
    let mut cells = Vec::new();
    let mut labels = Vec::new();
    for (s, &r) in factors.iter().enumerate() {
        labels.push(format!("frate_correlated_times={r}"));
        for &pe in &probs {
            cells.push(Cell {
                series: s,
                x: pe,
                config: base(262_144)
                    .mttf_per_node(SimTime::from_years(3.0))
                    .error_propagation(Some(ErrorPropagation {
                        probability: pe,
                        factor: r,
                        window: 180.0,
                    }))
                    .build()
                    .expect("valid fig7 config"),
            });
        }
    }
    FigureSpec {
        title: "Figure 7: Useful work fraction under correlated failures due to \
                error propagation (MTTF per node = 3 yrs, 256K processors, \
                window = 3 min)"
            .into(),
        x_name: "prob_correlated".into(),
        metric: Metric::UsefulWorkFraction,
        labels,
        cells,
    }
}

/// Figure 8: useful work fraction vs. processors with and without
/// generic correlated failures (α = 0.0025, r = 400, MTTF 3 y).
#[must_use]
pub fn fig8() -> FigureSpec {
    let mut cells = Vec::new();
    let labels = vec![
        "without correlated failure".to_string(),
        "with correlated failure".to_string(),
    ];
    for &p in &PROC_AXIS {
        cells.push(Cell {
            series: 0,
            x: p as f64,
            config: base(p)
                .mttf_per_node(SimTime::from_years(3.0))
                .build()
                .expect("valid fig8 config"),
        });
        cells.push(Cell {
            series: 1,
            x: p as f64,
            config: base(p)
                .mttf_per_node(SimTime::from_years(3.0))
                .generic_correlated(Some(GenericCorrelated {
                    coefficient: 0.0025,
                    factor: 400.0,
                }))
                .build()
                .expect("valid fig8 config"),
        });
    }
    FigureSpec {
        title: "Figure 8: Impact of generic correlated failures \
                (MTTF per node = 3 yrs, coefficient = 0.0025, factor = 400, \
                checkpoint interval = 30 min)"
            .into(),
        x_name: "processors".into(),
        metric: Metric::UsefulWorkFraction,
        labels,
        cells,
    }
}

/// Extension experiment (the paper mentions this result with "figures
/// not shown here"): the coordination effect is proportional to the
/// checkpoint frequency. Coordination-only (no failures, MTTQ 10 s),
/// useful work fraction vs. processors for several intervals.
#[must_use]
pub fn ext_frequency() -> FigureSpec {
    let intervals = [15.0, 30.0, 60.0, 120.0];
    let procs: Vec<u64> = (3..=15).map(|k| 1u64 << (2 * k)).collect();
    let mut cells = Vec::new();
    let mut labels = Vec::new();
    for (s, &mins) in intervals.iter().enumerate() {
        labels.push(format!("interval={mins}min"));
        for &p in &procs {
            cells.push(Cell {
                series: s,
                x: p as f64,
                config: SystemConfig::builder()
                    .processors(p)
                    .procs_per_node(1)
                    .failures_enabled(false)
                    .coordination(CoordinationMode::MaxOfN)
                    .checkpoint_interval(SimTime::from_mins(mins))
                    .build()
                    .expect("valid ext_frequency config"),
            });
        }
    }
    FigureSpec {
        title: "Extension: coordination effect vs checkpoint frequency \
                (no failures, MTTQ = 10 s; the paper's 'figures not shown')"
            .into(),
        x_name: "processors".into(),
        metric: Metric::UsefulWorkFraction,
        labels,
        cells,
    }
}

/// Extension experiment: coordination time grows proportionally to MTTQ
/// (the second of the paper's "figures not shown"). Useful work fraction
/// vs. MTTQ at a fixed machine size, coordination only.
#[must_use]
pub fn ext_mttq() -> FigureSpec {
    let mttqs = [0.5, 1.0, 2.0, 4.0, 6.0, 8.0, 10.0];
    let sizes = [65_536u64, 1_048_576, 16_777_216];
    let mut cells = Vec::new();
    let mut labels = Vec::new();
    for (s, &n) in sizes.iter().enumerate() {
        labels.push(format!("processors={n}"));
        for &mttq in &mttqs {
            cells.push(Cell {
                series: s,
                x: mttq,
                config: SystemConfig::builder()
                    .processors(n)
                    .procs_per_node(1)
                    .failures_enabled(false)
                    .coordination(CoordinationMode::MaxOfN)
                    .mttq(SimTime::from_secs(mttq))
                    .build()
                    .expect("valid ext_mttq config"),
            });
        }
    }
    FigureSpec {
        title: "Extension: coordination effect vs MTTQ \
                (no failures, interval = 30 min)"
            .into(),
        x_name: "mttq_secs".into(),
        metric: Metric::UsefulWorkFraction,
        labels,
        cells,
    }
}

/// Every figure spec, keyed by its id (used by the `all` binary).
#[must_use]
pub fn all_figures() -> Vec<(&'static str, FigureSpec)> {
    vec![
        ("fig4a", fig4a()),
        ("fig4b", fig4b()),
        ("fig4c", fig4c()),
        ("fig4d", fig4d()),
        ("fig4e", fig4e()),
        ("fig4f", fig4f()),
        ("fig4g", fig4gh(32)),
        ("fig4h", fig4gh(16)),
        ("fig5", fig5()),
        ("fig6", fig6()),
        ("fig7", fig7()),
        ("fig8", fig8()),
        ("ext_frequency", ext_frequency()),
        ("ext_mttq", ext_mttq()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_figure_is_well_formed() {
        for (id, spec) in all_figures() {
            assert!(!spec.labels.is_empty(), "{id} has no series");
            assert!(!spec.cells.is_empty(), "{id} has no cells");
            let per_series = spec.cells.len() / spec.labels.len();
            assert_eq!(
                spec.cells.len(),
                per_series * spec.labels.len(),
                "{id}: cells must tile the series"
            );
            for c in &spec.cells {
                assert!(c.series < spec.labels.len(), "{id}: series out of range");
            }
        }
    }

    #[test]
    fn fig4a_matches_paper_parameters() {
        let f = fig4a();
        assert_eq!(f.labels.len(), 5);
        assert_eq!(f.cells.len(), 30);
        let c = &f.cells[0].config;
        assert_eq!(c.mttr_system().as_mins(), 10.0);
        assert_eq!(c.checkpoint_interval().as_mins(), 30.0);
        assert!((c.mttf_per_node().as_years() - 0.125).abs() < 1e-9);
    }

    #[test]
    fn fig5_disables_failures_and_uses_max_of_n() {
        let f = fig5();
        for c in &f.cells {
            assert!(!c.config.failures_enabled());
            assert_eq!(c.config.coordination(), CoordinationMode::MaxOfN);
        }
        // x axis reaches the paper's 2^30.
        let max_x = f.cells.iter().map(|c| c.x).fold(0.0f64, f64::max);
        assert_eq!(max_x, (1u64 << 30) as f64);
    }

    #[test]
    fn fig6_has_eight_series() {
        let f = fig6();
        assert_eq!(f.labels.len(), 8);
        assert_eq!(f.labels[0], "no coordination");
        assert!(f.labels.iter().any(|l| l == "timeout=20s"));
    }

    #[test]
    fn fig7_prob_zero_has_propagation_disabled_effectively() {
        let f = fig7();
        let zero = f.cells.iter().find(|c| c.x == 0.0).unwrap();
        let ep = zero.config.error_propagation().unwrap();
        assert_eq!(ep.probability, 0.0);
    }

    #[test]
    fn fig8_doubles_failure_rate() {
        let f = fig8();
        let with = f.cells.iter().find(|c| c.series == 1).unwrap();
        assert!(
            (with.config.generic_correlated_rate() - with.config.compute_failure_rate()).abs()
                < 1e-15
        );
    }
}
