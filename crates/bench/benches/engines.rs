//! Criterion benchmarks of the two simulation engines: wall-clock cost
//! of simulating the base system, per engine and per scale.

use ckpt_core::config::SystemConfig;
use ckpt_core::direct::DirectSimulator;
use ckpt_core::san_model::{CheckpointSan, RunOptions};
use ckpt_des::SimTime;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn direct_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("direct_engine_1000h");
    for procs in [8_192u64, 65_536, 262_144] {
        let cfg = SystemConfig::builder().processors(procs).build().unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(procs), &cfg, |b, cfg| {
            b.iter(|| {
                let mut sim = DirectSimulator::new(cfg, 1);
                sim.run(SimTime::from_hours(1_000.0));
                sim.metrics().useful_work_fraction()
            });
        });
    }
    group.finish();
}

fn san_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("san_engine_1000h");
    group.sample_size(10);
    for procs in [8_192u64, 65_536] {
        let cfg = SystemConfig::builder().processors(procs).build().unwrap();
        let model = CheckpointSan::build(&cfg).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(procs), &model, |b, model| {
            b.iter(|| {
                model
                    .run(&RunOptions {
                        seed: 1,
                        transient: SimTime::ZERO,
                        horizon: SimTime::from_hours(1_000.0),
                        ..RunOptions::default()
                    })
                    .unwrap()
                    .metrics
                    .useful_work_fraction()
            });
        });
    }
    group.finish();
}

fn coordination_modes(c: &mut Criterion) {
    use ckpt_core::config::CoordinationMode;
    let mut group = c.benchmark_group("coordination_mode_1000h");
    for (name, mode) in [
        ("fixed", CoordinationMode::FixedQuiesce),
        ("system_exp", CoordinationMode::SystemExponential),
        ("max_of_n", CoordinationMode::MaxOfN),
    ] {
        let cfg = SystemConfig::builder()
            .coordination(mode)
            .failures_enabled(false)
            .build()
            .unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| {
                let mut sim = DirectSimulator::new(cfg, 1);
                sim.run(SimTime::from_hours(1_000.0));
                sim.events_processed()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, direct_engine, san_engine, coordination_modes);
criterion_main!(benches);
