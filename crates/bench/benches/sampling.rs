//! Criterion benchmarks of the statistical substrate: the closed-form
//! max-of-n-exponentials sampler (the coordination time) and the
//! cancellable event queue.

use ckpt_des::{EventQueue, SimRng, SimTime};
use ckpt_stats::dist::sample_max_exponential;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn max_exponential_sampler(c: &mut Criterion) {
    let mut group = c.benchmark_group("sample_max_exponential");
    for n in [64u64, 65_536, 1 << 30] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut rng = SimRng::seed_from_u64(7);
            b.iter(|| black_box(sample_max_exponential(n, 0.1, &mut rng)));
        });
    }
    group.finish();
}

fn event_queue_churn(c: &mut Criterion) {
    c.bench_function("event_queue_schedule_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let mut rng = SimRng::seed_from_u64(3);
            for i in 0..1_000u32 {
                q.schedule(SimTime::from_secs(rng.exponential(1.0) + f64::from(i)), i);
            }
            let mut sum = 0u64;
            while let Some(ev) = q.pop() {
                sum += u64::from(ev.into_payload());
            }
            black_box(sum)
        });
    });

    c.bench_function("event_queue_cancel_heavy_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let mut ids = Vec::with_capacity(1_000);
            for i in 0..1_000u32 {
                ids.push(q.schedule(SimTime::from_secs(f64::from(i)), i));
            }
            for id in ids.iter().step_by(2) {
                q.cancel(*id);
            }
            let mut count = 0u32;
            while q.pop().is_some() {
                count += 1;
            }
            black_box(count)
        });
    });
}

criterion_group!(benches, max_exponential_sampler, event_queue_churn);
criterion_main!(benches);
