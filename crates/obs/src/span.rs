//! Hierarchical telemetry spans: `experiment → sweep-point →
//! replication → phase`.
//!
//! A [`SpanRecord`] is a finished, owned node of the span tree — the
//! post-hoc record of one nested unit of work, carrying wall time,
//! event counts, and RNG-draw counts. Spans are *provenance*, not
//! results: wall nanoseconds legitimately differ between runs and
//! worker counts, so span trees are serialized under the `provenance`
//! section of telemetry documents and are never part of bit-identity
//! contracts (the deterministic counters ride in
//! [`crate::telemetry::ReplicationTelemetry`]).
//!
//! There is no live global collector: the experiment layer assembles
//! trees from data it already owns (per-replication profiles, the
//! feature-gated phase profiler, sweep cell timings), in
//! replication-index order, so span assembly adds nothing to the hot
//! path — the in-loop cost is the `prof`/`telemetry` features' own
//! zero-when-disabled probes.

use crate::json_escape;

/// The level of a span in the fixed hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A whole experiment (one set of replications of one config).
    Experiment,
    /// One x-value of one series in a sweep.
    SweepPoint,
    /// One replication.
    Replication,
    /// One instrumented hot phase inside a replication (only present
    /// in `prof` builds).
    Phase,
}

impl SpanKind {
    /// Stable snake_case name used in JSON.
    #[must_use]
    pub fn key(self) -> &'static str {
        match self {
            SpanKind::Experiment => "experiment",
            SpanKind::SweepPoint => "sweep_point",
            SpanKind::Replication => "replication",
            SpanKind::Phase => "phase",
        }
    }
}

/// One finished span: a labelled node with measurements and children.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Hierarchy level.
    pub kind: SpanKind,
    /// Human-readable label (series/x for sweep points, `rep N` for
    /// replications, the phase name for phases).
    pub label: String,
    /// Wall nanoseconds spent in this span (0 when unmeasured).
    pub wall_nanos: u64,
    /// Simulation events processed inside this span.
    pub events: u64,
    /// Raw RNG words drawn inside this span (0 without the `telemetry`
    /// feature).
    pub rng_draws: u64,
    /// Child spans, in deterministic (index) order.
    pub children: Vec<SpanRecord>,
}

impl SpanRecord {
    /// Creates a leaf span; attach children by pushing into
    /// [`SpanRecord::children`].
    #[must_use]
    pub fn new(kind: SpanKind, label: impl Into<String>) -> SpanRecord {
        SpanRecord {
            kind,
            label: label.into(),
            wall_nanos: 0,
            events: 0,
            rng_draws: 0,
            children: Vec::new(),
        }
    }

    /// Total spans in this subtree (including self).
    #[must_use]
    pub fn len(&self) -> usize {
        1 + self.children.iter().map(SpanRecord::len).sum::<usize>()
    }

    /// Always false: a span tree contains at least its root.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Deterministic JSON object (fixed key order, children recursed
    /// in stored order).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"kind\":\"{}\",\"label\":\"{}\",\"wall_nanos\":{},\"events\":{},\"rng_draws\":{},\"children\":[",
            self.kind.key(),
            json_escape(&self.label),
            self.wall_nanos,
            self.events,
            self.rng_draws,
        );
        for (i, child) in self.children.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&child.to_json());
        }
        s.push_str("]}");
        s
    }
}

/// Serializes a list of root spans as a JSON array.
#[must_use]
pub fn spans_json(spans: &[SpanRecord]) -> String {
    let mut s = String::from("[");
    for (i, span) in spans.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&span.to_json());
    }
    s.push(']');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_serializes_depth_first() {
        let mut root = SpanRecord::new(SpanKind::Experiment, "exp");
        root.wall_nanos = 5;
        let mut rep = SpanRecord::new(SpanKind::Replication, "rep 0");
        rep.events = 42;
        rep.children
            .push(SpanRecord::new(SpanKind::Phase, "queue_ops"));
        root.children.push(rep);
        assert_eq!(root.len(), 3);
        let j = root.to_json();
        assert!(j.starts_with("{\"kind\":\"experiment\",\"label\":\"exp\",\"wall_nanos\":5,"));
        assert!(j.contains("\"kind\":\"replication\",\"label\":\"rep 0\""));
        assert!(j.contains("\"kind\":\"phase\",\"label\":\"queue_ops\""));
        assert_eq!(
            spans_json(&[root.clone(), root])
                .matches("experiment")
                .count(),
            2
        );
    }
}
