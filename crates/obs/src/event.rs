//! The model-level event vocabulary and the phase taxonomy.

use std::fmt;

/// One checkpoint-protocol event, as emitted by either engine.
///
/// This is the common vocabulary the direct simulator records natively
/// and the SAN engine derives from its activity firings, so traces from
/// the two engines can be diffed entry by entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelEvent {
    /// Master initiated a checkpoint (quiesce broadcast).
    CheckpointInitiated,
    /// All nodes reported ready; dump may begin.
    CoordinationComplete,
    /// The checkpoint dump finished (checkpoint became recoverable).
    CheckpointCompleted,
    /// The checkpoint was written out to the file system.
    CheckpointOnFs,
    /// A checkpoint attempt was abandoned.
    CheckpointAborted(AbortReason),
    /// A compute-node (or generic correlated) failure rolled the system
    /// back.
    Rollback {
        /// Whether the recovery uses the I/O-node buffered copy.
        from_buffer: bool,
    },
    /// An I/O-node failure occurred.
    IoFailure,
    /// A failure interrupted an ongoing recovery.
    RecoveryInterrupted,
    /// Recovery completed; execution resumed.
    RecoveryComplete,
    /// Severe-failure escalation: whole-system reboot started.
    RebootStarted,
    /// Reboot finished.
    RebootComplete,
    /// A correlated-failure window opened.
    WindowOpened,
    /// The correlated-failure window closed.
    WindowClosed,
    /// A *harness*-level fault: the worker executing this replication
    /// panicked and the supervisor intervened. Unlike every other
    /// variant this is not emitted by a simulation engine — the
    /// experiment runner injects it into the replication's recording so
    /// supervised retries leave an audit trail in traces and metrics.
    WorkerFault {
        /// Whether the supervisor's single same-seed retry succeeded
        /// (`true`) or the fault was reported as fatal (`false`).
        retried: bool,
    },
}

impl ModelEvent {
    /// Stable machine-readable name (the `event` field of trace JSONL).
    #[must_use]
    pub fn key(&self) -> &'static str {
        match self {
            ModelEvent::CheckpointInitiated => "checkpoint_initiated",
            ModelEvent::CoordinationComplete => "coordination_complete",
            ModelEvent::CheckpointCompleted => "checkpoint_completed",
            ModelEvent::CheckpointOnFs => "checkpoint_on_fs",
            ModelEvent::CheckpointAborted(_) => "checkpoint_aborted",
            ModelEvent::Rollback { .. } => "rollback",
            ModelEvent::IoFailure => "io_failure",
            ModelEvent::RecoveryInterrupted => "recovery_interrupted",
            ModelEvent::RecoveryComplete => "recovery_complete",
            ModelEvent::RebootStarted => "reboot_started",
            ModelEvent::RebootComplete => "reboot_complete",
            ModelEvent::WindowOpened => "window_opened",
            ModelEvent::WindowClosed => "window_closed",
            ModelEvent::WorkerFault { .. } => "worker_fault",
        }
    }

    /// Stable counter key: like [`key`](Self::key) but with abort
    /// reasons and rollback sources split out, so a
    /// [`MetricsRegistry`](crate::MetricsRegistry) tallies them
    /// separately.
    #[must_use]
    pub fn counter_key(&self) -> &'static str {
        match self {
            ModelEvent::CheckpointAborted(r) => match r {
                AbortReason::Timeout => "checkpoint_aborted_timeout",
                AbortReason::MasterFailure => "checkpoint_aborted_master",
                AbortReason::IoFailure => "checkpoint_aborted_io",
                AbortReason::ComputeFailure => "checkpoint_aborted_compute",
            },
            ModelEvent::Rollback { from_buffer: true } => "rollback_from_buffer",
            ModelEvent::Rollback { from_buffer: false } => "rollback_from_fs",
            ModelEvent::WorkerFault { retried: true } => "worker_fault_retried",
            ModelEvent::WorkerFault { retried: false } => "worker_fault_fatal",
            other => other.key(),
        }
    }
}

/// Why a checkpoint attempt was abandoned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortReason {
    /// The master timed out waiting for 'ready' responses.
    Timeout,
    /// The master node failed mid-protocol.
    MasterFailure,
    /// An I/O node failed while receiving or writing the checkpoint.
    IoFailure,
    /// A compute-node failure rolled the system back mid-protocol.
    ComputeFailure,
}

impl AbortReason {
    /// Stable machine-readable name (the `reason` field of trace JSONL).
    #[must_use]
    pub fn key(&self) -> &'static str {
        match self {
            AbortReason::Timeout => "timeout",
            AbortReason::MasterFailure => "master_failure",
            AbortReason::IoFailure => "io_failure",
            AbortReason::ComputeFailure => "compute_failure",
        }
    }
}

impl fmt::Display for ModelEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelEvent::CheckpointInitiated => write!(f, "checkpoint initiated"),
            ModelEvent::CoordinationComplete => write!(f, "coordination complete"),
            ModelEvent::CheckpointCompleted => write!(f, "checkpoint completed (buffered)"),
            ModelEvent::CheckpointOnFs => write!(f, "checkpoint on file system"),
            ModelEvent::CheckpointAborted(r) => write!(f, "checkpoint aborted ({r:?})"),
            ModelEvent::Rollback { from_buffer } => {
                write!(
                    f,
                    "rollback (recover from {})",
                    if *from_buffer {
                        "buffer"
                    } else {
                        "file system"
                    }
                )
            }
            ModelEvent::IoFailure => write!(f, "I/O-node failure"),
            ModelEvent::RecoveryInterrupted => write!(f, "recovery interrupted"),
            ModelEvent::RecoveryComplete => write!(f, "recovery complete"),
            ModelEvent::RebootStarted => write!(f, "system reboot started"),
            ModelEvent::RebootComplete => write!(f, "system reboot complete"),
            ModelEvent::WindowOpened => write!(f, "correlated window opened"),
            ModelEvent::WindowClosed => write!(f, "correlated window closed"),
            ModelEvent::WorkerFault { retried } => {
                write!(
                    f,
                    "worker fault ({})",
                    if *retried {
                        "recovered by retry"
                    } else {
                        "fatal"
                    }
                )
            }
        }
    }
}

/// Coarse system phases, used to break down where simulated time went.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseKind {
    /// Application executing (computation or application I/O).
    Executing,
    /// Quiesce broadcast + coordination (includes waiting for app I/O).
    Coordinating,
    /// Checkpoint dump to the I/O nodes (includes waiting for them).
    Dumping,
    /// Rolling back / recovering.
    Recovering,
    /// Full system reboot.
    Rebooting,
}

impl PhaseKind {
    /// All phases, in display order.
    pub const ALL: [PhaseKind; 5] = [
        PhaseKind::Executing,
        PhaseKind::Coordinating,
        PhaseKind::Dumping,
        PhaseKind::Recovering,
        PhaseKind::Rebooting,
    ];

    /// Stable machine-readable name (metrics JSON field).
    #[must_use]
    pub fn key(&self) -> &'static str {
        match self {
            PhaseKind::Executing => "executing",
            PhaseKind::Coordinating => "coordinating",
            PhaseKind::Dumping => "dumping",
            PhaseKind::Recovering => "recovering",
            PhaseKind::Rebooting => "rebooting",
        }
    }
}

/// Time spent in each [`PhaseKind`], in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PhaseTimes {
    times: [f64; 5],
}

impl PhaseTimes {
    /// Adds `dt` seconds to `phase`.
    pub fn add(&mut self, phase: PhaseKind, dt: f64) {
        self.times[phase as usize] += dt;
    }

    /// Seconds spent in `phase`.
    #[must_use]
    pub fn get(&self, phase: PhaseKind) -> f64 {
        self.times[phase as usize]
    }

    /// Total seconds across all phases.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.times.iter().sum()
    }

    /// Adds every phase of `other` into `self`.
    pub fn accumulate(&mut self, other: &PhaseTimes) {
        for (a, b) in self.times.iter_mut().zip(other.times) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_times_accumulate() {
        let mut p = PhaseTimes::default();
        p.add(PhaseKind::Executing, 10.0);
        p.add(PhaseKind::Executing, 5.0);
        p.add(PhaseKind::Recovering, 2.0);
        assert_eq!(p.get(PhaseKind::Executing), 15.0);
        assert_eq!(p.get(PhaseKind::Recovering), 2.0);
        assert_eq!(p.get(PhaseKind::Rebooting), 0.0);
        assert_eq!(p.total(), 17.0);

        let mut q = PhaseTimes::default();
        q.add(PhaseKind::Rebooting, 1.0);
        q.accumulate(&p);
        assert_eq!(q.total(), 18.0);
        assert_eq!(q.get(PhaseKind::Executing), 15.0);
    }

    #[test]
    fn keys_are_unique_and_stable() {
        let keys: Vec<_> = PhaseKind::ALL.iter().map(PhaseKind::key).collect();
        assert_eq!(
            keys,
            [
                "executing",
                "coordinating",
                "dumping",
                "recovering",
                "rebooting"
            ]
        );
    }

    #[test]
    fn counter_keys_split_reasons() {
        assert_eq!(
            ModelEvent::CheckpointAborted(AbortReason::Timeout).counter_key(),
            "checkpoint_aborted_timeout"
        );
        assert_eq!(
            ModelEvent::Rollback { from_buffer: true }.counter_key(),
            "rollback_from_buffer"
        );
        assert_eq!(ModelEvent::CheckpointOnFs.counter_key(), "checkpoint_on_fs");
        assert_eq!(
            ModelEvent::WorkerFault { retried: true }.counter_key(),
            "worker_fault_retried"
        );
        assert_eq!(
            ModelEvent::WorkerFault { retried: false }.counter_key(),
            "worker_fault_fatal"
        );
    }

    #[test]
    fn display_renders_every_variant() {
        let variants = [
            ModelEvent::CheckpointInitiated,
            ModelEvent::CoordinationComplete,
            ModelEvent::CheckpointCompleted,
            ModelEvent::CheckpointOnFs,
            ModelEvent::CheckpointAborted(AbortReason::MasterFailure),
            ModelEvent::Rollback { from_buffer: true },
            ModelEvent::Rollback { from_buffer: false },
            ModelEvent::IoFailure,
            ModelEvent::RecoveryInterrupted,
            ModelEvent::RecoveryComplete,
            ModelEvent::RebootStarted,
            ModelEvent::RebootComplete,
            ModelEvent::WindowOpened,
            ModelEvent::WindowClosed,
            ModelEvent::WorkerFault { retried: true },
            ModelEvent::WorkerFault { retried: false },
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
            assert!(!v.key().is_empty());
        }
    }
}
