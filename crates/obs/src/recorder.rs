//! The everything-on composite observer used by the experiment layer.

use crate::telemetry::ReplicationTelemetry;
use crate::{MetricsRegistry, ModelEvent, ObsEvent, Observer, PhaseKind, TraceBuffer};
use ckpt_des::telem::TelemetrySnapshot;
use ckpt_des::SimTime;

/// An observer bundling an optional [`TraceBuffer`], an optional
/// [`MetricsRegistry`], and optional [`ReplicationTelemetry`],
/// forwarding every notification to whichever are enabled. One
/// `Recorder` is attached per replication; the experiment layer
/// returns them in replication-index order so downstream merging is
/// deterministic at any `--jobs` value.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    trace: Option<TraceBuffer>,
    registry: Option<MetricsRegistry>,
    telemetry: Option<ReplicationTelemetry>,
    /// Sim time of the last failure event in the current window, for
    /// the inter-failure gap histogram.
    last_failure: Option<SimTime>,
}

impl Recorder {
    /// Creates a recorder with a trace ring of `trace_capacity` entries
    /// (if any) and a metrics registry (if `registry`).
    #[must_use]
    pub fn new(trace_capacity: Option<usize>, registry: bool) -> Recorder {
        Recorder {
            trace: trace_capacity.map(TraceBuffer::new),
            registry: registry.then(MetricsRegistry::new),
            telemetry: None,
            last_failure: None,
        }
    }

    /// Enables per-replication telemetry accumulation (event counts,
    /// inter-failure gap histogram, and a slot for the engine's
    /// hot-loop probes).
    #[must_use]
    pub fn with_telemetry(mut self) -> Recorder {
        self.telemetry = Some(ReplicationTelemetry::new());
        self
    }

    /// The recorded trace, if tracing was enabled.
    #[must_use]
    pub fn trace(&self) -> Option<&TraceBuffer> {
        self.trace.as_ref()
    }

    /// The metrics registry, if enabled.
    #[must_use]
    pub fn registry(&self) -> Option<&MetricsRegistry> {
        self.registry.as_ref()
    }

    /// The accumulated telemetry, if enabled.
    #[must_use]
    pub fn telemetry(&self) -> Option<&ReplicationTelemetry> {
        self.telemetry.as_ref()
    }

    /// Folds the engine's hot-loop probe snapshot and the
    /// replication's RNG-draw and elided-redraw counts into the
    /// telemetry (no-op when telemetry is disabled).
    pub fn absorb_engine_telemetry(
        &mut self,
        snapshot: &TelemetrySnapshot,
        rng_draws: u64,
        redraws_elided: u64,
    ) {
        if let Some(t) = &mut self.telemetry {
            t.absorb_engine(snapshot);
            t.rng_draws += rng_draws;
            t.redraws_elided += redraws_elided;
        }
    }

    /// True when a failure event advances the inter-failure clock.
    fn is_failure(event: ModelEvent) -> bool {
        matches!(
            event,
            ModelEvent::Rollback { .. } | ModelEvent::IoFailure | ModelEvent::RecoveryInterrupted
        )
    }
}

impl Observer for Recorder {
    fn on_event(&mut self, at: SimTime, event: ObsEvent<'_>) {
        if let Some(t) = &mut self.trace {
            t.on_event(at, event);
        }
        if let Some(r) = &mut self.registry {
            r.on_event(at, event);
        }
        if let Some(t) = &mut self.telemetry {
            if let ObsEvent::Model(model) = event {
                t.events += 1;
                if Recorder::is_failure(model) {
                    if let Some(prev) = self.last_failure {
                        t.failure_gaps.record((at - prev).as_secs() as u64);
                    }
                    self.last_failure = Some(at);
                }
            }
        }
    }

    fn on_window_begin(&mut self, at: SimTime, phase: PhaseKind) {
        if let Some(t) = &mut self.trace {
            t.on_window_begin(at, phase);
        }
        if let Some(r) = &mut self.registry {
            r.on_window_begin(at, phase);
        }
        // Gaps are within-window quantities: the first failure after a
        // window opens starts the clock rather than closing a gap.
        self.last_failure = None;
    }

    fn on_window_end(&mut self, at: SimTime) {
        if let Some(t) = &mut self.trace {
            t.on_window_end(at);
        }
        if let Some(r) = &mut self.registry {
            r.on_window_end(at);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelEvent;

    #[test]
    fn forwards_to_enabled_parts() {
        let mut rec = Recorder::new(Some(8), true);
        rec.on_window_begin(SimTime::ZERO, PhaseKind::Executing);
        rec.on_event(
            SimTime::from_secs(1.0),
            ObsEvent::Model(ModelEvent::CheckpointInitiated),
        );
        rec.on_window_end(SimTime::from_secs(2.0));
        assert_eq!(rec.trace().unwrap().len(), 1);
        let reg = rec.registry().unwrap();
        assert_eq!(reg.count("checkpoint_initiated"), 1);
        assert_eq!(reg.window_secs(), 2.0);
        assert!(rec.telemetry().is_none());
    }

    #[test]
    fn disabled_parts_stay_none() {
        let rec = Recorder::new(None, false);
        assert!(rec.trace().is_none());
        assert!(rec.registry().is_none());
        assert!(rec.telemetry().is_none());
    }

    #[test]
    fn telemetry_counts_events_and_failure_gaps() {
        let mut rec = Recorder::new(None, false).with_telemetry();
        rec.on_window_begin(SimTime::ZERO, PhaseKind::Executing);
        rec.on_event(
            SimTime::from_secs(100.0),
            ObsEvent::Model(ModelEvent::Rollback { from_buffer: true }),
        );
        // Non-failure events don't close gaps.
        rec.on_event(
            SimTime::from_secs(150.0),
            ObsEvent::Model(ModelEvent::CheckpointInitiated),
        );
        rec.on_event(
            SimTime::from_secs(400.0),
            ObsEvent::Model(ModelEvent::IoFailure),
        );
        rec.on_window_end(SimTime::from_secs(500.0));
        let t = rec.telemetry().unwrap();
        assert_eq!(t.events, 3);
        assert_eq!(t.failure_gaps.count(), 1);
        // The 300 s gap lands in a log bucket containing 300.
        assert!(t.failure_gaps.min() <= 300 && t.failure_gaps.max() >= 300);
    }

    #[test]
    fn window_begin_resets_the_gap_clock() {
        let mut rec = Recorder::new(None, false).with_telemetry();
        rec.on_event(
            SimTime::from_secs(10.0),
            ObsEvent::Model(ModelEvent::IoFailure),
        );
        rec.on_window_begin(SimTime::from_secs(20.0), PhaseKind::Executing);
        rec.on_event(
            SimTime::from_secs(30.0),
            ObsEvent::Model(ModelEvent::IoFailure),
        );
        // The pre-window failure must not pair with the post-window one.
        assert_eq!(rec.telemetry().unwrap().failure_gaps.count(), 0);
    }

    #[test]
    fn engine_snapshot_is_absorbed() {
        use ckpt_des::telem::TelemetrySnapshot;
        let mut snap = TelemetrySnapshot::default();
        snap.queue_depth.record(4);
        snap.band_occupancy.record(2);
        let mut rec = Recorder::new(None, false).with_telemetry();
        rec.absorb_engine_telemetry(&snap, 99, 7);
        let t = rec.telemetry().unwrap();
        assert_eq!(t.queue_depth.count(), 1);
        assert_eq!(t.band_occupancy.count(), 1);
        assert_eq!(t.rng_draws, 99);
        assert_eq!(t.redraws_elided, 7);
        // Without telemetry enabled it's a no-op, not a panic.
        let mut off = Recorder::new(None, false);
        off.absorb_engine_telemetry(&snap, 99, 7);
        assert!(off.telemetry().is_none());
    }
}
