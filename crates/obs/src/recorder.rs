//! The everything-on composite observer used by the experiment layer.

use crate::{MetricsRegistry, ObsEvent, Observer, PhaseKind, TraceBuffer};
use ckpt_des::SimTime;

/// An observer bundling an optional [`TraceBuffer`] and an optional
/// [`MetricsRegistry`], forwarding every notification to whichever are
/// enabled. One `Recorder` is attached per replication; the experiment
/// layer returns them in replication-index order so downstream merging
/// is deterministic at any `--jobs` value.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    trace: Option<TraceBuffer>,
    registry: Option<MetricsRegistry>,
}

impl Recorder {
    /// Creates a recorder with a trace ring of `trace_capacity` entries
    /// (if any) and a metrics registry (if `registry`).
    #[must_use]
    pub fn new(trace_capacity: Option<usize>, registry: bool) -> Recorder {
        Recorder {
            trace: trace_capacity.map(TraceBuffer::new),
            registry: registry.then(MetricsRegistry::new),
        }
    }

    /// The recorded trace, if tracing was enabled.
    #[must_use]
    pub fn trace(&self) -> Option<&TraceBuffer> {
        self.trace.as_ref()
    }

    /// The metrics registry, if enabled.
    #[must_use]
    pub fn registry(&self) -> Option<&MetricsRegistry> {
        self.registry.as_ref()
    }
}

impl Observer for Recorder {
    fn on_event(&mut self, at: SimTime, event: ObsEvent<'_>) {
        if let Some(t) = &mut self.trace {
            t.on_event(at, event);
        }
        if let Some(r) = &mut self.registry {
            r.on_event(at, event);
        }
    }

    fn on_window_begin(&mut self, at: SimTime, phase: PhaseKind) {
        if let Some(t) = &mut self.trace {
            t.on_window_begin(at, phase);
        }
        if let Some(r) = &mut self.registry {
            r.on_window_begin(at, phase);
        }
    }

    fn on_window_end(&mut self, at: SimTime) {
        if let Some(t) = &mut self.trace {
            t.on_window_end(at);
        }
        if let Some(r) = &mut self.registry {
            r.on_window_end(at);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelEvent;

    #[test]
    fn forwards_to_enabled_parts() {
        let mut rec = Recorder::new(Some(8), true);
        rec.on_window_begin(SimTime::ZERO, PhaseKind::Executing);
        rec.on_event(
            SimTime::from_secs(1.0),
            ObsEvent::Model(ModelEvent::CheckpointInitiated),
        );
        rec.on_window_end(SimTime::from_secs(2.0));
        assert_eq!(rec.trace().unwrap().len(), 1);
        let reg = rec.registry().unwrap();
        assert_eq!(reg.count("checkpoint_initiated"), 1);
        assert_eq!(reg.window_secs(), 2.0);
    }

    #[test]
    fn disabled_parts_stay_none() {
        let rec = Recorder::new(None, false);
        assert!(rec.trace().is_none());
        assert!(rec.registry().is_none());
    }
}
