//! The progress/heartbeat stream: one [`ProgressSink`] trait, three
//! sinks.
//!
//! Every long-running command (replication runs, sweeps, the optimize
//! search) reports through a `ProgressSink` instead of printing ad-hoc
//! heartbeats. Sinks receive [`ProgressSnapshot`]s, which split into:
//!
//! * **deterministic core** — `label`, `completed`, `total`. Producers
//!   serialize emission so snapshots arrive in strictly increasing
//!   `completed` order; [`JsonlSink`] writes *only* these fields, which
//!   is what makes a `--progress` JSONL file byte-identical across
//!   `--jobs 1` and `--jobs 8`;
//! * **provenance** — events/sec, ETA, worker count, a free-form
//!   detail string. Wall-clock-derived and scheduling-dependent, so
//!   only the (stderr, human-eyes-only) [`HumanSink`] renders them.
//!
//! The `--quiet` contract lives at sink construction: quiet (or
//! machine-output) modes drop the `HumanSink`, while an explicitly
//! requested `--progress FILE` stream stays active — like `--csv`, a
//! file the user asked for is output, not chatter.

use std::fmt::Write as _;
use std::io::Write;
use std::sync::Mutex;

use crate::json_escape;

/// One progress report. See the [module docs](self) for which fields
/// are deterministic.
#[derive(Debug, Clone, Copy)]
pub struct ProgressSnapshot<'a> {
    /// What is progressing (e.g. `"fig4"`, `"replications"`).
    pub label: &'a str,
    /// Work units finished so far.
    pub completed: usize,
    /// Total planned work units (may grow when sequential stopping
    /// schedules more replications).
    pub total: usize,
    /// Free-form human detail for the unit just finished (provenance).
    pub detail: Option<&'a str>,
    /// Recent simulation throughput (provenance).
    pub events_per_sec: Option<f64>,
    /// Estimated seconds to completion (provenance).
    pub eta_secs: Option<f64>,
    /// Live worker threads (provenance).
    pub workers: Option<usize>,
}

impl<'a> ProgressSnapshot<'a> {
    /// A snapshot with just the deterministic core filled in.
    #[must_use]
    pub fn new(label: &'a str, completed: usize, total: usize) -> ProgressSnapshot<'a> {
        ProgressSnapshot {
            label,
            completed,
            total,
            detail: None,
            events_per_sec: None,
            eta_secs: None,
            workers: None,
        }
    }
}

/// Receives progress snapshots and one-off status messages.
///
/// Implementations must tolerate concurrent calls (`Send + Sync`);
/// producers serialize `progress` calls per stream so `completed`
/// arrives strictly increasing.
pub trait ProgressSink: Send + Sync {
    /// A work unit finished (or a periodic heartbeat fired).
    fn progress(&self, snapshot: &ProgressSnapshot<'_>);

    /// A one-off human status line (e.g. a completion summary). May
    /// carry wall-clock text; deterministic sinks ignore it.
    fn message(&self, text: &str) {
        let _ = text;
    }
}

/// Discards everything — the `--quiet` terminal of the sink tree.
#[derive(Debug, Default)]
pub struct NullSink;

impl ProgressSink for NullSink {
    fn progress(&self, _snapshot: &ProgressSnapshot<'_>) {}
}

/// Renders heartbeats on stderr for a human watching the run.
#[derive(Debug, Default)]
pub struct HumanSink;

impl HumanSink {
    fn render(snapshot: &ProgressSnapshot<'_>) -> String {
        let mut line = format!(
            "  [{}/{}] {}",
            snapshot.completed,
            snapshot.total,
            snapshot.detail.unwrap_or(snapshot.label)
        );
        let mut extras: Vec<String> = Vec::new();
        if let Some(eps) = snapshot.events_per_sec {
            extras.push(format!("{:.2} Mev/s", eps / 1.0e6));
        }
        if let Some(eta) = snapshot.eta_secs {
            extras.push(format!("eta {eta:.0}s"));
        }
        if let Some(w) = snapshot.workers {
            extras.push(format!("{w} workers"));
        }
        if !extras.is_empty() {
            let _ = write!(line, " ({})", extras.join(", "));
        }
        line
    }
}

impl ProgressSink for HumanSink {
    fn progress(&self, snapshot: &ProgressSnapshot<'_>) {
        eprintln!("{}", HumanSink::render(snapshot));
    }

    fn message(&self, text: &str) {
        eprintln!("{text}");
    }
}

/// Streams deterministic progress records as JSON Lines to a writer.
///
/// Emits only the deterministic snapshot core, one object per line, so
/// the stream for a given workload is byte-identical at any worker
/// count (producers serialize emission in `completed` order). Ignores
/// [`ProgressSink::message`] — one-off messages are human chatter.
pub struct JsonlSink {
    out: Mutex<Box<dyn Write + Send>>,
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink").finish_non_exhaustive()
    }
}

impl JsonlSink {
    /// Wraps an arbitrary writer (tests use a shared buffer).
    #[must_use]
    pub fn new(out: Box<dyn Write + Send>) -> JsonlSink {
        JsonlSink {
            out: Mutex::new(out),
        }
    }

    /// Creates (truncating) `path` and streams to it.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn create(path: &str) -> std::io::Result<JsonlSink> {
        Ok(JsonlSink::new(Box::new(std::fs::File::create(path)?)))
    }

    /// One snapshot's deterministic JSONL record.
    #[must_use]
    pub fn render(snapshot: &ProgressSnapshot<'_>) -> String {
        format!(
            "{{\"kind\":\"progress\",\"label\":\"{}\",\"completed\":{},\"total\":{}}}",
            json_escape(snapshot.label),
            snapshot.completed,
            snapshot.total
        )
    }
}

impl ProgressSink for JsonlSink {
    fn progress(&self, snapshot: &ProgressSnapshot<'_>) {
        let line = JsonlSink::render(snapshot);
        let mut out = self.out.lock().expect("progress writer poisoned");
        // Flush per line: progress is a live stream, and a crashed run
        // should leave every completed unit on disk.
        let _ = writeln!(out, "{line}");
        let _ = out.flush();
    }
}

/// Fans every call out to a list of sinks.
#[derive(Default)]
pub struct MultiSink {
    sinks: Vec<Box<dyn ProgressSink>>,
}

impl std::fmt::Debug for MultiSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiSink")
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

impl MultiSink {
    /// An empty fan-out (equivalent to [`NullSink`]).
    #[must_use]
    pub fn new() -> MultiSink {
        MultiSink::default()
    }

    /// Adds a sink.
    pub fn push(&mut self, sink: Box<dyn ProgressSink>) {
        self.sinks.push(sink);
    }

    /// Number of attached sinks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// True when no sinks are attached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }
}

impl ProgressSink for MultiSink {
    fn progress(&self, snapshot: &ProgressSnapshot<'_>) {
        for sink in &self.sinks {
            sink.progress(snapshot);
        }
    }

    fn message(&self, text: &str) {
        for sink in &self.sinks {
            sink.message(text);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// A Write handle into shared memory, for asserting emitted bytes.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn jsonl_sink_emits_only_deterministic_fields() {
        let buf = SharedBuf::default();
        let sink = JsonlSink::new(Box::new(buf.clone()));
        let mut snap = ProgressSnapshot::new("fig4", 3, 20);
        snap.detail = Some("base x=4096 done");
        snap.events_per_sec = Some(1.5e6);
        snap.eta_secs = Some(12.0);
        snap.workers = Some(8);
        sink.progress(&snap);
        sink.message("sweep: done in 3.2 s");
        let got = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert_eq!(
            got,
            "{\"kind\":\"progress\",\"label\":\"fig4\",\"completed\":3,\"total\":20}\n"
        );
    }

    #[test]
    fn human_sink_renders_provenance() {
        let mut snap = ProgressSnapshot::new("fig4", 3, 20);
        snap.detail = Some("base x=4096 done");
        snap.events_per_sec = Some(1.5e6);
        snap.eta_secs = Some(12.0);
        let line = HumanSink::render(&snap);
        assert_eq!(line, "  [3/20] base x=4096 done (1.50 Mev/s, eta 12s)");
        let bare = HumanSink::render(&ProgressSnapshot::new("replications", 1, 4));
        assert_eq!(bare, "  [1/4] replications");
    }

    #[test]
    fn multi_sink_fans_out() {
        let buf = SharedBuf::default();
        let mut multi = MultiSink::new();
        assert!(multi.is_empty());
        multi.push(Box::new(NullSink));
        multi.push(Box::new(JsonlSink::new(Box::new(buf.clone()))));
        assert_eq!(multi.len(), 2);
        multi.progress(&ProgressSnapshot::new("x", 1, 2));
        multi.progress(&ProgressSnapshot::new("x", 2, 2));
        let got = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert_eq!(got.lines().count(), 2);
    }
}
