//! The streaming observation interface shared by both engines.

use crate::{ModelEvent, PhaseKind};
use ckpt_des::SimTime;

/// A structured, sim-timestamped notification from a simulation engine.
///
/// Borrowed string fields reference engine-owned names (activity and
/// reward identifiers); observers that retain them must copy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ObsEvent<'a> {
    /// A checkpoint-protocol event (emitted by both engines).
    Model(ModelEvent),
    /// The system entered a new coarse phase (emitted by both engines).
    Phase(PhaseKind),
    /// A SAN activity fired (SAN engine only).
    ActivityFired {
        /// Name of the activity that fired.
        name: &'a str,
    },
    /// An impulse reward accrued on a firing (SAN engine only).
    RewardUpdate {
        /// Name of the reward variable.
        name: &'a str,
        /// Running total of the reward after the update.
        total: f64,
    },
}

/// Receives engine notifications during a run.
///
/// Implementations must be pure consumers: an attached observer may
/// never influence simulation semantics (engines pass it copies of
/// already-computed state and consult none of its answers), so results
/// with any observer attached are bit-identical to an unobserved run.
pub trait Observer {
    /// Called for every notification, in nondecreasing `at` order.
    fn on_event(&mut self, at: SimTime, event: ObsEvent<'_>);

    /// The measurement window opened (transient discarded) with the
    /// system currently in `phase`.
    fn on_window_begin(&mut self, _at: SimTime, _phase: PhaseKind) {}

    /// The measurement window closed.
    fn on_window_end(&mut self, _at: SimTime) {}
}

/// The do-nothing default observer.
///
/// Engines store `Option<&mut dyn Observer>` and skip all event
/// derivation when it is `None`, so the unobserved hot path costs one
/// well-predicted branch per event; `NoopObserver` exists for call
/// sites that want to exercise the observed path without recording.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopObserver;

impl Observer for NoopObserver {
    #[inline]
    fn on_event(&mut self, _at: SimTime, _event: ObsEvent<'_>) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_observer_accepts_everything() {
        let mut o = NoopObserver;
        o.on_window_begin(SimTime::ZERO, PhaseKind::Executing);
        o.on_event(
            SimTime::ZERO,
            ObsEvent::Model(ModelEvent::CheckpointInitiated),
        );
        o.on_event(
            SimTime::ZERO,
            ObsEvent::ActivityFired { name: "coordinate" },
        );
        o.on_event(
            SimTime::ZERO,
            ObsEvent::RewardUpdate {
                name: "t_exec",
                total: 1.0,
            },
        );
        o.on_window_end(SimTime::from_secs(1.0));
    }
}
