//! Execution tracing: a bounded event log attachable to either engine.
//!
//! A [`TraceBuffer`] records [`ModelEvent`]s — checkpoint lifecycle,
//! failures, recoveries — with their timestamps, keeping only the most
//! recent `capacity` entries. It is the tool for inspecting *why* a
//! configuration behaves the way it does (see the `trace_inspection`
//! example) and for asserting fine-grained ordering properties in
//! tests. As an [`Observer`] it records `Model` events and ignores the
//! rest, so the same buffer attaches to the direct simulator and to the
//! SAN engine and the resulting traces can be diffed entry by entry.

use crate::{ModelEvent, ObsEvent, Observer};
use ckpt_des::SimTime;
use std::collections::VecDeque;
use std::fmt;

/// A timestamped trace entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEntry {
    /// When the event occurred.
    pub at: SimTime,
    /// What happened.
    pub event: ModelEvent,
}

impl TraceEntry {
    /// The entry as one JSON object (the per-line payload of trace
    /// JSONL files): `t_secs`, `event`, plus `reason` for aborts and
    /// `from_buffer` for rollbacks.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"t_secs\":{:.6},\"event\":\"{}\"",
            self.at.as_secs(),
            self.event.key()
        );
        match self.event {
            ModelEvent::CheckpointAborted(r) => {
                s.push_str(&format!(",\"reason\":\"{}\"", r.key()));
            }
            ModelEvent::Rollback { from_buffer } => {
                s.push_str(&format!(",\"from_buffer\":{from_buffer}"));
            }
            ModelEvent::WorkerFault { retried } => {
                s.push_str(&format!(",\"retried\":{retried}"));
            }
            _ => {}
        }
        s.push('}');
        s
    }
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>12.3} h] {}", self.at.as_hours(), self.event)
    }
}

/// Bounded ring buffer of trace entries.
#[derive(Debug, Clone)]
pub struct TraceBuffer {
    entries: VecDeque<TraceEntry>,
    capacity: usize,
    dropped: u64,
}

impl TraceBuffer {
    /// Creates a buffer retaining the most recent `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> TraceBuffer {
        assert!(capacity > 0, "trace capacity must be positive");
        TraceBuffer {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Records an event, evicting the oldest if full.
    pub fn record(&mut self, at: SimTime, event: ModelEvent) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(TraceEntry { at, event });
    }

    /// Retained entries, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEntry> + '_ {
        self.entries.iter()
    }

    /// Number of retained entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been recorded (or everything evicted).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Events evicted due to the capacity bound.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Entries matching a predicate, oldest first.
    pub fn filter<'a, P>(&'a self, pred: P) -> impl Iterator<Item = &'a TraceEntry> + 'a
    where
        P: Fn(&ModelEvent) -> bool + 'a,
    {
        self.entries.iter().filter(move |e| pred(&e.event))
    }

    /// Clears the buffer (the dropped counter is preserved).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

impl Observer for TraceBuffer {
    fn on_event(&mut self, at: SimTime, event: ObsEvent<'_>) {
        if let ObsEvent::Model(e) = event {
            self.record(at, e);
        }
    }
}

impl fmt::Display for TraceBuffer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.entries {
            writeln!(f, "{e}")?;
        }
        if self.dropped > 0 {
            writeln!(f, "({} earlier events dropped)", self.dropped)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AbortReason;

    #[test]
    fn records_in_order() {
        let mut t = TraceBuffer::new(8);
        t.record(SimTime::from_secs(1.0), ModelEvent::CheckpointInitiated);
        t.record(SimTime::from_secs(2.0), ModelEvent::CoordinationComplete);
        t.record(SimTime::from_secs(3.0), ModelEvent::CheckpointCompleted);
        assert_eq!(t.len(), 3);
        let times: Vec<f64> = t.iter().map(|e| e.at.as_secs()).collect();
        assert_eq!(times, vec![1.0, 2.0, 3.0]);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn evicts_oldest_beyond_capacity() {
        let mut t = TraceBuffer::new(2);
        for i in 0..5 {
            t.record(SimTime::from_secs(f64::from(i)), ModelEvent::IoFailure);
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
        assert_eq!(t.iter().next().unwrap().at.as_secs(), 3.0);
    }

    #[test]
    fn filter_selects_events() {
        let mut t = TraceBuffer::new(16);
        t.record(SimTime::ZERO, ModelEvent::CheckpointInitiated);
        t.record(
            SimTime::from_secs(1.0),
            ModelEvent::CheckpointAborted(AbortReason::Timeout),
        );
        t.record(SimTime::from_secs(2.0), ModelEvent::CheckpointInitiated);
        let aborts: Vec<_> = t
            .filter(|e| matches!(e, ModelEvent::CheckpointAborted(_)))
            .collect();
        assert_eq!(aborts.len(), 1);
        assert_eq!(
            aborts[0].event,
            ModelEvent::CheckpointAborted(AbortReason::Timeout)
        );
    }

    #[test]
    fn observer_impl_records_model_events_only() {
        let mut t = TraceBuffer::new(4);
        t.on_event(
            SimTime::ZERO,
            ObsEvent::Model(ModelEvent::CheckpointInitiated),
        );
        t.on_event(
            SimTime::ZERO,
            ObsEvent::ActivityFired { name: "coordinate" },
        );
        t.on_event(SimTime::ZERO, ObsEvent::Phase(crate::PhaseKind::Dumping));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn entry_json_carries_payload_fields() {
        let e = TraceEntry {
            at: SimTime::from_secs(2.5),
            event: ModelEvent::CheckpointAborted(AbortReason::IoFailure),
        };
        let j = e.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"event\":\"checkpoint_aborted\""));
        assert!(j.contains("\"reason\":\"io_failure\""));
        let r = TraceEntry {
            at: SimTime::ZERO,
            event: ModelEvent::Rollback { from_buffer: true },
        };
        assert!(r.to_json().contains("\"from_buffer\":true"));
        let w = TraceEntry {
            at: SimTime::ZERO,
            event: ModelEvent::WorkerFault { retried: true },
        };
        assert!(w.to_json().contains("\"event\":\"worker_fault\""));
        assert!(w.to_json().contains("\"retried\":true"));
    }

    #[test]
    fn display_renders_dropped_note() {
        let mut t = TraceBuffer::new(1);
        t.record(SimTime::from_hours(1.0), ModelEvent::RebootStarted);
        t.record(SimTime::from_hours(2.0), ModelEvent::RebootComplete);
        let s = t.to_string();
        assert!(s.contains("reboot"));
        assert!(s.contains("dropped"));
    }

    #[test]
    fn clear_preserves_dropped_counter() {
        let mut t = TraceBuffer::new(1);
        t.record(SimTime::ZERO, ModelEvent::IoFailure);
        t.record(SimTime::from_secs(1.0), ModelEvent::IoFailure);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = TraceBuffer::new(0);
    }
}
