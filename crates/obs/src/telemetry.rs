//! Per-replication telemetry: mergeable distributions plus event and
//! RNG-draw accounting.
//!
//! A [`ReplicationTelemetry`] is accumulated per replication (partly by
//! the [`Recorder`](crate::Recorder) from the observed event stream,
//! partly copied out of the engine's feature-gated hot-loop probes) and
//! merged across replications in index order by the experiment layer.
//! Every histogram is a fixed-layout [`LogHistogram`], so the merged
//! result — and therefore its JSON — is invariant under worker count
//! and merge order.
//!
//! The split matters for determinism guarantees:
//!
//! * `failure_gaps` is derived from the observed [`ModelEvent`](crate::ModelEvent) stream
//!   (sim-time gaps between consecutive failures), so it works on every
//!   build and is always deterministic;
//! * `queue_depth` / `dirty_set` / `band_occupancy` come from the
//!   engines' probes and stay empty unless the `telemetry` cargo
//!   feature is enabled — when it is, they are still functions of the
//!   (deterministic) simulation state only, never of wall time;
//! * `rng_draws` counts raw RNG words and `redraws_elided` counts the
//!   exponential redraws lazy reactivation skipped — again
//!   sim-domain-deterministic.

use crate::json_escape;
use ckpt_des::telem::TelemetrySnapshot;
use ckpt_des::LogHistogram;

/// Telemetry accumulated for one replication (or, after merging, for a
/// whole experiment). All fields are deterministic functions of the
/// simulated trajectory — no wall-clock quantities live here (those go
/// in spans; see [`crate::span`]).
#[derive(Debug, Clone, Default)]
pub struct ReplicationTelemetry {
    /// Sim-time gaps (whole seconds) between consecutive failure
    /// events (`Rollback`, `IoFailure`, `RecoveryInterrupted`) inside
    /// the measurement window.
    pub failure_gaps: LogHistogram,
    /// Event-queue depth at each hot-loop pop (empty without the
    /// `telemetry` feature).
    pub queue_depth: LogHistogram,
    /// Dirty-place set size per settled event (SAN engine under
    /// incremental scheduling only; empty without the feature).
    pub dirty_set: LogHistogram,
    /// Calendar-queue bucket occupancy at each hot-loop pop (calendar
    /// backend only; empty on the heap or without the feature).
    pub band_occupancy: LogHistogram,
    /// Model events observed in the measurement window.
    pub events: u64,
    /// Raw RNG words drawn by the replication (0 without the feature).
    pub rng_draws: u64,
    /// Exponential redraws skipped by lazy reactivation (0 in eager
    /// `resample` mode or without the feature).
    pub redraws_elided: u64,
}

impl ReplicationTelemetry {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> ReplicationTelemetry {
        ReplicationTelemetry::default()
    }

    /// Absorbs an engine-side probe snapshot (queue-depth / dirty-set
    /// histograms).
    pub fn absorb_engine(&mut self, snapshot: &TelemetrySnapshot) {
        self.queue_depth.merge(&snapshot.queue_depth);
        self.dirty_set.merge(&snapshot.dirty_set);
        self.band_occupancy.merge(&snapshot.band_occupancy);
    }

    /// Adds `other` into `self`. Histogram merges are element-wise and
    /// the counters are sums, so merging any partition of replications
    /// in any order produces identical state.
    pub fn merge(&mut self, other: &ReplicationTelemetry) {
        self.failure_gaps.merge(&other.failure_gaps);
        self.queue_depth.merge(&other.queue_depth);
        self.dirty_set.merge(&other.dirty_set);
        self.band_occupancy.merge(&other.band_occupancy);
        self.events += other.events;
        self.rng_draws += other.rng_draws;
        self.redraws_elided += other.redraws_elided;
    }

    /// True when nothing was recorded at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.failure_gaps.is_empty()
            && self.queue_depth.is_empty()
            && self.dirty_set.is_empty()
            && self.band_occupancy.is_empty()
            && self.events == 0
            && self.rng_draws == 0
            && self.redraws_elided == 0
    }

    /// Deterministic JSON object: fixed key order, integer-only
    /// histogram encodings. Byte-identical for equal state, which is
    /// what makes `--histograms` output comparable across `--jobs`.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"events\":{},\"rng_draws\":{},\"redraws_elided\":{},\"histograms\":{{\"failure_gap_secs\":{},\"queue_depth\":{},\"dirty_set\":{},\"band_occupancy\":{}}}}}",
            self.events,
            self.rng_draws,
            self.redraws_elided,
            self.failure_gaps.to_json(),
            self.queue_depth.to_json(),
            self.dirty_set.to_json(),
            self.band_occupancy.to_json(),
        )
    }
}

/// Renders a full telemetry document: a versioned envelope holding the
/// deterministic section ([`ReplicationTelemetry::to_json`]) and a
/// provenance section (wall-clock spans, which legitimately differ
/// between runs). Consumers comparing runs for bit-identity must
/// compare the `deterministic` subtree only.
#[must_use]
pub fn telemetry_json(label: &str, merged: &ReplicationTelemetry, spans_json: &str) -> String {
    format!(
        "{{\n  \"telemetry_schema_version\": 1,\n  \"kind\": \"telemetry\",\n  \"label\": \"{}\",\n  \"probes_enabled\": {},\n  \"deterministic\": {},\n  \"provenance\": {{\"spans\": {}}}\n}}\n",
        json_escape(label),
        ckpt_des::telem::ENABLED,
        merged.to_json(),
        spans_json,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_partition_invariant() {
        let mut a = ReplicationTelemetry::new();
        a.failure_gaps.record(100);
        a.events = 3;
        a.rng_draws = 10;
        let mut b = ReplicationTelemetry::new();
        b.failure_gaps.record(40);
        b.events = 2;
        b.rng_draws = 7;

        let mut ab = ReplicationTelemetry::new();
        ab.merge(&a);
        ab.merge(&b);
        let mut ba = ReplicationTelemetry::new();
        ba.merge(&b);
        ba.merge(&a);
        assert_eq!(ab.to_json(), ba.to_json());
        assert_eq!(ab.events, 5);
        assert_eq!(ab.rng_draws, 17);
        assert_eq!(ab.failure_gaps.count(), 2);
    }

    #[test]
    fn json_shape_is_stable() {
        let t = ReplicationTelemetry::new();
        let j = t.to_json();
        assert!(
            j.starts_with("{\"events\":0,\"rng_draws\":0,\"redraws_elided\":0,\"histograms\":{")
        );
        assert!(j.contains("\"band_occupancy\":{"));
        let doc = telemetry_json("run", &t, "[]");
        assert!(doc.contains("\"telemetry_schema_version\": 1"));
        assert!(doc.contains("\"kind\": \"telemetry\""));
        assert!(doc.contains("\"deterministic\": {"));
        assert!(doc.contains("\"provenance\": {\"spans\": []}"));
    }
}
