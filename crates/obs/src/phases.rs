//! Versioned JSON rendering of hot-phase profiles.
//!
//! [`ckpt_des::prof`] attributes per-event wall time to seven hot
//! phases; this module turns an accumulated
//! [`PhaseProfile`](ckpt_des::prof::PhaseProfile) into the stable JSON
//! breakdown consumed by `ckptsim run --profile-phases` and
//! `bench_engines --phases`. The schema is versioned
//! (`phase_schema_version`) so downstream tooling can detect format
//! changes; version 2 added the `event_dispatch` container phase, the
//! `activity_firing` phase, and the top-level `attributed_share` field.

use crate::manifest::json_escape;
use ckpt_des::prof::{HotPhase, PhaseProfile};

/// Renders `profile` as a versioned JSON object.
///
/// * `label` — what was profiled (e.g. `fig4-65536-incremental`).
/// * `wall_secs` / `events` — the run's total wall time and event
///   count, used to derive per-phase `ns_per_event` and `share` (the
///   fraction of *attributed* time, not of total wall time — profiled
///   builds inflate wall time with the instrumentation itself, so
///   shares are the meaningful quantity).
///
/// The `unattributed_nanos` field is the wall time not covered by any
/// instrumented region (event-loop dispatch outside `step_event`, and
/// the instrumentation overhead itself); it is derived as
/// `wall - attributed` and floored at zero. `attributed_share` is
/// `attributed / wall` capped at 1 — with the `event_dispatch`
/// container spanning each event, it should stay above 0.9 on any
/// real run.
#[must_use]
pub fn phases_json(label: &str, profile: &PhaseProfile, wall_secs: f64, events: u64) -> String {
    let attributed = profile.total_nanos();
    let wall_nanos = (wall_secs * 1e9) as u64;
    let attributed_share = if wall_nanos > 0 {
        (attributed as f64 / wall_nanos as f64).min(1.0)
    } else {
        0.0
    };
    let mut s = String::from("{\n  \"phase_schema_version\": 2,\n");
    s.push_str(&format!("  \"label\": \"{}\",\n", json_escape(label)));
    s.push_str(&format!("  \"wall_secs\": {wall_secs:.6},\n"));
    s.push_str(&format!("  \"events\": {events},\n"));
    s.push_str(&format!("  \"attributed_nanos\": {attributed},\n"));
    s.push_str(&format!(
        "  \"unattributed_nanos\": {},\n",
        wall_nanos.saturating_sub(attributed)
    ));
    s.push_str(&format!("  \"attributed_share\": {attributed_share:.4},\n"));
    s.push_str("  \"phases\": [");
    for (i, phase) in HotPhase::ALL.iter().enumerate() {
        let idx = *phase as usize;
        let nanos = profile.nanos[idx];
        let count = profile.counts[idx];
        let ns_per_event = if events > 0 {
            nanos as f64 / events as f64
        } else {
            0.0
        };
        let share = if attributed > 0 {
            nanos as f64 / attributed as f64
        } else {
            0.0
        };
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"phase\": \"{}\", \"nanos\": {nanos}, \"count\": {count}, \
             \"ns_per_event\": {ns_per_event:.2}, \"share\": {share:.4}}}",
            phase.name()
        ));
    }
    s.push_str("\n  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_profile_renders_zero_shares() {
        let j = phases_json("empty", &PhaseProfile::default(), 0.0, 0);
        assert!(j.contains("\"phase_schema_version\": 2"));
        assert!(j.contains("\"label\": \"empty\""));
        assert!(j.contains("\"attributed_nanos\": 0"));
        assert!(j.contains("\"attributed_share\": 0.0000"));
        for phase in HotPhase::ALL {
            assert!(j.contains(&format!("\"phase\": \"{}\"", phase.name())));
        }
        assert!(j.contains("\"share\": 0.0000"));
        assert!(j.ends_with("]\n}\n"));
    }

    #[test]
    fn shares_sum_over_attributed_time() {
        let mut p = PhaseProfile::default();
        p.nanos[HotPhase::DelaySampling as usize] = 600;
        p.counts[HotPhase::DelaySampling as usize] = 3;
        p.nanos[HotPhase::QueueOps as usize] = 400;
        p.counts[HotPhase::QueueOps as usize] = 8;
        let j = phases_json("two-phase", &p, 1e-6, 100);
        assert!(j.contains("\"attributed_nanos\": 1000"));
        // 1 µs wall = 1000 ns, fully attributed.
        assert!(j.contains("\"unattributed_nanos\": 0"));
        assert!(j.contains("\"attributed_share\": 1.0000"));
        assert!(j.contains(
            "\"phase\": \"delay_sampling\", \"nanos\": 600, \"count\": 3, \
             \"ns_per_event\": 6.00, \"share\": 0.6000"
        ));
        assert!(j.contains(
            "\"phase\": \"queue_ops\", \"nanos\": 400, \"count\": 8, \
             \"ns_per_event\": 4.00, \"share\": 0.4000"
        ));
    }

    #[test]
    fn attributed_share_is_capped_at_one() {
        // Instrumented nanos can exceed the measured wall time by a
        // hair (clock granularity); the share must never read > 1.
        let mut p = PhaseProfile::default();
        p.nanos[HotPhase::EventDispatch as usize] = 2_000;
        p.counts[HotPhase::EventDispatch as usize] = 1;
        let j = phases_json("over", &p, 1e-6, 10);
        assert!(j.contains("\"attributed_share\": 1.0000"));
        assert!(j.contains("\"unattributed_nanos\": 0"));
    }
}
