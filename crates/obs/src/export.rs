//! Prometheus-style text exposition for registries and histograms.
//!
//! Renders the post-run state of a [`MetricsRegistry`] and a merged
//! [`ReplicationTelemetry`] in the Prometheus text format (`# TYPE`
//! headers, `name{label="…"} value` samples, cumulative `_bucket{le}`
//! histogram series). This is a *post-hoc* exporter: ckptsim runs are
//! batch jobs, so instead of an HTTP scrape endpoint the text is
//! written once at exit (`--prom FILE`) for pushgateway-style ingest
//! or eyeballing. Output key order follows the registry's sorted maps
//! and the fixed bucket layout, so equal state renders byte-identical.

use crate::telemetry::ReplicationTelemetry;
use crate::{MetricsRegistry, PhaseKind};
use ckpt_des::hist::bucket_upper_bound;
use ckpt_des::LogHistogram;
use std::fmt::Write;

/// Sanitizes a key into a Prometheus label value (escapes `\`, `"`,
/// and newlines).
fn label_escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Renders one histogram as a cumulative `_bucket{le=…}` series plus
/// `_sum` and `_count`, the standard Prometheus histogram triplet.
/// Only non-empty buckets get explicit `le` bounds (plus the mandatory
/// `+Inf`), keeping the text proportional to observed spread.
#[must_use]
pub fn histogram_text(name: &str, help: &str, hist: &LogHistogram) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "# HELP {name} {help}");
    let _ = writeln!(s, "# TYPE {name} histogram");
    let mut cumulative = 0u64;
    for (index, count) in hist.nonzero_buckets() {
        cumulative += count;
        let _ = writeln!(
            s,
            "{name}_bucket{{le=\"{}\"}} {cumulative}",
            bucket_upper_bound(index)
        );
    }
    let _ = writeln!(s, "{name}_bucket{{le=\"+Inf\"}} {}", hist.count());
    let _ = writeln!(s, "{name}_sum {}", hist.sum());
    let _ = writeln!(s, "{name}_count {}", hist.count());
    s
}

/// Renders a [`MetricsRegistry`] as Prometheus text: model-event
/// counters, SAN activity firings, per-phase sim-seconds, and the
/// measurement-window length.
#[must_use]
pub fn registry_text(registry: &MetricsRegistry) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "# HELP ckptsim_events_total Model events by kind.");
    let _ = writeln!(s, "# TYPE ckptsim_events_total counter");
    for (key, value) in registry.counters() {
        let _ = writeln!(
            s,
            "ckptsim_events_total{{event=\"{}\"}} {value}",
            label_escape(key)
        );
    }
    let _ = writeln!(
        s,
        "# HELP ckptsim_activity_firings_total SAN activity firings."
    );
    let _ = writeln!(s, "# TYPE ckptsim_activity_firings_total counter");
    for (name, value) in registry.activities() {
        let _ = writeln!(
            s,
            "ckptsim_activity_firings_total{{activity=\"{}\"}} {value}",
            label_escape(name)
        );
    }
    let _ = writeln!(
        s,
        "# HELP ckptsim_phase_seconds Simulated seconds per phase."
    );
    let _ = writeln!(s, "# TYPE ckptsim_phase_seconds gauge");
    let phases = registry.phase_times();
    for phase in PhaseKind::ALL {
        let _ = writeln!(
            s,
            "ckptsim_phase_seconds{{phase=\"{}\"}} {}",
            phase.key(),
            phases.get(phase)
        );
    }
    let _ = writeln!(
        s,
        "# HELP ckptsim_window_seconds Total closed measurement-window length."
    );
    let _ = writeln!(s, "# TYPE ckptsim_window_seconds gauge");
    let _ = writeln!(s, "ckptsim_window_seconds {}", registry.window_secs());
    s
}

/// Full exposition: registry metrics (when available) followed by the
/// telemetry histograms and scalar draw/event counters.
#[must_use]
pub fn exposition(
    registry: Option<&MetricsRegistry>,
    telemetry: Option<&ReplicationTelemetry>,
) -> String {
    let mut s = String::new();
    if let Some(reg) = registry {
        s.push_str(&registry_text(reg));
    }
    if let Some(t) = telemetry {
        let _ = writeln!(s, "# HELP ckptsim_rng_draws_total Raw RNG words drawn.");
        let _ = writeln!(s, "# TYPE ckptsim_rng_draws_total counter");
        let _ = writeln!(s, "ckptsim_rng_draws_total {}", t.rng_draws);
        let _ = writeln!(
            s,
            "# HELP ckptsim_observed_events_total Model events observed."
        );
        let _ = writeln!(s, "# TYPE ckptsim_observed_events_total counter");
        let _ = writeln!(s, "ckptsim_observed_events_total {}", t.events);
        s.push_str(&histogram_text(
            "ckptsim_failure_gap_seconds",
            "Sim-time gaps between consecutive failures.",
            &t.failure_gaps,
        ));
        s.push_str(&histogram_text(
            "ckptsim_queue_depth",
            "Event-queue depth at each pop (telemetry builds).",
            &t.queue_depth,
        ));
        s.push_str(&histogram_text(
            "ckptsim_dirty_set",
            "Dirty-place set size per event (SAN telemetry builds).",
            &t.dirty_set,
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ModelEvent, ObsEvent, Observer};
    use ckpt_des::SimTime;

    #[test]
    fn histogram_text_is_cumulative_and_closed() {
        let mut h = LogHistogram::new();
        h.record(1);
        h.record(1);
        h.record(100);
        let text = histogram_text("x", "help", &h);
        assert!(text.contains("# TYPE x histogram"));
        assert!(text.contains("x_bucket{le=\"1\"} 2"));
        assert!(text.contains("x_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("x_sum 102"));
        assert!(text.contains("x_count 3"));
        // Cumulative counts never decrease.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "{line}");
            last = v;
        }
    }

    #[test]
    fn registry_exposition_has_standard_shape() {
        let mut reg = MetricsRegistry::new();
        reg.on_window_begin(SimTime::ZERO, PhaseKind::Executing);
        reg.on_event(
            SimTime::from_secs(5.0),
            ObsEvent::Model(ModelEvent::CheckpointInitiated),
        );
        reg.on_window_end(SimTime::from_secs(10.0));
        let text = exposition(Some(&reg), Some(&ReplicationTelemetry::new()));
        assert!(text.contains("ckptsim_events_total{event=\"checkpoint_initiated\"} 1"));
        assert!(text.contains("ckptsim_phase_seconds{phase=\"executing\"} 10"));
        assert!(text.contains("ckptsim_window_seconds 10"));
        assert!(text.contains("ckptsim_rng_draws_total 0"));
        // Every non-comment line is `name{...} value` or `name value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert!(
                line.rsplit(' ').next().unwrap().parse::<f64>().is_ok(),
                "{line}"
            );
        }
    }
}
