//! Engine-agnostic observability for the checkpointing simulators.
//!
//! Both engines — the SAN executor (`ckpt-san`) and the direct
//! event-driven simulator (`ckpt-core::direct`) — can stream structured,
//! sim-timestamped notifications to an [`Observer`] while they run. The
//! building blocks layered on top:
//!
//! * [`ModelEvent`] / [`TraceEntry`] / [`TraceBuffer`] — the
//!   checkpoint-protocol event vocabulary and a bounded ring buffer for
//!   recording it (formerly `ckpt_core::trace`, now shared by both
//!   engines);
//! * [`PhaseKind`] / [`PhaseTimes`] — the coarse phase taxonomy used to
//!   break down where simulated time went;
//! * [`Observer`] / [`ObsEvent`] — the streaming interface, with
//!   [`NoopObserver`] as the zero-cost default so an unobserved run pays
//!   nothing but one well-predicted branch per event;
//! * [`MetricsRegistry`] — counters plus sim-time-weighted phase
//!   accumulators, reconcilable against an engine's own reward-variable
//!   estimates as a built-in cross-check;
//! * [`Recorder`] — the everything-on composite (trace + registry) used
//!   by the experiment layer;
//! * [`RunManifest`] — run provenance (config, seeds, engine, host
//!   parallelism, per-replication profiles) serialized as JSON next to
//!   results.
//!
//! Observation never participates in simulation semantics: observers
//! receive copies of state the engines already computed, never mutate
//! engine state, and are attached per replication so parallel runs stay
//! bit-identical and merge in replication-index order.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
pub mod export;
mod manifest;
mod observer;
mod phases;
pub mod progress;
mod recorder;
mod registry;
pub mod span;
pub mod telemetry;
mod trace;

pub use event::{AbortReason, ModelEvent, PhaseKind, PhaseTimes};
pub use manifest::{json_escape, RunManifest, RunProfile, MANIFEST_SCHEMA_VERSION};
pub use observer::{NoopObserver, ObsEvent, Observer};
pub use phases::phases_json;
pub use progress::{HumanSink, JsonlSink, MultiSink, NullSink, ProgressSink, ProgressSnapshot};
pub use recorder::Recorder;
pub use registry::{MetricsRegistry, ReconcileError};
pub use span::{spans_json, SpanKind, SpanRecord};
pub use telemetry::{telemetry_json, ReplicationTelemetry};
pub use trace::{TraceBuffer, TraceEntry};
