//! Counters and sim-time-weighted phase accumulators.

use crate::{ObsEvent, Observer, PhaseKind, PhaseTimes};
use ckpt_des::SimTime;
use std::collections::BTreeMap;
use std::fmt;

/// In-flight state of an open measurement window.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Cursor {
    phase: PhaseKind,
    start: SimTime,
    last: SimTime,
}

/// A registry of event counters and phase-time accumulators driven
/// entirely by observed events.
///
/// Phase times are accumulated by integrating `Phase` transitions
/// against sim time between [`Observer::on_window_begin`] and
/// [`Observer::on_window_end`], *independently* of the engines' own
/// bookkeeping (the direct simulator's clock-advance accounting, the
/// SAN engine's rate rewards). That makes the registry a cross-check:
/// [`reconcile`](MetricsRegistry::reconcile) verifies both paths agree,
/// and the phase total telescopes to the window length exactly.
///
/// All maps are ordered (`BTreeMap`), so iteration and JSON output are
/// deterministic; [`merge`](MetricsRegistry::merge) combines closed
/// per-replication registries in replication-index order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    activities: BTreeMap<String, u64>,
    rewards: BTreeMap<String, f64>,
    phase_times: PhaseTimes,
    window_secs: f64,
    cursor: Option<Cursor>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Count of a model-event counter (see [`crate::ModelEvent::counter_key`]).
    #[must_use]
    pub fn count(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// All model-event counters, in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// Times a SAN activity fired (0 for the direct engine).
    #[must_use]
    pub fn activity_firings(&self, name: &str) -> u64 {
        self.activities.get(name).copied().unwrap_or(0)
    }

    /// All SAN activity firing counts, in name order.
    pub fn activities(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.activities.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Last observed running total of a SAN reward variable.
    #[must_use]
    pub fn reward(&self, name: &str) -> Option<f64> {
        self.rewards.get(name).copied()
    }

    /// Accumulated phase times over all closed windows.
    #[must_use]
    pub fn phase_times(&self) -> PhaseTimes {
        self.phase_times
    }

    /// Total length of all closed measurement windows, in seconds —
    /// computed from window endpoints, independently of the per-phase
    /// accumulation.
    #[must_use]
    pub fn window_secs(&self) -> f64 {
        self.window_secs
    }

    fn advance(&mut self, at: SimTime) {
        if let Some(c) = &mut self.cursor {
            self.phase_times.add(c.phase, (at - c.last).as_secs());
            c.last = at;
        }
    }

    /// Folds another (closed) registry into this one: counters and
    /// phase times add, reward totals add, window lengths add.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (k, v) in &other.activities {
            if let Some(slot) = self.activities.get_mut(k.as_str()) {
                *slot += v;
            } else {
                self.activities.insert(k.clone(), *v);
            }
        }
        for (k, v) in &other.rewards {
            if let Some(slot) = self.rewards.get_mut(k.as_str()) {
                *slot += v;
            } else {
                self.rewards.insert(k.clone(), *v);
            }
        }
        self.phase_times.accumulate(&other.phase_times);
        self.window_secs += other.window_secs;
    }

    /// Cross-checks the registry's phase times against an engine's own
    /// estimate (direct-simulator clock accounting or SAN rate
    /// rewards). Each phase must agree within `rel_tol` of the window
    /// length; both paths chunk floating-point additions differently,
    /// so exact equality is not expected.
    ///
    /// # Errors
    ///
    /// Returns the first phase whose disagreement exceeds the
    /// tolerance.
    pub fn reconcile(&self, reference: &PhaseTimes, rel_tol: f64) -> Result<(), ReconcileError> {
        let scale = self.window_secs.max(1.0);
        for phase in PhaseKind::ALL {
            let ours = self.phase_times.get(phase);
            let theirs = reference.get(phase);
            if (ours - theirs).abs() > rel_tol * scale {
                return Err(ReconcileError {
                    phase,
                    registry_secs: ours,
                    reference_secs: theirs,
                });
            }
        }
        Ok(())
    }

    /// The registry as one JSON object (deterministic field order).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = format!("{{\"window_secs\":{:.6},", self.window_secs);
        s.push_str("\"phase_times_secs\":{");
        for (i, phase) in PhaseKind::ALL.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\"{}\":{:.6}",
                phase.key(),
                self.phase_times.get(*phase)
            ));
        }
        s.push_str("},\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{k}\":{v}"));
        }
        s.push_str("},\"activity_firings\":{");
        for (i, (k, v)) in self.activities.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{}\":{v}", crate::json_escape(k)));
        }
        s.push_str("},\"rewards\":{");
        for (i, (k, v)) in self.rewards.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{}\":{v:.6}", crate::json_escape(k)));
        }
        s.push_str("}}");
        s
    }
}

impl Observer for MetricsRegistry {
    fn on_event(&mut self, at: SimTime, event: ObsEvent<'_>) {
        match event {
            ObsEvent::Model(e) => {
                *self.counters.entry(e.counter_key()).or_insert(0) += 1;
            }
            ObsEvent::Phase(p) => {
                self.advance(at);
                if let Some(c) = &mut self.cursor {
                    c.phase = p;
                }
            }
            ObsEvent::ActivityFired { name } => {
                if let Some(v) = self.activities.get_mut(name) {
                    *v += 1;
                } else {
                    self.activities.insert(name.to_string(), 1);
                }
            }
            ObsEvent::RewardUpdate { name, total } => {
                if let Some(v) = self.rewards.get_mut(name) {
                    *v = total;
                } else {
                    self.rewards.insert(name.to_string(), total);
                }
            }
        }
    }

    fn on_window_begin(&mut self, at: SimTime, phase: PhaseKind) {
        self.cursor = Some(Cursor {
            phase,
            start: at,
            last: at,
        });
    }

    fn on_window_end(&mut self, at: SimTime) {
        self.advance(at);
        if let Some(c) = self.cursor.take() {
            self.window_secs += (at - c.start).as_secs();
        }
    }
}

/// A phase whose registry accumulation disagrees with the engine's own
/// estimate beyond the tolerance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReconcileError {
    /// The disagreeing phase.
    pub phase: PhaseKind,
    /// Seconds the registry accumulated for the phase.
    pub registry_secs: f64,
    /// Seconds the engine's own estimate reports.
    pub reference_secs: f64,
}

impl fmt::Display for ReconcileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "phase {} disagrees: registry {:.6} s vs engine {:.6} s",
            self.phase.key(),
            self.registry_secs,
            self.reference_secs
        )
    }
}

impl std::error::Error for ReconcileError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelEvent;

    fn secs(t: f64) -> SimTime {
        SimTime::from_secs(t)
    }

    #[test]
    fn phase_accumulation_telescopes_to_window() {
        let mut r = MetricsRegistry::new();
        r.on_window_begin(secs(10.0), PhaseKind::Executing);
        r.on_event(secs(40.0), ObsEvent::Phase(PhaseKind::Coordinating));
        r.on_event(secs(45.0), ObsEvent::Phase(PhaseKind::Dumping));
        r.on_event(secs(55.0), ObsEvent::Phase(PhaseKind::Executing));
        r.on_window_end(secs(110.0));
        assert_eq!(r.window_secs(), 100.0);
        let p = r.phase_times();
        assert_eq!(p.get(PhaseKind::Executing), 30.0 + 55.0);
        assert_eq!(p.get(PhaseKind::Coordinating), 5.0);
        assert_eq!(p.get(PhaseKind::Dumping), 10.0);
        assert!((p.total() - r.window_secs()).abs() < 1e-12);
    }

    #[test]
    fn events_outside_window_add_no_time() {
        let mut r = MetricsRegistry::new();
        // No window opened: Phase events count no time.
        r.on_event(secs(5.0), ObsEvent::Phase(PhaseKind::Recovering));
        assert_eq!(r.phase_times().total(), 0.0);
        assert_eq!(r.window_secs(), 0.0);
    }

    #[test]
    fn counters_split_by_counter_key() {
        let mut r = MetricsRegistry::new();
        r.on_event(secs(0.0), ObsEvent::Model(ModelEvent::CheckpointInitiated));
        r.on_event(secs(1.0), ObsEvent::Model(ModelEvent::CheckpointInitiated));
        r.on_event(
            secs(2.0),
            ObsEvent::Model(ModelEvent::Rollback { from_buffer: true }),
        );
        assert_eq!(r.count("checkpoint_initiated"), 2);
        assert_eq!(r.count("rollback_from_buffer"), 1);
        assert_eq!(r.count("rollback_from_fs"), 0);
    }

    #[test]
    fn activity_and_reward_tracking() {
        let mut r = MetricsRegistry::new();
        r.on_event(secs(0.0), ObsEvent::ActivityFired { name: "coordinate" });
        r.on_event(secs(1.0), ObsEvent::ActivityFired { name: "coordinate" });
        r.on_event(
            secs(1.0),
            ObsEvent::RewardUpdate {
                name: "ckpts",
                total: 2.0,
            },
        );
        r.on_event(
            secs(2.0),
            ObsEvent::RewardUpdate {
                name: "ckpts",
                total: 3.0,
            },
        );
        assert_eq!(r.activity_firings("coordinate"), 2);
        assert_eq!(r.reward("ckpts"), Some(3.0));
        assert_eq!(r.reward("missing"), None);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = MetricsRegistry::new();
        a.on_window_begin(secs(0.0), PhaseKind::Executing);
        a.on_event(secs(0.0), ObsEvent::Model(ModelEvent::IoFailure));
        a.on_event(secs(0.0), ObsEvent::ActivityFired { name: "reboot" });
        a.on_window_end(secs(10.0));
        let mut b = a.clone();
        b.on_window_begin(secs(10.0), PhaseKind::Rebooting);
        b.on_window_end(secs(15.0));
        a.merge(&b);
        assert_eq!(a.count("io_failure"), 2);
        assert_eq!(a.activity_firings("reboot"), 2);
        assert_eq!(a.window_secs(), 25.0);
        assert_eq!(a.phase_times().get(PhaseKind::Rebooting), 5.0);
        assert!((a.phase_times().total() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn reconcile_tolerates_small_disagreement() {
        let mut r = MetricsRegistry::new();
        r.on_window_begin(secs(0.0), PhaseKind::Executing);
        r.on_window_end(secs(100.0));
        let mut close = PhaseTimes::default();
        close.add(PhaseKind::Executing, 100.0 + 1e-9);
        assert!(r.reconcile(&close, 1e-9).is_ok());
        let mut far = PhaseTimes::default();
        far.add(PhaseKind::Executing, 99.0);
        let err = r.reconcile(&far, 1e-9).unwrap_err();
        assert_eq!(err.phase, PhaseKind::Executing);
        assert!(err.to_string().contains("executing"));
    }

    #[test]
    fn json_shape_is_stable() {
        let mut r = MetricsRegistry::new();
        r.on_window_begin(secs(0.0), PhaseKind::Executing);
        r.on_event(secs(1.0), ObsEvent::Model(ModelEvent::CheckpointCompleted));
        r.on_window_end(secs(2.0));
        let j = r.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"window_secs\":2.000000"));
        assert!(j.contains("\"phase_times_secs\":{\"executing\":2.000000"));
        assert!(j.contains("\"checkpoint_completed\":1"));
    }
}
