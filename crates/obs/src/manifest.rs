//! Run provenance: the manifest emitted next to results.

/// Escapes a string for embedding in a JSON string literal.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Per-replication performance profile recorded in the manifest.
///
/// Wall-clock values live only here (provenance); nothing in the
/// simulation-semantics path ever reads them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunProfile {
    /// Wall-clock seconds the replication took.
    pub wall_secs: f64,
    /// Simulation events the replication processed.
    pub events: u64,
}

impl RunProfile {
    /// Events per wall-clock second (0 over an empty measurement).
    #[must_use]
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.events as f64 / self.wall_secs
        } else {
            0.0
        }
    }
}

/// Provenance for one experiment or sweep: everything needed to rerun
/// it and to judge how it performed.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// Producing tool, e.g. `ckptsim`.
    pub tool: String,
    /// Crate version of the producing tool.
    pub version: String,
    /// Simulation engine (`direct` or `san`).
    pub engine: String,
    /// Estimation procedure (`replications` or `batch_means`).
    pub estimation: String,
    /// Base RNG seed; replication `k` draws from `base_seed + k`.
    pub base_seed: u64,
    /// Discarded transient, in simulated hours.
    pub transient_hours: f64,
    /// Measurement window, in simulated hours.
    pub horizon_hours: f64,
    /// Number of replications run.
    pub replications: usize,
    /// Worker faults the supervisor intervened on (panicked
    /// replications that were retried); 0 for a clean run.
    pub faults: usize,
    /// Worker threads requested (`--jobs`).
    pub jobs: usize,
    /// `std::thread::available_parallelism` on the producing host.
    pub host_parallelism: usize,
    /// Warm-up replications run and discarded before the recorded ones
    /// (their wall time and events appear nowhere in this manifest).
    pub warmup: u32,
    /// Active checkpoint-interval policy (e.g. `fixed`,
    /// `daly_optimal`), as rendered by `PolicySpec`'s `Display`.
    /// Schema v2; empty in manifests parsed from v1 documents.
    pub policy: String,
    /// Model configuration as ordered key/value pairs.
    pub config: Vec<(String, String)>,
    /// Per-replication wall/events profiles, in replication order.
    pub profiles: Vec<RunProfile>,
}

/// Manifest schema emitted by [`RunManifest::to_json`]. History:
/// v1 (PR 2) — base fields; v2 (this PR) — adds `policy`.
pub const MANIFEST_SCHEMA_VERSION: u64 = 2;

impl RunManifest {
    /// The manifest as one pretty-ish JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = format!("{{\n  \"schema_version\": {MANIFEST_SCHEMA_VERSION},\n");
        s.push_str(&format!("  \"tool\": \"{}\",\n", json_escape(&self.tool)));
        s.push_str(&format!(
            "  \"version\": \"{}\",\n",
            json_escape(&self.version)
        ));
        s.push_str(&format!(
            "  \"engine\": \"{}\",\n",
            json_escape(&self.engine)
        ));
        s.push_str(&format!(
            "  \"estimation\": \"{}\",\n",
            json_escape(&self.estimation)
        ));
        s.push_str(&format!("  \"base_seed\": {},\n", self.base_seed));
        s.push_str(&format!(
            "  \"transient_hours\": {:.6},\n",
            self.transient_hours
        ));
        s.push_str(&format!(
            "  \"horizon_hours\": {:.6},\n",
            self.horizon_hours
        ));
        s.push_str(&format!("  \"replications\": {},\n", self.replications));
        s.push_str(&format!("  \"faults\": {},\n", self.faults));
        s.push_str(&format!("  \"jobs\": {},\n", self.jobs));
        s.push_str(&format!(
            "  \"host_parallelism\": {},\n",
            self.host_parallelism
        ));
        s.push_str(&format!("  \"warmup\": {},\n", self.warmup));
        s.push_str(&format!(
            "  \"policy\": \"{}\",\n",
            json_escape(&self.policy)
        ));
        s.push_str("  \"config\": {");
        for (i, (k, v)) in self.config.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    \"{}\": \"{}\"",
                json_escape(k),
                json_escape(v)
            ));
        }
        if !self.config.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("},\n  \"profiles\": [");
        for (i, p) in self.profiles.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"rep\": {i}, \"wall_secs\": {:.6}, \"events\": {}, \"events_per_sec\": {:.1}}}",
                p.wall_secs,
                p.events,
                p.events_per_sec()
            ));
        }
        if !self.profiles.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\ny");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn manifest_json_contains_all_fields() {
        let m = RunManifest {
            tool: "ckptsim".into(),
            version: "0.1.0".into(),
            engine: "direct".into(),
            estimation: "replications".into(),
            base_seed: 0x5eed,
            transient_hours: 1000.0,
            horizon_hours: 20000.0,
            replications: 2,
            faults: 0,
            jobs: 4,
            host_parallelism: 8,
            warmup: 1,
            policy: "fixed".into(),
            config: vec![("processors".into(), "65536".into())],
            profiles: vec![
                RunProfile {
                    wall_secs: 0.5,
                    events: 1000,
                },
                RunProfile {
                    wall_secs: 0.6,
                    events: 1001,
                },
            ],
        };
        let j = m.to_json();
        assert!(j.contains("\"schema_version\": 2"));
        assert!(j.contains("\"engine\": \"direct\""));
        assert!(j.contains("\"policy\": \"fixed\""));
        assert!(j.contains("\"base_seed\": 24301"));
        assert!(j.contains("\"processors\": \"65536\""));
        assert!(j.contains("\"warmup\": 1"));
        assert!(j.contains(
            "\"rep\": 1, \"wall_secs\": 0.600000, \"events\": 1001, \"events_per_sec\": 1668.3"
        ));
        assert!(j.ends_with("]\n}\n"));
    }

    #[test]
    fn empty_collections_stay_valid() {
        let m = RunManifest {
            tool: "t".into(),
            version: "v".into(),
            engine: "san".into(),
            estimation: "batch_means".into(),
            base_seed: 0,
            transient_hours: 0.0,
            horizon_hours: 1.0,
            replications: 0,
            faults: 1,
            jobs: 1,
            host_parallelism: 1,
            warmup: 0,
            policy: String::new(),
            config: vec![],
            profiles: vec![],
        };
        let j = m.to_json();
        assert!(j.contains("\"config\": {},"));
        assert!(j.contains("\"profiles\": []"));
        assert!(j.contains("\"faults\": 1"));
    }
}
