//! Daly's checkpoint-interval model (ICCS 2003 / FGCS 2006).
//!
//! Daly extends Young with failures during checkpointing and recovery
//! and multiple failures per interval (but, as the DSN'05 paper notes,
//! still no coordination overhead and no correlated failures). The key
//! object is the expected wall-clock time to finish a job of solve time
//! `T_s` with checkpoint interval `τ`, dump time `δ`, restart time `R`
//! and exponential failures at system MTBF `M`:
//!
//! ```text
//! T(τ) = M · e^{R/M} · (e^{(τ+δ)/M} − 1) · T_s / τ
//! ```

/// Expected wall-clock time for a job of solve time `solve` using
/// interval `tau` (all times in the same unit).
///
/// # Panics
///
/// Panics unless every argument is finite, `tau`, `mtbf` and `solve` are
/// positive, and `delta`/`restart` are non-negative.
#[must_use]
pub fn expected_wall_time(solve: f64, tau: f64, delta: f64, restart: f64, mtbf: f64) -> f64 {
    assert!(
        solve.is_finite() && solve > 0.0,
        "solve time must be positive"
    );
    assert!(tau.is_finite() && tau > 0.0, "interval must be positive");
    assert!(mtbf.is_finite() && mtbf > 0.0, "mtbf must be positive");
    assert!(delta.is_finite() && delta >= 0.0, "dump time must be >= 0");
    assert!(
        restart.is_finite() && restart >= 0.0,
        "restart must be >= 0"
    );
    mtbf * (restart / mtbf).exp() * (((tau + delta) / mtbf).exp_m1()) * solve / tau
}

/// Useful-work fraction under Daly's model: `T_s / T(τ)`, independent of
/// the solve time.
#[must_use]
pub fn useful_work_fraction(tau: f64, delta: f64, restart: f64, mtbf: f64) -> f64 {
    1.0 / (expected_wall_time(1.0, tau, delta, restart, mtbf))
}

/// Daly's higher-order optimum interval:
///
/// ```text
/// τ* = √(2δM) · [1 + ⅓·√(δ/(2M)) + (1/9)·(δ/(2M))] − δ    for δ < 2M
/// τ* = M                                                   otherwise
/// ```
///
/// # Panics
///
/// Panics unless `delta` and `mtbf` are positive and finite.
#[must_use]
pub fn optimal_interval(delta: f64, mtbf: f64) -> f64 {
    assert!(
        delta.is_finite() && delta > 0.0,
        "dump time must be positive"
    );
    assert!(mtbf.is_finite() && mtbf > 0.0, "mtbf must be positive");
    if delta >= 2.0 * mtbf {
        return mtbf;
    }
    let x = delta / (2.0 * mtbf);
    (2.0 * delta * mtbf).sqrt() * (1.0 + x.sqrt() / 3.0 + x / 9.0) - delta
}

/// Numerically minimizes `T(τ)` by golden-section search, for verifying
/// the closed-form optimum and for regimes outside its validity.
#[must_use]
pub fn optimal_interval_numeric(delta: f64, restart: f64, mtbf: f64) -> f64 {
    let f = |tau: f64| expected_wall_time(1.0, tau, delta, restart, mtbf);
    let (mut lo, mut hi) = (delta * 1e-3, 50.0 * mtbf);
    let phi = (5.0f64.sqrt() - 1.0) / 2.0;
    for _ in 0..200 {
        let a = hi - phi * (hi - lo);
        let b = lo + phi * (hi - lo);
        if f(a) < f(b) {
            hi = b;
        } else {
            lo = a;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_time_exceeds_solve_time() {
        let t = expected_wall_time(1_000.0, 600.0, 46.8, 600.0, 3_600.0);
        assert!(t > 1_000.0);
    }

    #[test]
    fn fraction_is_solve_over_wall() {
        let f = useful_work_fraction(600.0, 46.8, 600.0, 36_000.0);
        let t = expected_wall_time(1.0, 600.0, 46.8, 600.0, 36_000.0);
        assert!((f - 1.0 / t).abs() < 1e-12);
        assert!(f > 0.0 && f < 1.0);
    }

    #[test]
    fn no_failure_limit_recovers_overhead_only() {
        // As M → ∞, the fraction tends to τ/(τ+δ).
        let f = useful_work_fraction(1_800.0, 46.8, 600.0, 1e12);
        let expect = 1_800.0 / 1_846.8;
        assert!((f - expect).abs() < 1e-6, "{f} vs {expect}");
    }

    #[test]
    fn closed_form_optimum_matches_numeric() {
        for (delta, mtbf) in [(46.8, 3_600.0), (10.0, 10_000.0), (120.0, 7_200.0)] {
            let closed = optimal_interval(delta, mtbf);
            let numeric = optimal_interval_numeric(delta, 0.0, mtbf);
            assert!(
                (closed - numeric).abs() / numeric < 0.02,
                "δ={delta} M={mtbf}: closed {closed} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn saturates_at_mtbf_for_huge_overheads() {
        assert_eq!(optimal_interval(10_000.0, 100.0), 100.0);
    }

    #[test]
    fn optimum_shrinks_with_failure_rate() {
        // The paper's point: large systems (small MTBF) need intervals of
        // minutes. 8192 nodes at MTTF 1 y/node → system MTBF ≈ 1.07 h;
        // with the 46.8 s dump the optimum is ≈ 10 minutes.
        let mtbf_8192 = 8_766.0 * 3_600.0 / 8_192.0;
        let tau = optimal_interval(46.8, mtbf_8192);
        assert!(
            (400.0..900.0).contains(&tau),
            "expected minutes-scale optimum, got {tau} s"
        );
        // A 128-node system of the same nodes can checkpoint hourly.
        let mtbf_128 = 8_766.0 * 3_600.0 / 128.0;
        assert!(optimal_interval(46.8, mtbf_128) > 3_000.0);
    }

    #[test]
    fn daly_beats_young_in_expected_time() {
        let (delta, restart, mtbf) = (120.0, 600.0, 1_800.0);
        let young = crate::young::optimal_interval(delta, mtbf);
        let daly = optimal_interval(delta, mtbf);
        let t_young = expected_wall_time(1.0, young, delta, restart, mtbf);
        let t_daly = expected_wall_time(1.0, daly, delta, restart, mtbf);
        assert!(
            t_daly <= t_young * 1.001,
            "Daly's τ* must not lose to Young's under Daly's own model"
        );
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn rejects_zero_interval() {
        let _ = expected_wall_time(1.0, 0.0, 1.0, 1.0, 1.0);
    }
}
