//! Vaidya's checkpoint latency/overhead model (Pacific Rim FTS 1995).
//!
//! Vaidya distinguishes the checkpoint **overhead** `C` (time the
//! application is blocked) from the checkpoint **latency** `L` (time
//! until the checkpoint is stable on storage, `L ≥ C`). His central
//! result: the *optimal checkpoint frequency depends only on the
//! overhead*, while the latency inflates the expected rework after a
//! failure — which is precisely why the DSN'05 system writes checkpoints
//! to the file system in the background (small `C`, large `L`).

/// Optimal interval under Vaidya's model: `√(2·C·mtbf)` — the latency
/// `L` does not appear (his Theorem: frequency is latency-independent).
///
/// # Panics
///
/// Panics unless both arguments are positive and finite.
#[must_use]
pub fn optimal_interval(overhead: f64, mtbf: f64) -> f64 {
    crate::young::optimal_interval(overhead, mtbf)
}

/// First-order expected lost fraction for interval `tau`, overhead `C`
/// and latency `L`: the overhead term `C/τ`, the mid-interval rework
/// `τ/(2·mtbf)`, and the latency exposure `L/mtbf` (a failure within the
/// latency window rolls back to the *previous* checkpoint).
///
/// # Panics
///
/// Panics unless `tau` and `mtbf` are positive and `L ≥ C ≥ 0`.
#[must_use]
pub fn lost_fraction(tau: f64, overhead: f64, latency: f64, mtbf: f64) -> f64 {
    assert!(tau.is_finite() && tau > 0.0, "interval must be positive");
    assert!(mtbf.is_finite() && mtbf > 0.0, "mtbf must be positive");
    assert!(
        overhead >= 0.0 && latency >= overhead,
        "latency ({latency}) must be at least the overhead ({overhead})"
    );
    overhead / tau + tau / (2.0 * mtbf) + latency / mtbf
}

/// Useful-work fraction implied by [`lost_fraction`], clamped to `[0,1]`.
#[must_use]
pub fn useful_work_fraction(tau: f64, overhead: f64, latency: f64, mtbf: f64) -> f64 {
    (1.0 - lost_fraction(tau, overhead, latency, mtbf)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequency_is_latency_independent() {
        // Identical overhead, wildly different latencies → same optimum.
        let a = optimal_interval(10.0, 10_000.0);
        let b = optimal_interval(10.0, 10_000.0);
        assert_eq!(a, b);
        // And the optimum of the full lost-fraction in τ is the same
        // regardless of L (L only shifts the curve).
        let opt = optimal_interval(10.0, 10_000.0);
        for latency in [10.0, 100.0, 1_000.0] {
            let at = lost_fraction(opt, 10.0, latency, 10_000.0);
            for t in [opt * 0.7, opt * 1.4] {
                assert!(lost_fraction(t, 10.0, latency, 10_000.0) > at);
            }
        }
    }

    #[test]
    fn latency_costs_linearly() {
        let base = lost_fraction(600.0, 10.0, 10.0, 10_000.0);
        let long = lost_fraction(600.0, 10.0, 510.0, 10_000.0);
        assert!((long - base - 500.0 / 10_000.0).abs() < 1e-12);
    }

    #[test]
    fn background_write_pays_off() {
        // DSN'05 regime: blocking write would make C = δ_dump + δ_fs;
        // background write keeps C = δ_dump but L = δ_dump + δ_fs.
        let mtbf = 3_600.0;
        let (dump, fs) = (46.8, 131.1);
        let blocking = useful_work_fraction(1_800.0, dump + fs, dump + fs, mtbf);
        let background = useful_work_fraction(1_800.0, dump, dump + fs, mtbf);
        assert!(
            background > blocking,
            "background {background} must beat blocking {blocking}"
        );
    }

    #[test]
    #[should_panic(expected = "latency")]
    fn rejects_latency_below_overhead() {
        let _ = lost_fraction(100.0, 50.0, 10.0, 1_000.0);
    }
}
