//! A CTMC phase model of the checkpoint cycle — the "simple Markov
//! model" baseline.
//!
//! The paper argues that useful work "cannot be represented using simple
//! Markov models" because it requires knowledge of future behavior (work
//! is only useful if it survives until the next checkpoint). This module
//! builds the best *simple* CTMC anyway: five states (computing,
//! coordinating, dumping, recovering, rebooting) with exponential
//! holding times matched to the mean durations, solved with
//! `ckpt_stats::markov::steady_state`. Phase *occupancies* come out
//! quite well; the useful-work fraction needs the rework correction
//! below and is noticeably cruder than either simulator — which is
//! precisely the paper's point, quantified.

use ckpt_stats::markov::{steady_state, transient, CtmcError};

/// Index of each phase in the occupancy vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Application executing.
    Computing = 0,
    /// Quiesce broadcast + coordination.
    Coordinating = 1,
    /// Checkpoint dump to the I/O nodes.
    Dumping = 2,
    /// Rollback and recovery.
    Recovering = 3,
    /// Whole-system reboot.
    Rebooting = 4,
}

/// Parameters of the phase model (all times in seconds, rates in 1/s).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseModel {
    /// Checkpoint interval τ.
    pub interval: f64,
    /// Mean coordination duration (broadcast + quiesce/coordination).
    pub coordination: f64,
    /// Checkpoint dump duration.
    pub dump: f64,
    /// Mean recovery duration R (a *single* uninterrupted attempt).
    pub recovery: f64,
    /// System failure rate Λ.
    pub failure_rate: f64,
    /// Mean reboot duration (0 disables the reboot state).
    pub reboot: f64,
    /// Rate of escalation from recovering to rebooting (0 disables).
    pub severe_rate: f64,
}

impl PhaseModel {
    /// Builds the 5×5 generator matrix.
    ///
    /// Recovery completion uses the deterministic-restart mean
    /// `(e^{ΛR} − 1)/Λ`, so repeated in-recovery failures are folded into
    /// the recovering state's holding time.
    #[must_use]
    pub fn generator(&self) -> Vec<Vec<f64>> {
        let lam = self.failure_rate;
        // Effective recovery completion rate with failures restarting a
        // deterministic attempt of length R.
        let recovery_mean = if lam * self.recovery > 1e-12 {
            ((lam * self.recovery).exp_m1()) / lam
        } else {
            self.recovery
        };
        let mu_rec = 1.0 / recovery_mean;
        let to_coord = 1.0 / self.interval;
        let coord_done = 1.0 / self.coordination.max(1e-9);
        let dump_done = 1.0 / self.dump.max(1e-9);
        let reboot_done = if self.reboot > 0.0 {
            1.0 / self.reboot
        } else {
            0.0
        };

        let mut q = vec![vec![0.0; 5]; 5];
        // Computing.
        q[0][1] = to_coord;
        q[0][3] = lam;
        // Coordinating.
        q[1][2] = coord_done;
        q[1][3] = lam;
        // Dumping.
        q[2][0] = dump_done;
        q[2][3] = lam;
        // Recovering.
        q[3][0] = mu_rec;
        q[3][4] = self.severe_rate;
        // Rebooting → recovering (compute nodes still must recover).
        q[4][3] = reboot_done.max(if self.severe_rate > 0.0 { 1e-12 } else { 0.0 });

        for (i, row) in q.iter_mut().enumerate() {
            let row_sum: f64 = row.iter().sum::<f64>() - row[i];
            row[i] = -row_sum;
        }
        q
    }

    /// Steady-state phase occupancies `[computing, coordinating, dumping,
    /// recovering, rebooting]`.
    ///
    /// # Errors
    ///
    /// Propagates solver errors (a reducible chain, which cannot happen
    /// for positive parameters).
    pub fn occupancy(&self) -> Result<[f64; 5], CtmcError> {
        let q = self.generator();
        if self.severe_rate == 0.0 {
            // The reboot state is unreachable: solve the 4-state chain.
            let q4: Vec<Vec<f64>> = q[..4].iter().map(|row| row[..4].to_vec()).collect();
            let pi = steady_state(&q4)?;
            Ok([pi[0], pi[1], pi[2], pi[3], 0.0])
        } else {
            let pi = steady_state(&q)?;
            Ok([pi[0], pi[1], pi[2], pi[3], pi[4]])
        }
    }

    /// Approximate useful-work fraction: the computing occupancy minus
    /// the rework rate. Work accrues at rate `π₀`; failures strike the
    /// working states at rate `Λ·(π₀+π₁+π₂)` and each costs on average
    /// half an interval of accrued work (`π₀·τ/2` wall-clock equivalent,
    /// capped at the accrual itself).
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn useful_work_fraction(&self) -> Result<f64, CtmcError> {
        let pi = self.occupancy()?;
        let accrual = pi[0];
        let failing = self.failure_rate * (pi[0] + pi[1] + pi[2]);
        let loss_per_failure = (pi[0] * self.interval / 2.0).min(1.0 / failing.max(1e-300));
        Ok((accrual - failing * loss_per_failure).max(0.0))
    }

    /// Probability the system is in each phase at time `t`, starting
    /// from computing — a transient measure the simulation-only paper
    /// never reports, enabled by the uniformization solver.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn occupancy_at(&self, t: f64) -> Result<[f64; 5], CtmcError> {
        let q = self.generator();
        let pi = transient(&q, &[1.0, 0.0, 0.0, 0.0, 0.0], t)?;
        Ok([pi[0], pi[1], pi[2], pi[3], pi[4]])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> PhaseModel {
        // The 64K-processor base point: Λ = 8192/1y, τ = 30 min,
        // coordination ≈ 10 s, dump 46.8 s, R = 10 min.
        PhaseModel {
            interval: 1_800.0,
            coordination: 10.0,
            dump: 46.8,
            recovery: 600.0,
            failure_rate: 8_192.0 / (8_766.0 * 3_600.0),
            reboot: 3_600.0,
            severe_rate: 0.0,
        }
    }

    #[test]
    fn occupancies_sum_to_one() {
        let pi = base().occupancy().unwrap();
        let sum: f64 = pi.iter().sum();
        assert!((sum - 1.0).abs() < 1e-10);
        assert!(pi.iter().all(|&p| p >= 0.0));
        assert_eq!(pi[4], 0.0, "no severe rate → no reboot mass");
    }

    #[test]
    fn computing_dominates_at_base_parameters() {
        let pi = base().occupancy().unwrap();
        assert!(pi[0] > 0.80, "computing occupancy {}", pi[0]);
        // Recovery mass ≈ Λ·E[recovery] ≈ 0.935/h · 10min ≈ 0.15·…
        assert!(pi[3] > 0.01 && pi[3] < 0.2, "recovering {}", pi[3]);
    }

    #[test]
    fn useful_work_is_below_computing_occupancy() {
        let m = base();
        let pi = m.occupancy().unwrap();
        let f = m.useful_work_fraction().unwrap();
        assert!(f < pi[0]);
        // And in the ballpark of Daly at this point (≈0.645).
        assert!((0.5..0.8).contains(&f), "fraction {f}");
    }

    #[test]
    fn higher_failure_rate_lowers_everything() {
        let mut harsh = base();
        harsh.failure_rate *= 8.0;
        let f_base = base().useful_work_fraction().unwrap();
        let f_harsh = harsh.useful_work_fraction().unwrap();
        assert!(f_harsh < f_base);
        let pi_harsh = harsh.occupancy().unwrap();
        let pi_base = base().occupancy().unwrap();
        assert!(pi_harsh[3] > pi_base[3], "more recovery mass");
    }

    #[test]
    fn severe_rate_populates_reboot_state() {
        let mut m = base();
        m.severe_rate = 1.0 / 600.0;
        let pi = m.occupancy().unwrap();
        assert!(pi[4] > 0.0, "reboot mass {}", pi[4]);
    }

    #[test]
    fn transient_starts_computing_and_settles() {
        let m = base();
        let at0 = m.occupancy_at(0.0).unwrap();
        assert!((at0[0] - 1.0).abs() < 1e-12);
        let late = m.occupancy_at(5.0e6).unwrap();
        let steady = m.occupancy().unwrap();
        for (a, b) in late.iter().zip(&steady) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn deterministic_restart_penalty_appears() {
        // With ΛR = 1 the effective recovery mean is (e−1)/Λ ≈ 1.72 R.
        let m = PhaseModel {
            interval: 1e9, // effectively never checkpoint
            coordination: 1.0,
            dump: 1.0,
            recovery: 100.0,
            failure_rate: 0.01,
            reboot: 0.0,
            severe_rate: 0.0,
        };
        let pi = m.occupancy().unwrap();
        // Occupancy ratio recovering/computing = Λ · E[recovery_total].
        let ratio = pi[3] / pi[0];
        let expect = 0.01 * (1.0f64.exp_m1() / 0.01);
        assert!(
            (ratio - expect).abs() / expect < 1e-6,
            "ratio {ratio} vs {expect}"
        );
    }
}
