//! Renewal-reward predictions of the useful-work fraction, used as
//! sanity bounds for the simulators and as the analytic series in the
//! figure benches.

/// System-wide failure rate of `nodes` nodes with per-node MTTF
/// `mttf_node` (same unit), optionally inflated by a generic correlated
/// stream `α·r` (the paper's Section 6: total rate `n·λ·(1 + α·r)`).
///
/// # Panics
///
/// Panics unless `nodes ≥ 1` and `mttf_node > 0`.
#[must_use]
pub fn system_failure_rate(nodes: u64, mttf_node: f64, alpha_r: f64) -> f64 {
    assert!(nodes >= 1, "need at least one node");
    assert!(
        mttf_node.is_finite() && mttf_node > 0.0,
        "mttf must be positive"
    );
    assert!(alpha_r >= 0.0, "correlated inflation must be non-negative");
    nodes as f64 / mttf_node * (1.0 + alpha_r)
}

/// Daly-style useful-work fraction of the full system: interval `tau`,
/// non-overlapped protocol overhead `overhead` (broadcast + quiesce +
/// dump), mean recovery `recovery`, and system failure rate `rate`.
///
/// This is `τ / T(τ)` with `T` from [`crate::daly::expected_wall_time`],
/// evaluated per cycle — the closest closed form to the paper's base
/// model (it still ignores I/O-node effects and master aborts, which is
/// why the simulators sit slightly below it).
#[must_use]
pub fn predicted_useful_work_fraction(tau: f64, overhead: f64, recovery: f64, rate: f64) -> f64 {
    assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
    let mtbf = 1.0 / rate;
    crate::daly::useful_work_fraction(tau, overhead, recovery, mtbf)
}

/// Total useful work (the paper's "job units"): fraction × processors.
#[must_use]
pub fn predicted_total_useful_work(
    processors: u64,
    tau: f64,
    overhead: f64,
    recovery: f64,
    rate: f64,
) -> f64 {
    processors as f64 * predicted_useful_work_fraction(tau, overhead, recovery, rate)
}

/// The processor count maximizing predicted total useful work for a
/// fixed per-node MTTF — the analytic counterpart of the paper's
/// "optimum number of processors" (Figure 4a/c/e), found by scanning
/// powers of two in `[min_procs, max_procs]`.
#[must_use]
pub fn optimal_processor_count(
    procs_per_node: u32,
    mttf_node: f64,
    tau: f64,
    overhead: f64,
    recovery: f64,
    min_procs: u64,
    max_procs: u64,
) -> u64 {
    assert!(procs_per_node >= 1);
    let mut best = (min_procs, f64::MIN);
    let mut p = min_procs;
    while p <= max_procs {
        let nodes = p / u64::from(procs_per_node);
        if nodes >= 1 {
            let rate = system_failure_rate(nodes, mttf_node, 0.0);
            let w = predicted_total_useful_work(p, tau, overhead, recovery, rate);
            if w > best.1 {
                best = (p, w);
            }
        }
        p *= 2;
    }
    best.0
}

#[cfg(test)]
mod tests {
    use super::*;

    const YEAR: f64 = 8_766.0 * 3_600.0;

    #[test]
    fn system_rate_scales_linearly() {
        let r1 = system_failure_rate(1_024, YEAR, 0.0);
        let r2 = system_failure_rate(2_048, YEAR, 0.0);
        assert!((r2 - 2.0 * r1).abs() < 1e-18);
        // α·r = 1 doubles the rate (paper's Figure-8 setting).
        let rc = system_failure_rate(1_024, YEAR, 1.0);
        assert!((rc - 2.0 * r1).abs() < 1e-18);
    }

    #[test]
    fn fraction_decreases_with_rate() {
        let f_small = predicted_useful_work_fraction(
            1_800.0,
            56.8,
            600.0,
            system_failure_rate(1_024, YEAR, 0.0),
        );
        let f_large = predicted_useful_work_fraction(
            1_800.0,
            56.8,
            600.0,
            system_failure_rate(32_768, YEAR, 0.0),
        );
        assert!(f_small > f_large);
        assert!(f_large > 0.0);
    }

    #[test]
    fn optimum_processor_count_exists_and_moves_with_mttf() {
        // Paper: MTTF 1 y/node, MTTR 10 min, 30-minute interval →
        // optimum ≈ 128K processors (8 per node).
        let opt_1y = optimal_processor_count(8, YEAR, 1_800.0, 56.8, 600.0, 8_192, 262_144);
        assert!(
            (65_536..=262_144).contains(&opt_1y),
            "1-year optimum at {opt_1y}"
        );
        // Halving the MTTF must not increase the optimum.
        let opt_half = optimal_processor_count(8, 0.5 * YEAR, 1_800.0, 56.8, 600.0, 8_192, 262_144);
        assert!(opt_half <= opt_1y, "{opt_half} vs {opt_1y}");
    }

    #[test]
    fn interior_optimum_beats_neighbours() {
        let tuw = |p: u64| {
            let rate = system_failure_rate(p / 8, YEAR, 0.0);
            predicted_total_useful_work(p, 1_800.0, 56.8, 600.0, rate)
        };
        let opt = optimal_processor_count(8, YEAR, 1_800.0, 56.8, 600.0, 8_192, 262_144);
        if opt > 8_192 && opt < 262_144 {
            assert!(tuw(opt) >= tuw(opt / 2));
            assert!(tuw(opt) >= tuw(opt * 2));
        }
    }
}
