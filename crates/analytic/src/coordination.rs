//! Closed forms for the coordination time of the paper's Section 5.
//!
//! With `n` nodes quiescing independently, each exponential with mean
//! MTTQ (rate `λ = 1/MTTQ`), the coordination time is
//! `Y = max{X_1..X_n}` with CDF `F_Y(y) = (1 − e^{−λy})^n`.

use ckpt_stats::special::{harmonic, harmonic2};

/// Expected coordination time `E[Y] = H_n / λ = H_n · MTTQ` — the
/// logarithmic growth that makes coordination scale well (Figure 5).
///
/// # Panics
///
/// Panics unless `n ≥ 1` and `mttq > 0`.
///
/// # Example
///
/// ```
/// use ckpt_analytic::coordination::expected_time;
///
/// // Paper's observation: going from 64Ki to 1Gi processors adds only
/// // ~10 MTTQs of coordination time.
/// let small = expected_time(1 << 16, 10.0);
/// let huge = expected_time(1 << 30, 10.0);
/// assert!(huge - small < 100.1);
/// ```
#[must_use]
pub fn expected_time(n: u64, mttq: f64) -> f64 {
    assert!(n >= 1, "need at least one node");
    assert!(mttq.is_finite() && mttq > 0.0, "mttq must be positive");
    harmonic(n) * mttq
}

/// Variance of the coordination time, `H_n^{(2)} · MTTQ²` — bounded by
/// `π²/6 · MTTQ²` for any `n`.
#[must_use]
pub fn variance(n: u64, mttq: f64) -> f64 {
    assert!(n >= 1, "need at least one node");
    harmonic2(n) * mttq * mttq
}

/// Quantile of `Y`: `F⁻¹(p) = −MTTQ · ln(1 − p^{1/n})`.
///
/// # Panics
///
/// Panics unless `p ∈ (0, 1)`.
#[must_use]
pub fn quantile(n: u64, mttq: f64, p: f64) -> f64 {
    assert!(n >= 1, "need at least one node");
    assert!(p > 0.0 && p < 1.0, "p must be in (0,1), got {p}");
    let x = p.ln() / n as f64;
    -mttq * (-x.exp_m1()).ln()
}

/// Probability the master times out: `P(Y > T) = 1 − (1 − e^{−T/MTTQ})^n`,
/// the per-attempt checkpoint-abort probability of Section 7.2.
///
/// # Example
///
/// ```
/// use ckpt_analytic::coordination::timeout_probability;
///
/// // Paper's Figure 6: timeouts ≤ 80 s hurt, ≥ 120 s are near-safe.
/// // 64K processors = 8192 coordinating nodes, MTTQ 10 s:
/// let p80 = timeout_probability(8_192, 10.0, 80.0);
/// let p120 = timeout_probability(8_192, 10.0, 120.0);
/// assert!(p80 > 0.9, "80 s aborts almost every attempt: {p80}");
/// assert!(p120 < 0.05, "120 s rarely aborts: {p120}");
/// ```
#[must_use]
pub fn timeout_probability(n: u64, mttq: f64, timeout: f64) -> f64 {
    assert!(n >= 1, "need at least one node");
    assert!(timeout >= 0.0, "timeout must be non-negative");
    // 1 − (1 − e^{−T/mttq})^n, computed stably via ln.
    let log_term = (-(-timeout / mttq).exp()).ln_1p(); // ln(1 − e^{−T/MTTQ})
    -(n as f64 * log_term).exp_m1()
}

/// Failure-free useful-work fraction of the coordination-only model
/// (the analytic counterpart of Figure 5): per cycle, `interval` seconds
/// of work cost `interval + broadcast + E[Y] + dump` seconds.
#[must_use]
pub fn useful_work_fraction(n: u64, mttq: f64, interval: f64, broadcast: f64, dump: f64) -> f64 {
    assert!(
        interval.is_finite() && interval > 0.0,
        "interval must be positive"
    );
    let cycle = interval + broadcast + expected_time(n, mttq) + dump;
    interval / cycle
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckpt_des::SimRng;
    use ckpt_stats::dist::sample_max_exponential;

    #[test]
    fn expected_time_n1_is_mttq() {
        assert!((expected_time(1, 10.0) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn growth_is_logarithmic() {
        let e1k = expected_time(1_000, 1.0);
        let e1m = expected_time(1_000_000, 1.0);
        let e1g = expected_time(1_000_000_000, 1.0);
        // Each 1000× adds ≈ ln(1000) ≈ 6.9.
        assert!((e1m - e1k - 1000f64.ln()).abs() < 0.01);
        assert!((e1g - e1m - 1000f64.ln()).abs() < 0.01);
    }

    #[test]
    fn quantile_inverts_cdf() {
        // F(F⁻¹(p)) = p with F(y) = (1 − e^{−y/mttq})^n.
        for p in [0.1, 0.5, 0.9, 0.999] {
            let y = quantile(4_096, 2.0, p);
            let cdf = (1.0 - (-y / 2.0).exp()).powi(4_096);
            assert!((cdf - p).abs() < 1e-9, "p={p}: cdf={cdf}");
        }
    }

    #[test]
    fn median_matches_sampler() {
        let mut rng = SimRng::seed_from_u64(1);
        let n = 10_000u64;
        let med = quantile(n, 10.0, 0.5);
        let below = (0..20_000)
            .filter(|_| sample_max_exponential(n, 0.1, &mut rng) < med)
            .count();
        let frac = below as f64 / 20_000.0;
        assert!((frac - 0.5).abs() < 0.01, "median split {frac}");
    }

    #[test]
    fn timeout_probability_bounds_and_monotonicity() {
        assert!((timeout_probability(100, 10.0, 0.0) - 1.0).abs() < 1e-12);
        let p1 = timeout_probability(65_536, 10.0, 60.0);
        let p2 = timeout_probability(65_536, 10.0, 100.0);
        let p3 = timeout_probability(65_536, 10.0, 140.0);
        assert!(p1 > p2 && p2 > p3, "{p1} > {p2} > {p3}");
        let q1 = timeout_probability(262_144, 10.0, 100.0);
        assert!(q1 > p2, "more nodes → more timeouts");
    }

    #[test]
    fn timeout_probability_matches_sampler() {
        let mut rng = SimRng::seed_from_u64(2);
        let (n, mttq, t) = (8_192u64, 10.0, 100.0);
        let p = timeout_probability(n, mttq, t);
        let hits = (0..200_000)
            .filter(|_| sample_max_exponential(n, 1.0 / mttq, &mut rng) > t)
            .count();
        let freq = hits as f64 / 200_000.0;
        assert!((freq - p).abs() < 0.005, "analytic {p} vs empirical {freq}");
    }

    #[test]
    fn fraction_declines_slowly_with_n() {
        let f = |n| useful_work_fraction(n, 10.0, 1_800.0, 0.002, 46.8);
        let f64k = f(65_536);
        let f1g = f(1 << 30);
        assert!(f64k > f1g);
        assert!(f64k - f1g < 0.08, "coordination effect stays small");
    }

    #[test]
    fn variance_is_bounded() {
        let v = variance(1 << 30, 10.0);
        let bound = std::f64::consts::PI.powi(2) / 6.0 * 100.0;
        assert!(v < bound);
        assert!(v > 100.0, "variance exceeds single-node variance");
    }
}
