//! Young's first-order checkpoint-interval model (CACM 1974).
//!
//! Young assumes the MTBF is much larger than the checkpoint and
//! recovery times (no failures during checkpointing/recovery) — the very
//! assumption the DSN'05 paper shows breaks down for large systems.

/// First-order optimum checkpoint interval `τ* = √(2·δ·mtbf)`, where
/// `δ` is the time to take one checkpoint and `mtbf` is the system-wide
/// mean time between failures (same time unit for both).
///
/// # Panics
///
/// Panics unless both arguments are positive and finite.
///
/// # Example
///
/// ```
/// // δ = 47 s dump, system MTBF = 1 h: checkpoint about every 10 min.
/// let tau = ckpt_analytic::young::optimal_interval(46.8, 3_600.0);
/// assert!((540.0..640.0).contains(&tau));
/// ```
#[must_use]
pub fn optimal_interval(checkpoint_time: f64, mtbf: f64) -> f64 {
    assert!(
        checkpoint_time.is_finite() && checkpoint_time > 0.0,
        "checkpoint time must be positive, got {checkpoint_time}"
    );
    assert!(
        mtbf.is_finite() && mtbf > 0.0,
        "mtbf must be positive, got {mtbf}"
    );
    (2.0 * checkpoint_time * mtbf).sqrt()
}

/// Young's expected fraction of time lost for interval `tau`:
/// `δ/τ` (checkpoint overhead) plus `τ/(2·mtbf)` (expected rework),
/// valid in the small-loss regime. The useful-work fraction is `1 −
/// lost_fraction` when the sum is below 1.
#[must_use]
pub fn lost_fraction(tau: f64, checkpoint_time: f64, mtbf: f64) -> f64 {
    assert!(tau.is_finite() && tau > 0.0, "interval must be positive");
    checkpoint_time / tau + tau / (2.0 * mtbf)
}

/// Useful-work fraction implied by [`lost_fraction`], clamped to `[0,1]`.
#[must_use]
pub fn useful_work_fraction(tau: f64, checkpoint_time: f64, mtbf: f64) -> f64 {
    (1.0 - lost_fraction(tau, checkpoint_time, mtbf)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimum_matches_formula() {
        let tau = optimal_interval(50.0, 7_200.0);
        assert!((tau - (2.0f64 * 50.0 * 7_200.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn optimum_minimizes_lost_fraction() {
        let (delta, mtbf) = (46.8, 3_600.0);
        let tau = optimal_interval(delta, mtbf);
        let at = lost_fraction(tau, delta, mtbf);
        for t in [tau * 0.5, tau * 0.8, tau * 1.25, tau * 2.0] {
            assert!(
                lost_fraction(t, delta, mtbf) > at,
                "τ*={tau} must beat τ={t}"
            );
        }
    }

    #[test]
    fn at_optimum_overhead_equals_rework() {
        let (delta, mtbf) = (10.0, 1_000.0);
        let tau = optimal_interval(delta, mtbf);
        assert!((delta / tau - tau / (2.0 * mtbf)).abs() < 1e-12);
    }

    #[test]
    fn useful_work_clamps() {
        // Pathological: losses exceed 1 → clamp to 0.
        assert_eq!(useful_work_fraction(1.0, 100.0, 1.0), 0.0);
        assert!(useful_work_fraction(600.0, 46.8, 360_000.0) > 0.9);
    }

    #[test]
    #[should_panic(expected = "mtbf must be positive")]
    fn rejects_bad_mtbf() {
        let _ = optimal_interval(10.0, 0.0);
    }
}
