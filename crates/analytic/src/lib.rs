//! Analytic checkpointing models.
//!
//! The DSN'05 paper positions its simulation against the classical
//! closed-form checkpoint-interval models; this crate implements those
//! baselines from their original papers so the benches can plot them
//! next to the simulated curves:
//!
//! * [`young`] — Young's first-order optimum interval
//!   `τ* = √(2·δ·M)` (CACM 1974),
//! * [`daly`] — Daly's higher-order optimum and his expected-runtime
//!   model with failures during checkpointing and recovery (ICCS 2003 /
//!   FGCS 2006),
//! * [`vaidya`] — Vaidya's checkpoint *latency vs. overhead* distinction
//!   (Pacific Rim FTS 1995), where only the blocking overhead affects the
//!   optimal frequency,
//! * [`coordination`] — closed forms for the max-of-n-exponentials
//!   coordination time of the paper's Section 5: its mean `H_n/λ`, its
//!   quantiles, and the timeout-abort probability
//!   `P(Y > T) = 1 − (1 − e^{−λT})^n`,
//! * [`availability`] — renewal-reward predictions of the useful-work
//!   fraction used as sanity bounds for the simulators,
//! * [`phase_model`] — the "simple Markov model" the paper argues is
//!   insufficient: a 5-state CTMC of the checkpoint cycle whose phase
//!   occupancies are good but whose useful-work estimate is visibly
//!   cruder than the simulators', quantifying the paper's claim.
//!
//! # Example
//!
//! ```
//! // A 60-second dump overhead on a machine with a 1-hour system MTBF
//! // wants checkpoints far more often than one with a 100-hour MTBF.
//! let tight = ckpt_analytic::young::optimal_interval(60.0, 3_600.0);
//! let loose = ckpt_analytic::young::optimal_interval(60.0, 360_000.0);
//! assert!(tight < loose);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod availability;
pub mod coordination;
pub mod daly;
pub mod phase_model;
pub mod vaidya;
pub mod young;
