//! Shared configuration-flag parsing for `run` and `analytic`.

/// The shared `--snapshot/--snapshot-every/--resume/--progress/--quiet`
/// execution switches, re-exported from the harness: every command
/// (run, figure, optimize, submit, and the per-figure bench binaries)
/// parses and validates them through this one type instead of
/// duplicating the plumbing.
pub use ckpt_harness::ExecFlags;

use ckpt_core::config::{CoordinationMode, ErrorPropagation, GenericCorrelated, SystemConfig};
use ckpt_core::PolicySpec;
use ckpt_des::SimTime;
use ckpt_harness::CkptError;

/// Parses a `--policy` value: a bare policy name, or
/// `adaptive:WINDOW,FLOOR_SECS,CEIL_SECS` to override the adaptive
/// defaults.
fn parse_policy(v: &str) -> Result<PolicySpec, CkptError> {
    match v {
        "fixed" => Ok(PolicySpec::Fixed),
        "daly" => Ok(PolicySpec::DalyOptimal),
        "adaptive" => Ok(PolicySpec::load_adaptive_default()),
        other => {
            if let Some(params) = other.strip_prefix("adaptive:") {
                let parts: Vec<&str> = params.split(',').collect();
                if parts.len() != 3 {
                    return Err(CkptError::Usage(
                        "--policy adaptive:WINDOW,FLOOR_SECS,CEIL_SECS".into(),
                    ));
                }
                let bad = |e| CkptError::Usage(format!("--policy adaptive: {e}"));
                return Ok(PolicySpec::LoadAdaptive {
                    window: parts[0].parse().map_err(bad)?,
                    floor_secs: parts[1]
                        .parse()
                        .map_err(|e| CkptError::Usage(format!("--policy adaptive: {e}")))?,
                    ceil_secs: parts[2]
                        .parse()
                        .map_err(|e| CkptError::Usage(format!("--policy adaptive: {e}")))?,
                });
            }
            Err(CkptError::Usage(format!(
                "--policy: unknown policy '{other}' (fixed|daly|adaptive[:W,F,C])"
            )))
        }
    }
}

/// Splits `args` into configuration flags (consumed here) and the rest
/// (returned for the run-option parser), and builds the [`SystemConfig`].
///
/// # Errors
///
/// Returns [`CkptError::Usage`] on malformed values and
/// [`CkptError::Config`] on an invalid resulting configuration. Unrecognized flags are passed through untouched.
pub fn parse_config(args: Vec<String>) -> Result<(SystemConfig, Vec<String>), CkptError> {
    let mut b = SystemConfig::builder();
    let mut rest = Vec::new();
    let mut it = args.into_iter().peekable();

    fn value(
        it: &mut std::iter::Peekable<std::vec::IntoIter<String>>,
        flag: &str,
    ) -> Result<String, CkptError> {
        it.next()
            .ok_or_else(|| CkptError::Usage(format!("{flag} expects a value")))
    }

    fn parse_num<T: std::str::FromStr>(v: &str, flag: &str) -> Result<T, CkptError>
    where
        T::Err: std::fmt::Display,
    {
        v.parse()
            .map_err(|e| CkptError::Usage(format!("{flag}: {e}")))
    }

    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--processors" => {
                let v = value(&mut it, "--processors")?;
                b = b.processors(parse_num(&v, "--processors")?);
            }
            "--procs-per-node" => {
                let v = value(&mut it, "--procs-per-node")?;
                b = b.procs_per_node(parse_num(&v, "--procs-per-node")?);
            }
            "--interval-mins" => {
                let v = value(&mut it, "--interval-mins")?;
                b = b.checkpoint_interval(SimTime::from_mins(parse_num(&v, "--interval-mins")?));
            }
            "--mttf-years" => {
                let v = value(&mut it, "--mttf-years")?;
                b = b.mttf_per_node(SimTime::from_years(parse_num(&v, "--mttf-years")?));
            }
            "--mttr-mins" => {
                let v = value(&mut it, "--mttr-mins")?;
                b = b.mttr_system(SimTime::from_mins(parse_num(&v, "--mttr-mins")?));
            }
            "--mttq-secs" => {
                let v = value(&mut it, "--mttq-secs")?;
                b = b.mttq(SimTime::from_secs(parse_num(&v, "--mttq-secs")?));
            }
            "--compute-fraction" => {
                let v = value(&mut it, "--compute-fraction")?;
                b = b.compute_fraction(parse_num(&v, "--compute-fraction")?);
            }
            "--coordination" => {
                let v = value(&mut it, "--coordination")?;
                let mode = match v.as_str() {
                    "fixed" => CoordinationMode::FixedQuiesce,
                    "exp" => CoordinationMode::SystemExponential,
                    "maxofn" => CoordinationMode::MaxOfN,
                    other => {
                        return Err(CkptError::Usage(format!(
                            "--coordination: unknown mode '{other}' (fixed|exp|maxofn)"
                        )))
                    }
                };
                b = b.coordination(mode);
            }
            "--timeout-secs" => {
                let v = value(&mut it, "--timeout-secs")?;
                b = b.timeout(Some(SimTime::from_secs(parse_num(&v, "--timeout-secs")?)));
            }
            "--error-propagation" => {
                let v = value(&mut it, "--error-propagation")?;
                let parts: Vec<&str> = v.split(',').collect();
                if parts.len() != 2 {
                    return Err(CkptError::Usage(
                        "--error-propagation expects 'probability,factor'".into(),
                    ));
                }
                b = b.error_propagation(Some(ErrorPropagation {
                    probability: parse_num(parts[0], "--error-propagation probability")?,
                    factor: parse_num(parts[1], "--error-propagation factor")?,
                    window: 180.0,
                }));
            }
            "--generic-correlated" => {
                let v = value(&mut it, "--generic-correlated")?;
                let parts: Vec<&str> = v.split(',').collect();
                if parts.len() != 2 {
                    return Err(CkptError::Usage(
                        "--generic-correlated expects 'alpha,factor'".into(),
                    ));
                }
                b = b.generic_correlated(Some(GenericCorrelated {
                    coefficient: parse_num(parts[0], "--generic-correlated alpha")?,
                    factor: parse_num(parts[1], "--generic-correlated factor")?,
                }));
            }
            "--spatial" => {
                let v = value(&mut it, "--spatial")?;
                b = b.spatial_correlation(Some(parse_num(&v, "--spatial")?));
            }
            "--jitter" => {
                let v = value(&mut it, "--jitter")?;
                let parts: Vec<&str> = v.split(',').collect();
                if parts.len() != 2 {
                    return Err(CkptError::Usage("--jitter expects 'lo,hi'".into()));
                }
                b = b.compute_fraction_jitter(Some((
                    parse_num(parts[0], "--jitter lo")?,
                    parse_num(parts[1], "--jitter hi")?,
                )));
            }
            "--policy" => {
                let v = value(&mut it, "--policy")?;
                b = b.policy(parse_policy(&v)?);
            }
            "--no-failures" => {
                b = b.failures_enabled(false);
            }
            _ => rest.push(arg),
        }
    }

    let cfg = b.build().map_err(CkptError::from)?;
    Ok((cfg, rest))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_when_no_flags() {
        let (cfg, rest) = parse_config(vec![]).unwrap();
        assert_eq!(cfg.processors(), 65_536);
        assert!(rest.is_empty());
    }

    #[test]
    fn full_flag_set_builds() {
        let (cfg, rest) = parse_config(argv(&[
            "--processors",
            "131072",
            "--procs-per-node",
            "16",
            "--interval-mins",
            "15",
            "--mttf-years",
            "3",
            "--mttr-mins",
            "20",
            "--mttq-secs",
            "2",
            "--compute-fraction",
            "0.9",
            "--coordination",
            "maxofn",
            "--timeout-secs",
            "100",
            "--error-propagation",
            "0.1,800",
            "--generic-correlated",
            "0.0025,400",
        ]))
        .unwrap();
        assert_eq!(cfg.processors(), 131_072);
        assert_eq!(cfg.procs_per_node(), 16);
        assert_eq!(cfg.checkpoint_interval().as_mins(), 15.0);
        assert!((cfg.mttf_per_node().as_years() - 3.0).abs() < 1e-9);
        assert_eq!(cfg.coordination(), CoordinationMode::MaxOfN);
        assert_eq!(cfg.timeout(), Some(SimTime::from_secs(100.0)));
        assert!(cfg.error_propagation().is_some());
        assert!(cfg.generic_correlated().is_some());
        assert!(rest.is_empty());
    }

    #[test]
    fn unknown_flags_pass_through() {
        let (_, rest) =
            parse_config(argv(&["--processors", "8192", "--reps", "5", "--csv"])).unwrap();
        assert_eq!(rest, argv(&["--reps", "5", "--csv"]));
    }

    #[test]
    fn malformed_values_are_rejected() {
        assert!(parse_config(argv(&["--processors", "lots"])).is_err());
        assert!(parse_config(argv(&["--coordination", "psychic"])).is_err());
        assert!(parse_config(argv(&["--error-propagation", "0.1"])).is_err());
        assert!(parse_config(argv(&["--processors"])).is_err());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        // 100 processors is not a multiple of 8 per node.
        assert!(parse_config(argv(&["--processors", "100"])).is_err());
    }

    #[test]
    fn extension_flags() {
        let (cfg, _) = parse_config(argv(&["--spatial", "0.3", "--jitter", "0.88,1.0"])).unwrap();
        assert_eq!(cfg.spatial_correlation(), Some(0.3));
        assert_eq!(cfg.compute_fraction_jitter(), Some((0.88, 1.0)));
        assert!(parse_config(argv(&["--jitter", "0.9"])).is_err());
        assert!(parse_config(argv(&["--spatial", "2.0"])).is_err());
    }

    #[test]
    fn no_failures_switch() {
        let (cfg, _) = parse_config(argv(&["--no-failures"])).unwrap();
        assert!(!cfg.failures_enabled());
    }

    #[test]
    fn policy_flag() {
        let (cfg, _) = parse_config(vec![]).unwrap();
        assert_eq!(cfg.policy(), PolicySpec::Fixed);
        let (cfg, _) = parse_config(argv(&["--policy", "fixed"])).unwrap();
        assert_eq!(cfg.policy(), PolicySpec::Fixed);
        let (cfg, _) = parse_config(argv(&["--policy", "daly"])).unwrap();
        assert_eq!(cfg.policy(), PolicySpec::DalyOptimal);
        let (cfg, _) = parse_config(argv(&["--policy", "adaptive"])).unwrap();
        assert_eq!(cfg.policy(), PolicySpec::load_adaptive_default());
        let (cfg, _) = parse_config(argv(&["--policy", "adaptive:4,120,7200"])).unwrap();
        assert_eq!(
            cfg.policy(),
            PolicySpec::LoadAdaptive {
                window: 4,
                floor_secs: 120.0,
                ceil_secs: 7200.0,
            }
        );
        assert!(parse_config(argv(&["--policy", "psychic"])).is_err());
        assert!(parse_config(argv(&["--policy", "adaptive:1,2"])).is_err());
        // Parameter validation still runs: window 1 is rejected.
        assert!(parse_config(argv(&["--policy", "adaptive:1,60,120"])).is_err());
    }
}
