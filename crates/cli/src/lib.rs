//! Implementation of the `ckptsim` command-line interface.
//!
//! Subcommands:
//!
//! * `run` — simulate one configuration and print its metrics,
//! * `figure <id>` — regenerate one of the paper's figures,
//! * `list` — list the available figure ids,
//! * `table3` — print the model parameters (paper's Table 3),
//! * `analytic` — print the closed-form baselines for a configuration,
//! * `optimize` — search the checkpoint-policy space for the best
//!   useful-work fraction and emit a versioned JSON report,
//! * `report` — summarize run artifacts (manifests, metrics reports,
//!   snapshots, telemetry documents) as tables or versioned JSON,
//! * `serve` — run the simulation service: an HTTP listener over a
//!   content-addressed result cache (see [`ckpt_svc`]),
//! * `submit` / `status` / `result` — the client side of `serve`.
//!
//! Configuration flags are shared between `run`, `analytic`, and
//! `submit`; see [`config_flags::parse_config`]. `run` itself is a thin
//! wrapper over the service execution core
//! ([`ckpt_svc::Scheduler::run_local`]), so a locally-run spec and a
//! served one go through the same code path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod commands;
pub mod config_flags;
pub mod optimize;
pub mod report;
pub mod service;

pub use ckpt_harness::CkptError;

/// Usage text printed by `--help` and on argument errors.
pub const USAGE: &str = "\
ckptsim — coordinated-checkpointing model of Wang et al., DSN 2005

USAGE:
    ckptsim run      [CONFIG FLAGS] [RUN FLAGS]   simulate one configuration
    ckptsim figure   <id> [RUN FLAGS]             regenerate a paper figure
    ckptsim list                                  list figure ids
    ckptsim table3                                print model parameters
    ckptsim analytic [CONFIG FLAGS]               closed-form baselines
    ckptsim dot      [CONFIG FLAGS]               SAN structure as Graphviz DOT
    ckptsim optimize [CONFIG FLAGS] [RUN FLAGS] [--out FILE]
                                                  search checkpoint policies for
                                                  the best useful-work fraction
    ckptsim report   FILE... [--json]             summarize run artifacts
                                                  (manifests, metrics, snapshots,
                                                  telemetry) with cross-run deltas
    ckptsim serve    [SERVE FLAGS]                serve simulations over HTTP with
                                                  a content-addressed result cache
    ckptsim submit   [CONFIG FLAGS] [RUN FLAGS] [CLIENT FLAGS]
                                                  submit a spec to a server; with
                                                  --wait, print the result bytes
    ckptsim status   <id> [CLIENT FLAGS]          poll a submitted job
    ckptsim result   <id> [CLIENT FLAGS]          fetch a job's result bytes
                                                  verbatim (cmp-stable)

CONFIG FLAGS:
    --processors N           total compute processors       [65536]
    --procs-per-node N       processors per node            [8]
    --interval-mins X        checkpoint interval            [30]
    --mttf-years X           per-node MTTF                  [1]
    --mttr-mins X            system MTTR                    [10]
    --mttq-secs X            per-node mean time to quiesce  [10]
    --compute-fraction X     compute share of the app cycle [0.95]
    --coordination MODE      fixed | exp | maxofn           [fixed]
    --timeout-secs X         master 'ready' timeout         [none]
    --error-propagation P,R  correlated windows (prob, factor)
    --generic-correlated A,R generic correlation (alpha, factor)
    --spatial P              compute/I-O co-failure probability (extension)
    --jitter LO,HI           per-cycle compute-fraction jitter (extension)
    --policy P               checkpoint-interval policy             [fixed]
                             fixed | daly | adaptive[:WINDOW,FLOOR_S,CEIL_S]
                             (adaptive needs --engine direct)

RUN FLAGS:
    --engine direct|san      simulation engine              [direct]
    --reps N                 replications                   [3]
    --hours H                measurement horizon            [20000]
    --transient H            warm-up discard                [1000]
    --seed S                 base RNG seed                  [0x5eed]
    --jobs N                 worker threads (1 = sequential) [all cores]
    --warmup N               warm-up replications, run and discarded   [0]
    --csv                    machine-readable output
    --quick                  fast smoke parameters
    --trace FILE             write the model-event trace as JSON Lines
    --metrics FILE           write metrics report (manifest + registries) as JSON
    --manifest FILE          write just the run manifest as JSON
    --snapshot FILE          journal completed replications to FILE (crash safety)
    --snapshot-every N       persist the journal every N replications   [1]
    --resume FILE            resume from a snapshot; re-runs only missing work
    --quiet                  suppress per-rep profiles and progress heartbeats
                             (an explicit --progress FILE stream stays active)
    --progress FILE          stream deterministic progress records as JSON Lines
    --histograms FILE        write merged telemetry (histograms + spans) as JSON;
                             engine hot-loop probes need --features telemetry
    --prom FILE              write Prometheus text exposition at exit
    --reactivation MODE      resample | lazy                [resample]
                             lazy skips redraws of memoryless exponential
                             timers (--engine san only; new RNG stream)
    --queue KIND             heap | calendar                [heap]
                             event-queue backend; both pop identical
                             (time, FIFO) order, so results never change

SERVE FLAGS:
    --addr A                 listen address                 [127.0.0.1:7070]
                             (use port 0 for an ephemeral port; the resolved
                             address is printed as 'listening on ADDR')
    --store DIR              job-store directory            [.ckptsim-store]
    --workers N              scheduler worker threads       [all cores]
    --shards N               work units per job (1 = never shard)       [1]
    --batch N                smallest replications per work unit        [1]
    --snapshot-every N       journal persist cadence per work unit      [1]

CLIENT FLAGS:
    --server A               server address                 [127.0.0.1:7070]
    --tenant T               fair-share queue to submit into    [default]
    --wait                   poll until done, then print the result bytes
    --wait-secs S            like --wait with an explicit timeout     [600]
    --profile-phases         (run only) hot-phase wall-time breakdown as JSON;
                             needs a build with --features prof and --engine san

Results are independent of --jobs: replication k always draws from
seed S + k, so parallelism changes scheduling, never sampling —
observers included (traces and registries merge in replication order).
A resumed run is bit-identical to an uninterrupted one at any --jobs.

EXIT CODES:
    0  success          1  simulation failure      2  bad flags/config
    3  snapshot or file I/O failure               130/143  interrupted
       (SIGINT/SIGTERM; progress saved when --snapshot is active)
";

/// Entry point used by `main`; returns the process exit code.
#[must_use]
pub fn run(args: Vec<String>) -> i32 {
    match dispatch(args) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            if e.is_usage() {
                eprintln!("\n{USAGE}");
            }
            e.exit_code()
        }
    }
}

fn dispatch(mut args: Vec<String>) -> Result<(), CkptError> {
    if args.is_empty() {
        return Err(CkptError::Usage("missing subcommand".into()));
    }
    let sub = args.remove(0);
    match sub.as_str() {
        "run" => commands::run_single(args),
        "figure" => commands::run_figure(args),
        "list" => commands::list_figures(),
        "table3" => commands::table3(),
        "analytic" => commands::analytic(args),
        "dot" => commands::dot(args),
        "optimize" => optimize::optimize(args),
        "report" => report::report(args),
        "serve" => service::serve(args),
        "submit" => service::submit(args),
        "status" => service::job_status(args),
        "result" => service::job_result(args),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(CkptError::Usage(format!("unknown subcommand '{other}'"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn help_succeeds() {
        assert_eq!(run(argv(&["--help"])), 0);
        assert_eq!(run(argv(&["help"])), 0);
    }

    #[test]
    fn missing_and_unknown_subcommands_fail() {
        assert_eq!(run(vec![]), 2);
        assert_eq!(run(argv(&["frobnicate"])), 2);
    }

    #[test]
    fn list_and_table3_succeed() {
        assert_eq!(run(argv(&["list"])), 0);
        assert_eq!(run(argv(&["table3"])), 0);
    }

    #[test]
    fn analytic_succeeds_with_flags() {
        assert_eq!(
            run(argv(&[
                "analytic",
                "--processors",
                "8192",
                "--mttf-years",
                "3"
            ])),
            0
        );
    }

    #[test]
    fn optimize_rejects_report_sinks_and_bad_flags() {
        assert_eq!(run(argv(&["optimize", "--metrics", "m.json"])), 2);
        assert_eq!(run(argv(&["optimize", "--trace", "t.jsonl"])), 2);
        assert_eq!(run(argv(&["optimize", "--out"])), 2);
        assert_eq!(run(argv(&["optimize", "--bogus"])), 2);
    }

    #[test]
    fn optimize_smoke_writes_report() {
        let path = std::env::temp_dir().join(format!("ckptsim-opt-{}.json", std::process::id()));
        let path_s = path.to_str().unwrap().to_string();
        assert_eq!(
            run(argv(&[
                "optimize",
                "--processors",
                "1024",
                "--mttf-years",
                "0.25",
                "--reps",
                "1",
                "--hours",
                "50",
                "--transient",
                "5",
                "--jobs",
                "2",
                "--quiet",
                "--out",
                &path_s,
            ])),
            0
        );
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let doc = ckpt_harness::json::parse(&text).unwrap();
        assert_eq!(doc.get("kind").unwrap().as_str(), Some("optimize_report"));
        assert!(doc.get("winner").unwrap().get("label").is_some());
    }

    #[test]
    fn analytic_rejects_bad_flags() {
        assert_eq!(run(argv(&["analytic", "--processors", "chair"])), 2);
        assert_eq!(run(argv(&["analytic", "--bogus"])), 2);
    }

    #[test]
    fn run_quick_succeeds() {
        assert_eq!(
            run(argv(&[
                "run",
                "--processors",
                "8192",
                "--quick",
                "--hours",
                "200",
                "--transient",
                "20",
                "--reps",
                "1"
            ])),
            0
        );
    }

    #[test]
    fn run_writes_trace_metrics_and_manifest() {
        let dir = std::env::temp_dir();
        let trace = dir.join("ckptsim_cli_test_trace.jsonl");
        let metrics = dir.join("ckptsim_cli_test_metrics.json");
        let manifest = dir.join("ckptsim_cli_test_manifest.json");
        assert_eq!(
            run(argv(&[
                "run",
                "--processors",
                "8192",
                "--reps",
                "2",
                "--hours",
                "200",
                "--transient",
                "20",
                "--quiet",
                "--trace",
                trace.to_str().unwrap(),
                "--metrics",
                metrics.to_str().unwrap(),
                "--manifest",
                manifest.to_str().unwrap(),
            ])),
            0
        );
        let t = std::fs::read_to_string(&trace).unwrap();
        assert!(t.lines().next().unwrap().starts_with("{\"rep\":0,"));
        assert!(t.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
        let m = std::fs::read_to_string(&metrics).unwrap();
        assert!(m.contains("\"merged_registry\""));
        assert!(m.contains("\"reconcile\":\"ok\""));
        let man = std::fs::read_to_string(&manifest).unwrap();
        assert!(man.contains("\"schema_version\": 2"));
        assert!(man.contains("\"policy\": \"fixed\""));
        assert!(man.contains("\"engine\": \"direct\""));
        for p in [&trace, &metrics, &manifest] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn figure_quick_writes_sweep_manifest() {
        let manifest = std::env::temp_dir().join("ckptsim_cli_test_fig_manifest.json");
        assert_eq!(
            run(argv(&[
                "figure",
                "fig5",
                "--quick",
                "--quiet",
                "--csv",
                "--manifest",
                manifest.to_str().unwrap(),
            ])),
            0
        );
        let man = std::fs::read_to_string(&manifest).unwrap();
        assert!(man.contains("\"figure\": \"fig5\""));
        assert!(man.contains("\"cells\":"));
        let _ = std::fs::remove_file(&manifest);
    }

    #[test]
    fn dot_emits_graphviz() {
        assert_eq!(run(argv(&["dot", "--processors", "8192"])), 0);
        assert_eq!(run(argv(&["dot", "--bogus"])), 2);
    }

    #[test]
    fn figure_requires_known_id() {
        assert_eq!(run(argv(&["figure", "fig99"])), 2);
        assert_eq!(run(argv(&["figure"])), 2);
    }

    #[test]
    fn run_snapshot_then_resume_succeeds() {
        let snap = std::env::temp_dir().join("ckptsim_cli_test_snapshot.json");
        let _ = std::fs::remove_file(&snap);
        let base = [
            "run",
            "--processors",
            "8192",
            "--reps",
            "2",
            "--hours",
            "200",
            "--transient",
            "20",
            "--quiet",
            "--csv",
        ];
        let mut first = argv(&base);
        first.extend(argv(&["--snapshot", snap.to_str().unwrap()]));
        assert_eq!(run(first), 0);
        let saved = std::fs::read_to_string(&snap).unwrap();
        assert!(saved.contains("\"kind\":\"run_snapshot\""));

        let mut second = argv(&base);
        second.extend(argv(&["--resume", snap.to_str().unwrap()]));
        assert_eq!(run(second), 0);
        let _ = std::fs::remove_file(&snap);
    }

    #[test]
    fn profile_phases_needs_prof_build_and_san_engine() {
        // Without the prof feature the flag is refused outright; with
        // it, the direct engine is still refused. Either way: usage
        // error, exit 2.
        assert_eq!(
            run(argv(&["run", "--processors", "8192", "--profile-phases"])),
            2
        );
        if !ckpt_des::prof::ENABLED {
            assert_eq!(
                run(argv(&[
                    "run",
                    "--processors",
                    "8192",
                    "--engine",
                    "san",
                    "--profile-phases"
                ])),
                2
            );
        }
    }

    #[test]
    fn profile_phases_attributes_at_least_ninety_percent() {
        // Only meaningful with the profiler compiled in (CI runs this
        // suite with `--features prof`; without it the flag is refused
        // and the refusal is covered above).
        if !ckpt_des::prof::ENABLED {
            return;
        }
        let out = std::env::temp_dir().join("ckptsim_cli_test_phase_coverage.json");
        let _ = std::fs::remove_file(&out);
        assert_eq!(
            run(argv(&[
                "run",
                "--processors",
                "8192",
                "--engine",
                "san",
                "--profile-phases",
                "--reps",
                "1",
                "--hours",
                "500",
                "--transient",
                "20",
                "--quiet",
                "--metrics",
                out.to_str().unwrap(),
            ])),
            0
        );
        let json = std::fs::read_to_string(&out).unwrap();
        assert!(json.contains("\"phase_schema_version\": 2"));
        let share = json
            .lines()
            .find(|l| l.contains("\"attributed_share\""))
            .and_then(|l| l.split(':').nth(1))
            .and_then(|v| v.trim().trim_end_matches(',').parse::<f64>().ok())
            .expect("attributed_share field present");
        // The event_dispatch container wraps every event, so nearly all
        // hot-loop wall time must land in some instrumented phase.
        assert!(
            share >= 0.90,
            "attributed share {share} < 0.90 — a hot-loop region lost its span:\n{json}"
        );
        let _ = std::fs::remove_file(&out);
    }

    #[test]
    fn run_rejects_snapshot_with_observers() {
        assert_eq!(
            run(argv(&[
                "run",
                "--quick",
                "--trace",
                "t.jsonl",
                "--snapshot",
                "s.json"
            ])),
            2
        );
    }

    #[test]
    fn report_summarizes_artifacts_and_enforces_exit_codes() {
        let dir = std::env::temp_dir();
        let manifest = dir.join("ckptsim_cli_test_report_manifest.json");
        assert_eq!(
            run(argv(&[
                "run",
                "--processors",
                "8192",
                "--reps",
                "2",
                "--hours",
                "200",
                "--transient",
                "20",
                "--quiet",
                "--csv",
                "--manifest",
                manifest.to_str().unwrap(),
            ])),
            0
        );
        // Both renderings succeed on a fresh artifact.
        assert_eq!(run(argv(&["report", manifest.to_str().unwrap()])), 0);
        assert_eq!(
            run(argv(&["report", manifest.to_str().unwrap(), "--json"])),
            0
        );
        // Bad flag → usage (2); missing file → I/O (3); no files → 2.
        assert_eq!(
            run(argv(&["report", manifest.to_str().unwrap(), "--bogus"])),
            2
        );
        assert_eq!(run(argv(&["report", "/nonexistent/ckptsim.json"])), 3);
        assert_eq!(run(argv(&["report"])), 2);
        let _ = std::fs::remove_file(&manifest);
    }

    #[test]
    fn quiet_keeps_an_explicit_progress_stream_and_jobs_do_not_change_it() {
        // --quiet silences the human heartbeat but an explicit
        // --progress FILE is a requested artifact and stays active; its
        // records are deterministic, so serial and parallel runs write
        // byte-identical streams.
        let dir = std::env::temp_dir();
        let run_with = |jobs: &str, path: &std::path::Path| {
            assert_eq!(
                run(argv(&[
                    "run",
                    "--processors",
                    "8192",
                    "--reps",
                    "4",
                    "--hours",
                    "200",
                    "--transient",
                    "20",
                    "--jobs",
                    jobs,
                    "--quiet",
                    "--csv",
                    "--progress",
                    path.to_str().unwrap(),
                ])),
                0
            );
            std::fs::read_to_string(path).unwrap()
        };
        let p1 = dir.join("ckptsim_cli_test_progress_j1.jsonl");
        let p8 = dir.join("ckptsim_cli_test_progress_j8.jsonl");
        let serial = run_with("1", &p1);
        let parallel = run_with("8", &p8);
        assert_eq!(serial, parallel, "progress stream depends on --jobs");
        assert_eq!(serial.lines().count(), 4, "one record per replication");
        for (k, line) in serial.lines().enumerate() {
            assert!(
                line.contains("\"kind\":\"progress\"")
                    && line.contains(&format!("\"completed\":{}", k + 1))
                    && line.contains("\"total\":4"),
                "bad progress record: {line}"
            );
        }
        let _ = std::fs::remove_file(&p1);
        let _ = std::fs::remove_file(&p8);
    }

    #[test]
    fn run_writes_histograms_and_prometheus_exports() {
        let dir = std::env::temp_dir();
        let hist = dir.join("ckptsim_cli_test_telemetry.json");
        let prom = dir.join("ckptsim_cli_test_metrics.prom");
        assert_eq!(
            run(argv(&[
                "run",
                "--processors",
                "8192",
                "--reps",
                "2",
                "--hours",
                "200",
                "--transient",
                "20",
                "--quiet",
                "--csv",
                "--histograms",
                hist.to_str().unwrap(),
                "--prom",
                prom.to_str().unwrap(),
            ])),
            0
        );
        let h = std::fs::read_to_string(&hist).unwrap();
        assert!(h.contains("\"kind\": \"telemetry\""), "telemetry doc: {h}");
        assert!(h.contains("\"failure_gap_secs\""));
        assert!(h.contains("\"spans\""));
        let doc = ckpt_harness::json::parse(&h).unwrap();
        assert_eq!(
            doc.get("probes_enabled").unwrap().as_bool(),
            Some(ckpt_des::telem::ENABLED)
        );
        let p = std::fs::read_to_string(&prom).unwrap();
        assert!(p.contains("# TYPE ckptsim_"), "exposition: {p}");
        // The telemetry document is itself reportable.
        assert_eq!(run(argv(&["report", hist.to_str().unwrap(), "--json"])), 0);
        let _ = std::fs::remove_file(&hist);
        let _ = std::fs::remove_file(&prom);
    }

    #[test]
    fn run_refuses_resume_under_different_parameters() {
        let snap = std::env::temp_dir().join("ckptsim_cli_test_fp_mismatch.json");
        let _ = std::fs::remove_file(&snap);
        assert_eq!(
            run(argv(&[
                "run",
                "--processors",
                "8192",
                "--reps",
                "1",
                "--hours",
                "200",
                "--transient",
                "20",
                "--quiet",
                "--csv",
                "--snapshot",
                snap.to_str().unwrap(),
            ])),
            0
        );
        // A different seed changes the sampling, so the fingerprint no
        // longer matches and the resume must be refused (exit 3).
        assert_eq!(
            run(argv(&[
                "run",
                "--processors",
                "8192",
                "--reps",
                "1",
                "--hours",
                "200",
                "--transient",
                "20",
                "--seed",
                "99",
                "--quiet",
                "--csv",
                "--resume",
                snap.to_str().unwrap(),
            ])),
            3
        );
        let _ = std::fs::remove_file(&snap);
    }
}
