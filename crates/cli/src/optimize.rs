//! `ckptsim optimize`: search the checkpoint-policy space for the
//! configuration that maximizes the useful-work fraction.
//!
//! The search enumerates a deterministic candidate list — a grid of
//! fixed intervals (always including the configured one), the
//! Daly-optimal interval, and (on the direct engine) the load-adaptive
//! policy — evaluates every candidate through the same crash-safe
//! parallel sweep machinery the figure binaries use, and emits a
//! versioned JSON report of the whole frontier plus the winner.
//!
//! Determinism: candidates are derived only from the base
//! configuration and the engine, cells are evaluated with the usual
//! seed-per-replication contract, and the report carries no wall-clock
//! data — the same flags always produce the byte-identical report, at
//! any `--jobs`, interrupted and resumed or not.

use crate::config_flags::parse_config;
use ckpt_bench::sweep::{Cell, Metric};
use ckpt_bench::{
    run_sweep_controlled, runner, sweep_fingerprint, RunOptions, Series, SweepControl,
};
use ckpt_core::{PolicySpec, SystemConfig};
use ckpt_des::SimTime;
use ckpt_harness::json::JsonValue;
use ckpt_harness::spec::{config_to_json, policy_to_json};
use ckpt_harness::{signal, CkptError};

/// Report format version; bump when the JSON layout changes.
pub const OPTIMIZE_SCHEMA_VERSION: u64 = 1;

/// Fixed-interval grid searched by `ckptsim optimize`, in seconds
/// (5 min – 4 h, the paper's Figure-5 sensitivity range).
pub const INTERVAL_GRID_SECS: [f64; 7] = [300.0, 600.0, 900.0, 1800.0, 3600.0, 7200.0, 14400.0];

/// One policy candidate in the search space.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Stable human-readable label (also the sweep series label).
    pub label: String,
    /// The policy under evaluation.
    pub policy: PolicySpec,
    /// Static checkpoint interval in seconds, when the policy has one
    /// (`None` for the load-adaptive policy).
    pub interval_secs: Option<f64>,
    /// The derived configuration this candidate simulates.
    pub config: SystemConfig,
}

/// Enumerates the candidate list for `base` on `engine`: the fixed
/// grid ([`INTERVAL_GRID_SECS`], with the configured interval folded
/// in, deduplicated, ascending), the Daly-optimal policy, and — on the
/// direct engine only, the SAN composition needs a static rate — the
/// load-adaptive policy.
///
/// # Errors
///
/// [`CkptError::Config`] if a derived variant fails validation (cannot
/// happen for a valid `base`: only interval and policy change).
pub fn candidates(
    base: &SystemConfig,
    engine: ckpt_core::EngineKind,
) -> Result<Vec<Candidate>, CkptError> {
    let mut intervals: Vec<f64> = INTERVAL_GRID_SECS.to_vec();
    let configured = base.checkpoint_interval().as_secs();
    if !intervals.contains(&configured) {
        intervals.push(configured);
    }
    intervals.sort_by(|a, b| a.partial_cmp(b).expect("finite intervals"));

    let mut out = Vec::new();
    for secs in intervals {
        let config = base
            .to_builder()
            .checkpoint_interval(SimTime::from_secs(secs))
            .policy(PolicySpec::Fixed)
            .build()
            .map_err(CkptError::from)?;
        out.push(Candidate {
            label: format!("fixed@{secs}s"),
            policy: PolicySpec::Fixed,
            interval_secs: Some(secs),
            config,
        });
    }

    let daly = base
        .to_builder()
        .policy(PolicySpec::DalyOptimal)
        .build()
        .map_err(CkptError::from)?;
    let daly_interval = daly
        .policy()
        .static_interval(&daly)
        .map(|t| t.as_secs())
        .unwrap_or(configured);
    out.push(Candidate {
        label: "daly_optimal".into(),
        policy: PolicySpec::DalyOptimal,
        interval_secs: Some(daly_interval),
        config: daly,
    });

    if engine == ckpt_core::EngineKind::Direct {
        let policy = PolicySpec::load_adaptive_default();
        let config = base
            .to_builder()
            .policy(policy)
            .build()
            .map_err(CkptError::from)?;
        out.push(Candidate {
            label: policy.to_string(),
            policy,
            interval_secs: None,
            config,
        });
    }
    Ok(out)
}

/// The sweep cells for a candidate list: one cell per candidate, in
/// order, `series == x == index` so the fingerprint and the journal
/// key both follow the candidate order.
#[must_use]
pub fn cells(cands: &[Candidate]) -> Vec<Cell> {
    cands
        .iter()
        .enumerate()
        .map(|(i, c)| Cell {
            series: i,
            x: i as f64,
            config: c.config.clone(),
        })
        .collect()
}

/// Index of the winning candidate: highest useful-work fraction,
/// first index on ties (so the result is deterministic).
#[must_use]
pub fn winner_index(series: &[Series]) -> usize {
    let mut best = 0usize;
    let mut best_y = f64::NEG_INFINITY;
    for (i, s) in series.iter().enumerate() {
        let y = s.points.first().map_or(f64::NEG_INFINITY, |p| p.y);
        if y > best_y {
            best = i;
            best_y = y;
        }
    }
    best
}

fn candidate_json(c: &Candidate, s: &Series) -> JsonValue {
    let point = s.points.first();
    JsonValue::Object(vec![
        ("label".into(), JsonValue::from_text(&c.label)),
        ("policy".into(), policy_to_json(c.policy)),
        (
            "interval_secs".into(),
            c.interval_secs.map_or(JsonValue::Null, JsonValue::from_f64),
        ),
        (
            "useful_work_fraction".into(),
            point.map_or(JsonValue::Null, |p| JsonValue::from_f64(p.y)),
        ),
        (
            "half_width".into(),
            point.map_or(JsonValue::Null, |p| JsonValue::from_f64(p.half_width)),
        ),
    ])
}

/// Renders the versioned optimize report. Pure and deterministic: no
/// timestamps, no wall-clock data, fields in a fixed order.
#[must_use]
pub fn report_json(
    base: &SystemConfig,
    cands: &[Candidate],
    series: &[Series],
    opts: &RunOptions,
    fingerprint: u64,
) -> String {
    let rows: Vec<JsonValue> = cands
        .iter()
        .zip(series)
        .map(|(c, s)| candidate_json(c, s))
        .collect();
    let win = winner_index(series);
    let winner = cands
        .get(win)
        .zip(series.get(win))
        .map_or(JsonValue::Null, |(c, s)| {
            let mut fields = match candidate_json(c, s) {
                JsonValue::Object(fields) => fields,
                _ => unreachable!("candidate_json returns an object"),
            };
            fields.insert(0, ("index".into(), JsonValue::from_u64(win as u64)));
            JsonValue::Object(fields)
        });
    let doc = JsonValue::Object(vec![
        (
            "schema_version".into(),
            JsonValue::from_u64(OPTIMIZE_SCHEMA_VERSION),
        ),
        ("kind".into(), JsonValue::from_text("optimize_report")),
        (
            "objective".into(),
            JsonValue::from_text("useful_work_fraction"),
        ),
        ("engine".into(), JsonValue::from_text(opts.engine.name())),
        ("seed".into(), JsonValue::from_u64(opts.seed)),
        ("replications".into(), JsonValue::from_u64(opts.reps.into())),
        (
            "transient_secs".into(),
            JsonValue::from_f64(opts.transient.as_secs()),
        ),
        (
            "horizon_secs".into(),
            JsonValue::from_f64(opts.horizon.as_secs()),
        ),
        (
            "fingerprint".into(),
            JsonValue::from_text(&format!("{fingerprint:#018x}")),
        ),
        ("config".into(), config_to_json(base)),
        ("candidates".into(), JsonValue::Array(rows)),
        ("winner".into(), winner),
    ]);
    let mut s = doc.to_json();
    s.push('\n');
    s
}

/// Runs the policy search for already-parsed inputs and returns the
/// report. Shared by [`optimize`] and the integration tests (which
/// drive interrupted/resumed searches through it).
///
/// # Errors
///
/// Everything [`run_sweep_controlled`] can return, plus journal I/O;
/// an interrupt surfaces as [`CkptError::Interrupted`] *after* the
/// snapshot is persisted.
pub fn run_search(base: &SystemConfig, opts: &RunOptions) -> Result<String, CkptError> {
    let sink = opts.progress_sink()?;
    run_search_with_sink(base, opts, &sink)
}

/// [`run_search`] reporting through an already-built sink stack (so
/// the `--progress` file is created exactly once per process).
fn run_search_with_sink(
    base: &SystemConfig,
    opts: &RunOptions,
    sink: &ckpt_obs::MultiSink,
) -> Result<String, CkptError> {
    let cands = candidates(base, opts.engine)?;
    let labels: Vec<String> = cands.iter().map(|c| c.label.clone()).collect();
    let cells = cells(&cands);
    let fingerprint = sweep_fingerprint("optimize", &cells, opts)?;
    let journal = runner::open_journal(fingerprint, opts)?;
    let control = SweepControl {
        journal: journal.as_ref(),
        interrupt: Some(signal::interrupt_flag()),
        progress: (!sink.is_empty()).then_some(sink as &dyn ckpt_obs::ProgressSink),
    };
    let series = run_sweep_controlled(&labels, cells, Metric::UsefulWorkFraction, opts, control)
        .map_err(|e| runner::seal_interrupted(journal.as_ref(), e))?;
    if let Some(j) = &journal {
        j.persist()?;
    }
    Ok(report_json(base, &cands, &series, opts, fingerprint))
}

/// `ckptsim optimize`: evaluate every candidate and print (or write,
/// with `--out FILE`) the JSON report.
///
/// Crash safety matches `ckptsim figure`: with `--snapshot` every
/// completed replication is journaled per cell, SIGINT/SIGTERM persist
/// the journal before exiting `128 + signal`, and `--resume` re-runs
/// only the missing work — the final report is byte-identical to an
/// uninterrupted search.
///
/// # Errors
///
/// [`CkptError::Usage`] on bad flags, plus everything the sweep can
/// return.
pub fn optimize(args: Vec<String>) -> Result<(), CkptError> {
    let (cfg, mut rest) = parse_config(args)?;
    let out = take_out_flag(&mut rest)?;
    let opts = RunOptions::parse(rest).map_err(|e| CkptError::Usage(e.to_string()))?;
    if opts.trace.is_some() || opts.metrics.is_some() || opts.manifest.is_some() {
        return Err(CkptError::Usage(
            "optimize emits its own report; --trace/--metrics/--manifest are not supported \
             (use --out FILE to redirect the report)"
                .into(),
        ));
    }
    signal::install();
    let sink = opts.progress_sink()?;
    let report = run_search_with_sink(&cfg, &opts, &sink)?;
    match &out {
        Some(path) => {
            std::fs::write(path, &report).map_err(|e| CkptError::Io {
                path: path.clone(),
                message: e.to_string(),
            })?;
            // Same --quiet gating as the heartbeats: the sink stack is
            // empty under --quiet/--csv, so this line vanishes with it.
            ckpt_obs::ProgressSink::message(&sink, &format!("optimize report written to {path}"));
        }
        None => print!("{report}"),
    }
    Ok(())
}

/// Extracts `--out FILE` from `rest` before the run-option parser
/// (which rejects unknown flags) sees it.
fn take_out_flag(rest: &mut Vec<String>) -> Result<Option<String>, CkptError> {
    let Some(i) = rest.iter().position(|a| a == "--out") else {
        return Ok(None);
    };
    if i + 1 >= rest.len() {
        return Err(CkptError::Usage("--out expects a value".into()));
    }
    let value = rest.remove(i + 1);
    rest.remove(i);
    Ok(Some(value))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckpt_bench::sweep::Point;
    use ckpt_core::EngineKind;

    fn base() -> SystemConfig {
        SystemConfig::builder().processors(8_192).build().unwrap()
    }

    #[test]
    fn grid_folds_in_configured_interval_and_dedups() {
        // Default interval (1800 s) is already on the grid: no extra cell.
        let c = candidates(&base(), EngineKind::Direct).unwrap();
        let fixed: Vec<f64> = c
            .iter()
            .filter(|c| c.policy == PolicySpec::Fixed)
            .filter_map(|c| c.interval_secs)
            .collect();
        assert_eq!(fixed.len(), INTERVAL_GRID_SECS.len());
        assert!(fixed.windows(2).all(|w| w[0] <= w[1]), "sorted: {fixed:?}");

        // An off-grid configured interval appears exactly once, in order.
        let odd = base()
            .to_builder()
            .checkpoint_interval(SimTime::from_secs(1234.0))
            .build()
            .unwrap();
        let c = candidates(&odd, EngineKind::Direct).unwrap();
        let fixed: Vec<f64> = c
            .iter()
            .filter(|c| c.policy == PolicySpec::Fixed)
            .filter_map(|c| c.interval_secs)
            .collect();
        assert_eq!(fixed.iter().filter(|&&s| s == 1234.0).count(), 1);
        assert!(fixed.windows(2).all(|w| w[0] < w[1]), "sorted: {fixed:?}");
    }

    #[test]
    fn adaptive_candidate_only_on_direct_engine() {
        let direct = candidates(&base(), EngineKind::Direct).unwrap();
        let san = candidates(&base(), EngineKind::San).unwrap();
        let adaptive = |cs: &[Candidate]| cs.iter().any(|c| c.interval_secs.is_none());
        assert!(adaptive(&direct));
        assert!(!adaptive(&san));
        assert_eq!(direct.len(), san.len() + 1);
        // Both engines still search Daly.
        assert!(san.iter().any(|c| c.policy == PolicySpec::DalyOptimal));
    }

    #[test]
    fn daly_candidate_reports_its_derived_interval() {
        let c = candidates(&base(), EngineKind::San).unwrap();
        let daly = c
            .iter()
            .find(|c| c.policy == PolicySpec::DalyOptimal)
            .unwrap();
        let expected = daly
            .config
            .policy()
            .static_interval(&daly.config)
            .unwrap()
            .as_secs();
        assert_eq!(daly.interval_secs, Some(expected));
        assert!(expected > 0.0);
    }

    fn fake_series(ys: &[f64]) -> Vec<Series> {
        ys.iter()
            .enumerate()
            .map(|(i, &y)| Series {
                label: format!("cand{i}"),
                points: vec![Point {
                    x: i as f64,
                    y,
                    half_width: 0.001,
                }],
            })
            .collect()
    }

    #[test]
    fn winner_is_max_with_first_index_tiebreak() {
        assert_eq!(winner_index(&fake_series(&[0.1, 0.9, 0.5])), 1);
        assert_eq!(winner_index(&fake_series(&[0.7, 0.7, 0.7])), 0);
        assert_eq!(winner_index(&fake_series(&[])), 0);
    }

    #[test]
    fn report_is_valid_versioned_json() {
        let cfg = base();
        let opts = RunOptions::default();
        let cands = candidates(&cfg, opts.engine).unwrap();
        let series = fake_series(&vec![0.9; cands.len()]);
        let report = report_json(&cfg, &cands, &series, &opts, 0xdead_beef);
        let doc = ckpt_harness::json::parse(&report).unwrap();
        assert_eq!(doc.get("schema_version").unwrap().as_u64(), Some(1));
        assert_eq!(doc.get("kind").unwrap().as_str(), Some("optimize_report"));
        assert_eq!(
            doc.get("candidates").unwrap().as_array().unwrap().len(),
            cands.len()
        );
        let winner = doc.get("winner").unwrap();
        assert_eq!(winner.get("index").unwrap().as_u64(), Some(0));
        assert!(winner.get("useful_work_fraction").is_some());
        // Round-trips through the spec parser: the embedded config is
        // the real canonical rendering, not a lookalike.
        let embedded = doc.get("config").unwrap();
        let parsed = ckpt_harness::spec::config_from_json(embedded).unwrap();
        assert_eq!(parsed, cfg);
    }

    #[test]
    fn out_flag_is_stripped_before_run_options() {
        let mut rest = vec!["--reps".into(), "2".into(), "--out".into(), "r.json".into()];
        assert_eq!(take_out_flag(&mut rest).unwrap().as_deref(), Some("r.json"));
        assert_eq!(rest, vec!["--reps".to_string(), "2".to_string()]);
        let mut dangling = vec!["--out".to_string()];
        assert!(take_out_flag(&mut dangling).is_err());
        let mut none = vec!["--reps".to_string(), "2".to_string()];
        assert_eq!(take_out_flag(&mut none).unwrap(), None);
    }
}
