//! Subcommand implementations.

use crate::config_flags::parse_config;
use ckpt_analytic::{availability, coordination, daly, vaidya, young};
use ckpt_bench::{experiment_spec, figures, runner, RunOptions};
use ckpt_core::san_model::{CheckpointSan, RunOptions as SanRunOptions};
use ckpt_core::{
    EngineKind, Estimate, ObserveSpec, PhaseKind, ReplicationStore, RunControl, SystemConfig,
};
use ckpt_des::prof::{HotPhase, PhaseProfile};
use ckpt_harness::{signal, CkptError};
use ckpt_obs::{phases_json, spans_json, telemetry_json, ProgressSink, Recorder};
use ckpt_svc::{LocalRun, Scheduler};
use std::fmt::Write as _;

/// Ring-buffer capacity behind `--trace`: large enough to keep every
/// model event of a default-length replication; if a longer run
/// overflows it, the JSONL notes the dropped count per replication.
const TRACE_CAPACITY: usize = 1 << 20;

fn run_options(rest: Vec<String>) -> Result<RunOptions, CkptError> {
    RunOptions::parse(rest).map_err(|e| CkptError::Usage(e.to_string()))
}

fn write_file(path: &str, contents: &str) -> Result<(), CkptError> {
    std::fs::write(path, contents).map_err(|e| CkptError::Io {
        path: path.to_string(),
        message: e.to_string(),
    })
}

/// Renders the per-replication trace buffers as JSON Lines, one model
/// event per line, tagged with the replication index (index order, so
/// the file is identical at any `--jobs`). Replications whose ring
/// buffer overflowed get a leading marker line with the dropped count.
fn trace_jsonl(recordings: &[Recorder]) -> String {
    let mut out = String::new();
    for (rep, rec) in recordings.iter().enumerate() {
        let Some(buf) = rec.trace() else { continue };
        if buf.dropped() > 0 {
            out.push_str(&format!(
                "{{\"rep\":{rep},\"dropped\":{}}}\n",
                buf.dropped()
            ));
        }
        for entry in buf.iter() {
            let body = entry.to_json();
            out.push_str(&format!("{{\"rep\":{rep},{}\n", &body[1..]));
        }
    }
    out
}

/// Renders the full metrics report: manifest, merged registry,
/// per-replication registries, and the registry-vs-engine phase-time
/// reconciliation verdicts.
fn metrics_json(est: &Estimate) -> String {
    let mut s = String::from("{\n\"schema_version\": 1,\n\"manifest\": ");
    s.push_str(est.manifest().to_json().trim_end());
    s.push_str(",\n\"merged_registry\": ");
    match est.merged_registry() {
        Some(reg) => s.push_str(&reg.to_json()),
        None => s.push_str("null"),
    }
    s.push_str(",\n\"replications\": [");
    let mut first = true;
    for (rep, rec) in est.recordings().iter().enumerate() {
        let Some(reg) = rec.registry() else { continue };
        if !first {
            s.push(',');
        }
        first = false;
        let reconcile = match est.replicates().get(rep) {
            Some(m) => match reg.reconcile(&m.phase_times, 1e-6) {
                Ok(()) => "\"ok\"".to_string(),
                Err(e) => format!("\"{}\"", ckpt_obs::json_escape(&e.to_string())),
            },
            None => "\"no metrics\"".to_string(),
        };
        s.push_str(&format!(
            "\n{{\"rep\":{rep},\"reconcile\":{reconcile},\"registry\":{}}}",
            reg.to_json()
        ));
    }
    s.push_str("\n]\n}\n");
    s
}

/// `ckptsim run`: simulate one configuration and print its metrics.
///
/// Crash safety: with `--snapshot` every completed replication is
/// journaled (keyed by replication index under cell 0), SIGINT/SIGTERM
/// persist the journal before exiting `128 + signal`, and `--resume`
/// re-runs only the missing replications — bit-identical to an
/// uninterrupted run at any `--jobs`.
pub fn run_single(args: Vec<String>) -> Result<(), CkptError> {
    let (cfg, mut rest) = parse_config(args)?;
    let profile_phases = rest.iter().any(|a| a == "--profile-phases");
    rest.retain(|a| a != "--profile-phases");
    let opts = run_options(rest)?;
    if profile_phases {
        return run_profile_phases(&cfg, &opts);
    }
    let telemetry = opts.histograms.is_some() || opts.prom.is_some();
    let observing = opts.trace.is_some() || opts.metrics.is_some() || telemetry;
    if observing && opts.exec.journaling() {
        return Err(CkptError::Usage(
            "--snapshot/--resume cannot be combined with \
             --trace/--metrics/--histograms/--prom: observation re-executes \
             every replication, so cached results would be ignored"
                .into(),
        ));
    }
    let spec = experiment_spec(cfg.clone(), opts.engine, &opts)?;
    signal::install();
    let journal = runner::open_journal(spec.fingerprint(), &opts)?;
    let store = journal.as_ref().map(|j| j.cell_store(0));
    let sink = opts.progress_sink()?;
    let observe = observing.then(|| {
        let mut observe = ObserveSpec {
            trace_capacity: opts.trace.as_ref().map(|_| TRACE_CAPACITY),
            registry: true,
            histograms: false,
        };
        if telemetry {
            observe = observe.with_histograms();
        }
        observe
    });
    // `run` is a thin wrapper over the service execution core: the same
    // entry point the `ckptsim serve` workers use, so a local run and a
    // served one are the same code path (and bit-identical).
    let est = Scheduler::run_local(
        &spec,
        LocalRun {
            warmup: opts.warmup,
            observe,
            control: RunControl {
                store: store.as_ref().map(|s| s as &dyn ReplicationStore),
                interrupt: Some(signal::interrupt_flag()),
                progress: (!sink.is_empty()).then_some(&sink as &dyn ProgressSink),
            },
        },
    )
    .map_err(|e| runner::seal_interrupted(journal.as_ref(), CkptError::from(e)))?;
    if let Some(j) = &journal {
        j.persist()?;
    }

    if let Some(path) = &opts.trace {
        write_file(path, &trace_jsonl(est.recordings()))?;
    }
    if let Some(path) = &opts.metrics {
        write_file(path, &metrics_json(&est))?;
    }
    if let Some(path) = &opts.manifest {
        write_file(path, &est.manifest().to_json())?;
    }
    if telemetry {
        let label = format!("{}proc-{}", cfg.processors(), opts.engine.name());
        let merged = est.merged_telemetry().unwrap_or_default();
        if let Some(path) = &opts.histograms {
            let tree = est.span_tree(&label);
            let doc = telemetry_json(&label, &merged, &spans_json(std::slice::from_ref(&tree)));
            write_file(path, &doc)?;
        }
        if let Some(path) = &opts.prom {
            let text = ckpt_obs::export::exposition(est.merged_registry().as_ref(), Some(&merged));
            write_file(path, &text)?;
        }
    }

    print!("{}", render_report(&cfg, &est, &opts));
    Ok(())
}

/// The entire stdout report of `ckptsim run`, as one string. Keeping it
/// in a pure function makes the `--quiet` contract testable: every
/// per-replication line comes from [`profile_section`], which is
/// appended in exactly one place, behind exactly one `quiet` guard —
/// regardless of which output sinks (`--csv`, `--trace`, `--metrics`)
/// are active.
fn render_report(cfg: &SystemConfig, est: &Estimate, opts: &RunOptions) -> String {
    let frac = est.useful_work_fraction();
    let tuw = est.total_useful_work();
    let mut s = String::new();
    if opts.csv {
        let _ = writeln!(s, "metric,mean,ci_half_width");
        let _ = writeln!(
            s,
            "useful_work_fraction,{:.6},{:.6}",
            frac.mean, frac.half_width
        );
        let _ = writeln!(s, "total_useful_work,{:.2},{:.2}", tuw.mean, tuw.half_width);
        for (name, kind) in phase_rows() {
            let _ = writeln!(
                s,
                "time_{name},{:.6},",
                est.mean_of(|m| m.phase_fraction(kind))
            );
        }
        let _ = writeln!(s, "perf_wall_secs,{:.3},", est.total_wall_secs());
        let _ = writeln!(s, "perf_events_per_sec,{:.0},", est.events_per_sec());
    } else {
        let _ = writeln!(
            s,
            "{} processors ({} nodes, {} I/O nodes), MTTF {:.2} y/node, interval {} min",
            cfg.processors(),
            cfg.node_count(),
            cfg.io_node_count(),
            cfg.mttf_per_node().as_years(),
            cfg.checkpoint_interval().as_mins()
        );
        let _ = writeln!(s, "useful work fraction : {frac}");
        let _ = writeln!(
            s,
            "total useful work    : {:.0} ±{:.0} job units",
            tuw.mean, tuw.half_width
        );
        let _ = writeln!(s, "time breakdown       :");
        for (name, kind) in phase_rows() {
            let _ = writeln!(
                s,
                "  {name:<12} {:>7.2} %",
                100.0 * est.mean_of(|m| m.phase_fraction(kind))
            );
        }
        let _ = writeln!(
            s,
            "per 1000 h           : {:.1} failures, {:.1} checkpoints, {:.2} reboots",
            est.mean_of(|m| {
                (m.counters.compute_failures + m.counters.generic_failures) as f64
                    / (m.window_secs / 3.6e6)
            }),
            est.mean_of(|m| m.counters.checkpoints_completed as f64 / (m.window_secs / 3.6e6)),
            est.mean_of(|m| m.counters.reboots as f64 / (m.window_secs / 3.6e6)),
        );
        let _ = writeln!(
            s,
            "performance          : {} replications on {} worker(s), {:.2} s compute, {:.0} events/s",
            est.replicates().len(),
            opts.jobs,
            est.total_wall_secs(),
            est.events_per_sec()
        );
    }
    if !opts.exec.quiet {
        s.push_str(&profile_section(est, opts.csv));
    }
    s
}

/// The per-replication profile block (CSV header documented in
/// EXPERIMENTS.md). Suppressed as a whole by `--quiet`.
fn profile_section(est: &Estimate, csv: bool) -> String {
    let mut s = String::new();
    if csv {
        let _ = writeln!(s, "rep,wall_secs,events,events_per_sec");
        for (k, p) in est.profiles().iter().enumerate() {
            let _ = writeln!(
                s,
                "{k},{:.6},{},{:.0}",
                p.wall_secs,
                p.events,
                p.events_per_sec()
            );
        }
    } else {
        let _ = writeln!(
            s,
            "  {:<4} {:>10} {:>14} {:>14}",
            "rep", "wall_secs", "events", "events_per_sec"
        );
        for (k, p) in est.profiles().iter().enumerate() {
            let _ = writeln!(
                s,
                "  {k:<4} {:>10.2} {:>14} {:>14.0}",
                p.wall_secs,
                p.events,
                p.events_per_sec()
            );
        }
    }
    s
}

/// `ckptsim run --profile-phases`: attribute hot-loop wall time to the
/// seven instrumented phases and emit the versioned JSON breakdown.
///
/// Needs a binary built with `--features prof` (the profiler compiles
/// to nothing otherwise) and the SAN engine (the hot phases are SAN
/// executor concepts). Replications run sequentially — profiling
/// measures *where the time goes*, not how fast the run is, and
/// parallel workers would interleave their instrumentation.
fn run_profile_phases(cfg: &SystemConfig, opts: &RunOptions) -> Result<(), CkptError> {
    if !ckpt_des::prof::ENABLED {
        return Err(CkptError::Usage(
            "--profile-phases needs the hot-phase profiler compiled in; rebuild with \
             `cargo build -p ckpt-cli --release --features prof`"
                .into(),
        ));
    }
    if opts.engine != EngineKind::San {
        return Err(CkptError::Usage(
            "--profile-phases requires --engine san (the instrumented hot phases \
             live in the SAN executor)"
                .into(),
        ));
    }
    if opts.exec.journaling() {
        return Err(CkptError::Usage(
            "--profile-phases cannot be combined with --snapshot/--resume: cached \
             replications carry no phase profile"
                .into(),
        ));
    }
    let model = CheckpointSan::build(cfg).map_err(|e| CkptError::Experiment(e.into()))?;
    let run_opts = |seed: u64| SanRunOptions {
        seed,
        transient: opts.transient,
        horizon: opts.horizon,
        ..SanRunOptions::default()
    };
    for w in 0..u64::from(opts.warmup) {
        model
            .run(&run_opts(opts.seed + w))
            .map_err(|e| CkptError::Experiment(e.into()))?;
    }
    let mut phases = PhaseProfile::default();
    let mut events = 0u64;
    let start = std::time::Instant::now();
    for k in 0..u64::from(opts.reps) {
        let outcome = model
            .run(&run_opts(opts.seed + k))
            .map_err(|e| CkptError::Experiment(e.into()))?;
        phases.merge(&outcome.phases);
        events += outcome.events;
    }
    let wall_secs = start.elapsed().as_secs_f64();
    if !opts.exec.quiet {
        let attributed = phases.total_nanos();
        let coverage = attributed as f64 / (wall_secs * 1e9).max(1.0);
        eprintln!(
            "{} replications, {events} events, {wall_secs:.2} s wall, \
             {:.1}% attributed \
             (instrumented build — use an uninstrumented build for headline numbers)",
            opts.reps,
            100.0 * coverage.min(1.0)
        );
        eprintln!(
            "  {:<24} {:>12} {:>12} {:>12} {:>7}",
            "phase", "nanos", "count", "ns/event", "share"
        );
        for phase in HotPhase::ALL {
            let idx = phase as usize;
            let nanos = phases.nanos[idx];
            eprintln!(
                "  {:<24} {:>12} {:>12} {:>12.2} {:>6.1}%",
                phase.name(),
                nanos,
                phases.counts[idx],
                nanos as f64 / (events.max(1)) as f64,
                100.0 * nanos as f64 / (attributed.max(1)) as f64
            );
        }
    }
    let label = format!("{}proc-san-incremental", cfg.processors());
    let json = phases_json(&label, &phases, wall_secs, events);
    print!("{json}");
    if let Some(path) = &opts.metrics {
        write_file(path, &json)?;
    }
    Ok(())
}

fn phase_rows() -> [(&'static str, PhaseKind); 5] {
    [
        ("executing", PhaseKind::Executing),
        ("coordinating", PhaseKind::Coordinating),
        ("dumping", PhaseKind::Dumping),
        ("recovering", PhaseKind::Recovering),
        ("rebooting", PhaseKind::Rebooting),
    ]
}

/// `ckptsim figure <id>`: regenerate one of the paper's figures via the
/// crash-safe runner ([`runner::run_figure`]), which handles signals,
/// `--snapshot`/`--resume` journaling, the sweep manifest, and output.
pub fn run_figure(mut args: Vec<String>) -> Result<(), CkptError> {
    if args.is_empty() {
        return Err(CkptError::Usage(
            "figure expects an id (see 'ckptsim list')".into(),
        ));
    }
    let id = args.remove(0);
    let spec = figures::all_figures()
        .into_iter()
        .find(|(fid, _)| *fid == id)
        .map(|(_, spec)| spec)
        .ok_or_else(|| CkptError::Usage(format!("unknown figure '{id}' (see 'ckptsim list')")))?;
    let opts = run_options(args)?;
    runner::run_figure(&id, spec, &opts).map(|_| ())
}

/// `ckptsim list`: list the available figure ids.
pub fn list_figures() -> Result<(), CkptError> {
    for (id, spec) in figures::all_figures() {
        let title = spec.title.split(':').nth(1).unwrap_or(&spec.title);
        println!("{id:<14} {}", title.trim());
    }
    Ok(())
}

/// `ckptsim table3`: print the model parameters.
pub fn table3() -> Result<(), CkptError> {
    let c = SystemConfig::builder().build().map_err(CkptError::from)?;
    println!("Model parameters (paper's Table 3 defaults)");
    println!(
        "  checkpoint interval     {} min",
        c.checkpoint_interval().as_mins()
    );
    println!(
        "  MTTF per node           {:.2} yr",
        c.mttf_per_node().as_years()
    );
    println!(
        "  MTTR (compute)          {} min",
        c.mttr_system().as_mins()
    );
    println!("  MTTR (I/O nodes)        {} min", c.mttr_io().as_mins());
    println!("  processors              {}", c.processors());
    println!("  processors per node     {}", c.procs_per_node());
    println!("  MTTQ                    {} s", c.mttq().as_secs());
    println!(
        "  app cycle / compute     {} min / {}",
        c.app_cycle_period().as_mins(),
        c.compute_fraction()
    );
    println!("  reboot time             {} h", c.reboot_time().as_hours());
    println!(
        "  dump / FS write         {:.1} s / {:.1} s",
        c.checkpoint_dump_time().as_secs(),
        c.checkpoint_fs_write_time().as_secs()
    );
    println!("(run 'cargo run -p ckpt-bench --bin table3' for the full table)");
    Ok(())
}

/// `ckptsim dot`: the checkpoint model's SAN structure as Graphviz DOT
/// (pipe through `dot -Tsvg`).
pub fn dot(args: Vec<String>) -> Result<(), CkptError> {
    let (cfg, rest) = parse_config(args)?;
    if !rest.is_empty() {
        return Err(CkptError::Usage(format!("unknown flags: {rest:?}")));
    }
    let model = ckpt_core::san_model::CheckpointSan::build(&cfg)
        .map_err(|e| CkptError::Experiment(e.into()))?;
    print!("{}", ckpt_san::dot::to_dot(model.san()));
    Ok(())
}

/// `ckptsim analytic`: closed-form baselines for a configuration.
pub fn analytic(args: Vec<String>) -> Result<(), CkptError> {
    let (cfg, rest) = parse_config(args)?;
    if !rest.is_empty() {
        return Err(CkptError::Usage(format!("unknown flags: {rest:?}")));
    }
    let mtbf = 1.0 / cfg.compute_failure_rate();
    let overhead = cfg.quiesce_broadcast_latency().as_secs()
        + cfg.mttq().as_secs()
        + cfg.checkpoint_dump_time().as_secs();
    let latency = overhead + cfg.checkpoint_fs_write_time().as_secs();
    let tau = cfg.checkpoint_interval().as_secs();
    let restart = cfg.mttr_system().as_secs();
    let nodes = cfg.node_count();
    let mttq = cfg.mttq().as_secs();

    println!(
        "System MTBF: {:.3} h ({} nodes at {:.2} y/node)",
        mtbf / 3600.0,
        nodes,
        cfg.mttf_per_node().as_years()
    );
    println!("Optimal checkpoint intervals:");
    println!(
        "  Young  : {:>8.1} min",
        young::optimal_interval(overhead, mtbf) / 60.0
    );
    println!(
        "  Daly   : {:>8.1} min",
        daly::optimal_interval(overhead, mtbf) / 60.0
    );
    println!(
        "  Vaidya : {:>8.1} min",
        vaidya::optimal_interval(overhead, mtbf) / 60.0
    );
    println!(
        "Useful-work fraction at the configured {} min interval:",
        tau / 60.0
    );
    println!(
        "  Young  : {:>8.4}",
        young::useful_work_fraction(tau, overhead, mtbf)
    );
    println!(
        "  Daly   : {:>8.4}",
        daly::useful_work_fraction(tau, overhead, restart, mtbf)
    );
    println!(
        "  Vaidya : {:>8.4}",
        vaidya::useful_work_fraction(tau, overhead, latency, mtbf)
    );
    println!(
        "  Daly total useful work: {:.0} job units",
        availability::predicted_total_useful_work(
            cfg.processors(),
            tau,
            overhead,
            restart,
            cfg.compute_failure_rate()
        )
    );
    println!("Coordination (max over {nodes} nodes, MTTQ {mttq} s):");
    println!(
        "  E[Y]    : {:>7.1} s",
        coordination::expected_time(nodes, mttq)
    );
    println!(
        "  p99.9   : {:>7.1} s",
        coordination::quantile(nodes, mttq, 0.999)
    );
    for t in [60.0, 100.0, 120.0] {
        println!(
            "  P(Y>{t:>3}s): {:>7.4}",
            coordination::timeout_probability(nodes, mttq, t)
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckpt_core::Experiment;

    fn small_estimate() -> (SystemConfig, Estimate) {
        let cfg = SystemConfig::builder().processors(8_192).build().unwrap();
        let est = Experiment::new(cfg.clone())
            .transient(ckpt_des::SimTime::from_hours(20.0))
            .horizon(ckpt_des::SimTime::from_hours(200.0))
            .replications(2)
            .jobs(1)
            .run()
            .unwrap();
        (cfg, est)
    }

    #[test]
    fn quiet_suppresses_every_per_rep_line_in_both_formats() {
        let (cfg, est) = small_estimate();
        for csv in [false, true] {
            let loud = render_report(
                &cfg,
                &est,
                &RunOptions {
                    csv,
                    ..RunOptions::default()
                },
            );
            let quiet = render_report(
                &cfg,
                &est,
                &RunOptions {
                    csv,
                    exec: ckpt_harness::ExecFlags {
                        quiet: true,
                        ..ckpt_harness::ExecFlags::default()
                    },
                    ..RunOptions::default()
                },
            );
            // Loud output carries the per-rep section; quiet output has
            // no trace of it — not the header, not a row per rep.
            let header = if csv {
                "rep,wall_secs,events,events_per_sec"
            } else {
                "  rep "
            };
            assert!(loud.contains(header), "csv={csv}");
            assert!(!quiet.contains(header), "csv={csv}:\n{quiet}");
            // And quiet still reports the run-level results.
            assert!(quiet.contains(if csv {
                "useful_work_fraction"
            } else {
                "useful work fraction"
            }));
            // The quiet report is exactly the loud one minus the
            // profile section — nothing else may leak per-rep data.
            assert_eq!(format!("{quiet}{}", profile_section(&est, csv)), loud);
        }
    }

    #[test]
    fn profile_section_lists_each_replication_once() {
        let (_, est) = small_estimate();
        let csv = profile_section(&est, true);
        assert!(csv.starts_with("rep,wall_secs,events,events_per_sec\n"));
        assert_eq!(csv.lines().count(), 1 + est.profiles().len());
        let table = profile_section(&est, false);
        assert_eq!(table.lines().count(), 1 + est.profiles().len());
    }
}
