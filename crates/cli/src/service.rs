//! The service-facing subcommands: `ckptsim serve` runs the simulation
//! server; `submit`, `status`, and `result` are thin clients for it.
//!
//! `submit` accepts the same configuration and run flags as
//! `ckptsim run`, builds the identical [`ckpt_harness::ExperimentSpec`],
//! and posts its canonical JSON — so a spec submitted over the wire has
//! the same fingerprint (and therefore the same cached result) as one
//! run locally against the same store. `result` prints the stored
//! bytes verbatim: two fetches of the same job are `cmp`-equal.

use crate::config_flags::parse_config;
use ckpt_bench::{experiment_spec, RunOptions};
use ckpt_harness::CkptError;
use ckpt_svc::{Client, JobStore, Scheduler, Server, Tuning};
use std::io::Write as _;
use std::path::Path;
use std::time::Duration;

/// Default server address for `serve` and the client subcommands.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7070";
/// Default job-store directory for `serve`.
pub const DEFAULT_STORE: &str = ".ckptsim-store";
/// Default `--wait` timeout.
const DEFAULT_WAIT_SECS: u64 = 600;

fn usage(msg: String) -> CkptError {
    CkptError::Usage(msg)
}

fn io_err(context: &str, e: &std::io::Error) -> CkptError {
    CkptError::Io {
        path: context.to_string(),
        message: e.to_string(),
    }
}

/// `ckptsim serve`: bind the HTTP listener in front of a scheduler and
/// a content-addressed job store, and serve forever.
pub fn serve(args: Vec<String>) -> Result<(), CkptError> {
    let mut addr = DEFAULT_ADDR.to_string();
    let mut store_dir = DEFAULT_STORE.to_string();
    let mut tuning = Tuning {
        workers: std::thread::available_parallelism().map_or(2, std::num::NonZeroUsize::get),
        ..Tuning::default()
    };
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value_for = |name: &str| {
            it.next()
                .ok_or_else(|| usage(format!("{name} expects a value")))
        };
        match arg.as_str() {
            "--addr" => addr = value_for("--addr")?,
            "--store" => store_dir = value_for("--store")?,
            "--workers" => {
                tuning.workers = value_for("--workers")?
                    .parse()
                    .map_err(|e| usage(format!("--workers: {e}")))?;
            }
            "--shards" => {
                tuning.shards = value_for("--shards")?
                    .parse()
                    .map_err(|e| usage(format!("--shards: {e}")))?;
            }
            "--batch" => {
                tuning.batch = value_for("--batch")?
                    .parse()
                    .map_err(|e| usage(format!("--batch: {e}")))?;
            }
            "--snapshot-every" => {
                tuning.snapshot_every = value_for("--snapshot-every")?
                    .parse()
                    .map_err(|e| usage(format!("--snapshot-every: {e}")))?;
            }
            other => return Err(usage(format!("unknown flag '{other}' for serve"))),
        }
    }
    let store = JobStore::open(Path::new(&store_dir))?;
    let sched = Scheduler::new(store, tuning);
    let server = Server::bind(addr.as_str(), sched).map_err(|e| io_err(&addr, &e))?;
    let local = server.local_addr().map_err(|e| io_err(&addr, &e))?;
    // The resolved address (port 0 becomes a real port) goes out before
    // the accept loop so wrapper scripts can parse it.
    println!("listening on {local}");
    let _ = std::io::stdout().flush();
    server.run().map_err(|e| io_err(&addr, &e))
}

struct ClientFlags {
    server: String,
    tenant: String,
    wait: bool,
    wait_secs: u64,
    rest: Vec<String>,
}

/// Peels `--server/--tenant/--wait/--wait-secs` off `args`, leaving
/// everything else for the config/run parsers.
fn client_flags(args: Vec<String>) -> Result<ClientFlags, CkptError> {
    let mut flags = ClientFlags {
        server: DEFAULT_ADDR.to_string(),
        tenant: "default".to_string(),
        wait: false,
        wait_secs: DEFAULT_WAIT_SECS,
        rest: Vec::new(),
    };
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value_for = |name: &str| {
            it.next()
                .ok_or_else(|| usage(format!("{name} expects a value")))
        };
        match arg.as_str() {
            "--server" => flags.server = value_for("--server")?,
            "--tenant" => flags.tenant = value_for("--tenant")?,
            "--wait" => flags.wait = true,
            "--wait-secs" => {
                flags.wait = true;
                flags.wait_secs = value_for("--wait-secs")?
                    .parse()
                    .map_err(|e| usage(format!("--wait-secs: {e}")))?;
            }
            _ => flags.rest.push(arg),
        }
    }
    Ok(flags)
}

/// `ckptsim submit`: build the spec exactly as `run` would and post it.
/// Prints the accepted job id (one JSON line); with `--wait`, polls to
/// completion and prints the result bytes verbatim instead.
pub fn submit(args: Vec<String>) -> Result<(), CkptError> {
    let flags = client_flags(args)?;
    let (cfg, rest) = parse_config(flags.rest)?;
    let opts = RunOptions::parse(rest).map_err(|e| usage(e.to_string()))?;
    if opts.trace.is_some()
        || opts.metrics.is_some()
        || opts.manifest.is_some()
        || opts.histograms.is_some()
        || opts.prom.is_some()
        || opts.exec.journaling()
    {
        return Err(usage(
            "submit executes on the server; local output flags \
             (--trace/--metrics/--manifest/--histograms/--prom/\
             --snapshot/--resume) are not supported"
                .to_string(),
        ));
    }
    let spec = experiment_spec(cfg, opts.engine, &opts)?;
    let client = Client::new(&flags.server, &flags.tenant);
    let reply = client.submit(&spec.to_json())?;
    if flags.wait {
        let body = client.wait_result(&reply.id, Duration::from_secs(flags.wait_secs))?;
        print!("{body}");
    } else {
        println!(
            "{{\"kind\":\"job_accepted\",\"id\":\"{}\",\"cached\":{},\"deduplicated\":{}}}",
            reply.id, reply.cached, reply.deduplicated
        );
    }
    Ok(())
}

fn job_id(flags: &ClientFlags, what: &str) -> Result<String, CkptError> {
    match flags.rest.as_slice() {
        [id] => Ok(id.clone()),
        [] => Err(usage(format!("{what} expects a job id"))),
        more => Err(usage(format!(
            "{what} expects exactly one job id, got {:?}",
            more
        ))),
    }
}

/// `ckptsim status <id>`: print the job's status document.
pub fn job_status(args: Vec<String>) -> Result<(), CkptError> {
    let flags = client_flags(args)?;
    let id = job_id(&flags, "status")?;
    let client = Client::new(&flags.server, &flags.tenant);
    print!("{}", client.status(&id)?);
    Ok(())
}

/// `ckptsim result <id>`: print the stored result bytes verbatim; with
/// `--wait`, poll until the job finishes first.
pub fn job_result(args: Vec<String>) -> Result<(), CkptError> {
    let flags = client_flags(args)?;
    let id = job_id(&flags, "result")?;
    let client = Client::new(&flags.server, &flags.tenant);
    let body = if flags.wait {
        client.wait_result(&id, Duration::from_secs(flags.wait_secs))?
    } else {
        client.result(&id)?.ok_or_else(|| CkptError::Io {
            path: format!("http://{}", flags.server),
            message: format!("job {id} has no result yet (use --wait to poll)"),
        })?
    };
    print!("{body}");
    Ok(())
}
