//! `ckptsim report`: post-hoc summaries of run artifacts.
//!
//! Loads any mix of the JSON documents the toolchain writes — run
//! manifests (`--manifest`, schema v1 or v2), metrics reports
//! (`--metrics`), figure sweep manifests, `SweepJournal` snapshots
//! (`--snapshot`), optimize reports, and telemetry documents
//! (`--histograms`) — sniffs each document's kind, and renders either
//! aligned human tables or, with `--json`, one versioned machine
//! document. Multiple run manifests (or telemetry documents) get a
//! cross-run delta section against the first file given.
//!
//! The command is pure post-processing: it never simulates, and its
//! `--json` output is a deterministic function of the input files
//! (fixed key order, canonical number tokens), so reports over
//! committed fixtures can be pinned byte-for-byte in tests.

use ckpt_harness::json::{parse, JsonValue};
use ckpt_harness::CkptError;
use std::fmt::Write as _;

/// Report format version; bump when the `--json` layout changes.
pub const REPORT_SCHEMA_VERSION: u64 = 1;

/// Nearest-rank percentile of an ascending-sorted sample (the same
/// convention as `LogHistogram::value_at_quantile`); 0 on empty input.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn get_u64(doc: &JsonValue, key: &str) -> Option<u64> {
    doc.get(key).and_then(JsonValue::as_u64)
}

fn get_f64(doc: &JsonValue, key: &str) -> Option<f64> {
    doc.get(key).and_then(JsonValue::as_f64)
}

fn get_str<'a>(doc: &'a JsonValue, key: &str) -> Option<&'a str> {
    doc.get(key).and_then(JsonValue::as_str)
}

/// Summarizes a run manifest (schema v1 manifests — PR 2 era, no
/// `policy` and possibly no `jobs`/`host_parallelism`/`warmup` — parse
/// with defaults; v2 adds `policy`).
fn summarize_run_manifest(doc: &JsonValue) -> Vec<(String, JsonValue)> {
    let profiles = doc
        .get("profiles")
        .and_then(JsonValue::as_array)
        .unwrap_or(&[]);
    let mut walls: Vec<f64> = profiles
        .iter()
        .filter_map(|p| get_f64(p, "wall_secs"))
        .collect();
    walls.sort_by(|a, b| a.partial_cmp(b).expect("finite wall times"));
    let wall_total: f64 = walls.iter().sum();
    let events_total: u64 = profiles.iter().filter_map(|p| get_u64(p, "events")).sum();
    let events_per_sec = if wall_total > 0.0 {
        events_total as f64 / wall_total
    } else {
        0.0
    };
    vec![
        (
            "schema_version".into(),
            JsonValue::from_u64(get_u64(doc, "schema_version").unwrap_or(1)),
        ),
        (
            "engine".into(),
            JsonValue::from_text(get_str(doc, "engine").unwrap_or("?")),
        ),
        (
            "estimation".into(),
            JsonValue::from_text(get_str(doc, "estimation").unwrap_or("?")),
        ),
        (
            "policy".into(),
            JsonValue::from_text(get_str(doc, "policy").unwrap_or("")),
        ),
        (
            "base_seed".into(),
            JsonValue::from_u64(get_u64(doc, "base_seed").unwrap_or(0)),
        ),
        (
            "replications".into(),
            JsonValue::from_u64(get_u64(doc, "replications").unwrap_or(0)),
        ),
        (
            "jobs".into(),
            JsonValue::from_u64(get_u64(doc, "jobs").unwrap_or(1)),
        ),
        (
            "host_parallelism".into(),
            JsonValue::from_u64(get_u64(doc, "host_parallelism").unwrap_or(1)),
        ),
        (
            "warmup".into(),
            JsonValue::from_u64(get_u64(doc, "warmup").unwrap_or(0)),
        ),
        (
            "faults".into(),
            JsonValue::from_u64(get_u64(doc, "faults").unwrap_or(0)),
        ),
        (
            "transient_hours".into(),
            JsonValue::from_f64(get_f64(doc, "transient_hours").unwrap_or(0.0)),
        ),
        (
            "horizon_hours".into(),
            JsonValue::from_f64(get_f64(doc, "horizon_hours").unwrap_or(0.0)),
        ),
        ("events_total".into(), JsonValue::from_u64(events_total)),
        ("wall_secs_total".into(), JsonValue::from_f64(wall_total)),
        ("events_per_sec".into(), JsonValue::from_f64(events_per_sec)),
        (
            "wall_secs_p50".into(),
            JsonValue::from_f64(percentile(&walls, 0.50)),
        ),
        (
            "wall_secs_p90".into(),
            JsonValue::from_f64(percentile(&walls, 0.90)),
        ),
        (
            "wall_secs_p99".into(),
            JsonValue::from_f64(percentile(&walls, 0.99)),
        ),
    ]
}

/// Summarizes one named histogram object (`LogHistogram::to_json`
/// layout: count/sum/min/max/p50/p90/p99).
fn histogram_fields(name: &str, hist: &JsonValue) -> Vec<(String, JsonValue)> {
    ["count", "min", "max", "p50", "p90", "p99"]
        .iter()
        .map(|k| {
            (
                format!("{name}_{k}"),
                JsonValue::from_u64(get_u64(hist, k).unwrap_or(0)),
            )
        })
        .collect()
}

fn summarize_telemetry(doc: &JsonValue) -> Vec<(String, JsonValue)> {
    let det = doc.get("deterministic");
    let hists = det.and_then(|d| d.get("histograms"));
    let mut fields = vec![
        (
            "label".into(),
            JsonValue::from_text(get_str(doc, "label").unwrap_or("?")),
        ),
        (
            "probes_enabled".into(),
            JsonValue::Bool(
                doc.get("probes_enabled")
                    .and_then(JsonValue::as_bool)
                    .unwrap_or(false),
            ),
        ),
        (
            "events".into(),
            JsonValue::from_u64(det.and_then(|d| get_u64(d, "events")).unwrap_or(0)),
        ),
        (
            "rng_draws".into(),
            JsonValue::from_u64(det.and_then(|d| get_u64(d, "rng_draws")).unwrap_or(0)),
        ),
        (
            "redraws_elided".into(),
            JsonValue::from_u64(det.and_then(|d| get_u64(d, "redraws_elided")).unwrap_or(0)),
        ),
    ];
    for name in [
        "failure_gap_secs",
        "queue_depth",
        "dirty_set",
        "band_occupancy",
    ] {
        if let Some(h) = hists.and_then(|hs| hs.get(name)) {
            fields.extend(histogram_fields(name, h));
        }
    }
    fields
}

fn summarize_snapshot(doc: &JsonValue) -> Vec<(String, JsonValue)> {
    let completed = doc
        .get("completed")
        .and_then(JsonValue::as_array)
        .unwrap_or(&[]);
    let mut cells: Vec<u64> = completed
        .iter()
        .filter_map(|c| get_u64(c, "cell"))
        .collect();
    cells.sort_unstable();
    cells.dedup();
    vec![
        (
            "fingerprint".into(),
            JsonValue::from_u64(get_u64(doc, "fingerprint").unwrap_or(0)),
        ),
        (
            "completed_replications".into(),
            JsonValue::from_u64(completed.len() as u64),
        ),
        ("cells".into(), JsonValue::from_u64(cells.len() as u64)),
    ]
}

fn summarize_optimize(doc: &JsonValue) -> Vec<(String, JsonValue)> {
    let winner = doc.get("winner");
    vec![
        (
            "engine".into(),
            JsonValue::from_text(get_str(doc, "engine").unwrap_or("?")),
        ),
        (
            "candidates".into(),
            JsonValue::from_u64(
                doc.get("candidates")
                    .and_then(JsonValue::as_array)
                    .map_or(0, |a| a.len() as u64),
            ),
        ),
        (
            "winner".into(),
            JsonValue::from_text(winner.and_then(|w| get_str(w, "label")).unwrap_or("?")),
        ),
        (
            "winner_useful_work_fraction".into(),
            winner
                .and_then(|w| get_f64(w, "useful_work_fraction"))
                .map_or(JsonValue::Null, JsonValue::from_f64),
        ),
    ]
}

fn summarize_sweep_manifest(doc: &JsonValue) -> Vec<(String, JsonValue)> {
    vec![
        (
            "figure".into(),
            JsonValue::from_text(get_str(doc, "figure").unwrap_or("?")),
        ),
        (
            "engine".into(),
            JsonValue::from_text(get_str(doc, "engine").unwrap_or("?")),
        ),
        (
            "cells".into(),
            JsonValue::from_u64(get_u64(doc, "cells").unwrap_or(0)),
        ),
        (
            "replications".into(),
            JsonValue::from_u64(get_u64(doc, "replications").unwrap_or(0)),
        ),
        (
            "jobs".into(),
            JsonValue::from_u64(get_u64(doc, "jobs").unwrap_or(1)),
        ),
        (
            "wall_secs".into(),
            JsonValue::from_f64(get_f64(doc, "wall_secs").unwrap_or(0.0)),
        ),
    ]
}

/// Sniffs a document's kind and produces its summary object
/// (`path` + `kind` + kind-specific fields, fixed order).
///
/// # Errors
///
/// [`CkptError::Usage`] when the document matches no known layout.
pub fn summarize(label: &str, doc: &JsonValue) -> Result<JsonValue, CkptError> {
    let (kind, fields) = match get_str(doc, "kind") {
        Some("run_snapshot") => ("run_snapshot", summarize_snapshot(doc)),
        Some("optimize_report") => ("optimize_report", summarize_optimize(doc)),
        Some("telemetry") => ("telemetry", summarize_telemetry(doc)),
        _ if doc.get("figure").is_some() => ("sweep_manifest", summarize_sweep_manifest(doc)),
        // A --metrics report embeds the run manifest; summarize that.
        _ if doc.get("merged_registry").is_some() => (
            "metrics_report",
            doc.get("manifest")
                .map(summarize_run_manifest)
                .unwrap_or_default(),
        ),
        _ if doc.get("profiles").is_some() && doc.get("engine").is_some() => {
            ("run_manifest", summarize_run_manifest(doc))
        }
        _ => {
            return Err(CkptError::Usage(format!(
                "{label}: unrecognized document (expected a run/sweep manifest, metrics \
                 report, snapshot, optimize report, or telemetry file)"
            )))
        }
    };
    let mut all = vec![
        ("path".to_string(), JsonValue::from_text(label)),
        ("kind".to_string(), JsonValue::from_text(kind)),
    ];
    all.extend(fields);
    Ok(JsonValue::Object(all))
}

/// Cross-run deltas: every run manifest (or embedded one) after the
/// first is compared against the first, and likewise for telemetry
/// documents. Percentages are relative to the baseline.
fn deltas(summaries: &[JsonValue]) -> Vec<JsonValue> {
    let of_kind = |kinds: &[&str]| -> Vec<&JsonValue> {
        summaries
            .iter()
            .filter(|s| get_str(s, "kind").is_some_and(|k| kinds.contains(&k)))
            .collect()
    };
    let mut out = Vec::new();
    let runs = of_kind(&["run_manifest", "metrics_report"]);
    if let Some((base, rest)) = runs.split_first() {
        for s in rest {
            let mut fields = vec![
                (
                    "path".to_string(),
                    JsonValue::from_text(get_str(s, "path").unwrap_or("?")),
                ),
                (
                    "baseline".to_string(),
                    JsonValue::from_text(get_str(base, "path").unwrap_or("?")),
                ),
            ];
            for key in ["events_per_sec", "wall_secs_total"] {
                let b = get_f64(base, key).unwrap_or(0.0);
                let v = get_f64(s, key).unwrap_or(0.0);
                let pct = if b != 0.0 { (v - b) / b * 100.0 } else { 0.0 };
                fields.push((format!("{key}_delta_pct"), JsonValue::from_f64(pct)));
            }
            out.push(JsonValue::Object(fields));
        }
    }
    let telem = of_kind(&["telemetry"]);
    if let Some((base, rest)) = telem.split_first() {
        for s in rest {
            let delta = |key: &str| {
                let b = get_u64(base, key).unwrap_or(0) as i128;
                let v = get_u64(s, key).unwrap_or(0) as i128;
                JsonValue::Number((v - b).to_string())
            };
            out.push(JsonValue::Object(vec![
                (
                    "path".to_string(),
                    JsonValue::from_text(get_str(s, "path").unwrap_or("?")),
                ),
                (
                    "baseline".to_string(),
                    JsonValue::from_text(get_str(base, "path").unwrap_or("?")),
                ),
                ("events_delta".to_string(), delta("events")),
                ("rng_draws_delta".to_string(), delta("rng_draws")),
            ]));
        }
    }
    out
}

/// The full `--json` report for already-parsed documents, in input
/// order. Deterministic: a pure function of the inputs.
///
/// # Errors
///
/// [`CkptError::Usage`] when any document is unrecognized.
pub fn report_json(entries: &[(String, JsonValue)]) -> Result<String, CkptError> {
    let summaries = entries
        .iter()
        .map(|(label, doc)| summarize(label, doc))
        .collect::<Result<Vec<_>, _>>()?;
    let delta_rows = deltas(&summaries);
    let doc = JsonValue::Object(vec![
        (
            "report_schema_version".into(),
            JsonValue::from_u64(REPORT_SCHEMA_VERSION),
        ),
        ("kind".into(), JsonValue::from_text("report")),
        ("files".into(), JsonValue::Array(summaries)),
        ("deltas".into(), JsonValue::Array(delta_rows)),
    ]);
    let mut s = doc.to_json();
    s.push('\n');
    Ok(s)
}

/// The human rendering: one aligned key/value table per file, plus a
/// delta section when several comparable runs were given.
///
/// # Errors
///
/// [`CkptError::Usage`] when any document is unrecognized.
pub fn report_human(entries: &[(String, JsonValue)]) -> Result<String, CkptError> {
    let summaries = entries
        .iter()
        .map(|(label, doc)| summarize(label, doc))
        .collect::<Result<Vec<_>, _>>()?;
    let mut s = String::new();
    let render_value = |v: &JsonValue| match v {
        JsonValue::String(text) => text.clone(),
        other => other.to_json(),
    };
    for summary in &summaries {
        let _ = writeln!(
            s,
            "{} ({})",
            get_str(summary, "path").unwrap_or("?"),
            get_str(summary, "kind").unwrap_or("?"),
        );
        for (key, value) in summary.as_object().into_iter().flatten() {
            if key == "path" || key == "kind" {
                continue;
            }
            let _ = writeln!(s, "  {key:<28} {}", render_value(value));
        }
    }
    let delta_rows = deltas(&summaries);
    if !delta_rows.is_empty() {
        let _ = writeln!(s, "deltas (vs first comparable file)");
        for row in &delta_rows {
            let _ = writeln!(s, "  {}", get_str(row, "path").unwrap_or("?"));
            for (key, value) in row.as_object().into_iter().flatten() {
                if key == "path" || key == "baseline" {
                    continue;
                }
                let _ = writeln!(s, "    {key:<26} {}", render_value(value));
            }
        }
    }
    Ok(s)
}

/// `ckptsim report FILE... [--json] [--quiet]`: summarize run
/// artifacts. `--quiet` is accepted for symmetry with every other
/// subcommand; the report itself is the requested output, and the
/// command emits no progress heartbeats to suppress.
///
/// # Errors
///
/// [`CkptError::Usage`] on bad flags, missing files, or unrecognized
/// documents; [`CkptError::Io`] when a file cannot be read or parsed.
pub fn report(args: Vec<String>) -> Result<(), CkptError> {
    let mut json_out = false;
    let mut files = Vec::new();
    for arg in args {
        match arg.as_str() {
            "--json" => json_out = true,
            "--quiet" => {}
            other if other.starts_with("--") => {
                return Err(CkptError::Usage(format!(
                    "report: unknown flag '{other}' (expected FILE... [--json] [--quiet])"
                )))
            }
            file => files.push(file.to_string()),
        }
    }
    if files.is_empty() {
        return Err(CkptError::Usage(
            "report expects at least one FILE (a manifest, metrics report, snapshot, \
             optimize report, or telemetry document)"
                .into(),
        ));
    }
    let mut entries = Vec::new();
    for path in files {
        let text = std::fs::read_to_string(&path).map_err(|e| CkptError::Io {
            path: path.clone(),
            message: e.to_string(),
        })?;
        let doc = parse(&text).map_err(|e| CkptError::Io {
            path: path.clone(),
            message: e.to_string(),
        })?;
        entries.push((path, doc));
    }
    let rendered = if json_out {
        report_json(&entries)?
    } else {
        report_human(&entries)?
    };
    print!("{rendered}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest_doc(seed: u64, wall: f64) -> JsonValue {
        parse(&format!(
            r#"{{"schema_version": 2, "tool": "ckptsim", "version": "0.1.0",
                "engine": "direct", "estimation": "replications",
                "base_seed": {seed}, "transient_hours": 1000.0,
                "horizon_hours": 20000.0, "replications": 2, "faults": 0,
                "jobs": 4, "host_parallelism": 8, "warmup": 0,
                "policy": "fixed",
                "config": {{"processors": "65536"}},
                "profiles": [
                  {{"rep": 0, "wall_secs": {wall}, "events": 1000, "events_per_sec": 2000.0}},
                  {{"rep": 1, "wall_secs": 0.25, "events": 1000, "events_per_sec": 4000.0}}
                ]}}"#
        ))
        .unwrap()
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.50), 2.0);
        assert_eq!(percentile(&xs, 0.99), 4.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.5), 7.0);
    }

    #[test]
    fn run_manifest_summary_aggregates_profiles() {
        let s = summarize("m.json", &manifest_doc(1, 0.75)).unwrap();
        assert_eq!(get_str(&s, "kind"), Some("run_manifest"));
        assert_eq!(get_u64(&s, "events_total"), Some(2000));
        assert_eq!(get_f64(&s, "wall_secs_total"), Some(1.0));
        assert_eq!(get_f64(&s, "events_per_sec"), Some(2000.0));
        assert_eq!(get_f64(&s, "wall_secs_p50"), Some(0.25));
        assert_eq!(get_f64(&s, "wall_secs_p99"), Some(0.75));
        assert_eq!(get_str(&s, "policy"), Some("fixed"));
    }

    #[test]
    fn v1_manifests_without_policy_still_summarize() {
        let v1 = parse(
            r#"{"schema_version": 1, "tool": "ckptsim", "version": "0.1.0",
                "engine": "san", "estimation": "replications",
                "base_seed": 7, "transient_hours": 100.0,
                "horizon_hours": 2000.0, "replications": 1,
                "config": {},
                "profiles": [{"rep": 0, "wall_secs": 0.5, "events": 10, "events_per_sec": 20.0}]}"#,
        )
        .unwrap();
        let s = summarize("old.json", &v1).unwrap();
        assert_eq!(get_u64(&s, "schema_version"), Some(1));
        assert_eq!(get_str(&s, "policy"), Some(""));
        assert_eq!(get_u64(&s, "jobs"), Some(1));
        assert_eq!(get_u64(&s, "events_total"), Some(10));
    }

    #[test]
    fn unknown_documents_are_a_usage_error() {
        let doc = parse(r#"{"hello": "world"}"#).unwrap();
        assert!(matches!(
            summarize("x.json", &doc),
            Err(CkptError::Usage(_))
        ));
    }

    #[test]
    fn two_runs_get_a_delta_section() {
        let entries = vec![
            ("a.json".to_string(), manifest_doc(1, 0.75)),
            ("b.json".to_string(), manifest_doc(2, 0.25)),
        ];
        let j = report_json(&entries).unwrap();
        let doc = parse(&j).unwrap();
        assert_eq!(doc.get("report_schema_version").unwrap().as_u64(), Some(1));
        let deltas = doc.get("deltas").unwrap().as_array().unwrap();
        assert_eq!(deltas.len(), 1);
        let d = &deltas[0];
        assert_eq!(get_str(d, "baseline"), Some("a.json"));
        // b is faster: 2000 events over 0.5 s vs 1.0 s → +100 %.
        assert_eq!(get_f64(d, "events_per_sec_delta_pct"), Some(100.0));
        assert_eq!(get_f64(d, "wall_secs_total_delta_pct"), Some(-50.0));
        // Human rendering carries the same information.
        let human = report_human(&entries).unwrap();
        assert!(human.contains("a.json (run_manifest)"));
        assert!(human.contains("deltas (vs first comparable file)"));
    }

    #[test]
    fn telemetry_and_snapshot_documents_summarize() {
        let telem = parse(
            r#"{"telemetry_schema_version": 1, "kind": "telemetry", "label": "run",
                "probes_enabled": false,
                "deterministic": {"events": 5, "rng_draws": 0, "histograms":
                  {"failure_gap_secs": {"count":2,"sum":10,"min":3,"max":7,"p50":3,"p90":7,"p99":7,"buckets":[[3,1],[7,1]]},
                   "queue_depth": {"count":0,"sum":0,"min":0,"max":0,"p50":0,"p90":0,"p99":0,"buckets":[]},
                   "dirty_set": {"count":0,"sum":0,"min":0,"max":0,"p50":0,"p90":0,"p99":0,"buckets":[]}}},
                "provenance": {"spans": []}}"#,
        )
        .unwrap();
        let s = summarize("t.json", &telem).unwrap();
        assert_eq!(get_str(&s, "kind"), Some("telemetry"));
        assert_eq!(get_u64(&s, "events"), Some(5));
        assert_eq!(get_u64(&s, "failure_gap_secs_p90"), Some(7));

        let snap = parse(
            r#"{"schema_version": 1, "tool": "ckptsim", "kind": "run_snapshot",
                "fingerprint": 99, "stats": [],
                "completed": [{"cell": 0, "rep": 0, "events": 1, "metrics": {}},
                               {"cell": 1, "rep": 0, "events": 1, "metrics": {}}]}"#,
        )
        .unwrap();
        let s = summarize("s.json", &snap).unwrap();
        assert_eq!(get_str(&s, "kind"), Some("run_snapshot"));
        assert_eq!(get_u64(&s, "completed_replications"), Some(2));
        assert_eq!(get_u64(&s, "cells"), Some(2));
    }
}
