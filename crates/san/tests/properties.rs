//! Property-based tests of the SAN executor: invariants that must hold
//! for arbitrary (well-formed) nets, not just the checkpoint model.

use ckpt_des::SimTime;
use ckpt_san::{Delay, RewardSpec, SanBuilder, Simulator};
use ckpt_stats::Dist;
use proptest::prelude::*;

/// Builds a ring of `n` places where activity `i` moves one token from
/// place `i` to place `(i+1) % n` with the given delay means; `tokens`
/// tokens start in place 0.
fn ring(n: usize, tokens: u64, means: &[f64]) -> ckpt_san::San {
    let mut b = SanBuilder::new("ring");
    let places: Vec<_> = (0..n)
        .map(|i| b.place(format!("p{i}"), if i == 0 { tokens } else { 0 }))
        .collect();
    for i in 0..n {
        b.timed_activity(
            format!("a{i}"),
            Delay::from(Dist::exponential_mean(means[i % means.len()])),
        )
        .input_arc(places[i], 1)
        .output_arc(places[(i + 1) % n], 1)
        .build();
    }
    b.build().expect("ring net is well-formed")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Tokens are conserved in any ring net, for any horizon and seed.
    #[test]
    fn ring_conserves_tokens(
        n in 2usize..8,
        tokens in 1u64..5,
        mean in 0.1f64..10.0,
        seed in 0u64..1_000,
        horizon in 1.0f64..500.0,
    ) {
        let san = ring(n, tokens, &[mean]);
        let mut sim = Simulator::new(&san, seed).unwrap();
        sim.run_for(SimTime::from_secs(horizon)).unwrap();
        let total: u64 = (0..n)
            .map(|i| sim.marking().tokens(san.place_by_name(&format!("p{i}")).unwrap()))
            .sum();
        prop_assert_eq!(total, tokens);
    }

    /// Firing counts around a ring telescope: adjacent activities differ
    /// by at most the number of circulating tokens.
    #[test]
    fn ring_firing_counts_telescope(
        n in 2usize..8,
        tokens in 1u64..4,
        seed in 0u64..1_000,
    ) {
        let san = ring(n, tokens, &[1.0]);
        let mut sim = Simulator::new(&san, seed).unwrap();
        sim.run_for(SimTime::from_secs(200.0)).unwrap();
        let counts: Vec<u64> = (0..n)
            .map(|i| sim.firing_count(san.activity_by_name(&format!("a{i}")).unwrap()))
            .collect();
        for w in counts.windows(2) {
            let diff = w[0].abs_diff(w[1]);
            prop_assert!(
                diff <= tokens,
                "adjacent firing counts {w:?} differ by more than {tokens}"
            );
        }
    }

    /// A constant rate reward integrates to exactly the window length,
    /// regardless of the net's activity.
    #[test]
    fn constant_rate_reward_integrates_window(
        seed in 0u64..1_000,
        horizon in 1.0f64..300.0,
    ) {
        let san = ring(3, 2, &[0.5]);
        let mut sim = Simulator::new(&san, seed).unwrap();
        sim.add_reward(RewardSpec::rate("unit", |_| 1.0)).unwrap();
        sim.run_for(SimTime::from_secs(horizon)).unwrap();
        let v = sim.reward_report().value("unit").unwrap();
        prop_assert!((v.total - horizon).abs() < 1e-9 * horizon.max(1.0));
        prop_assert!((v.window - horizon).abs() < 1e-9 * horizon.max(1.0));
    }

    /// A constant-flow fluid place integrates to rate × time.
    #[test]
    fn constant_flow_integrates_linearly(
        rate in 0.1f64..5.0,
        horizon in 1.0f64..200.0,
        seed in 0u64..100,
    ) {
        let mut b = SanBuilder::new("flow");
        let p = b.place("p", 1);
        let acc = b.fluid_place("acc", 0.0);
        b.flow(acc, move |_| rate);
        b.timed_activity("churn", Delay::from(Dist::exponential(1.0)))
            .input_arc(p, 1)
            .output_arc(p, 1)
            .build();
        let san = b.build().unwrap();
        let mut sim = Simulator::new(&san, seed).unwrap();
        sim.run_for(SimTime::from_secs(horizon)).unwrap();
        let got = sim.marking().fluid(acc);
        prop_assert!(
            (got - rate * horizon).abs() < 1e-6 * (rate * horizon),
            "fluid {got} vs expected {}",
            rate * horizon
        );
    }

    /// Identical seeds reproduce exactly; the simulation is a pure
    /// function of (net, seed, horizon).
    #[test]
    fn deterministic_per_seed(
        n in 2usize..6,
        seed in 0u64..1_000,
    ) {
        let san = ring(n, 2, &[1.0, 2.5]);
        let run = |s| {
            let mut sim = Simulator::new(&san, s).unwrap();
            sim.run_for(SimTime::from_secs(100.0)).unwrap();
            (0..n)
                .map(|i| sim.firing_count(san.activity_by_name(&format!("a{i}")).unwrap()))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    /// Probabilistic cases preserve tokens whichever branch is taken.
    #[test]
    fn case_splits_conserve_tokens(
        w1 in 0.05f64..1.0,
        w2 in 0.05f64..1.0,
        seed in 0u64..500,
    ) {
        let mut b = SanBuilder::new("split");
        let src = b.place("src", 3);
        let left = b.place("left", 0);
        let right = b.place("right", 0);
        let back = b.place("back", 0);
        b.timed_activity("split", Delay::from(Dist::exponential(1.0)))
            .input_arc(src, 1)
            .case(w1, |c| c.output_arc(left, 1))
            .case(w2, |c| c.output_arc(right, 1))
            .build();
        b.instantaneous_activity("return_left", 1)
            .input_arc(left, 1)
            .output_arc(back, 1)
            .build();
        b.instantaneous_activity("return_right", 1)
            .input_arc(right, 1)
            .output_arc(back, 1)
            .build();
        b.timed_activity("recycle", Delay::from(Dist::exponential(2.0)))
            .input_arc(back, 1)
            .output_arc(src, 1)
            .build();
        let san = b.build().unwrap();
        let mut sim = Simulator::new(&san, seed).unwrap();
        sim.run_for(SimTime::from_secs(500.0)).unwrap();
        let total = sim.marking().tokens(src)
            + sim.marking().tokens(left)
            + sim.marking().tokens(right)
            + sim.marking().tokens(back);
        prop_assert_eq!(total, 3);
    }
}

/// Marking-dependent case weights steer the split as the marking evolves
/// (non-proptest: a single statistical check).
#[test]
fn marking_dependent_case_weights_bias_the_split() {
    let mut b = SanBuilder::new("adaptive");
    let src = b.place("src", 1);
    let a = b.place("a", 0);
    let bb = b.place("b", 0);
    let a_id = a;
    // Weight of case A decays as tokens accumulate in A: a load balancer.
    b.timed_activity("route", Delay::from(Dist::deterministic(1.0)))
        .input_arc(src, 1)
        .case_weighted_by(
            move |m| 1.0 / (1.0 + m.tokens(a_id) as f64),
            |c| c.output_arc(a, 1),
        )
        .case(0.5, |c| c.output_arc(bb, 1))
        .build();
    let src_id = src;
    b.instantaneous_activity("refill", 0)
        .enabled_when("src_empty", move |m| !m.has_token(src_id))
        .output_arc(src, 1)
        .build();
    let san = b.build().unwrap();
    let mut sim = Simulator::new(&san, 3).unwrap();
    sim.run_until(SimTime::from_secs(2_000.0)).unwrap();
    let in_a = sim.marking().tokens(a);
    let in_b = sim.marking().tokens(bb);
    assert_eq!(in_a + in_b, 2_000);
    // With A's weight decaying, B must collect the vast majority.
    assert!(
        in_b > in_a * 10,
        "adaptive weights must bias to B: A={in_a}, B={in_b}"
    );
}
