//! Equality of compiled gate programs and trait-dispatch enabling.
//!
//! `San::build` compiles every declarative [`Pred`] gate into a flat
//! postfix program evaluated by `San::enabled_fast`; gates that cannot
//! be compiled (closure predicates, over-deep expressions) fall back to
//! the original boxed closure. The contract is exact equality with the
//! trait-dispatch reference (`San::enabled_reference`) on **every**
//! marking, not just reachable ones — these tests sweep hand-built nets
//! and proptest-randomized markings to hold the compiler to it.

use ckpt_san::{Delay, InputGate, Pred, San, SanBuilder};
use ckpt_stats::Dist;
use proptest::prelude::*;

/// Asserts the compiled and reference enabling tests agree for every
/// activity of `san` under `marking`.
fn assert_enabling_agrees(san: &San, marking: &ckpt_san::Marking, label: &str) {
    for a in san.activity_ids() {
        assert_eq!(
            san.enabled_fast(a, marking),
            san.enabled_reference(a, marking),
            "compiled/reference enabling diverged for {} under {label}",
            san.activity_name(a),
        );
    }
}

/// A net exercising every compilable predicate shape plus the closure
/// fallback: leaf tests, boolean combinators, negation folding, arc
/// multiplicities, and an undeclared closure gate.
fn gate_zoo() -> (San, Vec<ckpt_san::PlaceId>) {
    let mut b = SanBuilder::new("zoo");
    let p: Vec<_> = (0..6).map(|i| b.place(format!("p{i}"), 0)).collect();
    let d = Delay::from(Dist::exponential(1.0));

    b.timed_activity("leaf_has", d.clone())
        .enabled_if("has0", Pred::has(p[0]))
        .build();
    b.timed_activity("leaf_empty", d.clone())
        .enabled_if("empty1", Pred::empty(p[1]))
        .build();
    b.timed_activity("leaf_at_least", d.clone())
        .enabled_if("ge3", Pred::at_least(p[2], 3))
        .build();
    b.timed_activity("conjunction", d.clone())
        .enabled_if(
            "and",
            Pred::has(p[0]).and(Pred::empty(p[1]).and(Pred::has(p[2]))),
        )
        .build();
    b.timed_activity("disjunction", d.clone())
        .enabled_if(
            "or",
            Pred::has(p[3]).or(Pred::has(p[4]).or(Pred::at_least(p[5], 2))),
        )
        .build();
    b.timed_activity("negated_mix", d.clone())
        .enabled_if(
            "not_mix",
            Pred::has(p[0]).and(Pred::has(p[1]).or(Pred::has(p[2])).negate()),
        )
        .build();
    b.timed_activity("with_arcs", d.clone())
        .input_arc(p[3], 2)
        .input_arc(p[4], 1)
        .enabled_if("arc_guard", Pred::empty(p[5]))
        .output_arc(p[0], 1)
        .build();
    // Closure gate: stays on the trait-dispatch fallback inside the
    // compiled program, so both paths must still agree.
    let watch = p[5];
    b.timed_activity("closure_gate", d)
        .input_gate(InputGate::predicate_only("undeclared", move |m| {
            m.tokens(watch).is_multiple_of(2)
        }))
        .build();

    let san = b.build().expect("zoo net is well-formed");
    (san, p)
}

#[test]
fn gate_zoo_agrees_on_token_sweep() {
    let (san, places) = gate_zoo();
    let mut m = san.initial_marking();
    assert_enabling_agrees(&san, &m, "initial marking");
    // Sweep each place through 0..=4 tokens with the rest pinned.
    for &place in &places {
        for count in 0..=4 {
            m.set_tokens(place, count);
            assert_enabling_agrees(&san, &m, "single-place sweep");
        }
        m.set_tokens(place, 0);
    }
}

#[test]
fn over_deep_predicates_fall_back_and_still_agree() {
    // A right-leaning Any chain past the compiler's stack bound takes
    // the closure fallback; behaviour must be unchanged.
    let mut b = SanBuilder::new("deep");
    let places: Vec<_> = (0..24).map(|i| b.place(format!("p{i}"), 0)).collect();
    let mut pred = Pred::has(places[23]);
    for &place in places[..23].iter().rev() {
        pred = Pred::has(place).or(Pred::All(vec![pred]));
    }
    b.timed_activity("deep", Delay::from(Dist::exponential(1.0)))
        .enabled_if("deep_any", pred)
        .build();
    let san = b.build().unwrap();
    let mut m = san.initial_marking();
    assert_enabling_agrees(&san, &m, "all-empty");
    for &place in &places {
        m.set_tokens(place, 1);
        assert_enabling_agrees(&san, &m, "one-hot sweep");
        m.set_tokens(place, 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Randomized markings over the gate zoo: arbitrary token vectors
    /// (reachable or not) never split the compiled and reference paths.
    #[test]
    fn random_markings_agree(tokens in proptest::collection::vec(0u64..6, 6..7)) {
        let (san, places) = gate_zoo();
        let mut m = san.initial_marking();
        for (&place, &count) in places.iter().zip(&tokens) {
            m.set_tokens(place, count);
        }
        for a in san.activity_ids() {
            prop_assert_eq!(
                san.enabled_fast(a, &m),
                san.enabled_reference(a, &m),
                "diverged for {}",
                san.activity_name(a)
            );
        }
    }
}
