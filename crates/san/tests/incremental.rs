//! Equivalence of the incremental and full-scan schedulers.
//!
//! The incremental scheduler's contract is **bit-identity**: on the same
//! net and seed it must produce exactly the firing sequence, RNG draw
//! order, reward values, and final marking of the full-scan reference
//! executor — not statistically similar, *identical*. These tests pit
//! the two against each other on hand-crafted nets covering every
//! feature that interacts with scheduling (declared and undeclared
//! gates, `Resample` timers, instantaneous priorities, probabilistic
//! cases, fluid places, rewards) and on proptest-generated nets.

use ckpt_des::SimTime;
use ckpt_san::{
    Delay, InputGate, Reactivation, RewardSpec, San, SanBuilder, SanError, SanObserver, Scheduling,
    Simulator,
};
use ckpt_stats::Dist;
use proptest::prelude::*;

/// Records every firing and reward update, exact to the bit.
#[derive(Default, PartialEq, Debug)]
struct Recorder {
    /// (time bits, activity name) per firing.
    firings: Vec<(u64, String)>,
    /// (time bits, reward name, total bits) per impulse accrual.
    rewards: Vec<(u64, String, u64)>,
}

impl SanObserver for Recorder {
    fn activity_fired(&mut self, at: SimTime, name: &str, _marking: &ckpt_san::Marking) {
        self.firings
            .push((at.as_secs().to_bits(), name.to_string()));
    }

    fn reward_updated(&mut self, at: SimTime, name: &str, total: f64) {
        self.rewards
            .push((at.as_secs().to_bits(), name.to_string(), total.to_bits()));
    }
}

/// Runs `san` under `scheduling` and returns everything observable.
fn run(
    san: &San,
    seed: u64,
    horizon: f64,
    scheduling: Scheduling,
) -> (Recorder, ckpt_san::Marking, u64, Vec<(u64, u64)>) {
    let mut rec = Recorder::default();
    let mut sim = Simulator::with_scheduling(san, seed, scheduling).expect("init");
    sim.add_reward(RewardSpec::rate("window", |_| 1.0)).unwrap();
    if let Some(a0) = san.activity_by_name("a0") {
        sim.add_reward(RewardSpec::impulse_only("fires").with_impulse(a0, |_| 1.0))
            .unwrap();
    }
    sim.set_observer(&mut rec);
    sim.run_for(SimTime::from_secs(horizon)).expect("run");
    let marking = sim.marking().clone();
    let events = sim.events_processed();
    let report = sim.reward_report();
    let mut rewards = Vec::new();
    for name in ["window", "fires"] {
        if let Ok(v) = report.value(name) {
            rewards.push((v.total.to_bits(), v.impulse_count));
        }
    }
    sim.clear_observer();
    (rec, marking, events, rewards)
}

/// Asserts both schedulers agree on every observable output.
fn assert_equivalent(san: &San, seed: u64, horizon: f64) {
    let (rec_inc, m_inc, ev_inc, rw_inc) = run(san, seed, horizon, Scheduling::Incremental);
    let (rec_full, m_full, ev_full, rw_full) = run(san, seed, horizon, Scheduling::FullScan);
    assert_eq!(
        rec_inc.firings, rec_full.firings,
        "firing sequences diverged (seed {seed})"
    );
    assert_eq!(
        rec_inc.rewards, rec_full.rewards,
        "reward streams diverged (seed {seed})"
    );
    assert_eq!(m_inc, m_full, "final markings diverged (seed {seed})");
    assert_eq!(ev_inc, ev_full, "event counts diverged (seed {seed})");
    assert_eq!(rw_inc, rw_full, "reward totals diverged (seed {seed})");
}

/// A deliberately gnarly net: a token ring whose activities carry
/// declared gates, undeclared gates, `Resample` timers with
/// marking-modulated rates, priority-ordered instantaneous drains, and a
/// marking-weighted probabilistic case, plus a fluid accumulator.
fn mixed_net(n: usize, declare: &[bool], resample: &[bool]) -> San {
    let mut b = SanBuilder::new("mixed");
    let places: Vec<_> = (0..n)
        .map(|i| b.place(format!("p{i}"), if i == 0 { 3 } else { 0 }))
        .collect();
    let sink = b.place("sink", 0);
    let acc = b.fluid_place("acc", 0.0);
    let p0 = places[0];
    b.flow(acc, move |m| if m.has_token(p0) { 1.5 } else { 0.25 });

    for i in 0..n {
        let next = places[(i + 1) % n];
        let watch = places[(i + 2) % n];
        let delay = if resample[i % resample.len()] {
            // Marking-modulated rate: only correct under Resample.
            Delay::from_fn(move |m, rng| {
                let rate = 1.0 + m.tokens(watch) as f64;
                rng.exponential(rate)
            })
        } else {
            Delay::from(Dist::exponential_mean(0.5 + 0.3 * i as f64))
        };
        let gate = InputGate::predicate_only(format!("g{i}"), move |m| m.tokens(watch) < 4);
        let gate = if declare[i % declare.len()] {
            gate.reads(&[watch])
        } else {
            gate
        };
        let mut ab = b
            .timed_activity(format!("a{i}"), delay)
            .input_arc(places[i], 1)
            .input_gate(gate);
        if resample[i % resample.len()] {
            ab = ab.reactivation(Reactivation::Resample);
        }
        if i == 0 {
            // Marking-dependent case weights: each multi-case firing
            // draws randomness, so any skipped or extra visit shows up.
            ab.case_weighted_by(
                move |m| 1.0 + m.tokens(p0) as f64,
                |c| c.output_arc(next, 1),
            )
            .case(1.0, |c| c.output_arc(next, 1).output_arc(sink, 1))
            .build();
        } else {
            ab.output_arc(next, 1).build();
        }
    }
    // Priority-ordered instantaneous drains: consume two tokens, pass one
    // on, bank one — net token loss, so settling always terminates.
    for i in (0..n).step_by(2) {
        b.instantaneous_activity(format!("drain{i}"), (i % 3) as u32)
            .input_arc(places[i], 2)
            .output_arc(places[(i + 1) % n], 1)
            .output_arc(sink, 1)
            .build();
    }
    // Refill so the ring never starves: sink tokens trickle back.
    b.timed_activity("refill", Delay::from(Dist::exponential_mean(0.7)))
        .input_arc(sink, 1)
        .output_arc(places[0], 1)
        .build();
    b.build().expect("mixed net is well-formed")
}

#[test]
fn mixed_net_is_bit_identical_across_schedulers() {
    let san = mixed_net(5, &[true, false, true], &[false, true]);
    for seed in [0, 1, 7, 42, 1234] {
        assert_equivalent(&san, seed, 300.0);
    }
}

#[test]
fn all_declared_net_is_bit_identical() {
    let san = mixed_net(6, &[true], &[false]);
    for seed in [3, 99] {
        assert_equivalent(&san, seed, 500.0);
    }
}

#[test]
fn all_undeclared_net_is_bit_identical() {
    // Everything conservative/global: the incremental scheduler must
    // degrade to full-scan behaviour, not break.
    let san = mixed_net(4, &[false], &[true]);
    for seed in [5, 17] {
        assert_equivalent(&san, seed, 200.0);
    }
}

#[test]
fn livelock_errors_match_across_schedulers() {
    // A timed activity arms an instantaneous ping-pong pair mid-run, so
    // the livelock is detected by the event loop (not initialization).
    let mut b = SanBuilder::new("late_livelock");
    let fuse = b.place("fuse", 1);
    let a = b.place("a", 0);
    let c = b.place("c", 0);
    b.timed_activity("arm", Delay::from(Dist::deterministic(1.0)))
        .input_arc(fuse, 1)
        .output_arc(a, 1)
        .build();
    b.instantaneous_activity("ab", 0)
        .input_arc(a, 1)
        .output_arc(c, 1)
        .build();
    b.instantaneous_activity("ba", 0)
        .input_arc(c, 1)
        .output_arc(a, 1)
        .build();
    let san = b.build().unwrap();
    for scheduling in [Scheduling::Incremental, Scheduling::FullScan] {
        let mut sim = Simulator::with_scheduling(&san, 0, scheduling).unwrap();
        let err = sim.run_for(SimTime::from_secs(10.0)).unwrap_err();
        assert!(
            matches!(err, SanError::InstantaneousLivelock { .. }),
            "{scheduling:?} must detect the livelock, got {err:?}"
        );
    }
}

#[test]
fn refiring_with_no_dependent_dirty_places_is_rescheduled() {
    // An always-enabled timed activity whose only effect is a fluid
    // write: its firing dirties no discrete place at all, so only the
    // explicit "revisit the fired activity" rule reschedules it.
    let mut b = SanBuilder::new("self_loop");
    let acc = b.fluid_place("acc", 0.0);
    b.timed_activity("tick", Delay::from(Dist::deterministic(2.0)))
        .effect("bump", move |m| {
            let v = m.fluid(acc);
            m.set_fluid(acc, v + 1.0);
        })
        .build();
    let san = b.build().unwrap();
    for scheduling in [Scheduling::Incremental, Scheduling::FullScan] {
        let mut sim = Simulator::with_scheduling(&san, 0, scheduling).unwrap();
        sim.run_until(SimTime::from_secs(10.0)).unwrap();
        assert_eq!(
            sim.marking().fluid(acc),
            5.0,
            "{scheduling:?} must keep the self-loop ticking"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Randomized nets: whatever the mix of declared gates and Resample
    /// timers, both schedulers produce identical runs.
    #[test]
    fn random_nets_are_bit_identical(
        n in 3usize..7,
        declare_mask in 0u32..8,
        resample_mask in 0u32..4,
        seed in 0u64..10_000,
        horizon in 20.0f64..200.0,
    ) {
        let declare: Vec<bool> = (0..3).map(|i| declare_mask & (1 << i) != 0).collect();
        let resample: Vec<bool> = (0..2).map(|i| resample_mask & (1 << i) != 0).collect();
        let san = mixed_net(n, &declare, &resample);
        let (rec_inc, m_inc, ev_inc, rw_inc) = run(&san, seed, horizon, Scheduling::Incremental);
        let (rec_full, m_full, ev_full, rw_full) = run(&san, seed, horizon, Scheduling::FullScan);
        prop_assert_eq!(rec_inc.firings, rec_full.firings);
        prop_assert_eq!(rec_inc.rewards, rec_full.rewards);
        prop_assert_eq!(m_inc, m_full);
        prop_assert_eq!(ev_inc, ev_full);
        prop_assert_eq!(rw_inc, rw_full);
    }
}
