//! Compiled hot-path representation of a SAN.
//!
//! Built once by [`SanBuilder::build`](crate::SanBuilder::build) and
//! consulted on every event by the incremental scheduler, this module
//! packs the enabling rules and the dependency index into flat,
//! cache-friendly arrays:
//!
//! * **Input arcs and conjunctive gate leaves** fuse into one flat
//!   per-activity list of token-interval requirements
//!   (`min <= tokens(place) <= max`): an arc `(p, need)` is
//!   `[need, MAX]`, `Pred::has` is `[1, MAX]`, `Pred::empty` is
//!   `[0, 0]`, and a top-level `All` contributes one entry per leaf.
//!   Checking an activity is a short-circuit walk over contiguous
//!   memory — the dominant case (every checkpoint-model gate is a
//!   conjunction of one or two leaves) never leaves that loop.
//! * **Residual gate predicates** (disjunctions and other shapes that
//!   don't flatten into interval requirements) become *gate programs*:
//!   flat postfix bytecode ([`GateOp`]) over the token array, evaluated
//!   by a fixed-size stack machine with zero dynamic dispatch. Closure
//!   gates (and pathological expressions deeper than [`MAX_STACK`])
//!   fall back to a single [`GateOp::Closure`] op that invokes the
//!   original predicate — same result, original cost.
//! * **Dependencies** become bitmasks: one bit per activity, one row per
//!   place (`place → timed dependents`, `place → instantaneous
//!   dependents`), plus the conservatively re-checked global rows. The
//!   scheduler OR-folds the rows of the event's dirty places and walks
//!   set bits in ascending index order — replacing the per-event
//!   stamp/push/sort dance with a handful of word ORs.
//!
//! Everything here is *derived* state: the trait-dispatch path
//! ([`ActivityDef::enabled`]) remains the semantic reference, and the
//! debug-build consistency assertion in the simulator cross-checks the
//! two on every event.

use crate::activity::{ActivityDef, Delay, Reactivation, Timing};
use crate::gate::InputGate;
use crate::marking::{Marking, PlaceId};
use crate::model::DependencyIndex;
use crate::pred::Pred;
use ckpt_stats::Dist;

/// Stack budget of the gate-program interpreter. Expressions needing
/// more (operand `i` of an `All`/`Any` starts with `i` results already
/// parked) fall back to the closure path at compile time.
const MAX_STACK: usize = 16;

/// One postfix instruction of a compiled gate program.
#[derive(Debug, Clone)]
pub(crate) enum GateOp {
    /// Push `tokens(place) >= need`.
    TokensGe { place: u32, need: u64 },
    /// Push `tokens(place) == 0`.
    TokensEq0 { place: u32 },
    /// Invert the top of stack.
    Not,
    /// Pop `n` results, push their conjunction (`true` when `n == 0`).
    AllOf { n: u16 },
    /// Pop `n` results, push their disjunction (`false` when `n == 0`).
    AnyOf { n: u16 },
    /// Push the result of an opaque closure gate (fallback path).
    Closure { gate: u32 },
}

/// One token-interval requirement: activity enabling demands
/// `min <= tokens(place) <= max`. Input arcs and conjunctive gate
/// leaves both lower to this form.
#[derive(Debug, Clone)]
pub(crate) struct Req {
    place: u32,
    min: u64,
    max: u64,
}

/// Flat arena built from a validated activity list; see the module docs.
pub(crate) struct CompiledSan {
    /// Interval requirements, all activities concatenated.
    reqs: Vec<Req>,
    /// Per-activity `[start, end)` into `reqs`.
    req_range: Vec<(u32, u32)>,
    /// Gate-program instructions, all residual gates of all activities
    /// concatenated.
    ops: Vec<GateOp>,
    /// Per-gate `[start, end)` into `ops`; one entry per residual term.
    term_ops: Vec<(u32, u32)>,
    /// Per-activity `[start, end)` into `term_ops`.
    term_range: Vec<(u32, u32)>,
    /// Fallback gates referenced by [`GateOp::Closure`].
    closures: Vec<InputGate>,
    /// Words per activity bitmask row (`ceil(activities / 64)`, min 1).
    pub(crate) mask_words: usize,
    /// Place-major rows of timed dependents: bit `a` of row `p` is set
    /// iff timed activity `a` depends on place `p`.
    place_timed_mask: Vec<u64>,
    /// Place-major rows of instantaneous dependents.
    place_inst_mask: Vec<u64>,
    /// Timed activities re-checked on every event (one row).
    pub(crate) global_timed_mask: Vec<u64>,
    /// The global timed row under lazy reactivation: `Resample`
    /// activities whose redraw is elidable (marking-independent
    /// exponential delay) *and* whose gates all declare their reads are
    /// dropped — the place rows cover every marking change that can
    /// affect them, and lazy mode never redraws them anyway.
    pub(crate) global_timed_mask_lazy: Vec<u64>,
    /// Instantaneous activities re-checked on every event (one row).
    pub(crate) global_inst_mask: Vec<u64>,
    /// Bit `a` set iff activity `a` is timed with
    /// [`Reactivation::Resample`].
    resample_words: Vec<u64>,
    /// Bit `a` set iff activity `a` is a `Resample` activity whose
    /// delay is a marking-independent [`Dist::Exponential`] — the only
    /// shape whose reactivation redraw lazy mode may skip: by
    /// memorylessness the remaining delay is distributed exactly as a
    /// fresh draw, so keeping the scheduled completion is
    /// distribution-equivalent. Marking-dependent delays stay eager (a
    /// rate change *must* be observed at the marking change).
    lazy_elidable_words: Vec<u64>,
    /// Bit `a` set iff activity `a` is timed.
    timed_words: Vec<u64>,
}

impl CompiledSan {
    pub(crate) fn build(
        place_count: usize,
        activities: &[ActivityDef],
        deps: &DependencyIndex,
    ) -> CompiledSan {
        let n = activities.len();
        let mask_words = n.div_ceil(64).max(1);
        let mut c = CompiledSan {
            reqs: Vec::new(),
            req_range: Vec::with_capacity(n),
            ops: Vec::new(),
            term_ops: Vec::new(),
            term_range: Vec::with_capacity(n),
            closures: Vec::new(),
            mask_words,
            place_timed_mask: vec![0; place_count * mask_words],
            place_inst_mask: vec![0; place_count * mask_words],
            global_timed_mask: vec![0; mask_words],
            global_timed_mask_lazy: vec![0; mask_words],
            global_inst_mask: vec![0; mask_words],
            resample_words: vec![0; mask_words],
            lazy_elidable_words: vec![0; mask_words],
            timed_words: vec![0; mask_words],
        };
        // Activities lazy mode drops from the global timed row:
        // elidable (see `lazy_elidable_words`) with fully declared
        // gates, so the dependency-index place rows reach them.
        let mut lazy_exempt = vec![0u64; mask_words];
        for (i, def) in activities.iter().enumerate() {
            let req_start = u32::try_from(c.reqs.len()).expect("req arena overflow");
            for &(p, need) in &def.input_arcs {
                c.reqs.push(Req {
                    place: u32::try_from(p.0).expect("more than 2^32 places"),
                    min: need,
                    max: u64::MAX,
                });
            }
            let term_start = u32::try_from(c.term_ops.len()).expect("term arena overflow");
            let mut residual = Vec::new();
            for g in &def.input_gates {
                match g.expr() {
                    Some(pred) if compilable(pred) => {
                        // Conjunctive leaves join the requirement list;
                        // only non-conjunctive residue (every sub-tree
                        // of a compilable predicate is itself
                        // compilable) needs a gate program.
                        split(pred, &mut c.reqs, &mut residual);
                        for r in residual.drain(..) {
                            let op_start = u32::try_from(c.ops.len()).expect("op arena overflow");
                            emit(&r, &mut c.ops);
                            let op_end = u32::try_from(c.ops.len()).expect("op arena overflow");
                            c.term_ops.push((op_start, op_end));
                        }
                    }
                    _ => {
                        let op_start = u32::try_from(c.ops.len()).expect("op arena overflow");
                        let gate = u32::try_from(c.closures.len()).expect("closure arena overflow");
                        c.ops.push(GateOp::Closure { gate });
                        c.closures.push(g.clone());
                        c.term_ops.push((op_start, op_start + 1));
                    }
                }
            }
            let req_end = u32::try_from(c.reqs.len()).expect("req arena overflow");
            c.req_range.push((req_start, req_end));
            let term_end = u32::try_from(c.term_ops.len()).expect("term arena overflow");
            c.term_range.push((term_start, term_end));

            if matches!(def.timing, Timing::Timed(_)) {
                set_bit(&mut c.timed_words, i);
                if def.reactivation == Reactivation::Resample {
                    set_bit(&mut c.resample_words, i);
                    if matches!(
                        def.timing,
                        Timing::Timed(Delay::Dist(Dist::Exponential { .. }))
                    ) {
                        set_bit(&mut c.lazy_elidable_words, i);
                        let undeclared =
                            def.input_gates.iter().any(|g| g.declared_reads().is_none());
                        if !undeclared {
                            set_bit(&mut lazy_exempt, i);
                        }
                    }
                }
            }
        }
        for (p, list) in deps.place_to_timed.iter().enumerate() {
            let row = &mut c.place_timed_mask[p * mask_words..(p + 1) * mask_words];
            for &a in list {
                row[(a >> 6) as usize] |= 1u64 << (a & 63);
            }
        }
        for (p, list) in deps.place_to_inst.iter().enumerate() {
            let row = &mut c.place_inst_mask[p * mask_words..(p + 1) * mask_words];
            for &a in list {
                row[(a >> 6) as usize] |= 1u64 << (a & 63);
            }
        }
        for &a in &deps.global_timed {
            set_bit(&mut c.global_timed_mask, a as usize);
        }
        for (w, (&g, &x)) in c.global_timed_mask.iter().zip(&lazy_exempt).enumerate() {
            c.global_timed_mask_lazy[w] = g & !x;
        }
        for &a in &deps.global_inst {
            set_bit(&mut c.global_inst_mask, a as usize);
        }
        c
    }

    /// Evaluates activity `a`'s enabling rule (interval requirements,
    /// then residual gate programs, both short-circuit) against
    /// `marking`. Equivalent by construction to
    /// [`ActivityDef::enabled`]: enabling is a pure predicate, so
    /// folding the gates' conjunctive leaves into the requirement walk
    /// reorders evaluation without changing the result.
    #[inline]
    pub(crate) fn enabled(&self, a: usize, marking: &Marking) -> bool {
        let (s, e) = self.req_range[a];
        for r in &self.reqs[s as usize..e as usize] {
            let t = marking.tokens(PlaceId(r.place as usize));
            if t < r.min || t > r.max {
                return false;
            }
        }
        let (ts, te) = self.term_range[a];
        for t in ts as usize..te as usize {
            if !self.eval_term(self.term_ops[t], marking) {
                return false;
            }
        }
        true
    }

    /// Runs one gate program on the fixed-size stack machine.
    fn eval_term(&self, (start, end): (u32, u32), marking: &Marking) -> bool {
        let mut stack = [false; MAX_STACK];
        let mut sp = 0usize;
        for op in &self.ops[start as usize..end as usize] {
            match *op {
                GateOp::TokensGe { place, need } => {
                    stack[sp] = marking.tokens(PlaceId(place as usize)) >= need;
                    sp += 1;
                }
                GateOp::TokensEq0 { place } => {
                    stack[sp] = marking.tokens(PlaceId(place as usize)) == 0;
                    sp += 1;
                }
                GateOp::Not => stack[sp - 1] = !stack[sp - 1],
                GateOp::AllOf { n } => {
                    let base = sp - n as usize;
                    let mut acc = true;
                    for &b in &stack[base..sp] {
                        acc &= b;
                    }
                    stack[base] = acc;
                    sp = base + 1;
                }
                GateOp::AnyOf { n } => {
                    let base = sp - n as usize;
                    let mut acc = false;
                    for &b in &stack[base..sp] {
                        acc |= b;
                    }
                    stack[base] = acc;
                    sp = base + 1;
                }
                GateOp::Closure { gate } => {
                    stack[sp] = self.closures[gate as usize].holds(marking);
                    sp += 1;
                }
            }
        }
        debug_assert_eq!(sp, 1, "gate program left {sp} results on the stack");
        stack[0]
    }

    /// Row of timed dependents for place `p`.
    #[inline]
    pub(crate) fn place_timed_row(&self, p: usize) -> &[u64] {
        &self.place_timed_mask[p * self.mask_words..(p + 1) * self.mask_words]
    }

    /// Row of instantaneous dependents for place `p`.
    #[inline]
    pub(crate) fn place_inst_row(&self, p: usize) -> &[u64] {
        &self.place_inst_mask[p * self.mask_words..(p + 1) * self.mask_words]
    }

    /// Whether activity `a` is timed.
    #[inline]
    pub(crate) fn is_timed(&self, a: usize) -> bool {
        self.timed_words[a >> 6] & (1u64 << (a & 63)) != 0
    }

    /// Whether activity `a` is a timed `Resample` activity.
    #[inline]
    pub(crate) fn is_resample(&self, a: usize) -> bool {
        self.resample_words[a >> 6] & (1u64 << (a & 63)) != 0
    }

    /// Whether lazy reactivation may skip activity `a`'s redraw: a
    /// `Resample` activity with a marking-independent exponential delay.
    #[inline]
    pub(crate) fn is_lazy_elidable(&self, a: usize) -> bool {
        self.lazy_elidable_words[a >> 6] & (1u64 << (a & 63)) != 0
    }
}

fn set_bit(words: &mut [u64], bit: usize) {
    words[bit >> 6] |= 1u64 << (bit & 63);
}

/// Whether `pred` compiles within the interpreter's stack and arity
/// limits; anything else takes the closure fallback.
fn compilable(pred: &Pred) -> bool {
    arity_ok(pred) && depth(pred) <= MAX_STACK
}

/// Decomposes `pred` into interval requirements plus non-conjunctive
/// residue: leaves (and negated leaves) of a top-level conjunction
/// become [`Req`] entries; anything else — disjunctions, negated
/// compounds — lands in `residual` for the stack machine. The
/// conjunction of all emitted parts is equivalent to `pred`.
fn split(pred: &Pred, reqs: &mut Vec<Req>, residual: &mut Vec<Pred>) {
    let place = |p: &PlaceId| u32::try_from(p.0).expect("more than 2^32 places");
    match pred {
        Pred::Has(p) => reqs.push(Req {
            place: place(p),
            min: 1,
            max: u64::MAX,
        }),
        Pred::AtLeast(p, n) => reqs.push(Req {
            place: place(p),
            min: *n,
            max: u64::MAX,
        }),
        Pred::Empty(p) => reqs.push(Req {
            place: place(p),
            min: 0,
            max: 0,
        }),
        Pred::Not(x) => match &**x {
            Pred::Has(p) => reqs.push(Req {
                place: place(p),
                min: 0,
                max: 0,
            }),
            Pred::Empty(p) => reqs.push(Req {
                place: place(p),
                min: 1,
                max: u64::MAX,
            }),
            // ¬(tokens >= 0) is unsatisfiable: an empty interval.
            Pred::AtLeast(p, 0) => reqs.push(Req {
                place: place(p),
                min: 1,
                max: 0,
            }),
            Pred::AtLeast(p, n) => reqs.push(Req {
                place: place(p),
                min: 0,
                max: n - 1,
            }),
            Pred::Not(y) => split(y, reqs, residual),
            Pred::All(_) | Pred::Any(_) => residual.push(pred.clone()),
        },
        Pred::All(xs) => {
            for x in xs {
                split(x, reqs, residual);
            }
        }
        Pred::Any(xs) if xs.len() == 1 => split(&xs[0], reqs, residual),
        Pred::Any(_) => residual.push(pred.clone()),
    }
}

fn arity_ok(pred: &Pred) -> bool {
    match pred {
        Pred::Has(_) | Pred::Empty(_) | Pred::AtLeast(..) => true,
        Pred::Not(x) => arity_ok(x),
        Pred::All(xs) | Pred::Any(xs) => {
            xs.len() <= usize::from(u16::MAX) && xs.iter().all(arity_ok)
        }
    }
}

/// Maximum stack height needed to evaluate `pred` in postfix order:
/// operand `i` of an `All`/`Any` runs with `i` results already parked.
fn depth(pred: &Pred) -> usize {
    match pred {
        Pred::Has(_) | Pred::Empty(_) | Pred::AtLeast(..) => 1,
        Pred::Not(x) => depth(x),
        Pred::All(xs) | Pred::Any(xs) => {
            let mut max = 1;
            for (i, x) in xs.iter().enumerate() {
                max = max.max(i + depth(x));
            }
            max
        }
    }
}

fn emit(pred: &Pred, ops: &mut Vec<GateOp>) {
    match pred {
        Pred::Has(p) => ops.push(GateOp::TokensGe {
            place: u32::try_from(p.0).expect("more than 2^32 places"),
            need: 1,
        }),
        Pred::Empty(p) => ops.push(GateOp::TokensEq0 {
            place: u32::try_from(p.0).expect("more than 2^32 places"),
        }),
        Pred::AtLeast(p, n) => ops.push(GateOp::TokensGe {
            place: u32::try_from(p.0).expect("more than 2^32 places"),
            need: *n,
        }),
        Pred::Not(x) => {
            emit(x, ops);
            ops.push(GateOp::Not);
        }
        Pred::All(xs) => {
            for x in xs {
                emit(x, ops);
            }
            ops.push(GateOp::AllOf { n: xs.len() as u16 });
        }
        Pred::Any(xs) => {
            for x in xs {
                emit(x, ops);
            }
            ops.push(GateOp::AnyOf { n: xs.len() as u16 });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SanBuilder;
    use ckpt_stats::Dist;

    #[test]
    fn depth_accounts_for_parked_operands() {
        let leaf = || Pred::has(PlaceId(0));
        assert_eq!(depth(&leaf()), 1);
        assert_eq!(depth(&leaf().and(leaf())), 2);
        // ((a && b) || (c && d)): right operand runs with one parked.
        let nested = leaf().and(leaf()).or(leaf().and(leaf()));
        assert_eq!(depth(&nested), 3);
        assert_eq!(depth(&Pred::All(vec![])), 1);
    }

    #[test]
    fn too_deep_predicates_take_the_closure_fallback() {
        // A right-leaning chain of nested Anys: operand i of each level
        // parks one more result. 20 levels exceeds MAX_STACK.
        let mut p = Pred::has(PlaceId(0));
        for _ in 0..20 {
            p = Pred::Any(vec![Pred::has(PlaceId(0)), p]);
        }
        assert!(depth(&p) > MAX_STACK);
        assert!(!compilable(&p));

        let mut b = SanBuilder::new("deep");
        let place = b.place("p", 1);
        let mut pred = Pred::has(place);
        for _ in 0..20 {
            pred = Pred::Any(vec![Pred::has(place), pred]);
        }
        b.timed_activity("a", crate::Delay::from(Dist::deterministic(1.0)))
            .input_gate(InputGate::when("deep", pred))
            .output_arc(place, 1)
            .build();
        let san = b.build().unwrap();
        // Fallback still evaluates correctly.
        assert!(san.compiled.enabled(0, &san.initial_marking()));
        assert!(!san.compiled.closures.is_empty());
    }

    #[test]
    fn compiled_enabled_matches_reference_on_mixed_gates() {
        let mut b = SanBuilder::new("mixed");
        let p0 = b.place("p0", 2);
        let p1 = b.place("p1", 0);
        let p2 = b.place("p2", 1);
        // Expression gate + closure gate + input arc on one activity.
        b.timed_activity("a", crate::Delay::from(Dist::deterministic(1.0)))
            .input_arc(p0, 1)
            .input_gate(InputGate::when(
                "expr",
                Pred::at_least(p0, 2).and(Pred::empty(p1).or(Pred::has(p2))),
            ))
            .enabled_when("closure", move |m| m.tokens(p2) < 5)
            .output_arc(p1, 1)
            .build();
        b.instantaneous_activity("b", 1)
            .input_gate(InputGate::when("neg", Pred::has(p1).negate().negate()))
            .input_arc(p1, 1)
            .output_arc(p0, 1)
            .build();
        let san = b.build().unwrap();
        // Sweep token assignments; compiled and reference must agree.
        for t0 in 0..4u64 {
            for t1 in 0..4u64 {
                for t2 in 0..7u64 {
                    let m = Marking::new(vec![t0, t1, t2], vec![]);
                    for a in 0..san.activity_count() {
                        assert_eq!(
                            san.compiled.enabled(a, &m),
                            san.activities[a].enabled(&m),
                            "activity {a} disagrees at marking [{t0},{t1},{t2}]"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn masks_mirror_dependency_lists() {
        let mut b = SanBuilder::new("deps");
        let p0 = b.place("p0", 1);
        let p1 = b.place("p1", 0);
        b.timed_activity("t0", crate::Delay::from(Dist::deterministic(1.0)))
            .input_arc(p0, 1)
            .output_arc(p1, 1)
            .build();
        b.timed_activity("t1", crate::Delay::from(Dist::exponential(1.0)))
            .reactivation(Reactivation::Resample)
            .input_arc(p1, 1)
            .output_arc(p0, 1)
            .build();
        b.instantaneous_activity("i0", 0)
            .input_gate(InputGate::when("watch", Pred::at_least(p1, 3)))
            .input_arc(p1, 3)
            .output_arc(p0, 3)
            .build();
        let san = b.build().unwrap();
        let c = &san.compiled;
        assert_eq!(c.mask_words, 1);
        // t0 depends on p0; t1 is Resample ⇒ global, and (its reads all
        // being declared) also indexed under its place p1 for lazy mode;
        // i0 depends on p1.
        assert_eq!(c.place_timed_row(p0.0), &[0b001]);
        assert_eq!(c.place_timed_row(p1.0), &[0b010]);
        assert_eq!(c.place_inst_row(p1.0), &[0b100]);
        assert_eq!(c.global_timed_mask, &[0b010]);
        // t1's delay is a plain exponential, so lazy mode elides its
        // redraws and drops it from the global row — the p1 place row
        // still reaches it when its enabling can change.
        assert_eq!(c.global_timed_mask_lazy, &[0b000]);
        assert_eq!(c.global_inst_mask, &[0b000]);
        assert!(c.is_timed(0) && c.is_timed(1) && !c.is_timed(2));
        assert!(!c.is_resample(0) && c.is_resample(1) && !c.is_resample(2));
        assert!(!c.is_lazy_elidable(0) && c.is_lazy_elidable(1));
    }

    #[test]
    fn marking_dependent_resample_is_not_elidable() {
        // A closure delay can modulate its rate by the marking, so lazy
        // mode must keep redrawing it eagerly and keep it global.
        let mut b = SanBuilder::new("modulated");
        let p0 = b.place("p0", 1);
        b.timed_activity("mod", crate::Delay::from_fn(|_, rng| rng.exponential(1.0)))
            .reactivation(Reactivation::Resample)
            .input_arc(p0, 1)
            .output_arc(p0, 1)
            .build();
        b.timed_activity("exp", crate::Delay::from(Dist::exponential(2.0)))
            .reactivation(Reactivation::Resample)
            .input_arc(p0, 1)
            .output_arc(p0, 1)
            .build();
        let san = b.build().unwrap();
        let c = &san.compiled;
        assert!(c.is_resample(0) && !c.is_lazy_elidable(0));
        assert!(c.is_resample(1) && c.is_lazy_elidable(1));
        assert_eq!(c.global_timed_mask, &[0b011]);
        assert_eq!(c.global_timed_mask_lazy, &[0b001]);
    }
}
