//! Reward variables: how measures are extracted from a running SAN.

use crate::activity::ActivityId;
use crate::error::SanError;
use crate::marking::{Marking, PlaceId};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

type RateFn = Arc<dyn Fn(&Marking) -> f64 + Send + Sync>;
type ImpulseFn = Arc<dyn Fn(&Marking) -> f64 + Send + Sync>;

/// Specification of a reward variable.
///
/// A reward variable accumulates
/// * a **rate reward** — `∫ rate(marking(t)) dt` over the observation
///   window, and/or
/// * **impulse rewards** — a value added whenever one of the named
///   activities fires (evaluated on the marking *after* the firing).
///
/// The paper's *useful work* measure is a rate reward of 1 while the
/// compute nodes execute plus a negative impulse equal to the lost work
/// on every rollback.
#[derive(Clone)]
pub struct RewardSpec {
    name: String,
    rate: Option<RateFn>,
    /// Declared support of the rate function (see [`RewardSpec::reads`]).
    rate_reads: Option<Vec<PlaceId>>,
    impulses: Vec<(ActivityId, ImpulseFn)>,
}

impl RewardSpec {
    /// A pure rate reward.
    pub fn rate<F>(name: impl Into<String>, rate: F) -> RewardSpec
    where
        F: Fn(&Marking) -> f64 + Send + Sync + 'static,
    {
        RewardSpec {
            name: name.into(),
            rate: Some(Arc::new(rate)),
            rate_reads: None,
            impulses: Vec::new(),
        }
    }

    /// A reward with no rate component (impulses can be added with
    /// [`RewardSpec::with_impulse`]).
    pub fn impulse_only(name: impl Into<String>) -> RewardSpec {
        RewardSpec {
            name: name.into(),
            rate: None,
            rate_reads: None,
            impulses: Vec::new(),
        }
    }

    /// Declares the rate function's support: the discrete places its
    /// value depends on — the same contract as
    /// [`InputGate::reads`](crate::InputGate::reads).
    ///
    /// A declared rate reward is evaluated only when one of these
    /// places changes (its value is cached between changes), instead of
    /// on every event. The declaration is a promise: the rate function
    /// must not read any *other* discrete place, nor fluid levels —
    /// fluid integration does not mark places dirty. Undeclared rate
    /// rewards are conservatively re-evaluated every event, which is
    /// always correct.
    #[must_use]
    pub fn reads(mut self, places: &[PlaceId]) -> RewardSpec {
        self.rate_reads = Some(places.to_vec());
        self
    }

    /// Adds an impulse: when `activity` fires, `value(marking_after)` is
    /// added to the accumulator.
    #[must_use]
    pub fn with_impulse<F>(mut self, activity: ActivityId, value: F) -> RewardSpec
    where
        F: Fn(&Marking) -> f64 + Send + Sync + 'static,
    {
        self.impulses.push((activity, Arc::new(value)));
        self
    }

    /// The variable's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    pub(crate) fn rate_fn(&self) -> Option<&RateFn> {
        self.rate.as_ref()
    }

    pub(crate) fn rate_reads(&self) -> Option<&[PlaceId]> {
        self.rate_reads.as_deref()
    }

    pub(crate) fn impulses(&self) -> &[(ActivityId, ImpulseFn)] {
        &self.impulses
    }
}

impl fmt::Debug for RewardSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RewardSpec")
            .field("name", &self.name)
            .field("has_rate", &self.rate.is_some())
            .field("rate_reads", &self.rate_reads.as_ref().map(Vec::len))
            .field("impulses", &self.impulses.len())
            .finish()
    }
}

/// Accumulated value of one reward variable over an observation window.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RewardValue {
    /// Total accumulated reward (rate integral + impulses).
    pub total: f64,
    /// Length of the observation window, in seconds.
    pub window: f64,
    /// Number of impulse events that contributed.
    pub impulse_count: u64,
}

impl RewardValue {
    /// Time-averaged reward `total / window` (0 over an empty window).
    #[must_use]
    pub fn time_average(&self) -> f64 {
        if self.window > 0.0 {
            self.total / self.window
        } else {
            0.0
        }
    }
}

/// The values of all reward variables after a run, indexed by name.
///
/// Backed by the simulator's prebuilt name→index map (shared via `Arc`,
/// maintained as rewards are registered) plus a dense value vector, so
/// producing a report allocates one small `Vec` instead of rebuilding a
/// `HashMap` of owned `String` keys on every call.
#[derive(Debug, Clone, Default)]
pub struct RewardReport {
    names: Arc<HashMap<String, usize>>,
    values: Vec<RewardValue>,
}

impl RewardReport {
    pub(crate) fn new(
        names: Arc<HashMap<String, usize>>,
        values: Vec<RewardValue>,
    ) -> RewardReport {
        debug_assert_eq!(names.len(), values.len());
        RewardReport { names, values }
    }

    /// The value of the named variable.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::UnknownReward`] for unregistered names.
    pub fn value(&self, name: &str) -> Result<RewardValue, SanError> {
        self.names
            .get(name)
            .map(|&i| self.values[i])
            .ok_or_else(|| SanError::UnknownReward { name: name.into() })
    }

    /// Iterates over `(name, value)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, RewardValue)> + '_ {
        self.names
            .iter()
            .map(|(k, &i)| (k.as_str(), self.values[i]))
    }

    /// Number of variables in the report.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the report is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_average() {
        let v = RewardValue {
            total: 50.0,
            window: 100.0,
            impulse_count: 2,
        };
        assert_eq!(v.time_average(), 0.5);
        let empty = RewardValue::default();
        assert_eq!(empty.time_average(), 0.0);
    }

    #[test]
    fn report_lookup() {
        let mut names = HashMap::new();
        names.insert("x".to_string(), 0usize);
        let r = RewardReport::new(
            Arc::new(names),
            vec![RewardValue {
                total: 1.0,
                window: 2.0,
                impulse_count: 0,
            }],
        );
        assert_eq!(r.len(), 1);
        assert!(!r.is_empty());
        assert_eq!(r.value("x").unwrap().total, 1.0);
        assert!(matches!(
            r.value("y").unwrap_err(),
            SanError::UnknownReward { .. }
        ));
        let names: Vec<&str> = r.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["x"]);
    }

    #[test]
    fn spec_builders() {
        let s = RewardSpec::rate("r", |_| 1.0);
        assert_eq!(s.name(), "r");
        assert!(s.rate_fn().is_some());
        assert!(s.rate_reads().is_none());
        let s = RewardSpec::rate("r2", |_| 1.0).reads(&[PlaceId(3), PlaceId(5)]);
        assert_eq!(s.rate_reads().unwrap(), &[PlaceId(3), PlaceId(5)]);
        let s = RewardSpec::impulse_only("i").with_impulse(ActivityId(0), |_| -1.0);
        assert!(s.rate_fn().is_none());
        assert_eq!(s.impulses().len(), 1);
        assert!(format!("{s:?}").contains('i'));
    }
}
