//! Graphviz (DOT) export of a SAN's structure.
//!
//! Places render as circles (fluid places as doublecircles), timed
//! activities as unfilled rectangles, instantaneous activities as thin
//! filled bars — the conventional SAN iconography. Input arcs point into
//! the activity, output arcs out of it; gates are listed inside the
//! activity label since their functions are opaque closures.
//!
//! ```sh
//! cargo run -p ckpt-cli --bin ckptsim -- dot | dot -Tsvg > model.svg
//! ```

use crate::activity::Timing;
use crate::model::San;
use std::fmt::Write as _;

/// Renders the net's structure as a DOT digraph.
#[must_use]
pub fn to_dot(san: &San) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(san.name()));
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [fontsize=10];");

    for i in 0..san.place_count() {
        let id = crate::marking::PlaceId(i);
        let _ = writeln!(
            out,
            "  p{} [shape=circle label=\"{}\\n({})\"];",
            i,
            escape(san.place_name(id)),
            san.initial_marking().tokens(id)
        );
    }
    for (i, name) in san.fluid_names_iter().enumerate() {
        let _ = writeln!(
            out,
            "  f{i} [shape=doublecircle label=\"{}\"];",
            escape(name)
        );
    }

    for (i, def) in san.activity_defs_iter().enumerate() {
        let (shape, style) = match def.timing {
            Timing::Timed(_) => ("rectangle", ""),
            Timing::Instantaneous { .. } => (
                "rectangle",
                " style=filled fillcolor=black fontcolor=white width=0.1",
            ),
        };
        let mut label = escape(&def.name);
        if !def.input_gates.is_empty() {
            let gates: Vec<&str> = def.input_gates.iter().map(|g| g.name()).collect();
            let _ = write!(label, "\\n[{}]", escape(&gates.join(", ")));
        }
        let _ = writeln!(out, "  a{i} [shape={shape}{style} label=\"{label}\"];");
        for &(p, count) in &def.input_arcs {
            let w = if count > 1 {
                format!(" [label=\"{count}\"]")
            } else {
                String::new()
            };
            let _ = writeln!(out, "  p{} -> a{i}{w};", p.0);
        }
        for case in &def.cases {
            for &(p, count) in &case.output_arcs {
                let w = if count > 1 {
                    format!(" [label=\"{count}\"]")
                } else {
                    String::new()
                };
                let _ = writeln!(out, "  a{i} -> p{}{w};", p.0);
            }
        }
    }
    let _ = writeln!(out, "}}");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Delay, SanBuilder};
    use ckpt_stats::Dist;

    fn tiny() -> San {
        let mut b = SanBuilder::new("tiny \"net\"");
        let up = b.place("up", 1);
        let down = b.place("down", 0);
        let _acc = b.fluid_place("uptime", 0.0);
        b.timed_activity("fail", Delay::from(Dist::exponential(0.1)))
            .input_arc(up, 1)
            .output_arc(down, 2)
            .build();
        b.instantaneous_activity("instant_repair", 1)
            .input_arc(down, 2)
            .output_arc(up, 1)
            .build();
        b.build().unwrap()
    }

    #[test]
    fn dot_contains_all_elements() {
        let dot = to_dot(&tiny());
        assert!(dot.starts_with("digraph"));
        assert!(dot.trim_end().ends_with('}'));
        assert!(dot.contains("shape=circle"));
        assert!(dot.contains("shape=doublecircle"));
        assert!(dot.contains("fail"));
        assert!(dot.contains("instant_repair"));
        assert!(dot.contains("style=filled"), "instantaneous bar styling");
        // Multi-token arcs carry weight labels.
        assert!(dot.contains("[label=\"2\"]"));
        // Quotes in the model name are escaped.
        assert!(dot.contains("tiny \\\"net\\\""));
    }

    #[test]
    fn arc_endpoints_reference_defined_nodes() {
        let dot = to_dot(&tiny());
        for line in dot.lines().filter(|l| l.contains("->")) {
            let l = line.trim().trim_end_matches(';');
            let parts: Vec<&str> = l.split("->").collect();
            let from = parts[0].trim();
            let to = parts[1].split_whitespace().next().unwrap();
            for node in [from, to] {
                assert!(
                    dot.contains(&format!("  {node} [")),
                    "undefined node {node} in '{line}'"
                );
            }
        }
    }
}
