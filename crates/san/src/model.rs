//! SAN definition and builder.

use crate::activity::{ActivityDef, ActivityId, Case, CaseWeight, Delay, Reactivation, Timing};
use crate::compiled::CompiledSan;
use crate::error::SanError;
use crate::gate::{InputGate, OutputGate};
use crate::marking::{FluidId, Marking, PlaceId};
use crate::pred::Pred;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Marking-dependent flow rate attached to a fluid place.
pub(crate) type FlowRate = Arc<dyn Fn(&Marking) -> f64 + Send + Sync>;

/// Static place→activity dependency index, computed once at
/// [`SanBuilder::build`] time and consulted by the incremental scheduler
/// after every firing.
///
/// An activity's *dependency set* is the union of its input-arc places
/// and the declared [`InputGate::reads`] sets of its input gates: the
/// only places whose token counts can flip its enabling predicate. Two
/// classes of activity opt out of the index and are re-checked on every
/// event instead:
///
/// * activities with an **undeclared** gate (no `reads()`), whose
///   predicate may read anything — the conservative compatibility path;
/// * timed activities with [`Reactivation::Resample`], whose contract is
///   to redraw their delay on *every* marking change, relevant or not —
///   skipping a redraw would change the RNG draw sequence versus the
///   full-scan reference executor.
#[derive(Debug, Default)]
pub(crate) struct DependencyIndex {
    /// Place index → ascending indices of timed activities whose
    /// enabling depends on that place.
    pub(crate) place_to_timed: Vec<Vec<u32>>,
    /// Place index → ascending indices of instantaneous activities whose
    /// enabling depends on that place.
    pub(crate) place_to_inst: Vec<Vec<u32>>,
    /// Ascending indices of timed activities revisited on every event.
    pub(crate) global_timed: Vec<u32>,
    /// Ascending indices of instantaneous activities considered on every
    /// event.
    pub(crate) global_inst: Vec<u32>,
    /// Every instantaneous activity, highest priority first (ties by
    /// definition order) — the firing order of the settle loop.
    pub(crate) inst_priority_order: Vec<u32>,
}

impl DependencyIndex {
    fn build(place_count: usize, activities: &[ActivityDef]) -> DependencyIndex {
        let mut idx = DependencyIndex {
            place_to_timed: vec![Vec::new(); place_count],
            place_to_inst: vec![Vec::new(); place_count],
            ..DependencyIndex::default()
        };
        let mut by_priority: Vec<(u32, u32)> = Vec::new();
        let mut dep_places: Vec<usize> = Vec::new();
        for (i, def) in activities.iter().enumerate() {
            let a = u32::try_from(i).expect("more than 2^32 activities");
            let timed = matches!(def.timing, Timing::Timed(_));
            if let Timing::Instantaneous { priority } = def.timing {
                by_priority.push((priority, a));
            }
            let resample = timed && def.reactivation == Reactivation::Resample;
            let undeclared = def.input_gates.iter().any(|g| g.declared_reads().is_none());
            if resample || undeclared {
                if timed {
                    idx.global_timed.push(a);
                } else {
                    idx.global_inst.push(a);
                }
                if undeclared {
                    continue;
                }
                // A `Resample` activity whose gates all declare their
                // reads falls through: its dependency places are indexed
                // *as well*. Under eager resampling the place rows are
                // redundant with the global row (the visit set is a
                // bitmask OR, so the union is unchanged), but lazy
                // reactivation drops these activities from its global
                // mask and relies on the place rows to revisit them when
                // their enabling can actually change.
            }
            dep_places.clear();
            dep_places.extend(def.input_arcs.iter().map(|&(p, _)| p.0));
            for g in &def.input_gates {
                if let Some(reads) = g.declared_reads() {
                    dep_places.extend(reads.iter().map(|p| p.0));
                }
            }
            dep_places.sort_unstable();
            dep_places.dedup();
            for &p in &dep_places {
                if timed {
                    idx.place_to_timed[p].push(a);
                } else {
                    idx.place_to_inst[p].push(a);
                }
            }
        }
        by_priority.sort_by(|x, y| y.0.cmp(&x.0).then(x.1.cmp(&y.1)));
        idx.inst_priority_order = by_priority.into_iter().map(|(_, a)| a).collect();
        idx
    }
}

/// An immutable, validated Stochastic Activity Network.
///
/// Built with [`SanBuilder`]; executed by
/// [`Simulator`](crate::Simulator).
pub struct San {
    pub(crate) name: String,
    pub(crate) place_names: Vec<String>,
    pub(crate) initial_tokens: Vec<u64>,
    pub(crate) fluid_names: Vec<String>,
    pub(crate) initial_fluid: Vec<f64>,
    pub(crate) flows: Vec<(FluidId, FlowRate)>,
    pub(crate) activities: Vec<ActivityDef>,
    pub(crate) deps: DependencyIndex,
    /// Flat arena form of the enabling rules and dependency index,
    /// evaluated by the incremental scheduler's hot loop (see
    /// `compiled.rs`).
    pub(crate) compiled: CompiledSan,
}

impl San {
    /// The model's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of discrete places.
    #[must_use]
    pub fn place_count(&self) -> usize {
        self.place_names.len()
    }

    /// Number of fluid places.
    #[must_use]
    pub fn fluid_count(&self) -> usize {
        self.fluid_names.len()
    }

    /// Number of activities.
    #[must_use]
    pub fn activity_count(&self) -> usize {
        self.activities.len()
    }

    /// Looks up a place by name (submodels share state by name).
    #[must_use]
    pub fn place_by_name(&self, name: &str) -> Option<PlaceId> {
        self.place_names.iter().position(|n| n == name).map(PlaceId)
    }

    /// Looks up an activity by name.
    #[must_use]
    pub fn activity_by_name(&self, name: &str) -> Option<ActivityId> {
        self.activities
            .iter()
            .position(|a| a.name == name)
            .map(ActivityId)
    }

    /// The name of a place.
    #[must_use]
    pub fn place_name(&self, id: PlaceId) -> &str {
        &self.place_names[id.0]
    }

    /// The name of an activity.
    #[must_use]
    pub fn activity_name(&self, id: ActivityId) -> &str {
        &self.activities[id.0].name
    }

    /// The initial marking.
    #[must_use]
    pub fn initial_marking(&self) -> Marking {
        Marking::new(self.initial_tokens.clone(), self.initial_fluid.clone())
    }

    /// Iterates over the fluid places' names (used by the DOT export).
    pub fn fluid_names_iter(&self) -> impl Iterator<Item = &str> + '_ {
        self.fluid_names.iter().map(String::as_str)
    }

    /// Iterates over every discrete place's id.
    pub fn place_ids(&self) -> impl Iterator<Item = PlaceId> + '_ {
        (0..self.place_names.len()).map(PlaceId)
    }

    /// Iterates over every activity's id.
    pub fn activity_ids(&self) -> impl Iterator<Item = ActivityId> + '_ {
        (0..self.activities.len()).map(ActivityId)
    }

    /// Evaluates `activity`'s enabling rule through the compiled gate
    /// programs — the code path the incremental scheduler's hot loop
    /// runs. Equal to [`San::enabled_reference`] for every marking (the
    /// debug-build consistency assertion and the equivalence test suites
    /// enforce this).
    #[must_use]
    pub fn enabled_fast(&self, activity: ActivityId, marking: &Marking) -> bool {
        self.compiled.enabled(activity.0, marking)
    }

    /// Evaluates `activity`'s enabling rule through the original
    /// trait-dispatch chain (input arcs, then each gate's predicate) —
    /// the semantic reference for [`San::enabled_fast`].
    #[must_use]
    pub fn enabled_reference(&self, activity: ActivityId, marking: &Marking) -> bool {
        self.activities[activity.0].enabled(marking)
    }

    pub(crate) fn activity_defs_iter(
        &self,
    ) -> impl Iterator<Item = &crate::activity::ActivityDef> + '_ {
        self.activities.iter()
    }
}

impl fmt::Debug for San {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("San")
            .field("name", &self.name)
            .field("places", &self.place_names.len())
            .field("fluid_places", &self.fluid_names.len())
            .field("activities", &self.activities.len())
            .finish()
    }
}

/// Incremental builder for a [`San`].
///
/// Composition by **state sharing**: several submodel-constructor
/// functions can be called against the same builder; places registered
/// with the same name resolve to the same [`PlaceId`], which is exactly
/// the submodel integration mechanism of the paper's Figure 1.
///
/// See the [crate-level example](crate) for usage.
pub struct SanBuilder {
    name: String,
    place_names: Vec<String>,
    place_index: HashMap<String, PlaceId>,
    initial_tokens: Vec<u64>,
    fluid_names: Vec<String>,
    fluid_index: HashMap<String, FluidId>,
    initial_fluid: Vec<f64>,
    flows: Vec<(FluidId, FlowRate)>,
    activities: Vec<ActivityDef>,
    errors: Vec<SanError>,
}

impl SanBuilder {
    /// Starts building a model with the given name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> SanBuilder {
        SanBuilder {
            name: name.into(),
            place_names: Vec::new(),
            place_index: HashMap::new(),
            initial_tokens: Vec::new(),
            fluid_names: Vec::new(),
            fluid_index: HashMap::new(),
            initial_fluid: Vec::new(),
            flows: Vec::new(),
            activities: Vec::new(),
            errors: Vec::new(),
        }
    }

    /// Registers (or resolves) the place `name` with the given initial
    /// token count. Registering an existing name with the same initial
    /// marking returns the existing id — this is the state-sharing hook
    /// for composing submodels. Conflicting initial markings are recorded
    /// and reported by [`SanBuilder::build`].
    pub fn place(&mut self, name: impl Into<String>, initial: u64) -> PlaceId {
        let name = name.into();
        if let Some(&id) = self.place_index.get(&name) {
            if self.initial_tokens[id.0] != initial {
                self.errors
                    .push(SanError::ConflictingInitialMarking { place: name });
            }
            return id;
        }
        let id = PlaceId(self.place_names.len());
        self.place_index.insert(name.clone(), id);
        self.place_names.push(name);
        self.initial_tokens.push(initial);
        id
    }

    /// Resolves an already-registered place by name without declaring an
    /// initial marking (for read-only sharing).
    #[must_use]
    pub fn existing_place(&self, name: &str) -> Option<PlaceId> {
        self.place_index.get(name).copied()
    }

    /// Registers (or resolves) a fluid place. Same sharing rules as
    /// [`SanBuilder::place`] (initial levels are compared bitwise).
    pub fn fluid_place(&mut self, name: impl Into<String>, initial: f64) -> FluidId {
        let name = name.into();
        if let Some(&id) = self.fluid_index.get(&name) {
            if self.initial_fluid[id.0].to_bits() != initial.to_bits() {
                self.errors
                    .push(SanError::ConflictingInitialMarking { place: name });
            }
            return id;
        }
        let id = FluidId(self.fluid_names.len());
        self.fluid_index.insert(name.clone(), id);
        self.fluid_names.push(name);
        self.initial_fluid.push(initial);
        id
    }

    /// Attaches a marking-dependent flow rate to a fluid place; the
    /// simulator integrates `level += rate(marking) · dt` between events.
    /// Multiple flows on the same place sum.
    pub fn flow<F>(&mut self, fluid: FluidId, rate: F)
    where
        F: Fn(&Marking) -> f64 + Send + Sync + 'static,
    {
        self.flows.push((fluid, Arc::new(rate)));
    }

    /// Starts defining a timed activity.
    pub fn timed_activity(&mut self, name: impl Into<String>, delay: Delay) -> ActivityBuilder<'_> {
        ActivityBuilder::new(self, name.into(), Timing::Timed(delay))
    }

    /// Starts defining an instantaneous activity with the given priority
    /// (higher fires first).
    pub fn instantaneous_activity(
        &mut self,
        name: impl Into<String>,
        priority: u32,
    ) -> ActivityBuilder<'_> {
        ActivityBuilder::new(self, name.into(), Timing::Instantaneous { priority })
    }

    /// Validates and freezes the model.
    ///
    /// # Errors
    ///
    /// Returns the first construction error recorded: conflicting shared
    /// places, effect-free activities, or an empty model.
    pub fn build(self) -> Result<San, SanError> {
        if let Some(e) = self.errors.into_iter().next() {
            return Err(e);
        }
        if self.activities.is_empty() {
            return Err(SanError::EmptyModel);
        }
        for a in &self.activities {
            let has_effect = a
                .cases
                .iter()
                .any(|c| !c.output_arcs.is_empty() || !c.output_gates.is_empty())
                || !a.input_gates.is_empty()
                || !a.input_arcs.is_empty();
            if !has_effect {
                return Err(SanError::ActivityWithoutEffect {
                    activity: a.name.clone(),
                });
            }
        }
        let deps = DependencyIndex::build(self.place_names.len(), &self.activities);
        let compiled = CompiledSan::build(self.place_names.len(), &self.activities, &deps);
        Ok(San {
            name: self.name,
            place_names: self.place_names,
            initial_tokens: self.initial_tokens,
            fluid_names: self.fluid_names,
            initial_fluid: self.initial_fluid,
            flows: self.flows,
            activities: self.activities,
            deps,
            compiled,
        })
    }
}

impl fmt::Debug for SanBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SanBuilder")
            .field("name", &self.name)
            .field("places", &self.place_names.len())
            .field("activities", &self.activities.len())
            .finish()
    }
}

/// Fluent definition of one activity; terminal method is
/// [`ActivityBuilder::build`].
///
/// If no case is declared explicitly, the output arcs/gates added with
/// [`ActivityBuilder::output_arc`] / [`ActivityBuilder::output_gate`]
/// form a single implicit case.
pub struct ActivityBuilder<'a> {
    san: &'a mut SanBuilder,
    name: String,
    timing: Timing,
    reactivation: Reactivation,
    input_arcs: Vec<(PlaceId, u64)>,
    input_gates: Vec<InputGate>,
    default_case: Case,
    cases: Vec<Case>,
}

impl<'a> ActivityBuilder<'a> {
    fn new(san: &'a mut SanBuilder, name: String, timing: Timing) -> ActivityBuilder<'a> {
        ActivityBuilder {
            san,
            name,
            timing,
            reactivation: Reactivation::Keep,
            input_arcs: Vec::new(),
            input_gates: Vec::new(),
            default_case: Case {
                weight: CaseWeight::Fixed(1.0),
                output_arcs: Vec::new(),
                output_gates: Vec::new(),
            },
            cases: Vec::new(),
        }
    }

    /// Sets the reactivation policy (default [`Reactivation::Keep`]).
    #[must_use]
    pub fn reactivation(mut self, r: Reactivation) -> Self {
        self.reactivation = r;
        self
    }

    /// Requires (and consumes on firing) `count` tokens from `place`.
    #[must_use]
    pub fn input_arc(mut self, place: PlaceId, count: u64) -> Self {
        self.input_arcs.push((place, count));
        self
    }

    /// Attaches an input gate.
    #[must_use]
    pub fn input_gate(mut self, gate: InputGate) -> Self {
        self.input_gates.push(gate);
        self
    }

    /// Shorthand for a predicate-only input gate.
    #[must_use]
    pub fn enabled_when<P>(self, name: &str, predicate: P) -> Self
    where
        P: Fn(&Marking) -> bool + Send + Sync + 'static,
    {
        self.input_gate(InputGate::predicate_only(name, predicate))
    }

    /// Shorthand for a declarative predicate-only input gate
    /// ([`InputGate::when`]): the read set is derived from the
    /// expression and the predicate is compiled into the model's flat
    /// gate program.
    #[must_use]
    pub fn enabled_if(self, name: &str, pred: Pred) -> Self {
        self.input_gate(InputGate::when(name, pred))
    }

    /// Adds `count` tokens to `place` on firing (implicit single case).
    #[must_use]
    pub fn output_arc(mut self, place: PlaceId, count: u64) -> Self {
        self.default_case.output_arcs.push((place, count));
        self
    }

    /// Attaches an output gate to the implicit single case.
    #[must_use]
    pub fn output_gate(mut self, gate: OutputGate) -> Self {
        self.default_case.output_gates.push(gate);
        self
    }

    /// Shorthand: applies `f` to the marking on firing (implicit case).
    #[must_use]
    pub fn effect<F>(self, name: &str, f: F) -> Self
    where
        F: Fn(&mut Marking) + Send + Sync + 'static,
    {
        self.output_gate(OutputGate::new(name, f))
    }

    /// Adds an explicit probabilistic case with fixed `weight`;
    /// `configure` receives a [`CaseBuilder`] to declare the case's
    /// effects.
    #[must_use]
    pub fn case<F>(mut self, weight: f64, configure: F) -> Self
    where
        F: FnOnce(CaseBuilder) -> CaseBuilder,
    {
        let cb = configure(CaseBuilder {
            case: Case {
                weight: CaseWeight::Fixed(weight),
                output_arcs: Vec::new(),
                output_gates: Vec::new(),
            },
        });
        self.cases.push(cb.case);
        self
    }

    /// Adds an explicit case whose weight is computed from the marking at
    /// firing time.
    #[must_use]
    pub fn case_weighted_by<W, F>(mut self, weight: W, configure: F) -> Self
    where
        W: Fn(&Marking) -> f64 + Send + Sync + 'static,
        F: FnOnce(CaseBuilder) -> CaseBuilder,
    {
        let cb = configure(CaseBuilder {
            case: Case {
                weight: CaseWeight::MarkingDependent(Arc::new(weight)),
                output_arcs: Vec::new(),
                output_gates: Vec::new(),
            },
        });
        self.cases.push(cb.case);
        self
    }

    /// Finalizes the activity and registers it with the model, returning
    /// its handle.
    pub fn build(self) -> ActivityId {
        let cases = if self.cases.is_empty() {
            vec![self.default_case]
        } else {
            debug_assert!(
                self.default_case.output_arcs.is_empty()
                    && self.default_case.output_gates.is_empty(),
                "activity '{}' mixes implicit outputs with explicit cases",
                self.name
            );
            self.cases
        };
        let id = ActivityId(self.san.activities.len());
        self.san.activities.push(ActivityDef {
            name: self.name,
            timing: self.timing,
            reactivation: self.reactivation,
            input_arcs: self.input_arcs,
            input_gates: self.input_gates,
            cases,
        });
        id
    }
}

impl fmt::Debug for ActivityBuilder<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ActivityBuilder")
            .field("name", &self.name)
            .finish()
    }
}

/// Declares the effects of one explicit case.
#[derive(Debug)]
pub struct CaseBuilder {
    case: Case,
}

impl CaseBuilder {
    /// Adds `count` tokens to `place` when this case is chosen.
    #[must_use]
    pub fn output_arc(mut self, place: PlaceId, count: u64) -> CaseBuilder {
        self.case.output_arcs.push((place, count));
        self
    }

    /// Attaches an output gate to this case.
    #[must_use]
    pub fn output_gate(mut self, gate: OutputGate) -> CaseBuilder {
        self.case.output_gates.push(gate);
        self
    }

    /// Shorthand: applies `f` to the marking when this case is chosen.
    #[must_use]
    pub fn effect<F>(self, name: &str, f: F) -> CaseBuilder
    where
        F: Fn(&mut Marking) + Send + Sync + 'static,
    {
        self.output_gate(OutputGate::new(name, f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckpt_stats::Dist;

    #[test]
    fn shared_places_resolve_to_same_id() {
        let mut b = SanBuilder::new("m");
        let a = b.place("shared", 1);
        let a2 = b.place("shared", 1);
        assert_eq!(a, a2);
        assert_eq!(b.existing_place("shared"), Some(a));
        assert_eq!(b.existing_place("missing"), None);
    }

    #[test]
    fn conflicting_initial_marking_is_reported() {
        let mut b = SanBuilder::new("m");
        let p = b.place("p", 1);
        let _ = b.place("p", 2);
        b.timed_activity("a", Delay::from(Dist::deterministic(1.0)))
            .input_arc(p, 1)
            .output_arc(p, 1)
            .build();
        assert!(matches!(
            b.build(),
            Err(SanError::ConflictingInitialMarking { .. })
        ));
    }

    #[test]
    fn empty_model_is_rejected() {
        let b = SanBuilder::new("empty");
        assert_eq!(b.build().unwrap_err(), SanError::EmptyModel);
    }

    #[test]
    fn effect_free_activity_is_rejected() {
        let mut b = SanBuilder::new("m");
        let _ = b.place("p", 1);
        b.timed_activity("noop", Delay::from(Dist::deterministic(1.0)))
            .build();
        assert!(matches!(
            b.build(),
            Err(SanError::ActivityWithoutEffect { .. })
        ));
    }

    #[test]
    fn lookups_by_name() {
        let mut b = SanBuilder::new("m");
        let p = b.place("exec", 1);
        let q = b.place("done", 0);
        let a = b
            .timed_activity("run", Delay::from(Dist::deterministic(1.0)))
            .input_arc(p, 1)
            .output_arc(q, 1)
            .build();
        let san = b.build().unwrap();
        assert_eq!(san.place_by_name("exec"), Some(p));
        assert_eq!(san.place_by_name("done"), Some(q));
        assert_eq!(san.place_by_name("nope"), None);
        assert_eq!(san.activity_by_name("run"), Some(a));
        assert_eq!(san.activity_name(a), "run");
        assert_eq!(san.place_name(p), "exec");
        assert_eq!(san.place_count(), 2);
        assert_eq!(san.activity_count(), 1);
    }

    #[test]
    fn initial_marking_matches_declarations() {
        let mut b = SanBuilder::new("m");
        let p = b.place("p", 3);
        let f = b.fluid_place("acc", 1.5);
        b.timed_activity("a", Delay::from(Dist::deterministic(1.0)))
            .input_arc(p, 1)
            .output_arc(p, 1)
            .build();
        let san = b.build().unwrap();
        let m = san.initial_marking();
        assert_eq!(m.tokens(p), 3);
        assert_eq!(m.fluid(f), 1.5);
        assert_eq!(san.fluid_count(), 1);
    }

    #[test]
    fn debug_is_nonempty() {
        let mut b = SanBuilder::new("m");
        let p = b.place("p", 0);
        let ab = b.timed_activity("a", Delay::from(Dist::deterministic(1.0)));
        assert!(format!("{ab:?}").contains('a'));
        let _ = ab.input_arc(p, 1).output_arc(p, 1).build();
        assert!(format!("{b:?}").contains('m'));
        let san = b.build().unwrap();
        assert!(format!("{san:?}").contains('m'));
    }
}
