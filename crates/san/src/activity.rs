//! Activities: the transitions of a SAN.

use crate::gate::{InputGate, OutputGate};
use crate::marking::{Marking, PlaceId};
use ckpt_des::SimRng;
use ckpt_stats::{Dist, Sample};
use std::fmt;
use std::sync::Arc;

/// Handle to an activity within a [`San`](crate::San).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActivityId(pub(crate) usize);

impl fmt::Display for ActivityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "activity#{}", self.0)
    }
}

/// Marking-dependent delay sampler.
pub type DelayFn = Arc<dyn Fn(&Marking, &mut SimRng) -> f64 + Send + Sync>;

/// How long a timed activity takes from enabling to completion.
#[derive(Clone)]
pub enum Delay {
    /// A fixed distribution (the common case).
    Dist(Dist),
    /// A marking-dependent sampler, e.g. an exponential whose rate
    /// depends on whether the system is inside a correlated-failure
    /// window.
    MarkingDependent(DelayFn),
}

impl Delay {
    /// A marking-dependent delay from a closure.
    pub fn from_fn<F>(f: F) -> Delay
    where
        F: Fn(&Marking, &mut SimRng) -> f64 + Send + Sync + 'static,
    {
        Delay::MarkingDependent(Arc::new(f))
    }

    /// Samples a completion delay for the current marking.
    #[must_use]
    pub fn sample(&self, marking: &Marking, rng: &mut SimRng) -> f64 {
        match self {
            Delay::Dist(d) => d.sample(rng),
            Delay::MarkingDependent(f) => f(marking, rng),
        }
    }
}

impl From<Dist> for Delay {
    fn from(d: Dist) -> Delay {
        Delay::Dist(d)
    }
}

impl fmt::Debug for Delay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Delay::Dist(d) => write!(f, "Delay::Dist({d})"),
            Delay::MarkingDependent(_) => write!(f, "Delay::MarkingDependent(..)"),
        }
    }
}

/// Timing class of an activity.
#[derive(Debug, Clone)]
pub enum Timing {
    /// Fires after a sampled delay once enabled.
    Timed(Delay),
    /// Fires immediately when enabled; among simultaneously enabled
    /// instantaneous activities, higher priority fires first (ties break
    /// by definition order).
    Instantaneous {
        /// Firing priority (higher first).
        priority: u32,
    },
}

/// What happens to an already-scheduled timed activity when the marking
/// changes while it remains enabled.
///
/// * [`Reactivation::Keep`] — classic "race with enabling memory": the
///   sampled completion time stands. Use for deterministic timers whose
///   clock must keep running (the checkpoint-interval timer, the master
///   timeout).
/// * [`Reactivation::Resample`] — the activity is aborted and resampled
///   from the new marking. Correct (and required) for marking-dependent
///   exponential rates, where memorylessness makes resampling exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Reactivation {
    /// Keep the scheduled completion time.
    #[default]
    Keep,
    /// Resample the delay whenever the marking changes.
    Resample,
}

/// One probabilistic outcome of an activity completion.
#[derive(Debug, Clone)]
pub struct Case {
    /// Marking-dependent weight (normalized over all cases at firing).
    pub(crate) weight: CaseWeight,
    /// Tokens added when this case is chosen.
    pub(crate) output_arcs: Vec<(PlaceId, u64)>,
    /// Output gates applied when this case is chosen.
    pub(crate) output_gates: Vec<OutputGate>,
}

/// Weight of a case: fixed or marking-dependent.
#[derive(Clone)]
pub enum CaseWeight {
    /// A constant weight.
    Fixed(f64),
    /// A weight computed from the marking at firing time.
    MarkingDependent(Arc<dyn Fn(&Marking) -> f64 + Send + Sync>),
}

impl CaseWeight {
    pub(crate) fn eval(&self, marking: &Marking) -> f64 {
        match self {
            CaseWeight::Fixed(w) => *w,
            CaseWeight::MarkingDependent(f) => f(marking),
        }
    }
}

impl fmt::Debug for CaseWeight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CaseWeight::Fixed(w) => write!(f, "CaseWeight::Fixed({w})"),
            CaseWeight::MarkingDependent(_) => write!(f, "CaseWeight::MarkingDependent(..)"),
        }
    }
}

/// Full definition of one activity.
#[derive(Debug)]
pub struct ActivityDef {
    pub(crate) name: String,
    pub(crate) timing: Timing,
    pub(crate) reactivation: Reactivation,
    pub(crate) input_arcs: Vec<(PlaceId, u64)>,
    pub(crate) input_gates: Vec<InputGate>,
    pub(crate) cases: Vec<Case>,
}

impl ActivityDef {
    /// True when every input arc is satisfied and every input-gate
    /// predicate holds.
    #[must_use]
    pub fn enabled(&self, marking: &Marking) -> bool {
        self.input_arcs
            .iter()
            .all(|&(p, need)| marking.tokens(p) >= need)
            && self.input_gates.iter().all(|g| g.holds(marking))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::marking::Marking;

    #[test]
    fn delay_from_dist_samples() {
        let d = Delay::from(Dist::deterministic(2.0));
        let m = Marking::new(vec![], vec![]);
        let mut rng = SimRng::seed_from_u64(0);
        assert_eq!(d.sample(&m, &mut rng), 2.0);
    }

    #[test]
    fn delay_marking_dependent() {
        let p = PlaceId(0);
        let d = Delay::from_fn(move |m, rng| {
            let rate = if m.has_token(p) { 10.0 } else { 1.0 };
            rng.exponential(rate)
        });
        let mut rng = SimRng::seed_from_u64(1);
        let fast = Marking::new(vec![1], vec![]);
        let slow = Marking::new(vec![0], vec![]);
        let nf = 50_000;
        let mean_fast: f64 =
            (0..nf).map(|_| d.sample(&fast, &mut rng)).sum::<f64>() / f64::from(nf);
        let mean_slow: f64 =
            (0..nf).map(|_| d.sample(&slow, &mut rng)).sum::<f64>() / f64::from(nf);
        assert!((mean_fast - 0.1).abs() < 0.01);
        assert!((mean_slow - 1.0).abs() < 0.05);
    }

    #[test]
    fn enabled_requires_arcs_and_gates() {
        let p = PlaceId(0);
        let q = PlaceId(1);
        let def = ActivityDef {
            name: "a".into(),
            timing: Timing::Instantaneous { priority: 0 },
            reactivation: Reactivation::Keep,
            input_arcs: vec![(p, 1)],
            input_gates: vec![InputGate::predicate_only("no_q", move |m| !m.has_token(q))],
            cases: vec![],
        };
        assert!(def.enabled(&Marking::new(vec![1, 0], vec![])));
        assert!(!def.enabled(&Marking::new(vec![0, 0], vec![])));
        assert!(!def.enabled(&Marking::new(vec![1, 1], vec![])));
    }

    #[test]
    fn case_weight_eval() {
        let m = Marking::new(vec![3], vec![]);
        assert_eq!(CaseWeight::Fixed(0.5).eval(&m), 0.5);
        let p = PlaceId(0);
        let w = CaseWeight::MarkingDependent(Arc::new(move |m: &Marking| m.tokens(p) as f64));
        assert_eq!(w.eval(&m), 3.0);
    }

    #[test]
    fn debug_formats() {
        assert!(format!("{:?}", Delay::from(Dist::exponential(1.0))).contains("Exp"));
        assert!(format!("{:?}", CaseWeight::Fixed(1.0)).contains("Fixed"));
    }
}
