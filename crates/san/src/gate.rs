//! Input and output gates.

use crate::marking::{Marking, PlaceId};
use crate::pred::Pred;
use std::fmt;
use std::sync::Arc;

/// Predicate half of an input gate.
pub type GatePredicate = Arc<dyn Fn(&Marking) -> bool + Send + Sync>;
/// Marking-transformation half of a gate.
pub type GateFunction = Arc<dyn Fn(&mut Marking) + Send + Sync>;

/// How an input gate's enabling condition is expressed: an opaque
/// closure (compatibility path) or a declarative [`Pred`] expression the
/// builder can inspect and compile.
#[derive(Clone)]
enum PredicateImpl {
    Closure(GatePredicate),
    Expr(Pred),
}

/// An input gate: the activity it is attached to is enabled only while
/// the predicate holds, and the gate's function is applied to the marking
/// when the activity fires (after input arcs are consumed).
///
/// A gate may additionally *declare* the discrete places its predicate
/// reads via [`InputGate::reads`]. The declaration is a contract with the
/// incremental scheduler: the predicate's result must depend **only** on
/// the token counts of the declared places (never on fluid levels), so
/// the scheduler can skip re-evaluating the activity when none of them
/// changed. Undeclared gates are handled conservatively — the activity is
/// re-checked after every firing — so existing models keep working
/// unchanged, just without the fast path.
#[derive(Clone)]
pub struct InputGate {
    name: String,
    predicate: PredicateImpl,
    function: GateFunction,
    reads: Option<Vec<PlaceId>>,
}

impl InputGate {
    /// Creates an input gate from a predicate and a firing function.
    pub fn new<P, F>(name: impl Into<String>, predicate: P, function: F) -> InputGate
    where
        P: Fn(&Marking) -> bool + Send + Sync + 'static,
        F: Fn(&mut Marking) + Send + Sync + 'static,
    {
        InputGate {
            name: name.into(),
            predicate: PredicateImpl::Closure(Arc::new(predicate)),
            function: Arc::new(function),
            reads: None,
        }
    }

    /// A pure enabling condition with no marking effect.
    pub fn predicate_only<P>(name: impl Into<String>, predicate: P) -> InputGate
    where
        P: Fn(&Marking) -> bool + Send + Sync + 'static,
    {
        InputGate::new(name, predicate, |_| {})
    }

    /// A pure enabling condition given as a declarative [`Pred`]
    /// expression.
    ///
    /// The gate's read set is **derived** from the expression — no
    /// [`InputGate::reads`] call needed, and no way to under-declare —
    /// and the builder compiles the expression into the model's flat
    /// gate program, so the hot loop evaluates it without dynamic
    /// dispatch.
    pub fn when(name: impl Into<String>, pred: Pred) -> InputGate {
        InputGate::when_with(name, pred, |_| {})
    }

    /// A declarative [`Pred`] enabling condition plus a firing function
    /// (the function's writes are tracked by the marking itself and need
    /// no declaration).
    pub fn when_with<F>(name: impl Into<String>, pred: Pred, function: F) -> InputGate
    where
        F: Fn(&mut Marking) + Send + Sync + 'static,
    {
        let reads = pred.reads();
        InputGate {
            name: name.into(),
            predicate: PredicateImpl::Expr(pred),
            function: Arc::new(function),
            reads: Some(reads),
        }
    }

    /// Declares the discrete places the predicate reads, opting the
    /// attached activity into incremental scheduling.
    ///
    /// Contract: the predicate's result may change **only** when the
    /// token count of one of `places` changes. Declaring too few places
    /// makes the scheduler miss enablings/disablings (a debug-build
    /// consistency assertion in the simulator catches this); declaring
    /// extra places is safe, merely slower. The gate's *function* needs
    /// no declaration — its writes are tracked by the marking itself.
    #[must_use]
    pub fn reads(mut self, places: &[PlaceId]) -> InputGate {
        self.reads = Some(places.to_vec());
        self
    }

    /// The declared read set, or `None` for a conservative (re-check
    /// always) gate. [`Pred`]-backed gates always have one (derived).
    #[must_use]
    pub fn declared_reads(&self) -> Option<&[PlaceId]> {
        self.reads.as_deref()
    }

    /// The declarative expression behind this gate, if it was built with
    /// [`InputGate::when`] / [`InputGate::when_with`]; `None` for
    /// closure gates. The builder compiles this into the flat gate
    /// program.
    pub(crate) fn expr(&self) -> Option<&Pred> {
        match &self.predicate {
            PredicateImpl::Expr(p) => Some(p),
            PredicateImpl::Closure(_) => None,
        }
    }

    /// The gate's diagnostic name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Evaluates the enabling predicate.
    #[must_use]
    pub fn holds(&self, marking: &Marking) -> bool {
        match &self.predicate {
            PredicateImpl::Closure(p) => p(marking),
            PredicateImpl::Expr(p) => p.eval(marking),
        }
    }

    /// Applies the firing function.
    pub fn apply(&self, marking: &mut Marking) {
        (self.function)(marking);
    }
}

impl fmt::Debug for InputGate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("InputGate")
            .field("name", &self.name)
            .finish()
    }
}

/// An output gate: a marking transformation applied when the activity
/// (case) it is attached to completes.
#[derive(Clone)]
pub struct OutputGate {
    name: String,
    function: GateFunction,
}

impl OutputGate {
    /// Creates an output gate from a firing function.
    pub fn new<F>(name: impl Into<String>, function: F) -> OutputGate
    where
        F: Fn(&mut Marking) + Send + Sync + 'static,
    {
        OutputGate {
            name: name.into(),
            function: Arc::new(function),
        }
    }

    /// The gate's diagnostic name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Applies the firing function.
    pub fn apply(&self, marking: &mut Marking) {
        (self.function)(marking);
    }
}

impl fmt::Debug for OutputGate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OutputGate")
            .field("name", &self.name)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::marking::PlaceId;

    fn marking() -> Marking {
        Marking::new(vec![2, 0], vec![])
    }

    #[test]
    fn input_gate_predicate_and_function() {
        let p0 = PlaceId(0);
        let p1 = PlaceId(1);
        let g = InputGate::new(
            "move",
            move |m| m.tokens(p0) >= 2,
            move |m| {
                m.remove_tokens(p0, 2);
                m.add_tokens(p1, 1);
            },
        );
        let mut m = marking();
        assert!(g.holds(&m));
        g.apply(&mut m);
        assert_eq!(m.tokens(p0), 0);
        assert_eq!(m.tokens(p1), 1);
        assert!(!g.holds(&m));
        assert_eq!(g.name(), "move");
    }

    #[test]
    fn predicate_only_gate_leaves_marking_alone() {
        let p0 = PlaceId(0);
        let g = InputGate::predicate_only("check", move |m| m.has_token(p0));
        let mut m = marking();
        let v = m.version();
        g.apply(&mut m);
        assert_eq!(m.version(), v);
    }

    #[test]
    fn output_gate_applies() {
        let p1 = PlaceId(1);
        let g = OutputGate::new("emit", move |m| m.add_tokens(p1, 3));
        let mut m = marking();
        g.apply(&mut m);
        assert_eq!(m.tokens(p1), 3);
        assert_eq!(g.name(), "emit");
    }

    #[test]
    fn debug_shows_name() {
        let g = OutputGate::new("emit", |_| {});
        assert!(format!("{g:?}").contains("emit"));
    }

    #[test]
    fn reads_declaration_is_recorded() {
        let p0 = PlaceId(0);
        let g = InputGate::predicate_only("check", move |m| m.has_token(p0));
        assert_eq!(g.declared_reads(), None, "undeclared by default");
        let g = g.reads(&[p0]);
        assert_eq!(g.declared_reads(), Some(&[p0][..]));
    }

    #[test]
    fn pred_gate_derives_reads_and_evaluates() {
        use crate::pred::Pred;
        let p0 = PlaceId(0);
        let p1 = PlaceId(1);
        let g = InputGate::when("both", Pred::has(p0).and(Pred::empty(p1)));
        assert_eq!(g.declared_reads(), Some(&[p0, p1][..]));
        assert!(g.expr().is_some());
        let mut m = marking(); // tokens [2, 0]
        assert!(g.holds(&m));
        m.add_tokens(p1, 1);
        assert!(!g.holds(&m));
        // `when` gates have no marking effect.
        let v = m.version();
        g.apply(&mut m);
        assert_eq!(m.version(), v);
    }

    #[test]
    fn pred_gate_with_function_applies() {
        use crate::pred::Pred;
        let p0 = PlaceId(0);
        let p1 = PlaceId(1);
        let g = InputGate::when_with("drain", Pred::at_least(p0, 2), move |m| {
            m.remove_tokens(p0, 2);
            m.add_tokens(p1, 1);
        });
        let mut m = marking();
        assert!(g.holds(&m));
        g.apply(&mut m);
        assert_eq!(m.tokens(p0), 0);
        assert_eq!(m.tokens(p1), 1);
        assert!(!g.holds(&m));
    }
}
