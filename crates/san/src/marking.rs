//! Places and markings.

use std::fmt;

/// Handle to a discrete (token-holding) place.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlaceId(pub(crate) usize);

impl fmt::Display for PlaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "place#{}", self.0)
    }
}

/// Handle to a fluid (continuous accumulator) place.
///
/// Fluid places extend classic SANs with a continuously integrated
/// quantity: each has a marking-dependent *flow rate*, and the simulator
/// advances `fluid += rate(marking) · dt` between events. Gates may read
/// and write fluid levels; the checkpoint model uses one to track the
/// amount of computation not yet protected by a checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FluidId(pub(crate) usize);

impl fmt::Display for FluidId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fluid#{}", self.0)
    }
}

/// The state of a SAN: token counts for every discrete place and levels
/// for every fluid place.
///
/// Token counts are `u64`; attempts to remove more tokens than present
/// panic (it indicates an enabling-rule bug in the executor or a gate
/// function violating its contract).
///
/// Besides the token/fluid vectors, a marking carries cheap *dirty-place*
/// bookkeeping for the incremental scheduler: a bounded scratch list of
/// the discrete places touched since the last dirty-window reset
/// (`begin_dirty_window`, crate-internal), de-duplicated by a per-place
/// generation stamp. Recording a dirty place is two array writes in the
/// worst case and one compare in the common (already-dirty) case; the
/// steady state allocates nothing. Equality ([`PartialEq`]) compares
/// tokens and fluid levels only — never the bookkeeping.
#[derive(Debug, Clone)]
pub struct Marking {
    tokens: Vec<u64>,
    fluid: Vec<f64>,
    /// Bumped on every mutation; the simulator uses it to detect marking
    /// changes without diffing.
    version: u64,
    /// Discrete places mutated since the last `begin_dirty_window`, each
    /// listed once. Bounded by the place count.
    dirty: Vec<u32>,
    /// Per-place stamp; equals `dirty_gen` iff the place is in `dirty`.
    dirty_stamp: Vec<u64>,
    /// Current dirty-window generation (bumped by `begin_dirty_window`).
    dirty_gen: u64,
}

impl PartialEq for Marking {
    fn eq(&self, other: &Self) -> bool {
        self.tokens == other.tokens && self.fluid == other.fluid
    }
}

impl Marking {
    pub(crate) fn new(tokens: Vec<u64>, fluid: Vec<f64>) -> Marking {
        let places = tokens.len();
        Marking {
            tokens,
            fluid,
            version: 0,
            dirty: Vec::with_capacity(places),
            dirty_stamp: vec![0; places],
            // Start at 1 so the zero-initialized stamps read as clean.
            dirty_gen: 1,
        }
    }

    /// Number of tokens in `place`.
    ///
    /// # Panics
    ///
    /// Panics if `place` does not belong to this model.
    #[must_use]
    pub fn tokens(&self, place: PlaceId) -> u64 {
        self.tokens[place.0]
    }

    /// Sets the token count of `place`.
    pub fn set_tokens(&mut self, place: PlaceId, count: u64) {
        if self.tokens[place.0] != count {
            self.tokens[place.0] = count;
            self.version += 1;
            self.mark_dirty(place.0);
        }
    }

    /// Adds `count` tokens to `place`.
    pub fn add_tokens(&mut self, place: PlaceId, count: u64) {
        if count > 0 {
            self.tokens[place.0] += count;
            self.version += 1;
            self.mark_dirty(place.0);
        }
    }

    /// Removes `count` tokens from `place`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `count` tokens are present.
    pub fn remove_tokens(&mut self, place: PlaceId, count: u64) {
        let have = self.tokens[place.0];
        assert!(
            have >= count,
            "cannot remove {count} tokens from {place} holding {have}"
        );
        if count > 0 {
            self.tokens[place.0] = have - count;
            self.version += 1;
            self.mark_dirty(place.0);
        }
    }

    /// True if `place` holds at least one token.
    #[must_use]
    pub fn has_token(&self, place: PlaceId) -> bool {
        self.tokens(place) > 0
    }

    /// The level of fluid place `id`.
    #[must_use]
    pub fn fluid(&self, id: FluidId) -> f64 {
        self.fluid[id.0]
    }

    /// Sets the level of fluid place `id`.
    pub fn set_fluid(&mut self, id: FluidId, level: f64) {
        self.fluid[id.0] = level;
        self.version += 1;
    }

    /// Adds `amount` (may be negative) to fluid place `id`.
    pub fn add_fluid(&mut self, id: FluidId, amount: f64) {
        self.fluid[id.0] += amount;
        self.version += 1;
    }

    /// Monotone counter incremented on every mutation. Two equal versions
    /// on the same marking imply no mutation happened in between.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of discrete places.
    #[must_use]
    pub fn place_count(&self) -> usize {
        self.tokens.len()
    }

    /// Number of fluid places.
    #[must_use]
    pub fn fluid_count(&self) -> usize {
        self.fluid.len()
    }

    pub(crate) fn integrate_fluid(&mut self, id: FluidId, amount: f64) {
        // Integration is not a logical "marking change": it must not
        // trigger activity reactivation, so it bypasses the version bump.
        self.fluid[id.0] += amount;
    }

    /// Opens a fresh dirty window: subsequently mutated discrete places
    /// accumulate in [`Marking::dirty_places`]. The incremental scheduler
    /// calls this once per event; resetting is one counter bump plus a
    /// `Vec::clear` (capacity retained — no allocation in steady state).
    pub(crate) fn begin_dirty_window(&mut self) {
        self.dirty_gen += 1;
        self.dirty.clear();
    }

    /// The discrete places mutated since the last
    /// [`Marking::begin_dirty_window`], each exactly once, in first-touch
    /// order.
    pub(crate) fn dirty_places(&self) -> &[u32] {
        &self.dirty
    }

    fn mark_dirty(&mut self, place: usize) {
        if self.dirty_stamp[place] != self.dirty_gen {
            self.dirty_stamp[place] = self.dirty_gen;
            self.dirty.push(place as u32);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn marking() -> Marking {
        Marking::new(vec![1, 0, 5], vec![0.0, 2.5])
    }

    #[test]
    fn token_accessors() {
        let mut m = marking();
        assert_eq!(m.tokens(PlaceId(0)), 1);
        assert!(m.has_token(PlaceId(0)));
        assert!(!m.has_token(PlaceId(1)));
        m.add_tokens(PlaceId(1), 2);
        assert_eq!(m.tokens(PlaceId(1)), 2);
        m.remove_tokens(PlaceId(2), 5);
        assert_eq!(m.tokens(PlaceId(2)), 0);
        m.set_tokens(PlaceId(2), 7);
        assert_eq!(m.tokens(PlaceId(2)), 7);
    }

    #[test]
    #[should_panic(expected = "cannot remove")]
    fn underflow_panics() {
        let mut m = marking();
        m.remove_tokens(PlaceId(0), 2);
    }

    #[test]
    fn version_bumps_on_changes_only() {
        let mut m = marking();
        let v0 = m.version();
        m.set_tokens(PlaceId(0), 1); // no-op
        assert_eq!(m.version(), v0);
        m.add_tokens(PlaceId(0), 0); // no-op
        assert_eq!(m.version(), v0);
        m.remove_tokens(PlaceId(0), 0); // no-op
        assert_eq!(m.version(), v0);
        m.set_tokens(PlaceId(0), 3);
        assert!(m.version() > v0);
    }

    #[test]
    fn fluid_accessors() {
        let mut m = marking();
        assert_eq!(m.fluid(FluidId(1)), 2.5);
        m.add_fluid(FluidId(0), 1.5);
        assert_eq!(m.fluid(FluidId(0)), 1.5);
        m.set_fluid(FluidId(0), 0.0);
        assert_eq!(m.fluid(FluidId(0)), 0.0);
    }

    #[test]
    fn integration_does_not_bump_version() {
        let mut m = marking();
        let v = m.version();
        m.integrate_fluid(FluidId(0), 10.0);
        assert_eq!(m.version(), v);
        assert_eq!(m.fluid(FluidId(0)), 10.0);
    }

    #[test]
    fn counts() {
        let m = marking();
        assert_eq!(m.place_count(), 3);
        assert_eq!(m.fluid_count(), 2);
    }

    #[test]
    fn dirty_window_tracks_each_place_once() {
        let mut m = marking();
        m.begin_dirty_window();
        assert!(m.dirty_places().is_empty());
        m.add_tokens(PlaceId(1), 2);
        m.set_tokens(PlaceId(1), 5); // same place: still listed once
        m.remove_tokens(PlaceId(2), 1);
        m.set_tokens(PlaceId(0), 1); // no-op: not dirty
        assert_eq!(m.dirty_places(), &[1, 2]);
        // Fluid mutation and integration never dirty a discrete place.
        m.add_fluid(FluidId(0), 1.0);
        m.integrate_fluid(FluidId(0), 1.0);
        assert_eq!(m.dirty_places(), &[1, 2]);
        // A new window starts clean and re-collects.
        m.begin_dirty_window();
        assert!(m.dirty_places().is_empty());
        m.add_tokens(PlaceId(1), 1);
        assert_eq!(m.dirty_places(), &[1]);
    }

    #[test]
    fn equality_ignores_dirty_bookkeeping() {
        let mut a = marking();
        let mut b = marking();
        a.begin_dirty_window();
        a.add_tokens(PlaceId(0), 1);
        a.remove_tokens(PlaceId(0), 1);
        b.set_tokens(PlaceId(2), 5); // no-op write, no dirty entry
        assert_eq!(a, b, "same tokens/fluid must compare equal");
        assert_ne!(a.dirty_places(), b.dirty_places());
    }

    #[test]
    fn ids_display() {
        assert_eq!(PlaceId(4).to_string(), "place#4");
        assert_eq!(FluidId(2).to_string(), "fluid#2");
    }
}
