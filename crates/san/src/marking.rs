//! Places and markings.

use std::fmt;

/// Handle to a discrete (token-holding) place.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlaceId(pub(crate) usize);

impl fmt::Display for PlaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "place#{}", self.0)
    }
}

/// Handle to a fluid (continuous accumulator) place.
///
/// Fluid places extend classic SANs with a continuously integrated
/// quantity: each has a marking-dependent *flow rate*, and the simulator
/// advances `fluid += rate(marking) · dt` between events. Gates may read
/// and write fluid levels; the checkpoint model uses one to track the
/// amount of computation not yet protected by a checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FluidId(pub(crate) usize);

impl fmt::Display for FluidId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fluid#{}", self.0)
    }
}

/// The state of a SAN: token counts for every discrete place and levels
/// for every fluid place.
///
/// Token counts are `u64`; attempts to remove more tokens than present
/// panic (it indicates an enabling-rule bug in the executor or a gate
/// function violating its contract).
#[derive(Debug, Clone, PartialEq)]
pub struct Marking {
    tokens: Vec<u64>,
    fluid: Vec<f64>,
    /// Bumped on every mutation; the simulator uses it to detect marking
    /// changes without diffing.
    version: u64,
}

impl Marking {
    pub(crate) fn new(tokens: Vec<u64>, fluid: Vec<f64>) -> Marking {
        Marking {
            tokens,
            fluid,
            version: 0,
        }
    }

    /// Number of tokens in `place`.
    ///
    /// # Panics
    ///
    /// Panics if `place` does not belong to this model.
    #[must_use]
    pub fn tokens(&self, place: PlaceId) -> u64 {
        self.tokens[place.0]
    }

    /// Sets the token count of `place`.
    pub fn set_tokens(&mut self, place: PlaceId, count: u64) {
        if self.tokens[place.0] != count {
            self.tokens[place.0] = count;
            self.version += 1;
        }
    }

    /// Adds `count` tokens to `place`.
    pub fn add_tokens(&mut self, place: PlaceId, count: u64) {
        if count > 0 {
            self.tokens[place.0] += count;
            self.version += 1;
        }
    }

    /// Removes `count` tokens from `place`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `count` tokens are present.
    pub fn remove_tokens(&mut self, place: PlaceId, count: u64) {
        let have = self.tokens[place.0];
        assert!(
            have >= count,
            "cannot remove {count} tokens from {place} holding {have}"
        );
        if count > 0 {
            self.tokens[place.0] = have - count;
            self.version += 1;
        }
    }

    /// True if `place` holds at least one token.
    #[must_use]
    pub fn has_token(&self, place: PlaceId) -> bool {
        self.tokens(place) > 0
    }

    /// The level of fluid place `id`.
    #[must_use]
    pub fn fluid(&self, id: FluidId) -> f64 {
        self.fluid[id.0]
    }

    /// Sets the level of fluid place `id`.
    pub fn set_fluid(&mut self, id: FluidId, level: f64) {
        self.fluid[id.0] = level;
        self.version += 1;
    }

    /// Adds `amount` (may be negative) to fluid place `id`.
    pub fn add_fluid(&mut self, id: FluidId, amount: f64) {
        self.fluid[id.0] += amount;
        self.version += 1;
    }

    /// Monotone counter incremented on every mutation. Two equal versions
    /// on the same marking imply no mutation happened in between.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of discrete places.
    #[must_use]
    pub fn place_count(&self) -> usize {
        self.tokens.len()
    }

    /// Number of fluid places.
    #[must_use]
    pub fn fluid_count(&self) -> usize {
        self.fluid.len()
    }

    pub(crate) fn integrate_fluid(&mut self, id: FluidId, amount: f64) {
        // Integration is not a logical "marking change": it must not
        // trigger activity reactivation, so it bypasses the version bump.
        self.fluid[id.0] += amount;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn marking() -> Marking {
        Marking::new(vec![1, 0, 5], vec![0.0, 2.5])
    }

    #[test]
    fn token_accessors() {
        let mut m = marking();
        assert_eq!(m.tokens(PlaceId(0)), 1);
        assert!(m.has_token(PlaceId(0)));
        assert!(!m.has_token(PlaceId(1)));
        m.add_tokens(PlaceId(1), 2);
        assert_eq!(m.tokens(PlaceId(1)), 2);
        m.remove_tokens(PlaceId(2), 5);
        assert_eq!(m.tokens(PlaceId(2)), 0);
        m.set_tokens(PlaceId(2), 7);
        assert_eq!(m.tokens(PlaceId(2)), 7);
    }

    #[test]
    #[should_panic(expected = "cannot remove")]
    fn underflow_panics() {
        let mut m = marking();
        m.remove_tokens(PlaceId(0), 2);
    }

    #[test]
    fn version_bumps_on_changes_only() {
        let mut m = marking();
        let v0 = m.version();
        m.set_tokens(PlaceId(0), 1); // no-op
        assert_eq!(m.version(), v0);
        m.add_tokens(PlaceId(0), 0); // no-op
        assert_eq!(m.version(), v0);
        m.remove_tokens(PlaceId(0), 0); // no-op
        assert_eq!(m.version(), v0);
        m.set_tokens(PlaceId(0), 3);
        assert!(m.version() > v0);
    }

    #[test]
    fn fluid_accessors() {
        let mut m = marking();
        assert_eq!(m.fluid(FluidId(1)), 2.5);
        m.add_fluid(FluidId(0), 1.5);
        assert_eq!(m.fluid(FluidId(0)), 1.5);
        m.set_fluid(FluidId(0), 0.0);
        assert_eq!(m.fluid(FluidId(0)), 0.0);
    }

    #[test]
    fn integration_does_not_bump_version() {
        let mut m = marking();
        let v = m.version();
        m.integrate_fluid(FluidId(0), 10.0);
        assert_eq!(m.version(), v);
        assert_eq!(m.fluid(FluidId(0)), 10.0);
    }

    #[test]
    fn counts() {
        let m = marking();
        assert_eq!(m.place_count(), 3);
        assert_eq!(m.fluid_count(), 2);
    }

    #[test]
    fn ids_display() {
        assert_eq!(PlaceId(4).to_string(), "place#4");
        assert_eq!(FluidId(2).to_string(), "fluid#2");
    }
}
