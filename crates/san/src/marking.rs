//! Places and markings.

use std::fmt;

/// Handle to a discrete (token-holding) place.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlaceId(pub(crate) usize);

impl fmt::Display for PlaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "place#{}", self.0)
    }
}

/// Handle to a fluid (continuous accumulator) place.
///
/// Fluid places extend classic SANs with a continuously integrated
/// quantity: each has a marking-dependent *flow rate*, and the simulator
/// advances `fluid += rate(marking) · dt` between events. Gates may read
/// and write fluid levels; the checkpoint model uses one to track the
/// amount of computation not yet protected by a checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FluidId(pub(crate) usize);

impl fmt::Display for FluidId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fluid#{}", self.0)
    }
}

/// The state of a SAN: token counts for every discrete place and levels
/// for every fluid place.
///
/// Token counts are `u64`; attempts to remove more tokens than present
/// panic (it indicates an enabling-rule bug in the executor or a gate
/// function violating its contract).
///
/// Besides the token/fluid vectors, a marking carries cheap *dirty-place*
/// bookkeeping for the incremental scheduler: a bounded scratch list of
/// the discrete places touched since the last dirty-window reset
/// (`begin_dirty_window`, crate-internal), de-duplicated by a per-place
/// bitmask (one bit per place, 64 places per word). Recording a dirty
/// place is one word test plus, on first touch, a bit set and a push;
/// resetting the window clears only the set bits, so the steady state
/// allocates nothing and never scans the full place space. The mask
/// doubles as the scheduler's input: it is OR-folded against precomputed
/// place→activity dependency bitsets without walking the list. Equality
/// ([`PartialEq`]) compares tokens and fluid levels only — never the
/// bookkeeping.
#[derive(Debug, Clone)]
pub struct Marking {
    tokens: Vec<u64>,
    fluid: Vec<f64>,
    /// Bumped on every mutation; the simulator uses it to detect marking
    /// changes without diffing.
    version: u64,
    /// Discrete places mutated since the last `begin_dirty_window`, each
    /// listed once, in first-touch order. Bounded by the place count.
    dirty: Vec<u32>,
    /// Bit-per-place mirror of `dirty`: bit `p` of word `p / 64` is set
    /// iff place `p` is in the list.
    dirty_words: Vec<u64>,
}

impl PartialEq for Marking {
    fn eq(&self, other: &Self) -> bool {
        self.tokens == other.tokens && self.fluid == other.fluid
    }
}

impl Marking {
    pub(crate) fn new(tokens: Vec<u64>, fluid: Vec<f64>) -> Marking {
        let places = tokens.len();
        Marking {
            tokens,
            fluid,
            version: 0,
            dirty: Vec::with_capacity(places),
            dirty_words: vec![0; places.div_ceil(64)],
        }
    }

    /// Number of tokens in `place`.
    ///
    /// # Panics
    ///
    /// Panics if `place` does not belong to this model.
    #[must_use]
    pub fn tokens(&self, place: PlaceId) -> u64 {
        self.tokens[place.0]
    }

    /// Sets the token count of `place`.
    pub fn set_tokens(&mut self, place: PlaceId, count: u64) {
        if self.tokens[place.0] != count {
            self.tokens[place.0] = count;
            self.version += 1;
            self.mark_dirty(place.0);
        }
    }

    /// Adds `count` tokens to `place`.
    pub fn add_tokens(&mut self, place: PlaceId, count: u64) {
        if count > 0 {
            self.tokens[place.0] += count;
            self.version += 1;
            self.mark_dirty(place.0);
        }
    }

    /// Removes `count` tokens from `place`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `count` tokens are present.
    pub fn remove_tokens(&mut self, place: PlaceId, count: u64) {
        let have = self.tokens[place.0];
        assert!(
            have >= count,
            "cannot remove {count} tokens from {place} holding {have}"
        );
        if count > 0 {
            self.tokens[place.0] = have - count;
            self.version += 1;
            self.mark_dirty(place.0);
        }
    }

    /// True if `place` holds at least one token.
    #[must_use]
    pub fn has_token(&self, place: PlaceId) -> bool {
        self.tokens(place) > 0
    }

    /// The level of fluid place `id`.
    #[must_use]
    pub fn fluid(&self, id: FluidId) -> f64 {
        self.fluid[id.0]
    }

    /// Sets the level of fluid place `id`.
    pub fn set_fluid(&mut self, id: FluidId, level: f64) {
        self.fluid[id.0] = level;
        self.version += 1;
    }

    /// Adds `amount` (may be negative) to fluid place `id`.
    pub fn add_fluid(&mut self, id: FluidId, amount: f64) {
        self.fluid[id.0] += amount;
        self.version += 1;
    }

    /// Monotone counter incremented on every mutation. Two equal versions
    /// on the same marking imply no mutation happened in between.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of discrete places.
    #[must_use]
    pub fn place_count(&self) -> usize {
        self.tokens.len()
    }

    /// Number of fluid places.
    #[must_use]
    pub fn fluid_count(&self) -> usize {
        self.fluid.len()
    }

    pub(crate) fn integrate_fluid(&mut self, id: FluidId, amount: f64) {
        // Integration is not a logical "marking change": it must not
        // trigger activity reactivation, so it bypasses the version bump.
        self.fluid[id.0] += amount;
    }

    /// Opens a fresh dirty window: subsequently mutated discrete places
    /// accumulate in [`Marking::dirty_places`] and the mirroring
    /// bitmask. The incremental scheduler calls this once
    /// per event; resetting clears only the bits of the places actually
    /// dirtied (O(dirty), not O(places)) plus a `Vec::clear` with
    /// capacity retained — no allocation in steady state.
    pub(crate) fn begin_dirty_window(&mut self) {
        for &p in &self.dirty {
            self.dirty_words[(p >> 6) as usize] &= !(1u64 << (p & 63));
        }
        self.dirty.clear();
    }

    /// The discrete places mutated since the last
    /// [`Marking::begin_dirty_window`], each exactly once, in first-touch
    /// order.
    pub(crate) fn dirty_places(&self) -> &[u32] {
        &self.dirty
    }

    /// Bit-per-place view of [`Marking::dirty_places`]: bit `p % 64` of
    /// word `p / 64` is set iff place `p` is dirty.
    #[cfg(test)]
    pub(crate) fn dirty_mask(&self) -> &[u64] {
        &self.dirty_words
    }

    /// Debug-build check that the dirty bitmask and the dirty list
    /// describe the same set of places; called from the simulator's
    /// per-event consistency assertion.
    #[cfg(debug_assertions)]
    pub(crate) fn assert_dirty_consistency(&self) {
        let mut expect = vec![0u64; self.dirty_words.len()];
        for &p in &self.dirty {
            expect[(p >> 6) as usize] |= 1u64 << (p & 63);
        }
        debug_assert_eq!(
            expect, self.dirty_words,
            "dirty bitmask out of sync with the dirty-place list"
        );
    }

    fn mark_dirty(&mut self, place: usize) {
        let word = &mut self.dirty_words[place >> 6];
        let bit = 1u64 << (place & 63);
        if *word & bit == 0 {
            *word |= bit;
            self.dirty.push(place as u32);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn marking() -> Marking {
        Marking::new(vec![1, 0, 5], vec![0.0, 2.5])
    }

    #[test]
    fn token_accessors() {
        let mut m = marking();
        assert_eq!(m.tokens(PlaceId(0)), 1);
        assert!(m.has_token(PlaceId(0)));
        assert!(!m.has_token(PlaceId(1)));
        m.add_tokens(PlaceId(1), 2);
        assert_eq!(m.tokens(PlaceId(1)), 2);
        m.remove_tokens(PlaceId(2), 5);
        assert_eq!(m.tokens(PlaceId(2)), 0);
        m.set_tokens(PlaceId(2), 7);
        assert_eq!(m.tokens(PlaceId(2)), 7);
    }

    #[test]
    #[should_panic(expected = "cannot remove")]
    fn underflow_panics() {
        let mut m = marking();
        m.remove_tokens(PlaceId(0), 2);
    }

    #[test]
    fn version_bumps_on_changes_only() {
        let mut m = marking();
        let v0 = m.version();
        m.set_tokens(PlaceId(0), 1); // no-op
        assert_eq!(m.version(), v0);
        m.add_tokens(PlaceId(0), 0); // no-op
        assert_eq!(m.version(), v0);
        m.remove_tokens(PlaceId(0), 0); // no-op
        assert_eq!(m.version(), v0);
        m.set_tokens(PlaceId(0), 3);
        assert!(m.version() > v0);
    }

    #[test]
    fn fluid_accessors() {
        let mut m = marking();
        assert_eq!(m.fluid(FluidId(1)), 2.5);
        m.add_fluid(FluidId(0), 1.5);
        assert_eq!(m.fluid(FluidId(0)), 1.5);
        m.set_fluid(FluidId(0), 0.0);
        assert_eq!(m.fluid(FluidId(0)), 0.0);
    }

    #[test]
    fn integration_does_not_bump_version() {
        let mut m = marking();
        let v = m.version();
        m.integrate_fluid(FluidId(0), 10.0);
        assert_eq!(m.version(), v);
        assert_eq!(m.fluid(FluidId(0)), 10.0);
    }

    #[test]
    fn counts() {
        let m = marking();
        assert_eq!(m.place_count(), 3);
        assert_eq!(m.fluid_count(), 2);
    }

    #[test]
    fn dirty_window_tracks_each_place_once() {
        let mut m = marking();
        m.begin_dirty_window();
        assert!(m.dirty_places().is_empty());
        m.add_tokens(PlaceId(1), 2);
        m.set_tokens(PlaceId(1), 5); // same place: still listed once
        m.remove_tokens(PlaceId(2), 1);
        m.set_tokens(PlaceId(0), 1); // no-op: not dirty
        assert_eq!(m.dirty_places(), &[1, 2]);
        // Fluid mutation and integration never dirty a discrete place.
        m.add_fluid(FluidId(0), 1.0);
        m.integrate_fluid(FluidId(0), 1.0);
        assert_eq!(m.dirty_places(), &[1, 2]);
        // A new window starts clean and re-collects.
        m.begin_dirty_window();
        assert!(m.dirty_places().is_empty());
        m.add_tokens(PlaceId(1), 1);
        assert_eq!(m.dirty_places(), &[1]);
    }

    #[test]
    fn equality_ignores_dirty_bookkeeping() {
        let mut a = marking();
        let mut b = marking();
        a.begin_dirty_window();
        a.add_tokens(PlaceId(0), 1);
        a.remove_tokens(PlaceId(0), 1);
        b.set_tokens(PlaceId(2), 5); // no-op write, no dirty entry
        assert_eq!(a, b, "same tokens/fluid must compare equal");
        assert_ne!(a.dirty_places(), b.dirty_places());
    }

    /// The bits set in `dirty_mask()` and the entries of `dirty_places()`
    /// must always describe the same set.
    fn assert_mask_matches_list(m: &Marking) {
        let mut from_mask: Vec<u32> = Vec::new();
        for (w, &word) in m.dirty_mask().iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                from_mask.push((w * 64) as u32 + bits.trailing_zeros());
                bits &= bits - 1;
            }
        }
        let mut from_list: Vec<u32> = m.dirty_places().to_vec();
        from_list.sort_unstable();
        assert_eq!(from_mask, from_list);
    }

    #[test]
    fn dirty_mask_mirrors_dirty_list_across_words() {
        // 130 places spans three mask words; drive pseudo-random
        // mutations through several windows and check the mirror at
        // every step.
        let mut m = Marking::new(vec![0; 130], vec![]);
        let mut state = 0x9e3779b97f4a7c15u64;
        for window in 0..50 {
            m.begin_dirty_window();
            assert!(m.dirty_places().is_empty());
            assert!(m.dirty_mask().iter().all(|&w| w == 0));
            for _ in 0..(window % 7) + 1 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let place = (state >> 33) as usize % 130;
                m.add_tokens(PlaceId(place), 1);
                assert_mask_matches_list(&m);
            }
        }
    }

    #[test]
    fn ids_display() {
        assert_eq!(PlaceId(4).to_string(), "place#4");
        assert_eq!(FluidId(2).to_string(), "fluid#2");
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig {
            cases: 64,
            ..proptest::prelude::ProptestConfig::default()
        })]

        /// Oracle equivalence for the dirty bookkeeping: replay a random
        /// interleaving of mutations and window resets against a plain
        /// set-of-dirty-places oracle, and require that the dirty list
        /// and the bitmask both describe exactly the oracle's set after
        /// every operation.
        #[test]
        fn dirty_bitmask_matches_set_oracle(
            places in 1usize..200,
            ops in proptest::collection::vec(
                (0u8..4, 0usize..1_000_000, 0u64..3),
                1..120,
            ),
        ) {
            use proptest::prelude::prop_assert_eq;
            use std::collections::BTreeSet;

            let mut m = Marking::new(vec![1; places], vec![]);
            let mut oracle: BTreeSet<u32> = BTreeSet::new();
            for (op, raw_place, count) in ops {
                let p = PlaceId(raw_place % places);
                match op {
                    0 => {
                        m.begin_dirty_window();
                        oracle.clear();
                    }
                    1 => {
                        if m.tokens(p) != count {
                            oracle.insert(p.0 as u32);
                        }
                        m.set_tokens(p, count);
                    }
                    2 => {
                        if count > 0 {
                            oracle.insert(p.0 as u32);
                        }
                        m.add_tokens(p, count);
                    }
                    _ => {
                        let c = count.min(m.tokens(p));
                        if c > 0 {
                            oracle.insert(p.0 as u32);
                        }
                        m.remove_tokens(p, c);
                    }
                }
                let mut listed: Vec<u32> = m.dirty_places().to_vec();
                listed.sort_unstable();
                let expect: Vec<u32> = oracle.iter().copied().collect();
                prop_assert_eq!(&listed, &expect, "dirty list diverged from the oracle");
                for (w, &word) in m.dirty_mask().iter().enumerate() {
                    for b in 0..64 {
                        let place = (w * 64 + b) as u32;
                        prop_assert_eq!(
                            (word >> b) & 1 == 1,
                            oracle.contains(&place),
                            "mask bit for place {} diverged",
                            place
                        );
                    }
                }
            }
        }
    }
}
