//! Discrete-event execution of a SAN.

use crate::activity::{ActivityId, Reactivation, Timing};
use crate::error::SanError;
use crate::marking::Marking;
use crate::model::San;
use crate::reward::{RewardReport, RewardSpec, RewardValue};
use ckpt_des::prof::{HotPhase, PhaseProfile, PhaseProfiler};
use ckpt_des::telem::{HotTelemetry, TelemetrySnapshot};
use ckpt_des::{EventId, EventQueue, QueueKind, Sampling, SimRng, SimTime};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Upper bound on instantaneous firings between two time advances before
/// the simulator reports a livelock.
const INSTANTANEOUS_LIMIT: u32 = 100_000;

/// One deferred schedule-reconciliation action (incremental mode).
///
/// The classification pass pushes these in ascending activity order;
/// the batch sampling pass fills `at` for the entries that draw a
/// delay; the apply pass executes the queue operations in the same
/// order. Keeping all three passes in ascending activity order makes
/// the RNG draw sequence AND the queue-operation sequence (hence
/// event-id assignment) identical to the one-activity-at-a-time
/// reference path.
struct PendingOp {
    /// Activity index.
    act: u32,
    /// Absolute completion time, filled in by the sampling pass
    /// (cancels keep `SimTime::ZERO`).
    at: SimTime,
    kind: PendingKind,
}

enum PendingKind {
    /// The activity was disabled while scheduled: abort its completion.
    Cancel(EventId),
    /// The activity became enabled: draw a delay and schedule it.
    Schedule,
    /// A `Resample` activity saw a marking change while scheduled:
    /// redraw and move its completion in place.
    Reschedule(EventId),
}

/// Which scheduling strategy a [`Simulator`] uses to reconcile activity
/// schedules after each firing.
///
/// Both strategies are **bit-identical**: same RNG draw sequence, same
/// firing order, same rewards, same final marking. The full scan is kept
/// as the reference executor (and as an equivalence oracle in tests and
/// benchmarks); the incremental scheduler is the default because its
/// per-event cost is proportional to what the firing actually changed,
/// not to the total number of activities in the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheduling {
    /// Visit only activities whose dependency set (input-arc places ∪
    /// declared [`InputGate::reads`](crate::InputGate::reads) sets)
    /// intersects the places dirtied by the current event, plus the
    /// conservatively re-checked "global" activities (undeclared gates,
    /// `Resample` timers). The default.
    #[default]
    Incremental,
    /// Re-examine every activity after every event — the original O(A)
    /// reference behaviour.
    FullScan,
}

/// How a [`Simulator`] realises the [`Reactivation::Resample`] policy
/// for timers whose delay is a marking-independent exponential.
///
/// [`ReactivationMode::Resample`] (the default) redraws the delay and
/// moves the queue entry on every marking change — the reference
/// behaviour, bit-identical to the original executor. For an
/// exponential that is pure overhead: by memorylessness the remaining
/// delay conditioned on "not yet fired" has exactly the original
/// distribution, so [`ReactivationMode::Lazy`] keeps the scheduled
/// completion instead, skipping the redraw *and* the queue move.
///
/// Lazy mode is **distribution-equivalent, not bit-identical**: skipped
/// draws shift the RNG stream, so a lazy run is statistically a new
/// stream over the same model (validated by the KS/moment and
/// CI-overlap suites, like [`Sampling::Ziggurat`]). Timers with
/// marking-dependent delays ([`crate::Delay::MarkingDependent`]) are
/// never elided — a rate modulated by the marking must be observed at
/// the marking change — and [`Reactivation::Keep`] timers are
/// untouched by either mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReactivationMode {
    /// Redraw `Resample` timers on every marking change (reference).
    #[default]
    Resample,
    /// Keep marking-independent exponential timers in place; redraw
    /// only marking-dependent ones.
    Lazy,
}

impl ReactivationMode {
    /// Stable lowercase name, as accepted by [`ReactivationMode::parse`].
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ReactivationMode::Resample => "resample",
            ReactivationMode::Lazy => "lazy",
        }
    }

    /// Parses a mode name as written on a command line.
    ///
    /// # Errors
    ///
    /// Returns a message naming the valid values.
    pub fn parse(s: &str) -> Result<ReactivationMode, String> {
        match s {
            "resample" => Ok(ReactivationMode::Resample),
            "lazy" => Ok(ReactivationMode::Lazy),
            other => Err(format!(
                "unknown reactivation mode '{other}' (resample|lazy)"
            )),
        }
    }
}

impl fmt::Display for ReactivationMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Cold per-reward state: consulted when registering, reporting, or
/// accruing impulses, but not on the per-event integration path (whose
/// working set lives in the simulator's dense parallel arrays).
struct RewardState {
    spec: RewardSpec,
    impulse_count: u64,
}

/// How [`Simulator::integrate_to`] obtains a reward's current rate.
#[derive(Clone, Copy, PartialEq, Eq)]
enum RateMode {
    /// No rate component (impulse-only reward): skip.
    NoRate,
    /// Evaluate the rate closure against the marking every step.
    Evaluate,
    /// Read the cached value maintained by
    /// [`Simulator::refresh_dirty_rate_caches`] (declared
    /// [`RewardSpec::reads`] support under incremental scheduling).
    Cached,
}

/// Receives notifications from a running [`Simulator`].
///
/// The executor is model-agnostic, so its observation surface is too:
/// every activity firing (timed and instantaneous) and every impulse
/// reward accrual is reported, with the post-firing marking available
/// for inspection. Model-aware layers (e.g. the checkpoint model in
/// `ckpt-core`) translate these into domain events.
///
/// Observers are pure consumers: they receive references to state the
/// simulator already computed and cannot influence the run, so results
/// with an observer attached are bit-identical to an unobserved run.
pub trait SanObserver {
    /// `activity` (named `name`) fired at `at`, leaving `marking`.
    fn activity_fired(&mut self, at: SimTime, name: &str, marking: &Marking);

    /// An impulse of reward variable `name` accrued on a firing,
    /// bringing its running total to `total`.
    fn reward_updated(&mut self, _at: SimTime, _name: &str, _total: f64) {}
}

/// Executes a [`San`] under standard SAN simulation semantics:
///
/// * an activity is *enabled* while its input arcs are satisfied and all
///   input-gate predicates hold;
/// * enabled **instantaneous** activities fire immediately, highest
///   priority first (ties by definition order);
/// * enabled **timed** activities sample a completion delay when they
///   become enabled; if they become disabled the sampled completion is
///   **aborted**, and on other marking changes the
///   [`Reactivation`] policy decides whether the sample is kept or
///   redrawn;
/// * on completion, input arcs are consumed, input-gate functions run, a
///   probabilistic case is selected by (marking-dependent) weights, and
///   the case's output arcs/gates are applied;
/// * between events, fluid places and rate rewards are integrated over
///   the constant marking.
///
/// See the [crate-level example](crate).
pub struct Simulator<'m> {
    san: &'m San,
    marking: Marking,
    now: SimTime,
    queue: EventQueue<ActivityId>,
    scheduled: Vec<Option<EventId>>,
    sampled_version: Vec<u64>,
    rng: SimRng,
    rewards: Vec<RewardState>,
    /// Running totals, parallel to `rewards`. Split out of
    /// [`RewardState`] so the per-event integration loop walks a dense
    /// f64 array instead of striding over the full (spec-carrying)
    /// reward structs.
    totals: Vec<f64>,
    /// How to obtain each reward's rate during integration; parallel to
    /// `rewards`.
    rate_mode: Vec<RateMode>,
    /// `rate(marking)` as of the last support change, for
    /// [`RateMode::Cached`] rewards; parallel to `rewards`.
    rate_cache: Vec<f64>,
    /// Reward name → index into `rewards`; shared with every
    /// [`RewardReport`] this simulator hands out, so producing a report
    /// does not rebuild a `HashMap` per call.
    reward_names: Arc<HashMap<String, usize>>,
    /// Place index → declared-support rate rewards reading it; drives
    /// dirty-place-gated cache refresh under incremental scheduling.
    rate_by_place: Vec<Vec<u32>>,
    /// Activity index → `(reward index, impulse index)` pairs, so firing
    /// only touches rewards that actually attach an impulse to it.
    impulse_map: Vec<Vec<(u32, u32)>>,
    firing_counts: Vec<u64>,
    /// Running total of firings; kept so `events_processed` is O(1).
    events_total: u64,
    window_start: SimTime,
    observer: Option<&'m mut dyn SanObserver>,
    scheduling: Scheduling,
    reactivation: ReactivationMode,
    /// Reused per multi-case firing; never reallocated in steady state.
    weights_scratch: Vec<f64>,
    /// Visit bitmask scratch for incremental reconciliation: one bit per
    /// timed activity to revisit this event.
    timed_acc: Vec<u64>,
    /// Candidate bitmask scratch for incremental settling: one bit per
    /// instantaneous activity that may have become enabled.
    inst_acc: Vec<u64>,
    /// Deferred reconciliation actions; reused across events, never
    /// reallocated in steady state.
    pending: Vec<PendingOp>,
    /// Hot-phase wall-time attribution; a no-op unless the `prof`
    /// feature is enabled (see [`ckpt_des::prof`]).
    prof: PhaseProfiler,
    /// Queue-depth / dirty-set distribution probes; zero-sized no-ops
    /// unless the `telemetry` feature is enabled (see
    /// [`ckpt_des::telem`]).
    telem: HotTelemetry,
}

impl<'m> Simulator<'m> {
    /// Creates a simulator over `san` seeded with `seed`, settles any
    /// initially enabled instantaneous activities, and schedules the
    /// initially enabled timed ones. Uses [`Scheduling::Incremental`];
    /// see [`Simulator::with_scheduling`] to choose.
    ///
    /// # Errors
    ///
    /// Returns [`SanError`] if the initial settling livelocks or a delay
    /// sampler misbehaves.
    pub fn new(san: &'m San, seed: u64) -> Result<Simulator<'m>, SanError> {
        Simulator::with_scheduling(san, seed, Scheduling::default())
    }

    /// Creates a simulator with an explicit [`Scheduling`] strategy and
    /// the default ([`Sampling::InverseCdf`]) sampler.
    ///
    /// # Errors
    ///
    /// Returns [`SanError`] if the initial settling livelocks or a delay
    /// sampler misbehaves.
    pub fn with_scheduling(
        san: &'m San,
        seed: u64,
        scheduling: Scheduling,
    ) -> Result<Simulator<'m>, SanError> {
        Simulator::with_options(san, seed, scheduling, Sampling::default())
    }

    /// Creates a simulator with explicit [`Scheduling`] and [`Sampling`]
    /// choices. The sampling mode is set before any initial delay draw,
    /// so the whole run — including initialization — uses one sampler.
    ///
    /// # Errors
    ///
    /// Returns [`SanError`] if the initial settling livelocks or a delay
    /// sampler misbehaves.
    pub fn with_options(
        san: &'m San,
        seed: u64,
        scheduling: Scheduling,
        sampling: Sampling,
    ) -> Result<Simulator<'m>, SanError> {
        Simulator::with_exec_options(
            san,
            seed,
            scheduling,
            sampling,
            ReactivationMode::default(),
            QueueKind::default(),
        )
    }

    /// Creates a simulator with every execution switch explicit:
    /// [`Scheduling`], [`Sampling`], [`ReactivationMode`], and the
    /// event-queue backend ([`QueueKind`]).
    ///
    /// The defaults (`Incremental`, `InverseCdf`, `Resample`,
    /// `IndexedHeap`) are the pinned bit-identical reference; `Lazy`
    /// and the non-default sampler are distribution-equivalent opt-ins,
    /// while `Calendar` is bit-identical (both backends pop the same
    /// `(time, FIFO)` order).
    ///
    /// # Errors
    ///
    /// Returns [`SanError`] if the initial settling livelocks or a delay
    /// sampler misbehaves.
    pub fn with_exec_options(
        san: &'m San,
        seed: u64,
        scheduling: Scheduling,
        sampling: Sampling,
        reactivation: ReactivationMode,
        queue: QueueKind,
    ) -> Result<Simulator<'m>, SanError> {
        let n = san.activities.len();
        let mut rng = SimRng::seed_from_u64(seed);
        rng.set_sampling(sampling);
        let mut sim = Simulator {
            san,
            marking: san.initial_marking(),
            now: SimTime::ZERO,
            queue: EventQueue::with_kind(queue),
            scheduled: vec![None; n],
            sampled_version: vec![0; n],
            rng,
            rewards: Vec::new(),
            totals: Vec::new(),
            rate_mode: Vec::new(),
            rate_cache: Vec::new(),
            reward_names: Arc::new(HashMap::new()),
            rate_by_place: vec![Vec::new(); san.place_count()],
            impulse_map: vec![Vec::new(); n],
            firing_counts: vec![0; n],
            events_total: 0,
            window_start: SimTime::ZERO,
            observer: None,
            scheduling,
            reactivation,
            weights_scratch: Vec::new(),
            timed_acc: vec![0; san.compiled.mask_words],
            inst_acc: vec![0; san.compiled.mask_words],
            pending: Vec::with_capacity(n),
            prof: PhaseProfiler::new(),
            telem: HotTelemetry::new(),
        };
        // Initialization settles and schedules with the full scan in both
        // modes: it visits every activity in ascending index order, which
        // is exactly what the incremental scheduler must be equivalent to,
        // and there is no previous event to diff against.
        sim.settle_instantaneous()?;
        sim.update_schedules()?;
        Ok(sim)
    }

    /// The scheduling strategy this simulator runs with.
    #[must_use]
    pub fn scheduling(&self) -> Scheduling {
        self.scheduling
    }

    /// The sampling strategy this simulator's RNG runs with.
    #[must_use]
    pub fn sampling(&self) -> Sampling {
        self.rng.sampling()
    }

    /// The reactivation mode this simulator runs with.
    #[must_use]
    pub fn reactivation(&self) -> ReactivationMode {
        self.reactivation
    }

    /// The event-queue backend this simulator runs on.
    #[must_use]
    pub fn queue_kind(&self) -> QueueKind {
        self.queue.kind()
    }

    /// The hot-phase profile accumulated so far. All-zero unless the
    /// `prof` cargo feature is enabled (check
    /// [`ckpt_des::prof::ENABLED`]).
    #[must_use]
    pub fn phase_profile(&self) -> &PhaseProfile {
        self.prof.profile()
    }

    /// Returns the accumulated hot-phase profile and resets it.
    pub fn take_phase_profile(&mut self) -> PhaseProfile {
        self.prof.take()
    }

    /// The hot-loop telemetry distributions accumulated so far. Empty
    /// unless the `telemetry` cargo feature is enabled (check
    /// [`ckpt_des::telem::ENABLED`]).
    #[must_use]
    pub fn telemetry_snapshot(&self) -> TelemetrySnapshot {
        self.telem.snapshot()
    }

    /// Registers a reward variable. Rewards accumulate from the moment
    /// they are registered (or from the last [`Simulator::reset_rewards`]).
    ///
    /// # Errors
    ///
    /// Returns [`SanError::DuplicateReward`] if the name is taken.
    pub fn add_reward(&mut self, spec: RewardSpec) -> Result<(), SanError> {
        if self.reward_names.contains_key(spec.name()) {
            return Err(SanError::DuplicateReward {
                name: spec.name().into(),
            });
        }
        let reward_idx = u32::try_from(self.rewards.len()).expect("more than 2^32 rewards");
        Arc::make_mut(&mut self.reward_names).insert(spec.name().to_string(), self.rewards.len());
        for (impulse_idx, (act, _)) in spec.impulses().iter().enumerate() {
            let impulse_idx = u32::try_from(impulse_idx).expect("more than 2^32 impulses");
            self.impulse_map[act.0].push((reward_idx, impulse_idx));
        }
        // Rate rewards with a declared support are cached under
        // incremental scheduling: the rate is evaluated now and
        // re-evaluated only when a support place changes, instead of on
        // every integration step. The full scan has no dirty-place
        // information, so it keeps evaluating directly — same bits,
        // original cost.
        let mut rate_mode = RateMode::NoRate;
        let mut cached_rate = 0.0;
        if let Some(rate) = spec.rate_fn() {
            rate_mode = RateMode::Evaluate;
            if let Some(reads) = spec.rate_reads() {
                if self.scheduling == Scheduling::Incremental {
                    rate_mode = RateMode::Cached;
                    cached_rate = rate(&self.marking);
                    for p in reads {
                        self.rate_by_place[p.0].push(reward_idx);
                    }
                }
            }
        }
        self.rewards.push(RewardState {
            spec,
            impulse_count: 0,
        });
        self.totals.push(0.0);
        self.rate_mode.push(rate_mode);
        self.rate_cache.push(cached_rate);
        Ok(())
    }

    /// Attaches an observer notified of every subsequent activity
    /// firing and impulse-reward accrual. Observation never affects
    /// simulation results (see [`SanObserver`]).
    pub fn set_observer(&mut self, observer: &'m mut dyn SanObserver) {
        self.observer = Some(observer);
    }

    /// Detaches the observer, if any.
    pub fn clear_observer(&mut self) {
        self.observer = None;
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Read access to the current marking.
    #[must_use]
    pub fn marking(&self) -> &Marking {
        &self.marking
    }

    /// How many times `activity` has fired since construction.
    #[must_use]
    pub fn firing_count(&self, activity: ActivityId) -> u64 {
        self.firing_counts[activity.0]
    }

    /// Total number of activity firings (timed and instantaneous) since
    /// construction — the SAN analogue of "events processed", used for
    /// throughput reporting. Maintained as a running counter, so this is
    /// O(1) and safe to poll per event.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.events_total
    }

    /// Zeroes all reward accumulators and restarts the observation
    /// window at the current time — the "transient discard" step of
    /// steady-state simulation.
    pub fn reset_rewards(&mut self) {
        self.totals.fill(0.0);
        for r in &mut self.rewards {
            r.impulse_count = 0;
        }
        self.window_start = self.now;
    }

    /// Snapshot of all reward variables over the current window.
    #[must_use]
    pub fn reward_report(&self) -> RewardReport {
        let window = (self.now - self.window_start).as_secs();
        let values: Vec<RewardValue> = self
            .rewards
            .iter()
            .zip(&self.totals)
            .map(|(r, &total)| RewardValue {
                total,
                window,
                impulse_count: r.impulse_count,
            })
            .collect();
        RewardReport::new(Arc::clone(&self.reward_names), values)
    }

    /// Runs for `duration` of simulated time from the current instant.
    ///
    /// # Errors
    ///
    /// Returns [`SanError`] on instantaneous livelock or invalid sampled
    /// delays.
    pub fn run_for(&mut self, duration: SimTime) -> Result<(), SanError> {
        self.run_until(self.now + duration)
    }

    /// Runs until `condition` holds on the marking (checked after every
    /// event) or until `horizon`. Returns the time the condition first
    /// held, or `None` if the horizon struck first.
    ///
    /// # Errors
    ///
    /// Returns [`SanError`] on instantaneous livelock or invalid sampled
    /// delays.
    pub fn run_until_condition<P>(
        &mut self,
        condition: P,
        horizon: SimTime,
    ) -> Result<Option<SimTime>, SanError>
    where
        P: Fn(&Marking) -> bool,
    {
        if condition(&self.marking) {
            return Ok(Some(self.now));
        }
        loop {
            let span = self.prof.begin();
            let ev = self.queue.pop_before(horizon);
            self.prof.end(HotPhase::QueueOps, span);
            let Some(ev) = ev else { break };
            let t = ev.time();
            self.step_event(t, ev.into_payload())?;
            if condition(&self.marking) {
                return Ok(Some(self.now));
            }
        }
        if horizon > self.now {
            self.integrate_to(horizon);
            self.now = horizon;
        }
        Ok(None)
    }

    /// Runs until the absolute time `horizon`. Events exactly at the
    /// horizon fire; integration closes the window exactly at `horizon`.
    ///
    /// # Errors
    ///
    /// Returns [`SanError`] on instantaneous livelock or invalid sampled
    /// delays.
    pub fn run_until(&mut self, horizon: SimTime) -> Result<(), SanError> {
        loop {
            let span = self.prof.begin();
            let ev = self.queue.pop_before(horizon);
            self.prof.end(HotPhase::QueueOps, span);
            let Some(ev) = ev else { break };
            let t = ev.time();
            self.step_event(t, ev.into_payload())?;
        }
        if horizon > self.now {
            self.integrate_to(horizon);
            self.now = horizon;
        }
        Ok(())
    }

    /// Processes one timed completion at `t`: advance the clock, fire,
    /// settle instantaneous activities, reconcile timed schedules.
    ///
    /// The whole body runs under an `event_dispatch` span whose nested
    /// instrumented regions (integration, firing, settle,
    /// reconciliation, sampling, queue ops) are attributed to their own
    /// phases — what remains in `event_dispatch` is the per-event
    /// bookkeeping glue, previously invisible as unattributed time.
    fn step_event(&mut self, t: SimTime, activity: ActivityId) -> Result<(), SanError> {
        let dispatch = self.prof.begin();
        self.telem.record_queue_depth(self.queue.len());
        // `ENABLED` is a compile-time constant, so the occupancy scan
        // (calendar backend only) vanishes entirely from non-telemetry
        // builds.
        if ckpt_des::telem::ENABLED {
            if let Some(occ) = self.queue.band_occupancy() {
                self.telem.record_band_occupancy(occ);
            }
        }
        self.integrate_to(t);
        self.now = t;
        self.scheduled[activity.0] = None;
        let result = match self.scheduling {
            Scheduling::FullScan => self.step_full_scan(activity),
            Scheduling::Incremental => self.step_incremental(activity),
        };
        self.prof
            .end_excluding_nested(HotPhase::EventDispatch, dispatch);
        result
    }

    fn step_full_scan(&mut self, activity: ActivityId) -> Result<(), SanError> {
        self.fire(activity)?;
        let span = self.prof.begin();
        self.settle_instantaneous()?;
        self.prof
            .end_excluding_nested(HotPhase::InstantaneousSettle, span);
        let span = self.prof.begin();
        self.update_schedules()?;
        self.prof
            .end_excluding_nested(HotPhase::ScheduleReconciliation, span);
        Ok(())
    }

    fn step_incremental(&mut self, activity: ActivityId) -> Result<(), SanError> {
        self.marking.begin_dirty_window();
        self.fire(activity)?;
        let span = self.prof.begin();
        self.settle_incremental()?;
        self.prof
            .end_excluding_nested(HotPhase::InstantaneousSettle, span);
        let span = self.prof.begin();
        self.update_schedules_incremental(activity)?;
        self.prof
            .end_excluding_nested(HotPhase::ScheduleReconciliation, span);
        self.refresh_dirty_rate_caches();
        self.telem
            .record_dirty_set(self.marking.dirty_places().len());
        #[cfg(debug_assertions)]
        self.assert_schedule_consistency();
        Ok(())
    }

    /// Re-evaluates declared-support rate-reward caches whose support
    /// intersects the places dirtied by the current event. Rewards whose
    /// support did not change keep their cache — their rate function
    /// promised (via [`RewardSpec::reads`]) to depend on nothing else,
    /// so the cached value still equals a fresh evaluation.
    fn refresh_dirty_rate_caches(&mut self) {
        let marking = &self.marking;
        let rewards = &self.rewards;
        let rate_cache = &mut self.rate_cache;
        for &p in marking.dirty_places() {
            for &ri in &self.rate_by_place[p as usize] {
                let rate = rewards[ri as usize]
                    .spec
                    .rate_fn()
                    .expect("cached reward has a rate");
                rate_cache[ri as usize] = rate(marking);
            }
        }
    }

    /// Advances fluid places and rate rewards over `[self.now, to)`.
    fn integrate_to(&mut self, to: SimTime) {
        let dt = (to - self.now).as_secs();
        if dt <= 0.0 {
            return;
        }
        let span = self.prof.begin();
        for (fluid, rate) in &self.san.flows {
            let r = rate(&self.marking);
            if r != 0.0 {
                self.marking.integrate_fluid(*fluid, r * dt);
            }
        }
        let marking = &self.marking;
        let rewards = &self.rewards;
        let rate_cache = &self.rate_cache;
        let totals = &mut self.totals;
        for (k, &mode) in self.rate_mode.iter().enumerate() {
            // Cached reads hold `rate(marking)` as of the last support
            // change; `v != 0.0` mirrors the evaluated path's guard so
            // the accumulated total is bit-identical either way.
            let v = match mode {
                RateMode::NoRate => continue,
                RateMode::Cached => rate_cache[k],
                RateMode::Evaluate => {
                    let rate = rewards[k].spec.rate_fn().expect("rate mode has a rate");
                    rate(marking)
                }
            };
            if v != 0.0 {
                totals[k] += v * dt;
            }
        }
        self.prof.end(HotPhase::RewardAccumulation, span);
    }

    /// Fires one activity: consume inputs, run gates, pick a case, apply
    /// outputs, record impulses.
    fn fire(&mut self, id: ActivityId) -> Result<(), SanError> {
        let span = self.prof.begin();
        let result = self.fire_inner(id);
        self.prof.end(HotPhase::ActivityFiring, span);
        result
    }

    fn fire_inner(&mut self, id: ActivityId) -> Result<(), SanError> {
        let san = self.san;
        let def = &san.activities[id.0];
        debug_assert!(
            def.enabled(&self.marking),
            "activity '{}' fired while disabled — scheduling bug",
            def.name
        );
        // Select the case on the pre-firing marking. The single-case fast
        // path draws no randomness and touches no weight buffer.
        let case_idx = if def.cases.len() == 1 {
            0
        } else {
            self.weights_scratch.clear();
            self.weights_scratch
                .extend(def.cases.iter().map(|c| c.weight.eval(&self.marking)));
            let weights = &self.weights_scratch;
            if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
                return Err(SanError::BadCaseWeights {
                    activity: def.name.clone(),
                });
            }
            let total: f64 = weights.iter().sum();
            if total <= 0.0 {
                return Err(SanError::BadCaseWeights {
                    activity: def.name.clone(),
                });
            }
            let mut x = self.rng.open_unit() * total;
            let mut chosen = weights.len() - 1;
            for (i, w) in weights.iter().enumerate() {
                if x < *w {
                    chosen = i;
                    break;
                }
                x -= w;
            }
            chosen
        };

        for &(p, count) in &def.input_arcs {
            self.marking.remove_tokens(p, count);
        }
        for g in &def.input_gates {
            g.apply(&mut self.marking);
        }
        let case = &def.cases[case_idx];
        for &(p, count) in &case.output_arcs {
            self.marking.add_tokens(p, count);
        }
        for g in &case.output_gates {
            g.apply(&mut self.marking);
        }
        self.firing_counts[id.0] += 1;
        self.events_total += 1;

        // Impulse rewards attached to this activity, in registration
        // order (same order the reward-list scan used to produce).
        for &(reward_idx, impulse_idx) in &self.impulse_map[id.0] {
            let r = &mut self.rewards[reward_idx as usize];
            let f = &r.spec.impulses()[impulse_idx as usize].1;
            let total = self.totals[reward_idx as usize] + f(&self.marking);
            self.totals[reward_idx as usize] = total;
            r.impulse_count += 1;
            if let Some(obs) = self.observer.as_deref_mut() {
                obs.reward_updated(self.now, r.spec.name(), total);
            }
        }
        if let Some(obs) = self.observer.as_deref_mut() {
            obs.activity_fired(self.now, &def.name, &self.marking);
        }
        Ok(())
    }

    /// Fires enabled instantaneous activities (highest priority first)
    /// until none remain, re-checking every activity each round — the
    /// full-scan reference path, also used during initialization.
    fn settle_instantaneous(&mut self) -> Result<(), SanError> {
        let mut fired = 0u32;
        loop {
            let mut best: Option<(u32, usize)> = None;
            for (i, def) in self.san.activities.iter().enumerate() {
                if let Timing::Instantaneous { priority } = def.timing {
                    if def.enabled(&self.marking) {
                        let better = match best {
                            None => true,
                            Some((bp, _)) => priority > bp,
                        };
                        if better {
                            best = Some((priority, i));
                        }
                    }
                }
            }
            let Some((_, idx)) = best else {
                return Ok(());
            };
            self.fire(ActivityId(idx))?;
            fired += 1;
            if fired > INSTANTANEOUS_LIMIT {
                return Err(SanError::InstantaneousLivelock {
                    limit: INSTANTANEOUS_LIMIT,
                });
            }
        }
    }

    /// Incremental settle: between events no instantaneous activity is
    /// enabled (the previous settle reached a fixpoint, and neither
    /// schedule reconciliation nor fluid integration changes discrete
    /// token counts), so the only activities that can have become enabled
    /// are those depending on a place dirtied during this event — plus
    /// the conservatively re-checked global set. The candidate set is a
    /// bitmask: folding a dirty place in is an OR over the precomputed
    /// `place → instantaneous dependents` row. Candidates accumulate as
    /// firings dirty further places; priority order and tie-breaking
    /// match the full scan exactly.
    fn settle_incremental(&mut self) -> Result<(), SanError> {
        let san = self.san;
        let compiled = &san.compiled;
        self.inst_acc.copy_from_slice(&compiled.global_inst_mask);
        let mut consumed = 0usize;
        let mut fired = 0u32;
        loop {
            // Fold places dirtied since the previous round into the
            // candidate set.
            loop {
                let dirty = self.marking.dirty_places();
                if consumed >= dirty.len() {
                    break;
                }
                let p = dirty[consumed] as usize;
                consumed += 1;
                for (acc, &row) in self.inst_acc.iter_mut().zip(compiled.place_inst_row(p)) {
                    *acc |= row;
                }
            }
            if self.inst_acc.iter().all(|&w| w == 0) {
                return Ok(()); // no candidates at all — the common case
            }
            // `inst_priority_order` is sorted (priority desc, index asc),
            // so the first enabled candidate is exactly the activity the
            // full scan's "first maximum" selection would pick.
            let mut chosen = None;
            for &a in &san.deps.inst_priority_order {
                let idx = a as usize;
                if self.inst_acc[idx >> 6] & (1u64 << (idx & 63)) != 0
                    && compiled.enabled(idx, &self.marking)
                {
                    chosen = Some(idx);
                    break;
                }
            }
            let Some(idx) = chosen else {
                return Ok(());
            };
            self.fire(ActivityId(idx))?;
            fired += 1;
            if fired > INSTANTANEOUS_LIMIT {
                return Err(SanError::InstantaneousLivelock {
                    limit: INSTANTANEOUS_LIMIT,
                });
            }
        }
    }

    /// Reconciles timed-activity schedules with the current marking by
    /// examining every activity — the full-scan reference path, also used
    /// during initialization.
    fn update_schedules(&mut self) -> Result<(), SanError> {
        let version = self.marking.version();
        for i in 0..self.san.activities.len() {
            self.reconcile_timed(i, version)?;
        }
        Ok(())
    }

    /// Incremental schedule reconciliation: visits the just-fired
    /// activity (its pop cleared `scheduled`, and it may be immediately
    /// re-enabled without dirtying any place it depends on), every global
    /// activity, and every timed activity depending on a place dirtied
    /// during this event — in ascending activity index, so delay draws
    /// happen in exactly the order the full scan would make them.
    ///
    /// Activities outside that set are provably no-ops under the full
    /// scan: their enabling cannot have changed (their dependency places
    /// did not), so they sit in the `(enabled, scheduled)` states
    /// `(true, Some)` with `Keep` or `(false, None)`, neither of which
    /// draws randomness or touches the queue.
    ///
    /// Three passes, all in ascending activity order:
    ///
    /// 1. **Visit & classify** — the visit set is a bitmask (global row
    ///    OR the dirty places' dependency rows OR the fired bit;
    ///    ascending iteration over set bits replaces the old
    ///    stamp/push/sort scratch machinery), and each visited activity's
    ///    compiled enabling check decides cancel / schedule / reschedule.
    /// 2. **Batch sampling** — all delay draws for this event run
    ///    back-to-back through the block-buffered RNG under a single
    ///    `delay_sampling` span.
    /// 3. **Apply** — all queue operations execute under a single
    ///    `queue_ops` span.
    ///
    /// Queue operations draw no randomness and sampling touches no queue
    /// state, so hoisting all draws ahead of all queue operations leaves
    /// both the RNG stream and the queue-op sequence (hence event-id
    /// assignment and same-time tie-breaking) bit-identical to the
    /// interleaved reference path.
    fn update_schedules_incremental(&mut self, fired: ActivityId) -> Result<(), SanError> {
        let compiled = &self.san.compiled;
        let lazy = self.reactivation == ReactivationMode::Lazy;
        {
            let acc = &mut self.timed_acc;
            // Lazy mode's global row omits elidable `Resample` timers
            // with declared reads: their place rows (which the
            // dependency index also populates for them) cover every
            // marking change that can affect their enabling, and their
            // redraws are skipped anyway.
            acc.copy_from_slice(if lazy {
                &compiled.global_timed_mask_lazy
            } else {
                &compiled.global_timed_mask
            });
            debug_assert!(
                compiled.is_timed(fired.0),
                "queue completed a non-timed activity"
            );
            acc[fired.0 >> 6] |= 1u64 << (fired.0 & 63);
            for &p in self.marking.dirty_places() {
                for (a, &row) in acc.iter_mut().zip(compiled.place_timed_row(p as usize)) {
                    *a |= row;
                }
            }
        }
        let version = self.marking.version();
        let mut pending = std::mem::take(&mut self.pending);
        debug_assert!(pending.is_empty());
        let mut draws = 0usize;
        for w in 0..self.timed_acc.len() {
            let mut bits = self.timed_acc[w];
            while bits != 0 {
                let a = (w << 6) | bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let enabled = compiled.enabled(a, &self.marking);
                match (enabled, self.scheduled[a]) {
                    (false, Some(ev)) => {
                        // Disabling aborts the activity; draws nothing.
                        self.scheduled[a] = None;
                        pending.push(PendingOp {
                            act: a as u32,
                            at: SimTime::ZERO,
                            kind: PendingKind::Cancel(ev),
                        });
                    }
                    (false, None) => {}
                    (true, Some(ev)) => {
                        if compiled.is_resample(a) && self.sampled_version[a] != version {
                            if lazy && compiled.is_lazy_elidable(a) {
                                // Memoryless: the scheduled completion
                                // already has the distribution a fresh
                                // draw would produce.
                                ckpt_des::telem::note_redraw_elided();
                            } else {
                                draws += 1;
                                pending.push(PendingOp {
                                    act: a as u32,
                                    at: SimTime::ZERO,
                                    kind: PendingKind::Reschedule(ev),
                                });
                            }
                        }
                    }
                    (true, None) => {
                        draws += 1;
                        pending.push(PendingOp {
                            act: a as u32,
                            at: SimTime::ZERO,
                            kind: PendingKind::Schedule,
                        });
                    }
                }
            }
        }
        let result = self.apply_pending(&mut pending, draws, version);
        pending.clear();
        self.pending = pending;
        result
    }

    /// Passes 2 and 3 of incremental reconciliation: batch-sample every
    /// delay, then execute every queue operation, both in the pending
    /// list's (ascending activity) order.
    fn apply_pending(
        &mut self,
        pending: &mut [PendingOp],
        draws: usize,
        version: u64,
    ) -> Result<(), SanError> {
        let san = self.san;
        if draws > 0 {
            let span = self.prof.begin();
            for op in pending.iter_mut() {
                if matches!(op.kind, PendingKind::Cancel(_)) {
                    continue;
                }
                let act = op.act as usize;
                let Timing::Timed(delay) = &san.activities[act].timing else {
                    unreachable!("pending draw for a non-timed activity");
                };
                let d = delay.sample(&self.marking, &mut self.rng);
                if !d.is_finite() || d < 0.0 {
                    self.prof.end(HotPhase::DelaySampling, span);
                    return Err(SanError::BadDelay {
                        activity: san.activities[act].name.clone(),
                        value: d,
                    });
                }
                op.at = self.now + SimTime::from_secs(d);
            }
            self.prof.end(HotPhase::DelaySampling, span);
        }
        if !pending.is_empty() {
            let span = self.prof.begin();
            for op in pending.iter() {
                let act = op.act as usize;
                match op.kind {
                    PendingKind::Cancel(ev) => {
                        self.queue.cancel(ev);
                    }
                    PendingKind::Schedule => {
                        let ev = self.queue.schedule(op.at, ActivityId(act));
                        self.scheduled[act] = Some(ev);
                        self.sampled_version[act] = version;
                    }
                    PendingKind::Reschedule(ev) => {
                        let moved = self.queue.reschedule(ev, op.at);
                        debug_assert!(moved, "rescheduled a stale handle");
                        self.sampled_version[act] = version;
                    }
                }
            }
            self.prof.end(HotPhase::QueueOps, span);
        }
        Ok(())
    }

    /// Brings one timed activity's schedule in line with the marking.
    /// Shared by both scheduling strategies; instantaneous activities are
    /// ignored.
    fn reconcile_timed(&mut self, i: usize, version: u64) -> Result<(), SanError> {
        let def = &self.san.activities[i];
        let Timing::Timed(delay) = &def.timing else {
            return Ok(());
        };
        let enabled = def.enabled(&self.marking);
        match (enabled, self.scheduled[i]) {
            (false, Some(ev)) => {
                // Disabling aborts the activity.
                let span = self.prof.begin();
                self.queue.cancel(ev);
                self.prof.end(HotPhase::QueueOps, span);
                self.scheduled[i] = None;
            }
            (false, None) => {}
            (true, Some(ev)) => {
                if def.reactivation == Reactivation::Resample && self.sampled_version[i] != version
                {
                    if self.reactivation == ReactivationMode::Lazy
                        && self.san.compiled.is_lazy_elidable(i)
                    {
                        // Memoryless: keep the scheduled completion.
                        ckpt_des::telem::note_redraw_elided();
                        return Ok(());
                    }
                    // Redraw in place: cancelling draws no randomness, so
                    // sampling before the queue move keeps the RNG stream
                    // identical to the cancel-then-schedule sequence while
                    // halving the heap traffic. The handle stays valid, so
                    // `scheduled[i]` needs no update.
                    let at = self.sample_delay(i, delay)?;
                    let span = self.prof.begin();
                    let moved = self.queue.reschedule(ev, at);
                    self.prof.end(HotPhase::QueueOps, span);
                    debug_assert!(moved, "rescheduled a stale handle");
                    self.sampled_version[i] = self.marking.version();
                }
            }
            (true, None) => {
                self.schedule_timed(i, delay)?;
            }
        }
        Ok(())
    }

    /// Verifies the incremental scheduler's core invariants against a
    /// ground-truth scan (debug builds only): every timed activity is
    /// scheduled iff enabled, no instantaneous activity is enabled
    /// between events, the compiled enabling check agrees with the
    /// trait-dispatch reference for every activity, and the marking's
    /// dirty bitmask mirrors its dirty list. A schedule violation means
    /// some gate's declared [`reads`](crate::InputGate::reads) set is
    /// stale — its predicate changed without any declared place
    /// changing; a compiled/reference disagreement means a gate-program
    /// compilation bug.
    #[cfg(debug_assertions)]
    fn assert_schedule_consistency(&self) {
        self.marking.assert_dirty_consistency();
        for (i, def) in self.san.activities.iter().enumerate() {
            let reference = def.enabled(&self.marking);
            debug_assert_eq!(
                self.san.compiled.enabled(i, &self.marking),
                reference,
                "compiled enabling check for activity '{}' disagrees with \
                 the trait-dispatch reference — gate-program compilation bug",
                def.name
            );
            match def.timing {
                Timing::Timed(_) => {
                    debug_assert_eq!(
                        reference,
                        self.scheduled[i].is_some(),
                        "timed activity '{}' out of sync with its schedule — \
                         a gate predicate changed without any of its declared \
                         reads() places changing",
                        def.name
                    );
                }
                Timing::Instantaneous { .. } => {
                    debug_assert!(
                        !reference,
                        "instantaneous activity '{}' enabled after settling — \
                         a gate predicate changed without any of its declared \
                         reads() places changing",
                        def.name
                    );
                }
            }
        }
    }

    /// Draws activity `idx`'s firing delay and converts it to an
    /// absolute completion time, validating the sample.
    fn sample_delay(
        &mut self,
        idx: usize,
        delay: &crate::activity::Delay,
    ) -> Result<SimTime, SanError> {
        let span = self.prof.begin();
        let d = delay.sample(&self.marking, &mut self.rng);
        self.prof.end(HotPhase::DelaySampling, span);
        if !d.is_finite() || d < 0.0 {
            return Err(SanError::BadDelay {
                activity: self.san.activities[idx].name.clone(),
                value: d,
            });
        }
        Ok(self.now + SimTime::from_secs(d))
    }

    fn schedule_timed(
        &mut self,
        idx: usize,
        delay: &crate::activity::Delay,
    ) -> Result<(), SanError> {
        let at = self.sample_delay(idx, delay)?;
        let span = self.prof.begin();
        let ev = self.queue.schedule(at, ActivityId(idx));
        self.prof.end(HotPhase::QueueOps, span);
        self.scheduled[idx] = Some(ev);
        self.sampled_version[idx] = self.marking.version();
        Ok(())
    }
}

impl fmt::Debug for Simulator<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulator")
            .field("model", &self.san.name())
            .field("now", &self.now)
            .field("pending_events", &self.queue.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::Delay;
    use crate::gate::{InputGate, OutputGate};
    use crate::model::SanBuilder;
    use ckpt_stats::Dist;

    /// up --fail(exp 0.1)--> down --repair(exp 0.9)--> up
    fn repair_model() -> San {
        let mut b = SanBuilder::new("repair");
        let up = b.place("up", 1);
        let down = b.place("down", 0);
        b.timed_activity("fail", Delay::from(Dist::exponential(0.1)))
            .input_arc(up, 1)
            .output_arc(down, 1)
            .build();
        b.timed_activity("repair", Delay::from(Dist::exponential(0.9)))
            .input_arc(down, 1)
            .output_arc(up, 1)
            .build();
        b.build().unwrap()
    }

    #[test]
    fn repair_model_availability() {
        let san = repair_model();
        let up = san.place_by_name("up").unwrap();
        let mut sim = Simulator::new(&san, 1).unwrap();
        sim.add_reward(RewardSpec::rate("avail", move |m| {
            if m.has_token(up) {
                1.0
            } else {
                0.0
            }
        }))
        .unwrap();
        sim.run_for(SimTime::from_secs(200_000.0)).unwrap();
        let a = sim.reward_report().value("avail").unwrap().time_average();
        assert!((a - 0.9).abs() < 0.01, "availability {a}");
    }

    #[test]
    fn deterministic_cycle_counts_firings() {
        let mut b = SanBuilder::new("clock");
        let p = b.place("p", 1);
        let tick = b
            .timed_activity("tick", Delay::from(Dist::deterministic(2.0)))
            .input_arc(p, 1)
            .output_arc(p, 1)
            .build();
        let san = b.build().unwrap();
        let mut sim = Simulator::new(&san, 0).unwrap();
        sim.run_until(SimTime::from_secs(10.0)).unwrap();
        // Fires at t = 2, 4, 6, 8, 10.
        assert_eq!(sim.firing_count(tick), 5);
        assert_eq!(sim.now(), SimTime::from_secs(10.0));
    }

    #[test]
    fn instantaneous_priority_order() {
        // A timed source enables two instantaneous activities; the
        // higher-priority one must fire first and steal the token.
        let mut b = SanBuilder::new("prio");
        let src = b.place("src", 1);
        let trigger = b.place("trigger", 0);
        let hi = b.place("hi", 0);
        let lo = b.place("lo", 0);
        b.timed_activity("arm", Delay::from(Dist::deterministic(1.0)))
            .input_arc(src, 1)
            .output_arc(trigger, 1)
            .build();
        let low = b
            .instantaneous_activity("low", 1)
            .input_arc(trigger, 1)
            .output_arc(lo, 1)
            .build();
        let high = b
            .instantaneous_activity("high", 2)
            .input_arc(trigger, 1)
            .output_arc(hi, 1)
            .build();
        let san = b.build().unwrap();
        let mut sim = Simulator::new(&san, 0).unwrap();
        sim.run_until(SimTime::from_secs(5.0)).unwrap();
        assert_eq!(sim.firing_count(high), 1);
        assert_eq!(sim.firing_count(low), 0);
        assert!(sim.marking().has_token(hi));
        assert!(!sim.marking().has_token(lo));
    }

    #[test]
    fn instantaneous_livelock_is_detected() {
        // Two instantaneous activities ping-ponging a token forever.
        let mut b = SanBuilder::new("livelock");
        let a = b.place("a", 1);
        let c = b.place("c", 0);
        b.instantaneous_activity("ab", 0)
            .input_arc(a, 1)
            .output_arc(c, 1)
            .build();
        b.instantaneous_activity("ba", 0)
            .input_arc(c, 1)
            .output_arc(a, 1)
            .build();
        let san = b.build().unwrap();
        let err = Simulator::new(&san, 0).unwrap_err();
        assert!(matches!(err, SanError::InstantaneousLivelock { .. }));
    }

    #[test]
    fn disabling_aborts_timed_activity() {
        // "slow" would fire at t=10 but "blocker" disables it at t=1 by
        // stealing the shared token; "slow" must never fire.
        let mut b = SanBuilder::new("abort");
        let shared = b.place("shared", 1);
        let out = b.place("out", 0);
        let slow = b
            .timed_activity("slow", Delay::from(Dist::deterministic(10.0)))
            .input_arc(shared, 1)
            .output_arc(out, 1)
            .build();
        let fast = b
            .timed_activity("fast", Delay::from(Dist::deterministic(1.0)))
            .input_arc(shared, 1)
            .output_arc(out, 1)
            .build();
        let san = b.build().unwrap();
        let mut sim = Simulator::new(&san, 0).unwrap();
        sim.run_until(SimTime::from_secs(100.0)).unwrap();
        assert_eq!(sim.firing_count(fast), 1);
        assert_eq!(sim.firing_count(slow), 0);
    }

    #[test]
    fn resample_policy_tracks_marking_dependent_rate() {
        // Failure rate is 100x while "window" holds a token. The window
        // opens at t=5 (deterministic). With Resample, failures inside
        // the window occur at the high rate.
        let mut b = SanBuilder::new("modulated");
        let window = b.place("window", 0);
        let armed = b.place("armed", 1);
        let failures = b.place("failures", 0);
        let alive = b.place("alive", 1);
        b.timed_activity("open_window", Delay::from(Dist::deterministic(5.0)))
            .input_arc(armed, 1)
            .output_arc(window, 1)
            .build();
        let wid = window;
        let fail = b
            .timed_activity(
                "fail",
                Delay::from_fn(move |m, rng| {
                    let rate = if m.has_token(wid) { 100.0 } else { 0.01 };
                    rng.exponential(rate)
                }),
            )
            .reactivation(Reactivation::Resample)
            .input_arc(alive, 1)
            .output_arc(alive, 1)
            .output_arc(failures, 1)
            .build();
        let san = b.build().unwrap();
        let mut sim = Simulator::new(&san, 7).unwrap();
        sim.run_until(SimTime::from_secs(5.0)).unwrap();
        let before = sim.firing_count(fail);
        sim.run_until(SimTime::from_secs(6.0)).unwrap();
        let after = sim.firing_count(fail);
        // Expect ~100 failures in the one second inside the window and
        // almost none in the five seconds before it.
        assert!(before < 5, "failures before window: {before}");
        assert!(
            after - before > 50,
            "failures inside window: {}",
            after - before
        );
    }

    #[test]
    fn keep_policy_preserves_deterministic_timer() {
        // A deterministic "interval" timer must not be perturbed by other
        // activity firings while it counts down (Keep is the default).
        let mut b = SanBuilder::new("timer");
        let run = b.place("run", 1);
        let ticks = b.place("ticks", 0);
        let noise = b.place("noise", 1);
        let timer = b
            .timed_activity("interval", Delay::from(Dist::deterministic(10.0)))
            .input_arc(run, 1)
            .output_arc(run, 1)
            .output_arc(ticks, 1)
            .build();
        b.timed_activity("noisy", Delay::from(Dist::exponential(5.0)))
            .input_arc(noise, 1)
            .output_arc(noise, 1)
            .build();
        let san = b.build().unwrap();
        let mut sim = Simulator::new(&san, 3).unwrap();
        sim.run_until(SimTime::from_secs(100.0)).unwrap();
        assert_eq!(
            sim.firing_count(timer),
            10,
            "timer must tick exactly every 10 s"
        );
    }

    #[test]
    fn cases_split_probabilistically() {
        let mut b = SanBuilder::new("cases");
        let src = b.place("src", 1);
        let heads = b.place("heads", 0);
        let tails = b.place("tails", 0);
        b.timed_activity("flip", Delay::from(Dist::deterministic(1.0)))
            .input_arc(src, 1)
            .case(0.25, |c| c.output_arc(heads, 1).output_arc(src, 1))
            .case(0.75, |c| c.output_arc(tails, 1).output_arc(src, 1))
            .build();
        let san = b.build().unwrap();
        let mut sim = Simulator::new(&san, 11).unwrap();
        sim.run_until(SimTime::from_secs(100_000.0)).unwrap();
        let h = sim.marking().tokens(san.place_by_name("heads").unwrap()) as f64;
        let t = sim.marking().tokens(san.place_by_name("tails").unwrap()) as f64;
        let frac = h / (h + t);
        assert!((frac - 0.25).abs() < 0.02, "heads fraction {frac}");
    }

    #[test]
    fn input_and_output_gates_run_in_order() {
        let mut b = SanBuilder::new("gates");
        let src = b.place("src", 1);
        let staged = b.place("staged", 0);
        let done = b.place("done", 0);
        b.timed_activity("go", Delay::from(Dist::deterministic(1.0)))
            .input_arc(src, 1)
            .input_gate(InputGate::new(
                "stage",
                |_| true,
                move |m| m.add_tokens(staged, 2),
            ))
            .output_gate(OutputGate::new("finish", move |m| {
                let n = m.tokens(staged);
                m.remove_tokens(staged, n);
                m.add_tokens(done, n);
            }))
            .build();
        let san = b.build().unwrap();
        let mut sim = Simulator::new(&san, 0).unwrap();
        sim.run_until(SimTime::from_secs(2.0)).unwrap();
        assert_eq!(sim.marking().tokens(done), 2);
        assert_eq!(sim.marking().tokens(staged), 0);
    }

    #[test]
    fn fluid_integration_and_reset() {
        let mut b = SanBuilder::new("fluid");
        let on = b.place("on", 1);
        let off = b.place("off", 0);
        let acc = b.fluid_place("acc", 0.0);
        let on_c = on;
        b.flow(acc, move |m| if m.has_token(on_c) { 2.0 } else { 0.0 });
        b.timed_activity("stop", Delay::from(Dist::deterministic(3.0)))
            .input_arc(on, 1)
            .output_arc(off, 1)
            .build();
        let san = b.build().unwrap();
        let mut sim = Simulator::new(&san, 0).unwrap();
        sim.run_until(SimTime::from_secs(10.0)).unwrap();
        // Flow of 2.0 for 3 seconds, then off.
        assert!((sim.marking().fluid(acc) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn impulse_rewards_fire_with_activity() {
        let san = repair_model();
        let fail = san.activity_by_name("fail").unwrap();
        let mut sim = Simulator::new(&san, 5).unwrap();
        sim.add_reward(RewardSpec::impulse_only("failures").with_impulse(fail, |_| 1.0))
            .unwrap();
        sim.run_for(SimTime::from_secs(100_000.0)).unwrap();
        let v = sim.reward_report().value("failures").unwrap();
        assert_eq!(v.total as u64, v.impulse_count);
        // Long-run failure frequency: up fraction (0.9) × rate 0.1 = 0.09/s.
        let freq = v.total / 100_000.0;
        assert!((freq - 0.09).abs() < 0.005, "failure frequency {freq}");
    }

    #[test]
    fn reset_rewards_discards_transient() {
        let san = repair_model();
        let up = san.place_by_name("up").unwrap();
        let mut sim = Simulator::new(&san, 2).unwrap();
        sim.add_reward(RewardSpec::rate("avail", move |m| {
            if m.has_token(up) {
                1.0
            } else {
                0.0
            }
        }))
        .unwrap();
        sim.run_for(SimTime::from_secs(1_000.0)).unwrap();
        sim.reset_rewards();
        let r = sim.reward_report().value("avail").unwrap();
        assert_eq!(r.total, 0.0);
        assert_eq!(r.window, 0.0);
        sim.run_for(SimTime::from_secs(50_000.0)).unwrap();
        let r = sim.reward_report().value("avail").unwrap();
        assert!((r.window - 50_000.0).abs() < 1e-6);
        assert!((r.time_average() - 0.9).abs() < 0.02);
    }

    #[test]
    fn duplicate_reward_is_rejected() {
        let san = repair_model();
        let mut sim = Simulator::new(&san, 0).unwrap();
        sim.add_reward(RewardSpec::rate("x", |_| 1.0)).unwrap();
        let err = sim.add_reward(RewardSpec::rate("x", |_| 2.0)).unwrap_err();
        assert!(matches!(err, SanError::DuplicateReward { .. }));
    }

    #[test]
    fn identical_seeds_reproduce_exactly() {
        let san = repair_model();
        let run = |seed| {
            let mut sim = Simulator::new(&san, seed).unwrap();
            sim.run_for(SimTime::from_secs(10_000.0)).unwrap();
            (
                sim.firing_count(san.activity_by_name("fail").unwrap()),
                sim.firing_count(san.activity_by_name("repair").unwrap()),
            )
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn bad_delay_is_reported() {
        let mut b = SanBuilder::new("bad");
        let p = b.place("p", 1);
        b.timed_activity("nan", Delay::from_fn(|_, _| f64::NAN))
            .input_arc(p, 1)
            .output_arc(p, 1)
            .build();
        let san = b.build().unwrap();
        let err = match Simulator::new(&san, 0) {
            Err(e) => e,
            Ok(_) => panic!("expected BadDelay"),
        };
        assert!(matches!(err, SanError::BadDelay { .. }));
    }

    #[test]
    fn run_until_condition_stops_at_first_hit() {
        let san = repair_model();
        let down = san.place_by_name("down").unwrap();
        let mut sim = Simulator::new(&san, 4).unwrap();
        let hit = sim
            .run_until_condition(|m| m.has_token(down), SimTime::from_hours(10.0))
            .unwrap();
        let t = hit.expect("a failure occurs well within 10 h at rate 0.1/s");
        assert_eq!(sim.now(), t);
        assert!(sim.marking().has_token(down));
        // With an immediate condition the clock does not move.
        let t2 = sim
            .run_until_condition(|m| m.has_token(down), SimTime::from_hours(20.0))
            .unwrap();
        assert_eq!(t2, Some(t));
        // An impossible condition runs to the horizon and returns None.
        let none = sim
            .run_until_condition(|_| false, sim.now() + SimTime::from_secs(5.0))
            .unwrap();
        assert_eq!(none, None);
    }

    #[test]
    fn debug_output() {
        let san = repair_model();
        let sim = Simulator::new(&san, 0).unwrap();
        assert!(format!("{sim:?}").contains("repair"));
    }

    #[test]
    fn declared_rate_reward_is_bit_identical_to_conservative() {
        // Declaring the support places must change nothing but the cost:
        // cached and freshly-evaluated rate rewards accumulate the exact
        // same bits, under both scheduling strategies.
        let san = repair_model();
        let up = san.place_by_name("up").unwrap();
        let run = |declare: bool, scheduling: Scheduling| {
            let mut sim = Simulator::with_scheduling(&san, 6, scheduling).unwrap();
            let spec = RewardSpec::rate("avail", move |m| if m.has_token(up) { 1.0 } else { 0.0 });
            let spec = if declare { spec.reads(&[up]) } else { spec };
            sim.add_reward(spec).unwrap();
            sim.run_for(SimTime::from_secs(50_000.0)).unwrap();
            sim.reward_report().value("avail").unwrap().total
        };
        let reference = run(false, Scheduling::FullScan);
        for scheduling in [Scheduling::FullScan, Scheduling::Incremental] {
            assert_eq!(run(true, scheduling).to_bits(), reference.to_bits());
            assert_eq!(run(false, scheduling).to_bits(), reference.to_bits());
        }
    }

    #[test]
    fn ziggurat_sampling_reproduces_availability() {
        // Ziggurat is distribution-equivalent, not bit-identical: the
        // repair model's long-run availability must still come out at
        // ~0.9 within Monte-Carlo noise.
        let san = repair_model();
        let up = san.place_by_name("up").unwrap();
        let mut sim =
            Simulator::with_options(&san, 1, Scheduling::Incremental, Sampling::Ziggurat).unwrap();
        assert_eq!(sim.sampling(), Sampling::Ziggurat);
        sim.add_reward(RewardSpec::rate("avail", move |m| {
            if m.has_token(up) {
                1.0
            } else {
                0.0
            }
        }))
        .unwrap();
        sim.run_for(SimTime::from_secs(200_000.0)).unwrap();
        let a = sim.reward_report().value("avail").unwrap().time_average();
        assert!((a - 0.9).abs() < 0.01, "availability {a}");
    }

    /// Repair model with the failure timer marked `Resample` (plain
    /// exponential, declared dependencies) — the shape lazy mode elides
    /// — plus an unrelated `Keep` noise timer whose firings dirty the
    /// marking while the failure timer stays enabled. Under eager
    /// resampling every noise firing redraws the failure delay; under
    /// lazy mode those redraws are all elided.
    fn resample_repair_model() -> San {
        let mut b = SanBuilder::new("resample_repair");
        let up = b.place("up", 1);
        let down = b.place("down", 0);
        let noise = b.place("noise", 1);
        b.timed_activity("fail", Delay::from(Dist::exponential(0.1)))
            .reactivation(Reactivation::Resample)
            .input_arc(up, 1)
            .output_arc(down, 1)
            .build();
        b.timed_activity("repair", Delay::from(Dist::exponential(0.9)))
            .reactivation(Reactivation::Resample)
            .input_arc(down, 1)
            .output_arc(up, 1)
            .build();
        b.timed_activity("noisy", Delay::from(Dist::exponential(2.0)))
            .input_arc(noise, 1)
            .output_arc(noise, 1)
            .build();
        b.build().unwrap()
    }

    #[test]
    fn reactivation_mode_round_trips_names() {
        for mode in [ReactivationMode::Resample, ReactivationMode::Lazy] {
            assert_eq!(ReactivationMode::parse(mode.name()), Ok(mode));
            assert_eq!(format!("{mode}"), mode.name());
        }
        assert!(ReactivationMode::parse("eager").is_err());
        assert_eq!(ReactivationMode::default(), ReactivationMode::Resample);
    }

    #[test]
    fn lazy_reactivation_reproduces_availability() {
        // Lazy is distribution-equivalent: the resample repair model's
        // long-run availability must still come out at ~0.9.
        let san = resample_repair_model();
        let up = san.place_by_name("up").unwrap();
        let mut sim = Simulator::with_exec_options(
            &san,
            1,
            Scheduling::Incremental,
            Sampling::InverseCdf,
            ReactivationMode::Lazy,
            QueueKind::IndexedHeap,
        )
        .unwrap();
        assert_eq!(sim.reactivation(), ReactivationMode::Lazy);
        sim.add_reward(RewardSpec::rate("avail", move |m| {
            if m.has_token(up) {
                1.0
            } else {
                0.0
            }
        }))
        .unwrap();
        sim.run_for(SimTime::from_secs(200_000.0)).unwrap();
        let a = sim.reward_report().value("avail").unwrap().time_average();
        assert!((a - 0.9).abs() < 0.01, "availability {a}");
    }

    #[test]
    fn lazy_full_scan_matches_lazy_incremental_exactly() {
        // Elided visits draw no randomness and touch no queue state, so
        // the two scheduling strategies stay bit-identical under lazy
        // mode exactly as they are under eager resampling.
        let san = resample_repair_model();
        let run = |scheduling| {
            let mut sim = Simulator::with_exec_options(
                &san,
                9,
                scheduling,
                Sampling::InverseCdf,
                ReactivationMode::Lazy,
                QueueKind::IndexedHeap,
            )
            .unwrap();
            sim.run_for(SimTime::from_secs(50_000.0)).unwrap();
            (
                sim.firing_count(san.activity_by_name("fail").unwrap()),
                sim.firing_count(san.activity_by_name("repair").unwrap()),
            )
        };
        assert_eq!(run(Scheduling::FullScan), run(Scheduling::Incremental));
    }

    #[test]
    fn lazy_keeps_marking_dependent_timers_eager() {
        // Same modulated-rate model as the Resample test: under lazy
        // mode the closure delay must still be redrawn on the window
        // opening, or the 100x rate burst would be missed.
        let mut b = SanBuilder::new("modulated_lazy");
        let window = b.place("window", 0);
        let armed = b.place("armed", 1);
        let failures = b.place("failures", 0);
        let alive = b.place("alive", 1);
        b.timed_activity("open_window", Delay::from(Dist::deterministic(5.0)))
            .input_arc(armed, 1)
            .output_arc(window, 1)
            .build();
        let wid = window;
        let fail = b
            .timed_activity(
                "fail",
                Delay::from_fn(move |m, rng| {
                    let rate = if m.has_token(wid) { 100.0 } else { 0.01 };
                    rng.exponential(rate)
                }),
            )
            .reactivation(Reactivation::Resample)
            .input_arc(alive, 1)
            .output_arc(alive, 1)
            .output_arc(failures, 1)
            .build();
        let san = b.build().unwrap();
        let mut sim = Simulator::with_exec_options(
            &san,
            7,
            Scheduling::Incremental,
            Sampling::InverseCdf,
            ReactivationMode::Lazy,
            QueueKind::IndexedHeap,
        )
        .unwrap();
        sim.run_until(SimTime::from_secs(5.0)).unwrap();
        let before = sim.firing_count(fail);
        sim.run_until(SimTime::from_secs(6.0)).unwrap();
        let after = sim.firing_count(fail);
        assert!(before < 5, "failures before window: {before}");
        assert!(
            after - before > 50,
            "failures inside window: {}",
            after - before
        );
    }

    #[test]
    fn calendar_queue_is_bit_identical_to_heap() {
        // Both backends pop the same (time, FIFO) order, so switching
        // the backend changes nothing observable — on the eager path
        // and on the lazy path alike.
        let san = resample_repair_model();
        let run = |reactivation, queue| {
            let mut sim = Simulator::with_exec_options(
                &san,
                13,
                Scheduling::Incremental,
                Sampling::InverseCdf,
                reactivation,
                queue,
            )
            .unwrap();
            sim.run_for(SimTime::from_secs(50_000.0)).unwrap();
            (
                sim.firing_count(san.activity_by_name("fail").unwrap()),
                sim.firing_count(san.activity_by_name("repair").unwrap()),
            )
        };
        for mode in [ReactivationMode::Resample, ReactivationMode::Lazy] {
            assert_eq!(
                run(mode, QueueKind::IndexedHeap),
                run(mode, QueueKind::Calendar),
                "queue backends diverged under {mode}"
            );
        }
        // And the lazy stream really is a different stream.
        assert_ne!(
            run(ReactivationMode::Resample, QueueKind::IndexedHeap),
            run(ReactivationMode::Lazy, QueueKind::IndexedHeap)
        );
    }

    #[test]
    fn phase_profile_matches_build_features() {
        let san = repair_model();
        let mut sim = Simulator::new(&san, 12).unwrap();
        sim.run_for(SimTime::from_secs(1_000.0)).unwrap();
        if ckpt_des::prof::ENABLED {
            assert!(!sim.phase_profile().is_empty());
            let taken = sim.take_phase_profile();
            assert!(taken.total_nanos() > 0 || taken.counts.iter().any(|&c| c > 0));
        } else {
            assert!(sim.phase_profile().is_empty());
        }
        assert!(sim.phase_profile().is_empty() || ckpt_des::prof::ENABLED);
    }
}
