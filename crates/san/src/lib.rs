//! Stochastic Activity Networks (SANs).
//!
//! This crate reimplements, from scratch, the subset of the SAN formalism
//! that the DSN'05 paper's Möbius models rely on:
//!
//! * **places** holding discrete tokens ([`Marking`]), plus *fluid
//!   places* — continuous accumulators integrated between events, used
//!   for useful-work accounting;
//! * **activities** — timed (any [`Delay`]: a distribution from
//!   `ckpt-stats` or a marking-dependent sampler) or instantaneous with a
//!   priority, with probabilistic **cases** choosing among output
//!   effects;
//! * **input gates** (enabling predicate + marking transformation) and
//!   **output gates** (marking transformation);
//! * **composition by state sharing**: submodels built against the same
//!   [`SanBuilder`] share places by name, exactly how the paper's
//!   submodels are "integrated into an overall model";
//! * **reward variables** — rate rewards integrated over time and
//!   impulse rewards collected on activity firings — evaluated by the
//!   discrete-event [`Simulator`] with transient discard, matching the
//!   paper's steady-state simulation setup.
//!
//! # Example: a tiny repair model
//!
//! ```
//! use ckpt_san::{Delay, SanBuilder, RewardSpec, Simulator};
//! use ckpt_stats::Dist;
//!
//! let mut b = SanBuilder::new("machine");
//! let up = b.place("up", 1);
//! let down = b.place("down", 0);
//!
//! b.timed_activity("fail", Delay::from(Dist::exponential(0.1)))
//!     .input_arc(up, 1)
//!     .output_arc(down, 1)
//!     .build();
//! b.timed_activity("repair", Delay::from(Dist::exponential(0.9)))
//!     .input_arc(down, 1)
//!     .output_arc(up, 1)
//!     .build();
//!
//! let san = b.build()?;
//! let mut sim = Simulator::new(&san, 42)?;
//! sim.add_reward(RewardSpec::rate("availability", move |m| {
//!     if m.tokens(up) > 0 { 1.0 } else { 0.0 }
//! }))?;
//! sim.run_for(ckpt_des::SimTime::from_secs(10_000.0))?;
//! let report = sim.reward_report();
//! let a = report.value("availability")?.time_average();
//! assert!((a - 0.9).abs() < 0.02, "availability {a}");
//! # Ok::<(), ckpt_san::SanError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activity;
mod compiled;
pub mod compose;
pub mod dot;
mod error;
mod gate;
mod marking;
mod model;
mod pred;
mod reward;
mod simulator;

pub use activity::{ActivityId, Delay, DelayFn, Reactivation, Timing};
pub use error::SanError;
pub use gate::{InputGate, OutputGate};
pub use marking::{FluidId, Marking, PlaceId};
pub use model::{ActivityBuilder, CaseBuilder, San, SanBuilder};
pub use pred::Pred;
pub use reward::{RewardReport, RewardSpec, RewardValue};
pub use simulator::{ReactivationMode, SanObserver, Scheduling, Simulator};

// The sampler and queue-backend choices travel with the simulator API:
// `Simulator::with_exec_options` takes them, so callers should not need
// a direct `ckpt-des` dependency.
pub use ckpt_des::{QueueKind, Sampling};
