//! Error type for SAN construction and simulation.

use std::fmt;

/// Errors raised while building a [`San`](crate::San) or running a
/// [`Simulator`](crate::Simulator).
#[derive(Debug, Clone, PartialEq)]
pub enum SanError {
    /// An activity was defined with no output effect at all (no cases,
    /// arcs, or gates) — almost always a model bug.
    ActivityWithoutEffect {
        /// Name of the offending activity.
        activity: String,
    },
    /// Two places were registered with the same name but different
    /// initial markings.
    ConflictingInitialMarking {
        /// Name of the place.
        place: String,
    },
    /// A case weight evaluated to a non-finite or negative value, or all
    /// weights were zero.
    BadCaseWeights {
        /// Name of the offending activity.
        activity: String,
    },
    /// A timed activity's delay sampler returned a negative or non-finite
    /// duration.
    BadDelay {
        /// Name of the offending activity.
        activity: String,
        /// The value the sampler produced.
        value: f64,
    },
    /// More than `limit` instantaneous firings occurred without time
    /// advancing — the net almost certainly contains an instantaneous
    /// cycle.
    InstantaneousLivelock {
        /// The configured firing limit that was exceeded.
        limit: u32,
    },
    /// The model contains no activities.
    EmptyModel,
    /// A reward variable with the given name was requested but never
    /// registered.
    UnknownReward {
        /// The requested name.
        name: String,
    },
    /// A reward variable with the given name was registered twice.
    DuplicateReward {
        /// The duplicated name.
        name: String,
    },
}

impl fmt::Display for SanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SanError::ActivityWithoutEffect { activity } => {
                write!(f, "activity '{activity}' has no output arcs, gates, or cases")
            }
            SanError::ConflictingInitialMarking { place } => write!(
                f,
                "place '{place}' registered twice with different initial markings"
            ),
            SanError::BadCaseWeights { activity } => {
                write!(f, "activity '{activity}' produced invalid case weights")
            }
            SanError::BadDelay { activity, value } => {
                write!(f, "activity '{activity}' sampled an invalid delay {value}")
            }
            SanError::InstantaneousLivelock { limit } => write!(
                f,
                "more than {limit} instantaneous firings without time advancing (instantaneous cycle?)"
            ),
            SanError::EmptyModel => write!(f, "model defines no activities"),
            SanError::UnknownReward { name } => {
                write!(f, "no reward variable named '{name}'")
            }
            SanError::DuplicateReward { name } => {
                write!(f, "reward variable '{name}' registered twice")
            }
        }
    }
}

impl std::error::Error for SanError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_offenders() {
        let e = SanError::ActivityWithoutEffect {
            activity: "dump".into(),
        };
        assert!(e.to_string().contains("dump"));
        let e = SanError::BadDelay {
            activity: "coord".into(),
            value: -1.0,
        };
        assert!(e.to_string().contains("coord"));
        assert!(e.to_string().contains("-1"));
        let e = SanError::InstantaneousLivelock { limit: 10_000 };
        assert!(e.to_string().contains("10000"));
    }
}
