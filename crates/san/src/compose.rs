//! Namespaced submodel composition.
//!
//! [`SanBuilder`] composes submodels by *state sharing*: same place name,
//! same place. When building reusable submodels (Möbius' `Rep`/`Join`
//! style), name collisions between unrelated internals become a hazard.
//! [`Namespace`] scopes a submodel's places under a prefix while leaving
//! an explicit list of *shared* names global — making the sharing
//! interface of each submodel explicit and checkable.
//!
//! # Example
//!
//! ```
//! use ckpt_san::{compose::Namespace, Delay, SanBuilder, Simulator};
//! use ckpt_stats::Dist;
//!
//! /// A reusable two-state worker that consumes tokens from the shared
//! /// "jobs" place.
//! fn worker(ns: &mut Namespace<'_>, rate: f64) {
//!     let idle = ns.place("idle", 1);        // private: prefixed
//!     let busy = ns.place("busy", 0);        // private: prefixed
//!     let jobs = ns.place("jobs", 0);        // shared: global name
//!     ns.timed_activity("grab", Delay::from(Dist::exponential(rate)))
//!         .input_arc(idle, 1)
//!         .input_arc(jobs, 1)
//!         .output_arc(busy, 1)
//!         .build();
//!     ns.timed_activity("finish", Delay::from(Dist::exponential(rate)))
//!         .input_arc(busy, 1)
//!         .output_arc(idle, 1)
//!         .build();
//! }
//!
//! let mut b = SanBuilder::new("farm");
//! let jobs = b.place("jobs", 10);
//! for i in 0..3 {
//!     let mut ns = Namespace::new(&mut b, format!("w{i}"), &["jobs"]);
//!     worker(&mut ns, 1.0);
//! }
//! let san = b.build()?;
//! // Three private "idle" places exist, one shared "jobs".
//! assert!(san.place_by_name("w0/idle").is_some());
//! assert!(san.place_by_name("w2/idle").is_some());
//! assert_eq!(san.place_by_name("jobs"), Some(jobs));
//!
//! let mut sim = Simulator::new(&san, 1)?;
//! sim.run_for(ckpt_des::SimTime::from_secs(100.0))?;
//! assert_eq!(sim.marking().tokens(jobs), 0, "all jobs grabbed");
//! # Ok::<(), ckpt_san::SanError>(())
//! ```

use crate::activity::Delay;
use crate::marking::{FluidId, Marking, PlaceId};
use crate::model::{ActivityBuilder, SanBuilder};
use std::collections::HashSet;

/// A prefixed view of a [`SanBuilder`] for one submodel instance.
#[derive(Debug)]
pub struct Namespace<'a> {
    builder: &'a mut SanBuilder,
    prefix: String,
    shared: HashSet<String>,
}

impl<'a> Namespace<'a> {
    /// Creates a namespace with the given prefix; names in `shared`
    /// resolve globally (unprefixed).
    pub fn new(
        builder: &'a mut SanBuilder,
        prefix: impl Into<String>,
        shared: &[&str],
    ) -> Namespace<'a> {
        Namespace {
            builder,
            prefix: prefix.into(),
            shared: shared.iter().map(|s| (*s).to_string()).collect(),
        }
    }

    /// The fully qualified name `prefix/name`, or just `name` when it is
    /// in the shared set.
    #[must_use]
    pub fn qualify(&self, name: &str) -> String {
        if self.shared.contains(name) {
            name.to_string()
        } else {
            format!("{}/{name}", self.prefix)
        }
    }

    /// Registers (or resolves) a place under this namespace's scoping
    /// rules.
    ///
    /// For **shared** names that the enclosing model has already
    /// registered, the existing place is returned and `initial` is
    /// ignored — the owner of the shared state declares its initial
    /// marking, submodels merely connect to it.
    pub fn place(&mut self, name: &str, initial: u64) -> PlaceId {
        let q = self.qualify(name);
        if self.shared.contains(name) {
            if let Some(id) = self.builder.existing_place(&q) {
                return id;
            }
        }
        self.builder.place(q, initial)
    }

    /// Registers (or resolves) a fluid place.
    pub fn fluid_place(&mut self, name: &str, initial: f64) -> FluidId {
        let q = self.qualify(name);
        self.builder.fluid_place(q, initial)
    }

    /// Attaches a flow to a fluid place (ids are global, so no scoping
    /// applies).
    pub fn flow<F>(&mut self, fluid: FluidId, rate: F)
    where
        F: Fn(&Marking) -> f64 + Send + Sync + 'static,
    {
        self.builder.flow(fluid, rate);
    }

    /// Starts a timed activity named `prefix/name`.
    pub fn timed_activity(&mut self, name: &str, delay: Delay) -> ActivityBuilder<'_> {
        let q = format!("{}/{name}", self.prefix);
        self.builder.timed_activity(q, delay)
    }

    /// Starts an instantaneous activity named `prefix/name`.
    pub fn instantaneous_activity(&mut self, name: &str, priority: u32) -> ActivityBuilder<'_> {
        let q = format!("{}/{name}", self.prefix);
        self.builder.instantaneous_activity(q, priority)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckpt_stats::Dist;

    #[test]
    fn private_places_are_prefixed_shared_are_not() {
        let mut b = SanBuilder::new("m");
        let global = b.place("bus", 0);
        let (p0, s0) = {
            let mut ns = Namespace::new(&mut b, "a", &["bus"]);
            (ns.place("state", 1), ns.place("bus", 0))
        };
        let (p1, s1) = {
            let mut ns = Namespace::new(&mut b, "b", &["bus"]);
            (ns.place("state", 1), ns.place("bus", 0))
        };
        assert_ne!(p0, p1, "private places must be distinct");
        assert_eq!(s0, global);
        assert_eq!(s1, global);
    }

    #[test]
    fn qualify_rules() {
        let mut b = SanBuilder::new("m");
        let ns = Namespace::new(&mut b, "sub", &["shared"]);
        assert_eq!(ns.qualify("x"), "sub/x");
        assert_eq!(ns.qualify("shared"), "shared");
    }

    #[test]
    fn replicated_submodels_run_independently() {
        let mut b = SanBuilder::new("reps");
        let done = b.place("done", 0);
        for i in 0..4 {
            let mut ns = Namespace::new(&mut b, format!("r{i}"), &["done"]);
            let start = ns.place("start", 1);
            let done_shared = ns.place("done", 0);
            ns.timed_activity("work", Delay::from(Dist::deterministic(f64::from(i + 1))))
                .input_arc(start, 1)
                .output_arc(done_shared, 1)
                .build();
        }
        let san = b.build().unwrap();
        assert_eq!(san.activity_count(), 4);
        let mut sim = crate::Simulator::new(&san, 0).unwrap();
        sim.run_for(ckpt_des::SimTime::from_secs(10.0)).unwrap();
        assert_eq!(sim.marking().tokens(done), 4);
    }
}
