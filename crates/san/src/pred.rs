//! Declarative gate predicates.
//!
//! A [`Pred`] is a small boolean expression tree over discrete place
//! token counts. Unlike a closure ([`crate::InputGate::new`]), a `Pred`
//! is *inspectable*: the builder derives the gate's read set from it
//! automatically (no hand-maintained [`crate::InputGate::reads`]
//! declaration to get wrong), and [`San::build`](crate::SanBuilder::build)
//! compiles it into a flat postfix program evaluated with no dynamic
//! dispatch in the hot loop (see `compiled.rs`).
//!
//! Closure gates keep working exactly as before; `Pred` is an opt-in
//! fast path for the overwhelmingly common "token-count comparison"
//! predicates.
//!
//! ```
//! use ckpt_san::{Pred, SanBuilder};
//!
//! let mut b = SanBuilder::new("demo");
//! let busy = b.place("busy", 0);
//! let down = b.place("down", 0);
//! // enabled while busy ≥ 1 and down == 0
//! let pred = Pred::has(busy).and(Pred::empty(down));
//! assert_eq!(pred.reads(), vec![busy, down]);
//! ```

use crate::marking::{Marking, PlaceId};

/// A declarative enabling predicate over discrete place token counts.
///
/// Build leaves with [`Pred::has`] / [`Pred::empty`] /
/// [`Pred::at_least`], combine with [`Pred::and`] / [`Pred::or`] /
/// [`Pred::negate`]. Attach to an activity via
/// [`crate::InputGate::when`] or
/// [`ActivityBuilder::enabled_if`](crate::ActivityBuilder::enabled_if).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pred {
    /// `tokens(place) >= 1`.
    Has(PlaceId),
    /// `tokens(place) == 0`.
    Empty(PlaceId),
    /// `tokens(place) >= n`.
    AtLeast(PlaceId, u64),
    /// Logical negation.
    Not(Box<Pred>),
    /// Conjunction; an empty list is `true`.
    All(Vec<Pred>),
    /// Disjunction; an empty list is `false`.
    Any(Vec<Pred>),
}

impl Pred {
    /// `tokens(place) >= 1`.
    #[must_use]
    pub fn has(place: PlaceId) -> Pred {
        Pred::Has(place)
    }

    /// `tokens(place) == 0`.
    #[must_use]
    pub fn empty(place: PlaceId) -> Pred {
        Pred::Empty(place)
    }

    /// `tokens(place) >= n`.
    #[must_use]
    pub fn at_least(place: PlaceId, n: u64) -> Pred {
        Pred::AtLeast(place, n)
    }

    /// `self && other`.
    #[must_use]
    pub fn and(self, other: Pred) -> Pred {
        match self {
            Pred::All(mut xs) => {
                xs.push(other);
                Pred::All(xs)
            }
            first => Pred::All(vec![first, other]),
        }
    }

    /// `self || other`.
    #[must_use]
    pub fn or(self, other: Pred) -> Pred {
        match self {
            Pred::Any(mut xs) => {
                xs.push(other);
                Pred::Any(xs)
            }
            first => Pred::Any(vec![first, other]),
        }
    }

    /// `!self`.
    #[must_use]
    pub fn negate(self) -> Pred {
        match self {
            Pred::Has(p) => Pred::Empty(p),
            Pred::Empty(p) => Pred::Has(p),
            other => Pred::Not(Box::new(other)),
        }
    }

    /// Evaluates the predicate against a marking (reference semantics;
    /// the hot loop runs the compiled form instead).
    #[must_use]
    pub fn eval(&self, marking: &Marking) -> bool {
        match self {
            Pred::Has(p) => marking.tokens(*p) >= 1,
            Pred::Empty(p) => marking.tokens(*p) == 0,
            Pred::AtLeast(p, n) => marking.tokens(*p) >= *n,
            Pred::Not(inner) => !inner.eval(marking),
            Pred::All(xs) => xs.iter().all(|x| x.eval(marking)),
            Pred::Any(xs) => xs.iter().any(|x| x.eval(marking)),
        }
    }

    /// The discrete places this predicate reads, sorted and de-duplicated.
    ///
    /// This *is* the gate's [`crate::InputGate::reads`] declaration —
    /// derived, so it can never under-declare.
    #[must_use]
    pub fn reads(&self) -> Vec<PlaceId> {
        let mut places = Vec::new();
        self.collect_reads(&mut places);
        places.sort_unstable();
        places.dedup();
        places
    }

    fn collect_reads(&self, out: &mut Vec<PlaceId>) {
        match self {
            Pred::Has(p) | Pred::Empty(p) | Pred::AtLeast(p, _) => out.push(*p),
            Pred::Not(inner) => inner.collect_reads(out),
            Pred::All(xs) | Pred::Any(xs) => {
                for x in xs {
                    x.collect_reads(out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn marking() -> Marking {
        Marking::new(vec![2, 0, 1], vec![])
    }

    #[test]
    fn leaves_evaluate() {
        let m = marking();
        assert!(Pred::has(PlaceId(0)).eval(&m));
        assert!(!Pred::has(PlaceId(1)).eval(&m));
        assert!(Pred::empty(PlaceId(1)).eval(&m));
        assert!(!Pred::empty(PlaceId(2)).eval(&m));
        assert!(Pred::at_least(PlaceId(0), 2).eval(&m));
        assert!(!Pred::at_least(PlaceId(0), 3).eval(&m));
        assert!(Pred::at_least(PlaceId(1), 0).eval(&m));
    }

    #[test]
    fn combinators_evaluate() {
        let m = marking();
        let t = Pred::has(PlaceId(0));
        let f = Pred::has(PlaceId(1));
        assert!(t.clone().and(Pred::has(PlaceId(2))).eval(&m));
        assert!(!t.clone().and(f.clone()).eval(&m));
        assert!(t.clone().or(f.clone()).eval(&m));
        assert!(f.clone().or(t.clone()).eval(&m));
        assert!(!f.clone().or(Pred::has(PlaceId(1))).eval(&m));
        assert!(f.negate().eval(&m));
        assert!(!t.negate().eval(&m));
        assert!(Pred::All(vec![]).eval(&m));
        assert!(!Pred::Any(vec![]).eval(&m));
    }

    #[test]
    fn negate_folds_leaf_duals() {
        assert_eq!(Pred::has(PlaceId(3)).negate(), Pred::empty(PlaceId(3)));
        assert_eq!(Pred::empty(PlaceId(3)).negate(), Pred::has(PlaceId(3)));
        let deep = Pred::at_least(PlaceId(1), 2).negate();
        assert!(matches!(deep, Pred::Not(_)));
        let m = marking();
        assert!(deep.eval(&m));
    }

    #[test]
    fn and_or_chains_flatten() {
        let p = Pred::has(PlaceId(0))
            .and(Pred::has(PlaceId(1)))
            .and(Pred::has(PlaceId(2)));
        assert!(matches!(&p, Pred::All(xs) if xs.len() == 3));
        let q = Pred::has(PlaceId(0))
            .or(Pred::has(PlaceId(1)))
            .or(Pred::has(PlaceId(2)));
        assert!(matches!(&q, Pred::Any(xs) if xs.len() == 3));
    }

    #[test]
    fn reads_are_sorted_and_deduped() {
        let p = Pred::has(PlaceId(2))
            .and(Pred::empty(PlaceId(0)))
            .and(Pred::at_least(PlaceId(2), 3))
            .or(Pred::has(PlaceId(1)).negate());
        assert_eq!(p.reads(), vec![PlaceId(0), PlaceId(1), PlaceId(2)]);
    }
}
