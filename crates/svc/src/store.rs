//! The content-addressed job store: one directory, two files per job.
//!
//! A job is identified by its spec's resume fingerprint
//! ([`ckpt_harness::ExperimentSpec::fingerprint`]); everything the
//! store holds for fingerprint `fp` lives under the store root as
//!
//! * `job-<fp>.result.json` — the finished result document, written
//!   atomically ([`ckpt_harness::atomic_write`]). Its *presence* is the
//!   completeness marker: lookups serve these bytes verbatim, so a
//!   cache hit is byte-identical to the run that produced it.
//! * `job-<fp>.journal.json` — the replication journal
//!   ([`ckpt_harness::SweepJournal`], fingerprint-namespaced via
//!   [`SweepJournal::store_path`]). A journal without a result file is
//!   an *incomplete* job: it is resumed (cached replications replayed,
//!   missing ones re-run), never trusted as a finished result.

use ckpt_harness::snapshot::SnapshotError;
use ckpt_harness::{atomic_write, CkptError, SweepJournal};
use std::path::{Path, PathBuf};

/// Handle to a store directory. Cheap to clone; all state is on disk.
#[derive(Debug, Clone)]
pub struct JobStore {
    root: PathBuf,
}

impl JobStore {
    /// Opens (creating if needed) the store rooted at `root`.
    ///
    /// # Errors
    ///
    /// [`CkptError::Io`] when the directory cannot be created.
    pub fn open(root: &Path) -> Result<JobStore, CkptError> {
        std::fs::create_dir_all(root).map_err(|e| CkptError::Io {
            path: root.display().to_string(),
            message: e.to_string(),
        })?;
        Ok(JobStore {
            root: root.to_path_buf(),
        })
    }

    /// The store's root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// File name of the result document for `fingerprint`.
    #[must_use]
    pub fn result_file_name(fingerprint: u64) -> String {
        format!("job-{fingerprint:016x}.result.json")
    }

    /// Path of the result document for `fingerprint`.
    #[must_use]
    pub fn result_path(&self, fingerprint: u64) -> PathBuf {
        self.root.join(JobStore::result_file_name(fingerprint))
    }

    /// Path of the replication journal for `fingerprint`.
    #[must_use]
    pub fn journal_path(&self, fingerprint: u64) -> PathBuf {
        SweepJournal::store_path(&self.root, fingerprint)
    }

    /// Returns the cached result bytes for `fingerprint`, verbatim, or
    /// `None` when the job has never finished here. A journal left by
    /// an interrupted run does **not** count as a result.
    ///
    /// # Errors
    ///
    /// [`CkptError::Io`] for any error other than the file not
    /// existing.
    pub fn lookup(&self, fingerprint: u64) -> Result<Option<String>, CkptError> {
        let path = self.result_path(fingerprint);
        match std::fs::read_to_string(&path) {
            Ok(body) => Ok(Some(body)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(CkptError::Io {
                path: path.display().to_string(),
                message: e.to_string(),
            }),
        }
    }

    /// Atomically persists `body` as the result for `fingerprint`
    /// (write-temp + fsync + rename, so a crash never leaves a torn
    /// result that a later [`JobStore::lookup`] could trust).
    ///
    /// # Errors
    ///
    /// [`CkptError::Snapshot`] wrapping the underlying write failure.
    pub fn store(&self, fingerprint: u64, body: &str) -> Result<(), CkptError> {
        atomic_write(&self.result_path(fingerprint), body).map_err(CkptError::from)
    }

    /// Opens the journal for `fingerprint` — resuming the existing
    /// fingerprint-checked file when one is present, creating a fresh
    /// one otherwise.
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`] from loading or validating an existing
    /// journal.
    pub fn open_journal(
        &self,
        fingerprint: u64,
        every: u32,
    ) -> Result<SweepJournal, SnapshotError> {
        SweepJournal::open_in_dir(&self.root, fingerprint, every)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_in(tag: &str) -> JobStore {
        let dir = std::env::temp_dir().join(format!("ckpt_svc_store_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        JobStore::open(&dir).unwrap()
    }

    #[test]
    fn lookup_misses_then_serves_stored_bytes_verbatim() {
        let store = store_in("roundtrip");
        assert_eq!(store.lookup(0xabcd).unwrap(), None);
        let body = "{\"kind\":\"job_result\",\"x\":1.5}\n";
        store.store(0xabcd, body).unwrap();
        assert_eq!(store.lookup(0xabcd).unwrap().as_deref(), Some(body));
        // A different fingerprint stays a miss.
        assert_eq!(store.lookup(0xabce).unwrap(), None);
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn a_journal_without_a_result_is_not_a_hit() {
        let store = store_in("incomplete");
        let journal = store.open_journal(0x77, 1).unwrap();
        journal.persist().unwrap();
        assert!(store.journal_path(0x77).exists());
        assert_eq!(store.lookup(0x77).unwrap(), None);
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn result_and_journal_paths_are_fingerprint_namespaced() {
        let store = store_in("paths");
        assert_ne!(store.result_path(1), store.result_path(2));
        assert_ne!(store.journal_path(1), store.journal_path(2));
        assert_ne!(store.result_path(1), store.journal_path(1));
        assert!(store
            .result_path(0xdead_beef)
            .to_string_lossy()
            .contains("job-00000000deadbeef.result.json"));
        let _ = std::fs::remove_dir_all(store.root());
    }
}
