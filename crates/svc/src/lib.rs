//! Simulation-as-a-service core for the DSN'05 checkpointing
//! reproduction.
//!
//! Three layers turn the experiment harness into a long-lived service
//! without adding a single external dependency:
//!
//! * [`store::JobStore`] — a content-addressed result cache on disk.
//!   Jobs are keyed by the canonical [`ckpt_harness::ExperimentSpec`]
//!   fingerprint (FNV-1a 64 over the spec's canonical JSON, `jobs`
//!   excluded — worker count never changes sampling). Resubmitting an
//!   identical spec returns the cached result **byte-identically**; a
//!   partially-run spec leaves a fingerprint-namespaced
//!   [`ckpt_harness::SweepJournal`] behind and is *resumed*, never
//!   trusted as complete (the result file is the completeness marker).
//! * [`sched::Scheduler`] — a std-thread worker pool draining a
//!   FIFO-per-tenant queue with round-robin fairness across tenants.
//!   A job's replications are sharded into journal-backed **work
//!   units** (the [`ckpt_harness::SweepJournal`] is the unit of
//!   migration between workers); shard count, batch size, and snapshot
//!   interval are the three tuning switches ([`sched::Tuning`]).
//! * [`http`] / [`client`] — a minimal HTTP/1.1 + JSON transport over
//!   [`std::net::TcpListener`]: submit a spec for a job id, poll
//!   status, fetch the stored result bytes verbatim, or stream the
//!   job's progress as chunked JSONL (the
//!   [`ckpt_obs::JsonlSink`] wire format).
//!
//! The CLI's local `run` path is a thin wrapper over
//! [`sched::Scheduler::run_local`] — the same execution core the
//! service workers use — so a run routed through the service is
//! bit-identical to a direct one at any worker count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod exec;
pub mod http;
pub mod result;
pub mod sched;
pub mod store;

pub use client::Client;
pub use exec::{run_job, run_local, LocalRun};
pub use http::Server;
pub use sched::{JobStatus, Scheduler, SubmitOutcome, Tuning};
pub use store::JobStore;
