//! The execution core shared by the service workers and the local CLI
//! path.
//!
//! [`run_local`] is the one place an [`ExperimentSpec`] becomes a
//! running experiment — `ckptsim run` wraps it directly, and the
//! scheduler's work units go through it too, so a run routed through
//! the service is the *same code path* as a direct one and therefore
//! bit-identical at any worker count.
//!
//! [`run_job`] adds the content-addressed cache contract on top: a
//! cache hit returns the stored bytes verbatim without executing
//! anything; a miss opens (or resumes) the job's journal, runs the
//! missing replications, and atomically publishes the result.
//!
//! For sharded service execution, [`unit_ranges`] splits a job's
//! replication range into journal-backed work units and [`run_unit`]
//! executes one of them: a [`RangeStore`] serves dummy cached results
//! for replications outside the unit so the experiment skips them
//! (their Estimates are discarded — only the journal contents matter),
//! and [`finalize`] replays the fully-populated journal through
//! [`run_local`] to obtain the deterministic estimate the result
//! document is rendered from.

use crate::result;
use crate::store::JobStore;
use ckpt_core::{
    CachedReplication, Estimate, Estimation, ExperimentError, Metrics, ObserveSpec,
    ReplicationStore, RunControl,
};
use ckpt_harness::{CkptError, ExperimentSpec, SweepJournal};
use ckpt_obs::ProgressSink;
use std::sync::atomic::AtomicBool;

/// One local execution request: the spec plus the runtime-only knobs
/// (`warmup`, observation, cache/interrupt/progress control) that are
/// deliberately outside the spec and its fingerprint.
#[derive(Default)]
pub struct LocalRun<'a> {
    /// Warm-up replications run before measuring (wall-clock only;
    /// never affects results).
    pub warmup: u32,
    /// Observation plan (traces/registries); `None` for plain runs.
    /// Observed runs skip replication-cache lookups by design.
    pub observe: Option<ObserveSpec>,
    /// Cache, interrupt, and progress hooks.
    pub control: RunControl<'a>,
}

/// Runs `spec` under `req` — the single execution path behind
/// `ckptsim run`, the service workers, and the finalize replay.
///
/// # Errors
///
/// Everything [`ckpt_core::Experiment::run_controlled`] can return.
pub fn run_local(spec: &ExperimentSpec, req: LocalRun<'_>) -> Result<Estimate, ExperimentError> {
    let mut exp = spec.to_experiment().warmup(req.warmup);
    if let Some(observe) = req.observe {
        exp = exp.observe(observe);
    }
    exp.run_controlled(req.control)
}

/// Splits a job's replications into contiguous work-unit ranges
/// `[lo, hi)`.
///
/// `shards` is the target unit count and `batch` the smallest number
/// of replications a unit may hold (so tiny jobs are not over-split);
/// the unit size is `max(batch, ceil(replications / shards))`.
/// Batch-means estimation runs one long simulation per replication
/// slot and cannot be resumed per-replication, so it always yields a
/// single unit, as does `shards <= 1`.
#[must_use]
pub fn unit_ranges(
    replications: u32,
    estimation: Estimation,
    shards: usize,
    batch: u32,
) -> Vec<(u32, u32)> {
    if replications == 0 {
        return Vec::new();
    }
    if shards <= 1 || !matches!(estimation, Estimation::Replications) {
        return vec![(0, replications)];
    }
    let size = batch
        .max(1)
        .max(replications.div_ceil(u32::try_from(shards).unwrap_or(1)));
    let mut units = Vec::new();
    let mut lo = 0u32;
    while lo < replications {
        let hi = replications.min(lo + size);
        units.push((lo, hi));
        lo = hi;
    }
    units
}

/// A [`ReplicationStore`] view restricted to `[lo, hi)`: out-of-range
/// lookups return a dummy cached result so the experiment never runs
/// them (and never records them — recording is gated on having *run*),
/// in-range traffic passes through to the journal.
pub struct RangeStore<'a> {
    inner: &'a dyn ReplicationStore,
    lo: u32,
    hi: u32,
}

impl<'a> RangeStore<'a> {
    /// Restricts `inner` to replications in `[lo, hi)`.
    #[must_use]
    pub fn new(inner: &'a dyn ReplicationStore, lo: u32, hi: u32) -> RangeStore<'a> {
        RangeStore { inner, lo, hi }
    }
}

impl ReplicationStore for RangeStore<'_> {
    fn lookup(&self, rep: u32) -> Option<CachedReplication> {
        if rep < self.lo || rep >= self.hi {
            return Some(CachedReplication {
                metrics: Metrics::default(),
                events: 0,
            });
        }
        self.inner.lookup(rep)
    }

    fn record(&self, rep: u32, metrics: &Metrics, events: u64) {
        if rep >= self.lo && rep < self.hi {
            self.inner.record(rep, metrics, events);
        }
    }
}

/// Executes one work unit of `spec` against `journal`: replications in
/// `[lo, hi)` run (or replay from the journal), everything else is
/// skipped via [`RangeStore`] dummies. `exclusive` marks the unit as
/// the job's only one — it keeps the spec's own worker count and its
/// estimate is directly usable; a sharded unit runs with one inner
/// worker (the scheduler's pool provides the parallelism) and its
/// estimate is polluted by dummies, so callers must discard it and
/// [`finalize`] instead.
///
/// # Errors
///
/// Everything [`run_local`] can return, as [`CkptError`].
pub fn run_unit(
    spec: &ExperimentSpec,
    journal: &SweepJournal,
    (lo, hi): (u32, u32),
    exclusive: bool,
    interrupt: Option<&AtomicBool>,
    progress: Option<&dyn ProgressSink>,
) -> Result<Estimate, CkptError> {
    let cell = journal.cell_store(0);
    let ranged;
    let store: &dyn ReplicationStore = if exclusive {
        &cell
    } else {
        ranged = RangeStore::new(&cell, lo, hi);
        &ranged
    };
    let mut exp = spec.to_experiment();
    if !exclusive {
        exp = exp.jobs(1);
    }
    let outcome = exp.run_controlled(RunControl {
        store: Some(store),
        interrupt,
        progress,
    });
    match outcome {
        Ok(est) => {
            journal.persist()?;
            Ok(est)
        }
        Err(e) => {
            // Keep whatever completed: the journal is the unit of
            // migration, and a resumed job replays it.
            let _ = journal.persist();
            Err(CkptError::from(e))
        }
    }
}

/// Replays the fully-populated `journal` through [`run_local`] (every
/// replication is cached, so nothing simulates) to obtain the
/// deterministic estimate, renders the result document, and publishes
/// it atomically into `store`.
///
/// # Errors
///
/// Journal/store I/O, plus [`run_local`] errors (which, with a
/// complete journal, indicate a corrupt journal rather than a
/// simulation failure).
pub fn finalize(
    store: &JobStore,
    spec: &ExperimentSpec,
    journal: &SweepJournal,
) -> Result<String, CkptError> {
    let cell = journal.cell_store(0);
    let est = run_local(
        spec,
        LocalRun {
            control: RunControl {
                store: Some(&cell),
                ..RunControl::default()
            },
            ..LocalRun::default()
        },
    )?;
    let body = result::render(spec, &est);
    store.store(spec.fingerprint(), &body)?;
    Ok(body)
}

/// Runs `spec` to completion against `store`, honouring the cache
/// contract: a hit returns the stored bytes verbatim (no execution);
/// a miss — including a partial journal left by an interrupted run —
/// opens or resumes the fingerprint-namespaced journal, runs what is
/// missing, and publishes the result atomically.
///
/// This is the single-unit path (the scheduler adds sharding on top).
///
/// # Errors
///
/// Cache/journal I/O and anything the experiment itself returns; an
/// interrupted run persists the journal before surfacing the error so
/// the next submission resumes instead of restarting.
pub fn run_job(
    store: &JobStore,
    spec: &ExperimentSpec,
    snapshot_every: u32,
    interrupt: Option<&AtomicBool>,
    progress: Option<&dyn ProgressSink>,
) -> Result<String, CkptError> {
    let fingerprint = spec.fingerprint();
    if let Some(body) = store.lookup(fingerprint)? {
        return Ok(body);
    }
    let journal = store.open_journal(fingerprint, snapshot_every)?;
    let reps = spec.replications();
    let est = run_unit(spec, &journal, (0, reps), true, interrupt, progress)?;
    let body = result::render(spec, &est);
    store.store(fingerprint, &body)?;
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_ranges_cover_the_replication_range_exactly_once() {
        for (reps, shards, batch) in [(10u32, 3usize, 1u32), (7, 4, 2), (5, 8, 1), (1, 4, 4)] {
            let units = unit_ranges(reps, Estimation::Replications, shards, batch);
            let mut next = 0u32;
            for &(lo, hi) in &units {
                assert_eq!(lo, next, "contiguous units");
                assert!(hi > lo);
                if hi < reps {
                    // The floor binds every unit except the tail
                    // remainder, which takes whatever is left.
                    assert!(hi - lo >= batch.min(reps), "batch floor respected");
                }
                next = hi;
            }
            assert_eq!(next, reps, "units cover all replications");
            assert!(units.len() <= shards.max(1));
        }
    }

    #[test]
    fn batch_means_and_single_shard_collapse_to_one_unit() {
        assert_eq!(
            unit_ranges(12, Estimation::BatchMeans { batches: 4 }, 8, 1),
            vec![(0, 12)]
        );
        assert_eq!(
            unit_ranges(12, Estimation::Replications, 1, 1),
            vec![(0, 12)]
        );
        assert!(unit_ranges(0, Estimation::Replications, 4, 1).is_empty());
    }

    #[test]
    fn range_store_dummies_out_of_range_and_forwards_in_range() {
        use std::sync::Mutex;
        struct Probe {
            recorded: Mutex<Vec<u32>>,
        }
        impl ReplicationStore for Probe {
            fn lookup(&self, _rep: u32) -> Option<CachedReplication> {
                None
            }
            fn record(&self, rep: u32, _m: &Metrics, _e: u64) {
                self.recorded.lock().unwrap().push(rep);
            }
        }
        let probe = Probe {
            recorded: Mutex::new(Vec::new()),
        };
        let ranged = RangeStore::new(&probe, 2, 4);
        assert!(ranged.lookup(0).is_some(), "below range is dummy-cached");
        assert!(ranged.lookup(4).is_some(), "above range is dummy-cached");
        assert!(
            ranged.lookup(2).is_none(),
            "in range consults the inner store"
        );
        let m = Metrics::default();
        for rep in 0..6 {
            ranged.record(rep, &m, 1);
        }
        assert_eq!(*probe.recorded.lock().unwrap(), vec![2, 3]);
    }
}
