//! The blocking client behind `ckptsim submit/status/result`.
//!
//! Speaks the same four-route protocol as [`crate::http::Server`] over
//! a plain [`TcpStream`], one request per connection. Result bodies
//! are returned verbatim — the client never re-encodes them, so what
//! a caller writes to disk is byte-for-byte what the store holds.

use ckpt_harness::json::{parse, JsonValue};
use ckpt_harness::CkptError;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// What the server said about a submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmitReply {
    /// Job id (the spec fingerprint, 16 hex digits).
    pub id: String,
    /// Served straight from the result cache.
    pub cached: bool,
    /// Attached to an identical queued/running job.
    pub deduplicated: bool,
}

/// A client bound to one server address and tenant.
#[derive(Debug, Clone)]
pub struct Client {
    server: String,
    tenant: String,
}

impl Client {
    /// A client for `server` (a `host:port` address) acting as
    /// `tenant`.
    #[must_use]
    pub fn new(server: &str, tenant: &str) -> Client {
        Client {
            server: server.to_string(),
            tenant: tenant.to_string(),
        }
    }

    /// The server address this client talks to.
    #[must_use]
    pub fn server(&self) -> &str {
        &self.server
    }

    fn io_err(&self, message: String) -> CkptError {
        CkptError::Io {
            path: format!("http://{}", self.server),
            message,
        }
    }

    fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<(u16, String), CkptError> {
        let mut stream =
            TcpStream::connect(&self.server).map_err(|e| self.io_err(format!("connect: {e}")))?;
        let body = body.unwrap_or("");
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nX-Tenant: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            self.server,
            self.tenant,
            body.len()
        )
        .map_err(|e| self.io_err(format!("send: {e}")))?;
        stream
            .flush()
            .map_err(|e| self.io_err(format!("send: {e}")))?;

        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| self.io_err(format!("read status line: {e}")))?;
        let status: u16 = line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| self.io_err(format!("malformed response: {line:?}")))?;
        let mut content_length: Option<usize> = None;
        let mut chunked = false;
        loop {
            let mut header = String::new();
            let n = reader
                .read_line(&mut header)
                .map_err(|e| self.io_err(format!("read headers: {e}")))?;
            let header = header.trim_end();
            if n == 0 || header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                let value = value.trim();
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.parse().ok();
                } else if name.eq_ignore_ascii_case("transfer-encoding") {
                    chunked = value.eq_ignore_ascii_case("chunked");
                }
            }
        }
        let body = if chunked {
            self.read_chunked(&mut reader)?
        } else if let Some(len) = content_length {
            let mut buf = vec![0u8; len];
            reader
                .read_exact(&mut buf)
                .map_err(|e| self.io_err(format!("read body: {e}")))?;
            String::from_utf8_lossy(&buf).into_owned()
        } else {
            let mut buf = String::new();
            reader
                .read_to_string(&mut buf)
                .map_err(|e| self.io_err(format!("read body: {e}")))?;
            buf
        };
        Ok((status, body))
    }

    fn read_chunked(&self, reader: &mut impl BufRead) -> Result<String, CkptError> {
        let mut out = String::new();
        loop {
            let mut size_line = String::new();
            reader
                .read_line(&mut size_line)
                .map_err(|e| self.io_err(format!("read chunk size: {e}")))?;
            let size = usize::from_str_radix(size_line.trim(), 16)
                .map_err(|_| self.io_err(format!("malformed chunk size: {size_line:?}")))?;
            let mut chunk = vec![0u8; size + 2];
            reader
                .read_exact(&mut chunk)
                .map_err(|e| self.io_err(format!("read chunk: {e}")))?;
            if size == 0 {
                return Ok(out);
            }
            chunk.truncate(size);
            out.push_str(&String::from_utf8_lossy(&chunk));
        }
    }

    /// Checks the server is alive.
    ///
    /// # Errors
    ///
    /// Connection failures or a non-200 reply.
    pub fn healthz(&self) -> Result<(), CkptError> {
        let (status, body) = self.request("GET", "/v1/healthz", None)?;
        if status == 200 {
            Ok(())
        } else {
            Err(self.io_err(format!("health check failed ({status}): {}", body.trim())))
        }
    }

    /// Submits a spec (its canonical JSON) and returns the job id.
    ///
    /// # Errors
    ///
    /// Connection failures, a rejected spec, or a malformed reply.
    pub fn submit(&self, spec_json: &str) -> Result<SubmitReply, CkptError> {
        let (status, body) = self.request("POST", "/v1/jobs", Some(spec_json))?;
        if status != 200 {
            return Err(self.io_err(format!("submit rejected ({status}): {}", body.trim())));
        }
        let doc = parse(&body).map_err(|e| self.io_err(format!("malformed submit reply: {e}")))?;
        let id = doc
            .get("id")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| self.io_err("submit reply missing id".to_string()))?
            .to_string();
        Ok(SubmitReply {
            id,
            cached: doc.get("cached").and_then(JsonValue::as_bool) == Some(true),
            deduplicated: doc.get("deduplicated").and_then(JsonValue::as_bool) == Some(true),
        })
    }

    /// The job's status document, verbatim.
    ///
    /// # Errors
    ///
    /// Connection failures or an unknown job id.
    pub fn status(&self, id: &str) -> Result<String, CkptError> {
        let (status, body) = self.request("GET", &format!("/v1/jobs/{id}"), None)?;
        if status == 200 {
            Ok(body)
        } else {
            Err(self.io_err(format!("status failed ({status}): {}", body.trim())))
        }
    }

    /// The stored result bytes, verbatim, or `None` while the job is
    /// still running.
    ///
    /// # Errors
    ///
    /// Connection failures or server errors.
    pub fn result(&self, id: &str) -> Result<Option<String>, CkptError> {
        let (status, body) = self.request("GET", &format!("/v1/jobs/{id}/result"), None)?;
        match status {
            200 => Ok(Some(body)),
            404 => Ok(None),
            _ => Err(self.io_err(format!("result failed ({status}): {}", body.trim()))),
        }
    }

    /// Polls until the job is done and returns the result bytes
    /// verbatim; a failed job or an elapsed `timeout` is an error.
    ///
    /// # Errors
    ///
    /// Connection failures, job failure, or timeout.
    pub fn wait_result(&self, id: &str, timeout: Duration) -> Result<String, CkptError> {
        let deadline = Instant::now() + timeout;
        loop {
            let body = self.status(id)?;
            let doc =
                parse(&body).map_err(|e| self.io_err(format!("malformed status reply: {e}")))?;
            match doc.get("state").and_then(JsonValue::as_str) {
                Some("done") => {
                    return self
                        .result(id)?
                        .ok_or_else(|| self.io_err("job done but result missing".to_string()));
                }
                Some("failed") => {
                    let message = doc
                        .get("message")
                        .and_then(JsonValue::as_str)
                        .unwrap_or("unknown failure");
                    return Err(self.io_err(format!("job failed: {message}")));
                }
                _ => {}
            }
            if Instant::now() >= deadline {
                return Err(self.io_err(format!("timed out waiting for job {id}")));
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    /// Streams the job's progress JSONL, returning the collected lines
    /// once the job is terminal.
    ///
    /// # Errors
    ///
    /// Connection failures or an unknown job id.
    pub fn progress(&self, id: &str) -> Result<Vec<String>, CkptError> {
        let (status, body) = self.request("GET", &format!("/v1/jobs/{id}/progress"), None)?;
        if status != 200 {
            return Err(self.io_err(format!("progress failed ({status}): {}", body.trim())));
        }
        Ok(body.lines().map(str::to_string).collect())
    }
}
