//! The scheduler: a std-thread worker pool draining a fair
//! FIFO-per-tenant queue of journal-backed work units.
//!
//! Jobs enter through [`Scheduler::submit`]; each job's replication
//! range is split into work units by [`crate::exec::unit_ranges`]
//! under the three tuning switches of [`Tuning`] (shard count, batch
//! size, snapshot interval). Units are queued FIFO within their
//! tenant, and workers pick tenants round-robin, so one tenant's
//! thousand-job backlog cannot starve another's single submission.
//!
//! The [`ckpt_harness::SweepJournal`] is the unit of migration: a unit
//! can run on any worker (or a future server process) because all of
//! its completed replications live in the job's fingerprint-namespaced
//! journal, not in the worker. When a job's last unit completes, the
//! finalize pass replays the journal deterministically and publishes
//! the result into the [`JobStore`]; identical resubmissions then hit
//! the cache without executing anything.

use crate::exec::{self, LocalRun};
use crate::result;
use crate::store::JobStore;
use ckpt_core::{Estimate, ExperimentError};
use ckpt_harness::{CkptError, ExperimentSpec, SweepJournal};
use ckpt_obs::{JsonlSink, ProgressSink, ProgressSnapshot};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The scheduler's tuning switches. `shards`, `batch`, and
/// `snapshot_every` are the three knobs that shape work units (see
/// [`crate::exec::unit_ranges`]); `workers` sizes the thread pool that
/// drains them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tuning {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Target number of work units a job is sharded into (1 = never
    /// shard; the unit keeps the spec's own inner worker count).
    pub shards: usize,
    /// Smallest number of replications a work unit may hold — the
    /// floor that keeps small jobs from being over-split.
    pub batch: u32,
    /// Journal persist cadence in completed replications
    /// (0 = only at unit boundaries and on interrupt).
    pub snapshot_every: u32,
}

impl Default for Tuning {
    fn default() -> Tuning {
        Tuning {
            workers: 2,
            shards: 1,
            batch: 1,
            snapshot_every: 1,
        }
    }
}

/// Where a submitted job currently stands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobStatus {
    /// Accepted; no unit has started.
    Queued,
    /// Executing. For single-unit jobs `completed`/`total` count
    /// replications; for sharded jobs they count work units.
    Running {
        /// Finished work items.
        completed: usize,
        /// Planned work items.
        total: usize,
    },
    /// Finished; the result is in the store. `cached` is `true` when
    /// this submission was served from the cache without executing.
    Done {
        /// Served from the content-addressed cache.
        cached: bool,
    },
    /// Execution failed (or was interrupted); the journal keeps what
    /// completed, so a resubmission resumes instead of restarting.
    Failed {
        /// Human-readable failure.
        message: String,
    },
}

impl JobStatus {
    /// Whether the job has reached a terminal state.
    #[must_use]
    pub fn is_terminal(&self) -> bool {
        matches!(self, JobStatus::Done { .. } | JobStatus::Failed { .. })
    }
}

/// What [`Scheduler::submit`] decided about a submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmitOutcome {
    /// The job id: the spec fingerprint as 16 lowercase hex digits.
    pub id: String,
    /// The result was already in the cache — nothing will execute.
    pub cached: bool,
    /// An identical job was already queued or running; this submission
    /// attached to it instead of enqueueing a duplicate.
    pub deduplicated: bool,
}

struct Job {
    spec: ExperimentSpec,
    status: JobStatus,
    progress: Vec<String>,
    journal: Option<Arc<SweepJournal>>,
    units_total: usize,
    units_done: usize,
}

struct Unit {
    fingerprint: u64,
    range: (u32, u32),
    exclusive: bool,
}

struct State {
    queues: Vec<(String, VecDeque<Unit>)>,
    rr: usize,
    jobs: HashMap<u64, Job>,
    shutdown: bool,
}

struct Inner {
    store: JobStore,
    tuning: Tuning,
    state: Mutex<State>,
    work_cv: Condvar,
    done_cv: Condvar,
    interrupt: AtomicBool,
    executed_units: AtomicUsize,
}

/// The service scheduler. Dropping it interrupts in-flight units
/// (journals persist what completed) and joins the worker pool.
pub struct Scheduler {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl Scheduler {
    /// Starts a scheduler over `store` with `tuning.workers` threads.
    #[must_use]
    pub fn new(store: JobStore, tuning: Tuning) -> Scheduler {
        let inner = Arc::new(Inner {
            store,
            tuning,
            state: Mutex::new(State {
                queues: Vec::new(),
                rr: 0,
                jobs: HashMap::new(),
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            interrupt: AtomicBool::new(false),
            executed_units: AtomicUsize::new(0),
        });
        let workers = (0..tuning.workers.max(1))
            .map(|k| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("ckpt-svc-worker-{k}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn scheduler worker")
            })
            .collect();
        Scheduler { inner, workers }
    }

    /// The job store this scheduler publishes into.
    #[must_use]
    pub fn store(&self) -> &JobStore {
        &self.inner.store
    }

    /// Parses a job id (16 hex digits) back into a fingerprint.
    #[must_use]
    pub fn parse_id(id: &str) -> Option<u64> {
        (id.len() == 16).then(|| u64::from_str_radix(id, 16).ok())?
    }

    /// Submits `spec` for `tenant`. Content-addressed: a cached result
    /// short-circuits (nothing executes), an identical in-flight job
    /// deduplicates, otherwise the job is sharded into work units and
    /// queued FIFO within the tenant.
    ///
    /// # Errors
    ///
    /// Cache/journal I/O ([`CkptError::Io`] / [`CkptError::Snapshot`]).
    pub fn submit(&self, tenant: &str, spec: &ExperimentSpec) -> Result<SubmitOutcome, CkptError> {
        let fingerprint = spec.fingerprint();
        let id = format!("{fingerprint:016x}");
        if self.inner.store.lookup(fingerprint)?.is_some() {
            let mut st = self.lock();
            let duplicate = st.jobs.contains_key(&fingerprint);
            st.jobs.entry(fingerprint).or_insert_with(|| Job {
                spec: spec.clone(),
                status: JobStatus::Done { cached: true },
                progress: Vec::new(),
                journal: None,
                units_total: 0,
                units_done: 0,
            });
            return Ok(SubmitOutcome {
                id,
                cached: true,
                deduplicated: duplicate,
            });
        }
        let units = exec::unit_ranges(
            spec.replications(),
            spec.estimation(),
            self.inner.tuning.shards,
            self.inner.tuning.batch,
        );
        {
            let mut st = self.lock();
            if let Some(job) = st.jobs.get(&fingerprint) {
                let cached = matches!(job.status, JobStatus::Done { .. });
                return Ok(SubmitOutcome {
                    id,
                    cached,
                    deduplicated: true,
                });
            }
            // Placeholder first: a concurrent identical submission must
            // dedup against it rather than race the journal open below.
            st.jobs.insert(
                fingerprint,
                Job {
                    spec: spec.clone(),
                    status: JobStatus::Queued,
                    progress: Vec::new(),
                    journal: None,
                    units_total: units.len(),
                    units_done: 0,
                },
            );
        }
        let journal = match self
            .inner
            .store
            .open_journal(fingerprint, self.inner.tuning.snapshot_every)
        {
            Ok(j) => Arc::new(j),
            Err(e) => {
                self.lock().jobs.remove(&fingerprint);
                return Err(CkptError::from(e));
            }
        };
        {
            let mut st = self.lock();
            if let Some(job) = st.jobs.get_mut(&fingerprint) {
                job.journal = Some(journal);
            }
            let exclusive = units.len() == 1;
            let queue = match st.queues.iter().position(|(t, _)| t == tenant) {
                Some(i) => &mut st.queues[i].1,
                None => {
                    st.queues.push((tenant.to_string(), VecDeque::new()));
                    let last = st.queues.len() - 1;
                    &mut st.queues[last].1
                }
            };
            for range in units {
                queue.push_back(Unit {
                    fingerprint,
                    range,
                    exclusive,
                });
            }
        }
        self.inner.work_cv.notify_all();
        Ok(SubmitOutcome {
            id,
            cached: false,
            deduplicated: false,
        })
    }

    /// The job's current status; `None` for an unknown id. A job whose
    /// result survives in the store from a previous process reports
    /// `Done { cached: true }`.
    ///
    /// # Errors
    ///
    /// Store I/O while probing the durable cache.
    pub fn status(&self, id: &str) -> Result<Option<JobStatus>, CkptError> {
        let Some(fingerprint) = Scheduler::parse_id(id) else {
            return Ok(None);
        };
        if let Some(job) = self.lock().jobs.get(&fingerprint) {
            return Ok(Some(job.status.clone()));
        }
        Ok(self
            .inner
            .store
            .lookup(fingerprint)?
            .map(|_| JobStatus::Done { cached: true }))
    }

    /// The stored result bytes, verbatim; `None` until the job is done.
    ///
    /// # Errors
    ///
    /// Store I/O.
    pub fn result(&self, id: &str) -> Result<Option<String>, CkptError> {
        match Scheduler::parse_id(id) {
            Some(fingerprint) => self.inner.store.lookup(fingerprint),
            None => Ok(None),
        }
    }

    /// Progress lines recorded after index `from` (the JSONL wire
    /// format of [`JsonlSink::render`]), plus whether the job has
    /// reached a terminal state. `None` for an unknown id.
    #[must_use]
    pub fn progress(&self, id: &str, from: usize) -> Option<(Vec<String>, bool)> {
        let fingerprint = Scheduler::parse_id(id)?;
        let st = self.lock();
        let job = st.jobs.get(&fingerprint)?;
        let lines = job.progress.get(from..).unwrap_or(&[]).to_vec();
        Some((lines, job.status.is_terminal()))
    }

    /// Blocks until the job reaches a terminal state (returning it) or
    /// `timeout` elapses (returning the last observed status).
    #[must_use]
    pub fn wait(&self, id: &str, timeout: Duration) -> Option<JobStatus> {
        let fingerprint = Scheduler::parse_id(id)?;
        let deadline = Instant::now() + timeout;
        let mut st = self.lock();
        loop {
            let status = st.jobs.get(&fingerprint).map(|j| j.status.clone());
            match status {
                Some(s) if s.is_terminal() => return Some(s),
                other => {
                    let left = deadline.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        return other;
                    }
                    let (guard, _) = self
                        .inner
                        .done_cv
                        .wait_timeout(st, left)
                        .expect("scheduler state poisoned");
                    st = guard;
                }
            }
        }
    }

    /// Work units executed so far (cache hits execute none) — the
    /// observable "ran exactly once" counter the tests assert on.
    #[must_use]
    pub fn executed_units(&self) -> usize {
        self.inner.executed_units.load(Ordering::SeqCst)
    }

    /// Runs a spec in-process through the exact execution core the
    /// service workers use — the thin wrapper `ckptsim run` is built
    /// on. See [`crate::exec::run_local`].
    ///
    /// # Errors
    ///
    /// Everything the experiment itself can return.
    pub fn run_local(
        spec: &ExperimentSpec,
        req: LocalRun<'_>,
    ) -> Result<Estimate, ExperimentError> {
        exec::run_local(spec, req)
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        self.inner.state.lock().expect("scheduler state poisoned")
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.inner.interrupt.store(true, Ordering::SeqCst);
        self.lock().shutdown = true;
        self.inner.work_cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Forwards a single-unit job's per-replication progress into the job
/// record, where pollers and the chunked HTTP stream read it.
struct RecordingSink<'a> {
    inner: &'a Inner,
    fingerprint: u64,
}

impl ProgressSink for RecordingSink<'_> {
    fn progress(&self, snapshot: &ProgressSnapshot<'_>) {
        let line = JsonlSink::render(snapshot);
        {
            let mut st = self.inner.state.lock().expect("scheduler state poisoned");
            if let Some(job) = st.jobs.get_mut(&self.fingerprint) {
                job.progress.push(line);
                job.status = JobStatus::Running {
                    completed: snapshot.completed,
                    total: snapshot.total,
                };
            }
        }
        self.inner.done_cv.notify_all();
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let unit = {
            let mut st = inner.state.lock().expect("scheduler state poisoned");
            loop {
                if st.shutdown {
                    return;
                }
                if let Some(unit) = next_unit(&mut st) {
                    break unit;
                }
                st = inner.work_cv.wait(st).expect("scheduler state poisoned");
            }
        };
        execute_unit(inner, &unit);
    }
}

/// Round-robin across tenants, FIFO within each: the fairness policy.
fn next_unit(st: &mut State) -> Option<Unit> {
    let n = st.queues.len();
    for k in 0..n {
        let i = (st.rr + k) % n;
        if let Some(unit) = st.queues[i].1.pop_front() {
            st.rr = (i + 1) % n;
            return Some(unit);
        }
    }
    None
}

fn execute_unit(inner: &Inner, unit: &Unit) {
    let fingerprint = unit.fingerprint;
    let (spec, journal) = {
        let mut st = inner.state.lock().expect("scheduler state poisoned");
        let Some(job) = st.jobs.get_mut(&fingerprint) else {
            return;
        };
        if matches!(job.status, JobStatus::Failed { .. }) {
            // A sibling unit already failed; don't burn workers on the
            // rest of the job.
            job.units_done += 1;
            return;
        }
        if job.status == JobStatus::Queued {
            job.status = JobStatus::Running {
                completed: 0,
                total: if unit.exclusive {
                    job.spec.replications() as usize
                } else {
                    job.units_total
                },
            };
        }
        let Some(journal) = job.journal.clone() else {
            return;
        };
        (job.spec.clone(), journal)
    };
    let sink = RecordingSink { inner, fingerprint };
    let outcome = exec::run_unit(
        &spec,
        &journal,
        unit.range,
        unit.exclusive,
        Some(&inner.interrupt),
        unit.exclusive.then_some(&sink as &dyn ProgressSink),
    );
    inner.executed_units.fetch_add(1, Ordering::SeqCst);

    let mut st = inner.state.lock().expect("scheduler state poisoned");
    let Some(job) = st.jobs.get_mut(&fingerprint) else {
        return;
    };
    job.units_done += 1;
    match outcome {
        Err(e) => {
            job.status = JobStatus::Failed {
                message: e.to_string(),
            };
            drop(st);
            inner.done_cv.notify_all();
        }
        Ok(est) => {
            if !unit.exclusive {
                job.progress.push(JsonlSink::render(&ProgressSnapshot::new(
                    "units",
                    job.units_done,
                    job.units_total,
                )));
                job.status = JobStatus::Running {
                    completed: job.units_done,
                    total: job.units_total,
                };
            }
            let finished = job.units_done == job.units_total;
            if !finished {
                drop(st);
                inner.done_cv.notify_all();
                return;
            }
            let spec = job.spec.clone();
            drop(st);
            // Publish outside the lock: rendering/replay can be slow.
            let published = if unit.exclusive {
                let body = result::render(&spec, &est);
                inner.store.store(fingerprint, &body).map(|()| body)
            } else {
                exec::finalize(&inner.store, &spec, &journal)
            };
            let mut st = inner.state.lock().expect("scheduler state poisoned");
            if let Some(job) = st.jobs.get_mut(&fingerprint) {
                job.status = match published {
                    Ok(_) => JobStatus::Done { cached: false },
                    Err(e) => JobStatus::Failed {
                        message: e.to_string(),
                    },
                };
            }
            drop(st);
            inner.done_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckpt_core::SystemConfig;
    use ckpt_des::SimTime;

    fn store_in(tag: &str) -> JobStore {
        let dir = std::env::temp_dir().join(format!("ckpt_svc_sched_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        JobStore::open(&dir).unwrap()
    }

    fn small_spec(seed: u64) -> ExperimentSpec {
        let cfg = SystemConfig::builder().processors(512).build().unwrap();
        ExperimentSpec::builder(cfg)
            .transient(SimTime::from_hours(5.0))
            .horizon(SimTime::from_hours(60.0))
            .replications(3)
            .seed(seed)
            .jobs(1)
            .build()
            .unwrap()
    }

    #[test]
    fn submit_runs_once_and_resubmission_is_a_byte_identical_cache_hit() {
        let store = store_in("cache");
        let sched = Scheduler::new(store.clone(), Tuning::default());
        let spec = small_spec(1);
        let first = sched.submit("alice", &spec).unwrap();
        assert!(!first.cached);
        let status = sched.wait(&first.id, Duration::from_secs(120)).unwrap();
        assert_eq!(status, JobStatus::Done { cached: false });
        let body = sched.result(&first.id).unwrap().unwrap();

        let second = sched.submit("alice", &spec).unwrap();
        assert_eq!(second.id, first.id);
        assert!(second.cached, "resubmission must be served from the cache");
        assert_eq!(sched.result(&second.id).unwrap().unwrap(), body);
        assert_eq!(sched.executed_units(), 1, "the job executed exactly once");
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn concurrent_identical_submissions_deduplicate() {
        let store = store_in("dedup");
        let sched = Scheduler::new(store.clone(), Tuning::default());
        let spec = small_spec(2);
        let a = sched.submit("alice", &spec).unwrap();
        let b = sched.submit("bob", &spec).unwrap();
        assert_eq!(a.id, b.id);
        assert!(b.deduplicated || b.cached);
        assert!(sched
            .wait(&a.id, Duration::from_secs(120))
            .unwrap()
            .is_terminal());
        assert_eq!(sched.executed_units(), 1);
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn sharded_execution_publishes_the_same_bytes_as_unsharded() {
        let spec = small_spec(3);
        let store_a = store_in("shard_a");
        let store_b = store_in("shard_b");
        let plain = Scheduler::new(store_a.clone(), Tuning::default());
        let sharded = Scheduler::new(
            store_b.clone(),
            Tuning {
                workers: 3,
                shards: 3,
                batch: 1,
                snapshot_every: 1,
            },
        );
        let a = plain.submit("t", &spec).unwrap();
        let b = sharded.submit("t", &spec).unwrap();
        assert_eq!(
            plain.wait(&a.id, Duration::from_secs(120)).unwrap(),
            JobStatus::Done { cached: false }
        );
        assert_eq!(
            sharded.wait(&b.id, Duration::from_secs(120)).unwrap(),
            JobStatus::Done { cached: false }
        );
        assert_eq!(
            plain.result(&a.id).unwrap().unwrap(),
            sharded.result(&b.id).unwrap().unwrap(),
            "sharding is a scheduling decision; the result bytes must not move"
        );
        assert!(sharded.executed_units() >= 3, "the job really was sharded");
        let _ = std::fs::remove_dir_all(store_a.root());
        let _ = std::fs::remove_dir_all(store_b.root());
    }

    #[test]
    fn single_unit_jobs_stream_per_replication_progress() {
        let store = store_in("progress");
        let sched = Scheduler::new(store.clone(), Tuning::default());
        let spec = small_spec(4);
        let out = sched.submit("t", &spec).unwrap();
        assert!(sched
            .wait(&out.id, Duration::from_secs(120))
            .unwrap()
            .is_terminal());
        let (lines, done) = sched.progress(&out.id, 0).unwrap();
        assert!(done);
        assert_eq!(lines.len(), 3, "one line per replication");
        assert!(lines[0].contains("\"kind\":\"progress\""));
        assert!(lines[2].contains("\"completed\":3"));
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn unknown_and_malformed_ids_are_not_found() {
        let store = store_in("ids");
        let sched = Scheduler::new(store.clone(), Tuning::default());
        assert_eq!(sched.status("zzzz").unwrap(), None);
        assert_eq!(sched.status("0000000000000000").unwrap(), None);
        assert_eq!(sched.result("not-an-id").unwrap(), None);
        assert!(sched.progress("0000000000000000", 0).is_none());
        let _ = std::fs::remove_dir_all(store.root());
    }
}
