//! Minimal HTTP/1.1 + JSON transport over [`std::net::TcpListener`].
//!
//! This is deliberately not a web framework: one thread per
//! connection, one request per connection (`Connection: close`), and
//! exactly the four routes the service contract needs:
//!
//! | route | meaning |
//! |---|---|
//! | `GET /v1/healthz` | liveness probe |
//! | `POST /v1/jobs` | submit a spec (body = [`ExperimentSpec`] JSON, `X-Tenant` header) → job id |
//! | `GET /v1/jobs/{id}` | poll status |
//! | `GET /v1/jobs/{id}/result` | the stored result bytes, verbatim |
//! | `GET /v1/jobs/{id}/progress` | chunked JSONL progress stream until the job is terminal |
//!
//! The result route serves the [`crate::store::JobStore`] bytes
//! unmodified, so two clients fetching the same job — or one client
//! resubmitting an identical spec — can compare responses with `cmp`.

use crate::sched::{JobStatus, Scheduler};
use ckpt_harness::json::JsonValue;
use ckpt_harness::{CkptError, ExperimentSpec};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

/// Largest request body the server will read (a spec is ~1 KiB).
const MAX_BODY: usize = 1 << 20;
/// Poll cadence of the chunked progress stream.
const PROGRESS_POLL: Duration = Duration::from_millis(25);

/// The `ckptsim serve` listener: owns the scheduler and serves it over
/// plain TCP.
pub struct Server {
    listener: TcpListener,
    sched: Arc<Scheduler>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) in front
    /// of `sched`.
    ///
    /// # Errors
    ///
    /// Socket bind failures.
    pub fn bind<A: ToSocketAddrs>(addr: A, sched: Scheduler) -> std::io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            sched: Arc::new(sched),
        })
    }

    /// Shared handle to the scheduler behind this server — for
    /// embedders (and tests) that inspect the job table directly.
    #[must_use]
    pub fn scheduler(&self) -> Arc<Scheduler> {
        Arc::clone(&self.sched)
    }

    /// The bound address (resolves port 0).
    ///
    /// # Errors
    ///
    /// Socket introspection failures.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accept loop: one thread per connection, forever. Only returns on
    /// an accept error.
    ///
    /// # Errors
    ///
    /// Fatal accept failures.
    pub fn run(self) -> std::io::Result<()> {
        for stream in self.listener.incoming() {
            let stream = stream?;
            let sched = Arc::clone(&self.sched);
            std::thread::spawn(move || {
                let _ = handle_connection(stream, &sched);
            });
        }
        Ok(())
    }
}

struct Request {
    method: String,
    path: String,
    tenant: String,
    body: String,
}

fn read_request(stream: &mut TcpStream) -> std::io::Result<Option<Request>> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let path = parts.next().unwrap_or("").to_string();
    let mut content_length = 0usize;
    let mut tenant = "default".to_string();
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            break;
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.parse().unwrap_or(0);
            } else if name.eq_ignore_ascii_case("x-tenant") && !value.is_empty() {
                tenant = value.to_string();
            }
        }
    }
    let mut body = vec![0u8; content_length.min(MAX_BODY)];
    reader.read_exact(&mut body)?;
    Ok(Some(Request {
        method,
        path,
        tenant,
        body: String::from_utf8_lossy(&body).into_owned(),
    }))
}

fn respond(stream: &mut TcpStream, status: u16, reason: &str, body: &str) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

fn error_body(message: &str) -> String {
    let doc = JsonValue::Object(vec![
        ("kind".to_string(), JsonValue::from_text("error")),
        ("message".to_string(), JsonValue::from_text(message)),
    ]);
    let mut out = doc.to_json();
    out.push('\n');
    out
}

fn status_body(id: &str, status: &JobStatus) -> String {
    let mut fields = vec![
        ("kind".to_string(), JsonValue::from_text("job_status")),
        ("id".to_string(), JsonValue::from_text(id)),
    ];
    match status {
        JobStatus::Queued => {
            fields.push(("state".to_string(), JsonValue::from_text("queued")));
        }
        JobStatus::Running { completed, total } => {
            fields.push(("state".to_string(), JsonValue::from_text("running")));
            fields.push((
                "completed".to_string(),
                JsonValue::from_u64(*completed as u64),
            ));
            fields.push(("total".to_string(), JsonValue::from_u64(*total as u64)));
        }
        JobStatus::Done { cached } => {
            fields.push(("state".to_string(), JsonValue::from_text("done")));
            fields.push(("cached".to_string(), JsonValue::Bool(*cached)));
        }
        JobStatus::Failed { message } => {
            fields.push(("state".to_string(), JsonValue::from_text("failed")));
            fields.push(("message".to_string(), JsonValue::from_text(message)));
        }
    }
    let mut out = JsonValue::Object(fields).to_json();
    out.push('\n');
    out
}

fn submit_body(id: &str, cached: bool, deduplicated: bool) -> String {
    let doc = JsonValue::Object(vec![
        ("kind".to_string(), JsonValue::from_text("job_accepted")),
        ("id".to_string(), JsonValue::from_text(id)),
        ("cached".to_string(), JsonValue::Bool(cached)),
        ("deduplicated".to_string(), JsonValue::Bool(deduplicated)),
    ]);
    let mut out = doc.to_json();
    out.push('\n');
    out
}

fn handle_connection(mut stream: TcpStream, sched: &Scheduler) -> std::io::Result<()> {
    let Some(req) = read_request(&mut stream)? else {
        return Ok(());
    };
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/v1/healthz") => respond(
            &mut stream,
            200,
            "OK",
            "{\"kind\":\"health\",\"status\":\"ok\"}\n",
        ),
        ("POST", "/v1/jobs") => match ExperimentSpec::from_json(&req.body) {
            Ok(spec) => match sched.submit(&req.tenant, &spec) {
                Ok(out) => respond(
                    &mut stream,
                    200,
                    "OK",
                    &submit_body(&out.id, out.cached, out.deduplicated),
                ),
                Err(e) => respond(
                    &mut stream,
                    500,
                    "Internal Server Error",
                    &error_body(&e.to_string()),
                ),
            },
            Err(e) => respond(&mut stream, 400, "Bad Request", &error_body(&e.to_string())),
        },
        ("GET", path) if path.starts_with("/v1/jobs/") => {
            let rest = &path["/v1/jobs/".len()..];
            if let Some(id) = rest.strip_suffix("/result") {
                route_result(&mut stream, sched, id)
            } else if let Some(id) = rest.strip_suffix("/progress") {
                route_progress(&mut stream, sched, id)
            } else {
                route_status(&mut stream, sched, rest)
            }
        }
        _ => respond(&mut stream, 404, "Not Found", &error_body("no such route")),
    }
}

fn route_status(stream: &mut TcpStream, sched: &Scheduler, id: &str) -> std::io::Result<()> {
    match sched.status(id) {
        Ok(Some(status)) => respond(stream, 200, "OK", &status_body(id, &status)),
        Ok(None) => respond(stream, 404, "Not Found", &error_body("unknown job")),
        Err(e) => io_error(stream, &e),
    }
}

fn route_result(stream: &mut TcpStream, sched: &Scheduler, id: &str) -> std::io::Result<()> {
    match sched.result(id) {
        // Verbatim stored bytes: this is the byte-identity contract.
        Ok(Some(body)) => respond(stream, 200, "OK", &body),
        Ok(None) => respond(
            stream,
            404,
            "Not Found",
            &error_body("result not available"),
        ),
        Err(e) => io_error(stream, &e),
    }
}

/// Streams the job's progress lines as chunked JSONL, polling the
/// scheduler until the job reaches a terminal state.
fn route_progress(stream: &mut TcpStream, sched: &Scheduler, id: &str) -> std::io::Result<()> {
    if sched.progress(id, 0).is_none() {
        return respond(stream, 404, "Not Found", &error_body("unknown job"));
    }
    write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: application/jsonl\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
    )?;
    let mut cursor = 0usize;
    loop {
        let Some((lines, terminal)) = sched.progress(id, cursor) else {
            break;
        };
        for line in &lines {
            let chunk = format!("{line}\n");
            write!(stream, "{:x}\r\n{chunk}\r\n", chunk.len())?;
        }
        cursor += lines.len();
        if terminal {
            break;
        }
        stream.flush()?;
        std::thread::sleep(PROGRESS_POLL);
    }
    write!(stream, "0\r\n\r\n")?;
    stream.flush()
}

fn io_error(stream: &mut TcpStream, e: &CkptError) -> std::io::Result<()> {
    respond(
        stream,
        500,
        "Internal Server Error",
        &error_body(&e.to_string()),
    )
}
