//! The versioned job-result document.
//!
//! [`render`] turns a finished [`Estimate`] into one deterministic JSON
//! document: every field is a pure function of the spec and the
//! replication outcomes — no wall-clock times, no host parallelism —
//! so the same spec produces the same bytes at any `--jobs` value, on
//! a resumed run, or after sharded service execution. That determinism
//! is what lets the [`crate::store::JobStore`] serve cached bytes
//! verbatim and still claim byte-identity with a fresh run.

use ckpt_core::Estimate;
use ckpt_harness::json::{parse, JsonValue};
use ckpt_harness::snapshot::metrics_to_json;
use ckpt_harness::ExperimentSpec;
use ckpt_stats::ConfidenceInterval;

/// Schema version of the result document.
pub const RESULT_SCHEMA_VERSION: u64 = 1;

fn interval_json(ci: &ConfidenceInterval) -> JsonValue {
    JsonValue::Object(vec![
        ("mean".to_string(), JsonValue::from_f64(ci.mean)),
        ("half_width".to_string(), JsonValue::from_f64(ci.half_width)),
        ("level".to_string(), JsonValue::from_f64(ci.level)),
        ("count".to_string(), JsonValue::from_u64(ci.count)),
    ])
}

/// Renders the result document for `est`, produced under `spec`.
///
/// The embedded spec is the canonical spec JSON with the `jobs` key
/// removed — two specs with equal fingerprints embed equal bytes, so
/// fingerprint-equality implies result byte-equality.
#[must_use]
pub fn render(spec: &ExperimentSpec, est: &Estimate) -> String {
    let spec_doc = match parse(&spec.to_json()) {
        Ok(JsonValue::Object(fields)) => {
            JsonValue::Object(fields.into_iter().filter(|(k, _)| k != "jobs").collect())
        }
        _ => JsonValue::Null,
    };
    let replicates: Vec<JsonValue> = est.replicates().iter().map(metrics_to_json).collect();
    let events: Vec<JsonValue> = est
        .profiles()
        .iter()
        .map(|p| JsonValue::from_u64(p.events))
        .collect();
    let doc = JsonValue::Object(vec![
        (
            "schema_version".to_string(),
            JsonValue::from_u64(RESULT_SCHEMA_VERSION),
        ),
        ("kind".to_string(), JsonValue::from_text("job_result")),
        (
            "fingerprint".to_string(),
            JsonValue::from_text(&format!("{:016x}", spec.fingerprint())),
        ),
        ("spec".to_string(), spec_doc),
        (
            "useful_work_fraction".to_string(),
            interval_json(&est.useful_work_fraction()),
        ),
        (
            "total_useful_work".to_string(),
            interval_json(&est.total_useful_work()),
        ),
        ("replicates".to_string(), JsonValue::Array(replicates)),
        ("events".to_string(), JsonValue::Array(events)),
    ]);
    let mut out = doc.to_json();
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckpt_core::SystemConfig;
    use ckpt_des::SimTime;

    fn spec(jobs: usize) -> ExperimentSpec {
        let cfg = SystemConfig::builder().processors(1024).build().unwrap();
        ExperimentSpec::builder(cfg)
            .transient(SimTime::from_hours(10.0))
            .horizon(SimTime::from_hours(120.0))
            .replications(3)
            .jobs(jobs)
            .build()
            .unwrap()
    }

    #[test]
    fn result_bytes_are_worker_count_invariant() {
        let (a, b) = (spec(1), spec(4));
        assert_eq!(a.fingerprint(), b.fingerprint());
        let est_a = a.to_experiment().run().unwrap();
        let est_b = b.to_experiment().run().unwrap();
        let (body_a, body_b) = (render(&a, &est_a), render(&b, &est_b));
        assert_eq!(body_a, body_b);
        assert!(!body_a.contains("\"jobs\""));
        assert!(body_a.contains("\"kind\":\"job_result\""));
    }

    #[test]
    fn result_document_parses_and_carries_the_fingerprint() {
        let s = spec(1);
        let est = s.to_experiment().run().unwrap();
        let doc = parse(&render(&s, &est)).unwrap();
        assert_eq!(
            doc.get("fingerprint").and_then(JsonValue::as_str),
            Some(format!("{:016x}", s.fingerprint()).as_str())
        );
        assert_eq!(
            doc.get("replicates")
                .and_then(JsonValue::as_array)
                .map(<[JsonValue]>::len),
            Some(3)
        );
        assert_eq!(
            doc.get("schema_version").and_then(JsonValue::as_u64),
            Some(RESULT_SCHEMA_VERSION)
        );
    }
}
