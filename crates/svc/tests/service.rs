//! End-to-end service tests: a real [`Server`] on an ephemeral port, a
//! real [`Client`] over TCP, and the cache contract the whole PR hangs
//! on — an identical spec submitted twice executes once and both
//! fetches return byte-identical bodies.

use ckpt_core::SystemConfig;
use ckpt_des::SimTime;
use ckpt_harness::ExperimentSpec;
use ckpt_svc::{Client, JobStore, Scheduler, Server, Tuning};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn spec(seed: u64, jobs: usize) -> ExperimentSpec {
    let cfg = SystemConfig::builder().processors(512).build().unwrap();
    ExperimentSpec::builder(cfg)
        .transient(SimTime::from_hours(5.0))
        .horizon(SimTime::from_hours(60.0))
        .replications(3)
        .seed(seed)
        .jobs(jobs)
        .build()
        .unwrap()
}

fn store_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ckpt_svc_e2e_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start_server(dir: &PathBuf, tuning: Tuning) -> (SocketAddr, Arc<Scheduler>) {
    let store = JobStore::open(dir).unwrap();
    let server = Server::bind("127.0.0.1:0", Scheduler::new(store, tuning)).unwrap();
    let addr = server.local_addr().unwrap();
    let sched = server.scheduler();
    std::thread::spawn(move || {
        let _ = server.run();
    });
    (addr, sched)
}

#[test]
fn identical_specs_execute_once_and_results_are_byte_identical() {
    let dir = store_dir("once");
    let (addr, sched) = start_server(&dir, Tuning::default());
    let client = Client::new(&addr.to_string(), "alice");
    client.healthz().unwrap();

    // Different `jobs` values, same fingerprint: worker count is a
    // scheduling decision, not part of the experiment's identity.
    let first = client.submit(&spec(1, 1).to_json()).unwrap();
    assert!(!first.cached);
    let body_first = client
        .wait_result(&first.id, Duration::from_secs(120))
        .unwrap();

    let second = client.submit(&spec(1, 4).to_json()).unwrap();
    assert_eq!(second.id, first.id);
    assert!(second.cached, "identical resubmission must hit the cache");
    let body_second = client.result(&second.id).unwrap().unwrap();

    assert_eq!(body_first, body_second, "cache hits are byte-identical");
    assert_eq!(sched.executed_units(), 1, "the spec executed exactly once");

    let status = client.status(&first.id).unwrap();
    assert!(status.contains("\"state\":\"done\""), "status: {status}");

    let lines = client.progress(&first.id).unwrap();
    assert_eq!(lines.len(), 3, "one progress line per replication");
    assert!(lines.iter().all(|l| l.contains("\"kind\":\"progress\"")));
    assert!(lines[2].contains("\"completed\":3"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn the_cache_survives_a_server_restart() {
    let dir = store_dir("restart");
    let (addr_a, sched_a) = start_server(&dir, Tuning::default());
    let client_a = Client::new(&addr_a.to_string(), "t");
    let job = client_a.submit(&spec(7, 1).to_json()).unwrap();
    let body = client_a
        .wait_result(&job.id, Duration::from_secs(120))
        .unwrap();
    assert_eq!(sched_a.executed_units(), 1);

    // A second server over the same store directory: the result is
    // durable, so the resubmission is a hit with zero executions.
    let (addr_b, sched_b) = start_server(&dir, Tuning::default());
    let client_b = Client::new(&addr_b.to_string(), "t");
    let again = client_b.submit(&spec(7, 1).to_json()).unwrap();
    assert!(again.cached);
    assert_eq!(client_b.result(&again.id).unwrap().unwrap(), body);
    assert_eq!(sched_b.executed_units(), 0, "nothing re-executed");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sharded_tuning_changes_scheduling_but_not_the_result_bytes() {
    let dir_a = store_dir("tuning_a");
    let dir_b = store_dir("tuning_b");
    let (addr_a, _) = start_server(&dir_a, Tuning::default());
    let (addr_b, sched_b) = start_server(
        &dir_b,
        Tuning {
            workers: 3,
            shards: 3,
            batch: 1,
            snapshot_every: 1,
        },
    );
    let client_a = Client::new(&addr_a.to_string(), "t");
    let client_b = Client::new(&addr_b.to_string(), "t");
    let s = spec(9, 2);
    let a = client_a.submit(&s.to_json()).unwrap();
    let b = client_b.submit(&s.to_json()).unwrap();
    let body_a = client_a
        .wait_result(&a.id, Duration::from_secs(120))
        .unwrap();
    let body_b = client_b
        .wait_result(&b.id, Duration::from_secs(120))
        .unwrap();
    assert_eq!(body_a, body_b, "sharding must not change the result");
    assert!(sched_b.executed_units() >= 3, "the job really was sharded");
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

#[test]
fn unknown_jobs_and_malformed_specs_are_rejected() {
    let dir = store_dir("reject");
    let (addr, _) = start_server(&dir, Tuning::default());
    let client = Client::new(&addr.to_string(), "t");
    assert!(client.submit("{\"not\": \"a spec\"}").is_err());
    assert!(client.status("00000000deadbeef").is_err());
    assert_eq!(client.result("00000000deadbeef").unwrap(), None);
    assert!(client.progress("00000000deadbeef").is_err());
    let _ = std::fs::remove_dir_all(&dir);
}
