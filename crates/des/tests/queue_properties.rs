//! Property-based tests of the cancellable event queue: for arbitrary
//! interleavings of schedules and cancellations, pops must come out in
//! (time, insertion) order and exactly the non-cancelled events appear.

use ckpt_des::{EventQueue, QueueKind, SimTime};
use proptest::prelude::*;

/// An abstract queue operation.
#[derive(Debug, Clone)]
enum Op {
    /// Schedule at `now + dt`.
    Schedule(f64),
    /// Cancel the k-th previously scheduled event (if any).
    Cancel(usize),
    /// Pop one event.
    Pop,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0.0f64..100.0).prop_map(Op::Schedule),
        1 => (0usize..64).prop_map(Op::Cancel),
        2 => Just(Op::Pop),
    ]
}

/// An abstract operation for the heap-vs-calendar differential test,
/// including the reschedule path and deliberate time ties.
#[derive(Debug, Clone)]
enum XOp {
    /// Schedule at `now + dt`; `dt` is drawn from a coarse grid so
    /// equal times (FIFO ties) occur constantly.
    Schedule(u32),
    /// Cancel the k-th previously scheduled event (if any).
    Cancel(usize),
    /// Reschedule the k-th previously scheduled event to `now + dt`.
    Reschedule(usize, u32),
    /// Pop one event.
    Pop,
}

fn xop_strategy() -> impl Strategy<Value = XOp> {
    prop_oneof![
        3 => (0u32..40).prop_map(XOp::Schedule),
        1 => (0usize..64).prop_map(XOp::Cancel),
        2 => ((0usize..64), (0u32..40)).prop_map(|(k, dt)| XOp::Reschedule(k, dt)),
        2 => Just(XOp::Pop),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn queue_matches_reference_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let mut q = EventQueue::new();
        // Reference model: Vec of (time, seq, payload, alive).
        let mut model: Vec<(f64, usize, u32, bool)> = Vec::new();
        let mut ids = Vec::new();
        let mut now = 0.0f64;
        let mut seq = 0usize;

        for op in ops {
            match op {
                Op::Schedule(dt) => {
                    let t = now + dt;
                    let id = q.schedule(SimTime::from_secs(t), seq as u32);
                    ids.push(id);
                    model.push((t, seq, seq as u32, true));
                    seq += 1;
                }
                Op::Cancel(k) => {
                    if !ids.is_empty() {
                        let k = k % ids.len();
                        let did = q.cancel(ids[k]);
                        // The model says the cancel succeeds iff entry k
                        // is still alive.
                        prop_assert_eq!(did, model[k].3, "cancel result mismatch");
                        model[k].3 = false;
                    }
                }
                Op::Pop => {
                    // Model pop: earliest (time, seq) alive entry.
                    let next = model
                        .iter()
                        .enumerate()
                        .filter(|(_, e)| e.3)
                        .min_by(|(_, a), (_, b)| {
                            a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1))
                        })
                        .map(|(i, e)| (i, e.0, e.2));
                    let popped = q.pop();
                    match (next, popped) {
                        (None, None) => {}
                        (Some((i, t, payload)), Some(ev)) => {
                            prop_assert_eq!(ev.time(), SimTime::from_secs(t));
                            prop_assert_eq!(ev.into_payload(), payload);
                            model[i].3 = false;
                            now = t;
                        }
                        (m, p) => {
                            return Err(TestCaseError::fail(format!(
                                "model {m:?} vs queue {p:?}"
                            )))
                        }
                    }
                }
            }
            // len() always agrees with the model's live count.
            let live = model.iter().filter(|e| e.3).count();
            prop_assert_eq!(q.len(), live);
        }
    }

    /// Draining any schedule-only workload yields a sorted sequence —
    /// on both backends.
    #[test]
    fn drain_is_sorted(times in proptest::collection::vec(0.0f64..1e6, 1..300)) {
        for kind in [QueueKind::IndexedHeap, QueueKind::Calendar] {
            let mut q = EventQueue::with_kind(kind);
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime::from_secs(t), i);
            }
            let mut last = SimTime::ZERO;
            let mut count = 0;
            while let Some(ev) = q.pop() {
                prop_assert!(ev.time() >= last);
                last = ev.time();
                count += 1;
            }
            prop_assert_eq!(count, times.len());
        }
    }

    /// The calendar queue is observationally identical to the indexed
    /// heap: the same schedule/cancel/reschedule/pop script pops the
    /// same (time, payload) sequence with the same cancel/reschedule
    /// outcomes — including FIFO order among the equal times the
    /// coarse-grid deltas produce. This is the contract that makes
    /// `--queue calendar` bit-identical at the simulation level.
    #[test]
    fn calendar_matches_heap_on_random_schedules(
        ops in proptest::collection::vec(xop_strategy(), 1..300),
    ) {
        let mut heap = EventQueue::with_kind(QueueKind::IndexedHeap);
        let mut cal = EventQueue::with_kind(QueueKind::Calendar);
        let mut heap_ids = Vec::new();
        let mut cal_ids = Vec::new();
        let mut now = SimTime::ZERO;

        for op in ops {
            match op {
                XOp::Schedule(dt) => {
                    let t = now + SimTime::from_secs(f64::from(dt));
                    let payload = heap_ids.len() as u32;
                    heap_ids.push(heap.schedule(t, payload));
                    cal_ids.push(cal.schedule(t, payload));
                }
                XOp::Cancel(k) => {
                    if !heap_ids.is_empty() {
                        let k = k % heap_ids.len();
                        prop_assert_eq!(heap.cancel(heap_ids[k]), cal.cancel(cal_ids[k]));
                    }
                }
                XOp::Reschedule(k, dt) => {
                    if !heap_ids.is_empty() {
                        let k = k % heap_ids.len();
                        let t = now + SimTime::from_secs(f64::from(dt));
                        prop_assert_eq!(
                            heap.reschedule(heap_ids[k], t),
                            cal.reschedule(cal_ids[k], t)
                        );
                    }
                }
                XOp::Pop => {
                    match (heap.pop(), cal.pop()) {
                        (None, None) => {}
                        (Some(h), Some(c)) => {
                            prop_assert_eq!(h.time(), c.time());
                            prop_assert_eq!(h.payload(), c.payload());
                            now = h.time();
                        }
                        (h, c) => {
                            return Err(TestCaseError::fail(format!(
                                "heap {h:?} vs calendar {c:?}"
                            )))
                        }
                    }
                    prop_assert_eq!(heap.watermark(), cal.watermark());
                }
            }
            prop_assert_eq!(heap.len(), cal.len());
        }
        // Drain both: the tails must agree event for event.
        loop {
            match (heap.pop(), cal.pop()) {
                (None, None) => break,
                (Some(h), Some(c)) => {
                    prop_assert_eq!(h.time(), c.time());
                    prop_assert_eq!(h.payload(), c.payload());
                }
                (h, c) => {
                    return Err(TestCaseError::fail(format!(
                        "drain: heap {h:?} vs calendar {c:?}"
                    )))
                }
            }
        }
    }
}
