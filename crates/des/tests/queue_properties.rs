//! Property-based tests of the cancellable event queue: for arbitrary
//! interleavings of schedules and cancellations, pops must come out in
//! (time, insertion) order and exactly the non-cancelled events appear.

use ckpt_des::{EventQueue, SimTime};
use proptest::prelude::*;

/// An abstract queue operation.
#[derive(Debug, Clone)]
enum Op {
    /// Schedule at `now + dt`.
    Schedule(f64),
    /// Cancel the k-th previously scheduled event (if any).
    Cancel(usize),
    /// Pop one event.
    Pop,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0.0f64..100.0).prop_map(Op::Schedule),
        1 => (0usize..64).prop_map(Op::Cancel),
        2 => Just(Op::Pop),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn queue_matches_reference_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let mut q = EventQueue::new();
        // Reference model: Vec of (time, seq, payload, alive).
        let mut model: Vec<(f64, usize, u32, bool)> = Vec::new();
        let mut ids = Vec::new();
        let mut now = 0.0f64;
        let mut seq = 0usize;

        for op in ops {
            match op {
                Op::Schedule(dt) => {
                    let t = now + dt;
                    let id = q.schedule(SimTime::from_secs(t), seq as u32);
                    ids.push(id);
                    model.push((t, seq, seq as u32, true));
                    seq += 1;
                }
                Op::Cancel(k) => {
                    if !ids.is_empty() {
                        let k = k % ids.len();
                        let did = q.cancel(ids[k]);
                        // The model says the cancel succeeds iff entry k
                        // is still alive.
                        prop_assert_eq!(did, model[k].3, "cancel result mismatch");
                        model[k].3 = false;
                    }
                }
                Op::Pop => {
                    // Model pop: earliest (time, seq) alive entry.
                    let next = model
                        .iter()
                        .enumerate()
                        .filter(|(_, e)| e.3)
                        .min_by(|(_, a), (_, b)| {
                            a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1))
                        })
                        .map(|(i, e)| (i, e.0, e.2));
                    let popped = q.pop();
                    match (next, popped) {
                        (None, None) => {}
                        (Some((i, t, payload)), Some(ev)) => {
                            prop_assert_eq!(ev.time(), SimTime::from_secs(t));
                            prop_assert_eq!(ev.into_payload(), payload);
                            model[i].3 = false;
                            now = t;
                        }
                        (m, p) => {
                            return Err(TestCaseError::fail(format!(
                                "model {m:?} vs queue {p:?}"
                            )))
                        }
                    }
                }
            }
            // len() always agrees with the model's live count.
            let live = model.iter().filter(|e| e.3).count();
            prop_assert_eq!(q.len(), live);
        }
    }

    /// Draining any schedule-only workload yields a sorted sequence.
    #[test]
    fn drain_is_sorted(times in proptest::collection::vec(0.0f64..1e6, 1..300)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_secs(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some(ev) = q.pop() {
            prop_assert!(ev.time() >= last);
            last = ev.time();
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }
}
