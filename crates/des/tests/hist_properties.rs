//! Property-based tests of the mergeable log-bucket histogram: the
//! bucket layout is fixed at compile time, so merging per-replication
//! histograms must be associative and commutative — the merged JSON is
//! byte-identical no matter how the record stream is partitioned across
//! workers or in which order the partial histograms are combined.

use ckpt_des::hist::{bucket_index, bucket_lower_bound, bucket_upper_bound, LogHistogram};
use proptest::prelude::*;

fn record_all(values: &[u64]) -> LogHistogram {
    let mut h = LogHistogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

/// Values spanning the linear range, the log range, and the extremes.
fn value_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![
        3 => 0u64..64,
        3 => 0u64..1_000_000,
        2 => (0u32..63).prop_map(|shift| 1u64 << shift),
        1 => Just(u64::MAX),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn every_value_lands_in_a_bucket_that_contains_it(v in value_strategy()) {
        let idx = bucket_index(v);
        prop_assert!(
            bucket_lower_bound(idx) <= v,
            "value {v} below lower bound of bucket {idx}"
        );
        prop_assert!(
            v <= bucket_upper_bound(idx),
            "value {v} above upper bound of bucket {idx}"
        );
    }

    #[test]
    fn merge_is_partition_invariant(
        values in proptest::collection::vec(value_strategy(), 0..400),
        cut_a in 0usize..400,
        cut_b in 0usize..400,
    ) {
        // One worker recording everything...
        let whole = record_all(&values);

        // ...must match any three-way split merged back together.
        let (lo, hi) = if cut_a <= cut_b { (cut_a, cut_b) } else { (cut_b, cut_a) };
        let (lo, hi) = (lo.min(values.len()), hi.min(values.len()));
        let mut merged = record_all(&values[..lo]);
        merged.merge(&record_all(&values[lo..hi]));
        merged.merge(&record_all(&values[hi..]));

        prop_assert_eq!(whole.to_json(), merged.to_json());
        prop_assert_eq!(whole.count(), values.len() as u64);
    }

    #[test]
    fn merge_order_does_not_matter(
        a in proptest::collection::vec(value_strategy(), 0..150),
        b in proptest::collection::vec(value_strategy(), 0..150),
        c in proptest::collection::vec(value_strategy(), 0..150),
    ) {
        let (ha, hb, hc) = (record_all(&a), record_all(&b), record_all(&c));

        // (a ⊕ b) ⊕ c, byte-compared against c ⊕ (b ⊕ a): exercises both
        // commutativity and associativity of the element-wise merge.
        let mut fwd = ha.clone();
        fwd.merge(&hb);
        fwd.merge(&hc);

        let mut rev = hc.clone();
        let mut ba = hb.clone();
        ba.merge(&ha);
        rev.merge(&ba);

        prop_assert_eq!(fwd.to_json(), rev.to_json());
    }

    #[test]
    fn summary_statistics_survive_a_merge(
        a in proptest::collection::vec(value_strategy(), 1..150),
        b in proptest::collection::vec(value_strategy(), 1..150),
    ) {
        let mut merged = record_all(&a);
        merged.merge(&record_all(&b));

        let all: Vec<u64> = a.iter().chain(&b).copied().collect();
        prop_assert_eq!(merged.count(), all.len() as u64);
        prop_assert_eq!(merged.min(), *all.iter().min().unwrap());
        prop_assert_eq!(merged.max(), *all.iter().max().unwrap());
        let sum: u64 = all.iter().fold(0u64, |acc, &v| acc.saturating_add(v));
        prop_assert_eq!(merged.sum(), sum);

        // Quantiles are bucket-resolution approximations, but they must
        // stay within the bucket containing the true order statistic.
        let mut sorted = all;
        sorted.sort_unstable();
        let true_p50 = sorted[(sorted.len() - 1) / 2];
        let est_p50 = merged.value_at_quantile(0.5);
        prop_assert!(
            bucket_index(est_p50) <= bucket_index(true_p50).saturating_add(1)
                && bucket_index(true_p50) <= bucket_index(est_p50).saturating_add(1),
            "p50 estimate {est_p50} too far from true median {true_p50}"
        );
    }
}
