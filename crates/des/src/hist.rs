//! Mergeable log-bucket histograms (HDR-style, fixed layout).
//!
//! A [`LogHistogram`] records non-negative integer samples (event-queue
//! depths, dirty-set sizes, sim-time gaps in whole seconds, …) into a
//! *fixed* bucket layout: values below [`LINEAR_LIMIT`] get one bucket
//! each, and every power-of-two octave above that is split into
//! [`SUB_BUCKETS`] equal sub-buckets (≈6 % relative resolution). The
//! layout never depends on the data, so merging two histograms is a
//! plain element-wise count addition — associative, commutative, and
//! therefore invariant under worker count and merge order. That is the
//! property the experiment layer relies on: per-replication histograms
//! merged in replication-index order produce byte-identical JSON at any
//! `--jobs` value.
//!
//! Percentile queries return the *upper bound* of the bucket holding
//! the requested rank (clamped to the recorded maximum), so quantiles
//! are deterministic integers with bounded relative error rather than
//! interpolated floats.

/// Values below this limit get one bucket each (exact counts).
pub const LINEAR_LIMIT: u64 = 16;

/// Sub-buckets per power-of-two octave above the linear range.
pub const SUB_BUCKETS: usize = 16;

/// log2 of [`LINEAR_LIMIT`]; the first octave that is subdivided.
const FIRST_OCTAVE: u32 = 4;

/// Total buckets: the linear range plus 60 subdivided octaves
/// (octaves 4..=63 cover the rest of the `u64` domain).
pub const NUM_BUCKETS: usize = LINEAR_LIMIT as usize + (64 - FIRST_OCTAVE as usize) * SUB_BUCKETS;

/// A fixed-layout log-bucket histogram over `u64` samples.
///
/// See the [module docs](self) for the layout and merge contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> LogHistogram {
        LogHistogram::new()
    }
}

/// Bucket index of a sample value. Total function: every `u64` maps to
/// exactly one of the [`NUM_BUCKETS`] buckets.
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    if value < LINEAR_LIMIT {
        return value as usize;
    }
    let octave = 63 - value.leading_zeros(); // >= FIRST_OCTAVE
    let sub = (value >> (octave - FIRST_OCTAVE)) as usize & (SUB_BUCKETS - 1);
    LINEAR_LIMIT as usize + (octave - FIRST_OCTAVE) as usize * SUB_BUCKETS + sub
}

/// Smallest value that lands in bucket `index`.
#[must_use]
pub fn bucket_lower_bound(index: usize) -> u64 {
    if index < LINEAR_LIMIT as usize {
        return index as u64;
    }
    let g = index - LINEAR_LIMIT as usize;
    let octave = FIRST_OCTAVE + (g / SUB_BUCKETS) as u32;
    let sub = (g % SUB_BUCKETS) as u64;
    (1u64 << octave) + (sub << (octave - FIRST_OCTAVE))
}

/// Largest value that lands in bucket `index` (inclusive).
#[must_use]
pub fn bucket_upper_bound(index: usize) -> u64 {
    if index + 1 >= NUM_BUCKETS {
        u64::MAX
    } else {
        bucket_lower_bound(index + 1) - 1
    }
}

impl LogHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> LogHistogram {
        LogHistogram {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of recorded samples (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Adds every bucket of `other` into `self`. Element-wise addition
    /// over a fixed layout: associative and commutative, so any merge
    /// order or partition of the same samples yields identical state.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += *b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The value at quantile `q` (0.0..=1.0): the upper bound of the
    /// bucket containing the sample of rank `ceil(q·count)`, clamped to
    /// the recorded maximum. 0 when empty. Deterministic — integer
    /// bucket walking, no interpolation.
    #[must_use]
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Non-empty buckets as `(index, count)` pairs, ascending by index.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }

    /// Deterministic JSON encoding: summary fields plus the sparse
    /// bucket list. Byte-identical for equal histogram state.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[",
            self.count,
            self.sum,
            self.min(),
            self.max,
            self.value_at_quantile(0.50),
            self.value_at_quantile(0.90),
            self.value_at_quantile(0.99),
        );
        for (n, (i, c)) in self.nonzero_buckets().enumerate() {
            if n > 0 {
                s.push(',');
            }
            s.push_str(&format!("[{i},{c}]"));
        }
        s.push_str("]}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_total_and_monotone() {
        // Every bucket's bounds nest: lower <= upper < next lower.
        for i in 0..NUM_BUCKETS - 1 {
            let lo = bucket_lower_bound(i);
            let hi = bucket_upper_bound(i);
            assert!(lo <= hi, "bucket {i}");
            assert_eq!(hi + 1, bucket_lower_bound(i + 1), "bucket {i}");
        }
        // Round trip: a value's bucket contains it.
        for v in [0u64, 1, 15, 16, 17, 31, 32, 100, 1 << 20, u64::MAX] {
            let i = bucket_index(v);
            assert!(
                bucket_lower_bound(i) <= v && v <= bucket_upper_bound(i),
                "v={v}"
            );
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..LINEAR_LIMIT {
            h.record(v);
        }
        for v in 0..LINEAR_LIMIT {
            assert_eq!(h.value_at_quantile((v as f64 + 1.0) / 16.0), v);
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
        assert_eq!(h.count(), 16);
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let samples: Vec<u64> = (0..1000u64).map(|i| i * i % 7919 + i / 3).collect();
        let mut whole = LogHistogram::new();
        for &s in &samples {
            whole.record(s);
        }
        // Split in three, merge in a scrambled order.
        let mut parts = [
            LogHistogram::new(),
            LogHistogram::new(),
            LogHistogram::new(),
        ];
        for (i, &s) in samples.iter().enumerate() {
            parts[i % 3].record(s);
        }
        let mut merged = LogHistogram::new();
        merged.merge(&parts[2]);
        merged.merge(&parts[0]);
        merged.merge(&parts[1]);
        assert_eq!(merged, whole);
        assert_eq!(merged.to_json(), whole.to_json());
    }

    #[test]
    fn quantiles_are_bounded_by_the_data() {
        let mut h = LogHistogram::new();
        for v in [100u64, 200, 300, 4000, 50_000] {
            h.record(v);
        }
        assert!(h.value_at_quantile(0.5) >= 200);
        assert!(h.value_at_quantile(1.0) <= h.max());
        assert_eq!(h.value_at_quantile(1.0), h.max());
        let relative_error = (h.value_at_quantile(0.5) as f64 - 300.0).abs() / 300.0;
        assert!(relative_error < 0.10, "p50 error {relative_error}");
    }

    #[test]
    fn empty_histogram_is_benign() {
        let h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.value_at_quantile(0.99), 0);
        assert_eq!(
            h.to_json(),
            "{\"count\":0,\"sum\":0,\"min\":0,\"max\":0,\"p50\":0,\"p90\":0,\"p99\":0,\"buckets\":[]}"
        );
    }
}
