//! Feature-gated phase profiler for the per-event hot loop.
//!
//! The simulators attribute wall time and counts to the seven hot
//! phases of event processing:
//!
//! 1. **delay sampling** — drawing firing delays for newly (re)enabled
//!    timed activities;
//! 2. **instantaneous settle** — selecting enabled instantaneous
//!    activities to fire after each state change (minus the nested
//!    firing work, attributed to its own phase);
//! 3. **schedule reconciliation** — deciding which timed activities to
//!    schedule, cancel, or resample after a firing;
//! 4. **event-queue ops** — heap pushes, pops, and in-place moves;
//! 5. **reward accumulation** — integrating rate rewards and fluid
//!    flows over elapsed simulated time;
//! 6. **activity firing** — consuming input arcs, running gate
//!    functions, case selection, output effects, and impulse rewards;
//! 7. **event dispatch** — the per-event bookkeeping around all of the
//!    above (clock advance, dirty-window reset, telemetry probes,
//!    rate-cache refresh, consistency checks).
//!
//! Phases 2, 3, and 7 are *containers*: their instrumented regions
//! enclose other instrumented regions, so they are recorded via
//! [`PhaseProfiler::end_excluding_nested`], which subtracts whatever
//! the nested regions already attributed. The seven accumulators are
//! therefore disjoint and sum to (at most) the instrumented wall time.
//!
//! Everything here compiles to **nothing** unless the `prof` cargo
//! feature is enabled: [`PhaseSpan`] is a zero-sized token, and
//! [`PhaseProfiler::begin`]/[`PhaseProfiler::end`] are empty inline
//! functions, so an unprofiled build pays zero overhead — not even a
//! branch (verified by benchmarking a no-feature build against the
//! pre-profiler baseline). With the feature on, each instrumented
//! region costs two monotonic clock reads, which roughly triples the
//! per-event cost; profiled builds measure *where* time goes, never
//! *how fast* the engine is. Check [`ENABLED`] to discover at run time
//! which kind of build this is.

/// `true` when this build was compiled with the `prof` feature and the
/// hooks below actually record; `false` when they are no-ops.
pub const ENABLED: bool = cfg!(feature = "prof");

/// The seven instrumented phases of the per-event kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum HotPhase {
    /// Drawing firing delays for (re)enabled timed activities.
    DelaySampling = 0,
    /// Selecting instantaneous activities to fire (minus the nested
    /// firing work, which is attributed to
    /// [`HotPhase::ActivityFiring`]).
    InstantaneousSettle = 1,
    /// Post-firing schedule reconciliation (minus its nested delay
    /// sampling and queue operations, which are attributed to their
    /// own phases).
    ScheduleReconciliation = 2,
    /// Event-queue pushes, pops, peeks, cancellations, and in-place
    /// reschedules.
    QueueOps = 3,
    /// Rate-reward and fluid-flow integration over elapsed sim time.
    RewardAccumulation = 4,
    /// Firing one activity: arc consumption, gate functions, case
    /// selection, output effects, impulse rewards, observer calls.
    ActivityFiring = 5,
    /// Per-event dispatch and bookkeeping around the other phases:
    /// clock advance, dirty-window reset, rate-cache refresh,
    /// telemetry probes, and (debug builds) consistency checks.
    EventDispatch = 6,
}

/// Number of instrumented phases.
pub const PHASE_COUNT: usize = 7;

impl HotPhase {
    /// All phases, in display order.
    pub const ALL: [HotPhase; PHASE_COUNT] = [
        HotPhase::DelaySampling,
        HotPhase::InstantaneousSettle,
        HotPhase::ScheduleReconciliation,
        HotPhase::QueueOps,
        HotPhase::RewardAccumulation,
        HotPhase::ActivityFiring,
        HotPhase::EventDispatch,
    ];

    /// Stable snake_case name used in JSON breakdowns.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            HotPhase::DelaySampling => "delay_sampling",
            HotPhase::InstantaneousSettle => "instantaneous_settle",
            HotPhase::ScheduleReconciliation => "schedule_reconciliation",
            HotPhase::QueueOps => "queue_ops",
            HotPhase::RewardAccumulation => "reward_accumulation",
            HotPhase::ActivityFiring => "activity_firing",
            HotPhase::EventDispatch => "event_dispatch",
        }
    }
}

/// Accumulated wall nanoseconds and region counts per phase.
///
/// Always available (so APIs returning one need no feature gates), but
/// stays all-zero unless the build has the `prof` feature.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseProfile {
    /// Wall nanoseconds attributed to each phase, indexed by
    /// `HotPhase as usize`.
    pub nanos: [u64; PHASE_COUNT],
    /// Number of instrumented regions entered per phase.
    pub counts: [u64; PHASE_COUNT],
}

impl PhaseProfile {
    /// Adds `other`'s accumulators into `self` (e.g. merging
    /// replications).
    pub fn merge(&mut self, other: &PhaseProfile) {
        for i in 0..PHASE_COUNT {
            self.nanos[i] += other.nanos[i];
            self.counts[i] += other.counts[i];
        }
    }

    /// Total attributed nanoseconds across all phases.
    #[must_use]
    pub fn total_nanos(&self) -> u64 {
        self.nanos.iter().sum()
    }

    /// `true` when nothing was recorded (e.g. a no-feature build).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }
}

/// Opaque token marking the start of an instrumented region.
///
/// Zero-sized when the `prof` feature is off.
#[derive(Clone, Copy)]
pub struct PhaseSpan {
    #[cfg(feature = "prof")]
    at: std::time::Instant,
    /// Total attributed nanos (all phases) at region start; used by
    /// [`PhaseProfiler::end_excluding_nested`].
    #[cfg(feature = "prof")]
    nested: u64,
}

/// Per-simulator phase accumulator driving the [`PhaseSpan`] tokens.
#[derive(Debug, Clone, Default)]
pub struct PhaseProfiler {
    profile: PhaseProfile,
}

impl PhaseProfiler {
    /// Creates an empty profiler.
    #[must_use]
    pub fn new() -> PhaseProfiler {
        PhaseProfiler::default()
    }

    /// Opens an instrumented region. Free when the feature is off.
    #[inline(always)]
    #[must_use]
    pub fn begin(&self) -> PhaseSpan {
        PhaseSpan {
            #[cfg(feature = "prof")]
            at: std::time::Instant::now(),
            #[cfg(feature = "prof")]
            nested: self.profile.total_nanos(),
        }
    }

    /// Closes a region, attributing its full elapsed time to `phase`.
    #[inline(always)]
    pub fn end(&mut self, phase: HotPhase, span: PhaseSpan) {
        #[cfg(feature = "prof")]
        {
            let dt = span.at.elapsed().as_nanos() as u64;
            self.profile.nanos[phase as usize] += dt;
            self.profile.counts[phase as usize] += 1;
        }
        #[cfg(not(feature = "prof"))]
        {
            let _ = (phase, span);
        }
    }

    /// Closes a region, attributing its elapsed time *minus* anything
    /// the nested instrumented regions already attributed to `phase`.
    ///
    /// Used for the container phases (settle, reconciliation, event
    /// dispatch), whose bodies contain other instrumented regions:
    /// attributing leaves to their own phases and only the remainder
    /// here keeps the accumulators disjoint, so they sum to (at most)
    /// the instrumented wall time. Containers may nest (dispatch
    /// encloses settle encloses firing) as long as each inner region
    /// is closed before its enclosing one.
    #[inline(always)]
    pub fn end_excluding_nested(&mut self, phase: HotPhase, span: PhaseSpan) {
        #[cfg(feature = "prof")]
        {
            let dt = span.at.elapsed().as_nanos() as u64;
            let nested = self.profile.total_nanos() - span.nested;
            self.profile.nanos[phase as usize] += dt.saturating_sub(nested);
            self.profile.counts[phase as usize] += 1;
        }
        #[cfg(not(feature = "prof"))]
        {
            let _ = (phase, span);
        }
    }

    /// The accumulated profile so far.
    #[must_use]
    pub fn profile(&self) -> &PhaseProfile {
        &self.profile
    }

    /// Returns the accumulated profile and resets the accumulators.
    pub fn take(&mut self) -> PhaseProfile {
        std::mem::take(&mut self.profile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_profile_is_empty() {
        let p = PhaseProfiler::new();
        assert!(p.profile().is_empty());
        assert_eq!(p.profile().total_nanos(), 0);
    }

    #[test]
    fn names_are_stable_snake_case() {
        let names: Vec<&str> = HotPhase::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            [
                "delay_sampling",
                "instantaneous_settle",
                "schedule_reconciliation",
                "queue_ops",
                "reward_accumulation",
                "activity_firing",
                "event_dispatch"
            ]
        );
    }

    #[test]
    fn merge_accumulates() {
        let mut a = PhaseProfile::default();
        let mut b = PhaseProfile::default();
        a.nanos[0] = 5;
        a.counts[0] = 1;
        b.nanos[0] = 7;
        b.counts[0] = 2;
        b.nanos[6] = 11;
        b.counts[6] = 1;
        a.merge(&b);
        assert_eq!(a.nanos[0], 12);
        assert_eq!(a.counts[0], 3);
        assert_eq!(a.total_nanos(), 23);
        assert!(!a.is_empty());
    }

    #[cfg(feature = "prof")]
    #[test]
    fn spans_record_when_enabled() {
        const { assert!(ENABLED) };
        let mut p = PhaseProfiler::new();
        let s = p.begin();
        std::hint::black_box(0u64);
        p.end(HotPhase::QueueOps, s);
        assert_eq!(p.profile().counts[HotPhase::QueueOps as usize], 1);
        let taken = p.take();
        assert!(!taken.is_empty());
        assert!(p.profile().is_empty());
    }

    #[cfg(feature = "prof")]
    #[test]
    fn containers_exclude_any_nested_phase() {
        // A dispatch-style container wrapping a leaf from a *different*
        // phase must not double count the leaf's time: container nanos
        // stay below its wall time once the leaf is subtracted.
        let mut p = PhaseProfiler::new();
        let outer = p.begin();
        let inner = p.begin();
        std::thread::sleep(std::time::Duration::from_millis(2));
        p.end(HotPhase::ActivityFiring, inner);
        p.end_excluding_nested(HotPhase::EventDispatch, outer);
        let fired = p.profile().nanos[HotPhase::ActivityFiring as usize];
        let dispatch = p.profile().nanos[HotPhase::EventDispatch as usize];
        assert!(fired >= 1_000_000, "leaf recorded {fired} ns");
        assert!(
            dispatch < fired,
            "container must exclude the nested leaf ({dispatch} vs {fired})"
        );
    }

    #[cfg(not(feature = "prof"))]
    #[test]
    fn spans_are_noops_when_disabled() {
        const { assert!(!ENABLED) };
        let mut p = PhaseProfiler::new();
        let s = p.begin();
        p.end(HotPhase::QueueOps, s);
        p.end_excluding_nested(HotPhase::ScheduleReconciliation, s);
        assert!(p.profile().is_empty());
        assert_eq!(std::mem::size_of::<PhaseSpan>(), 0);
    }
}
