//! Feature-gated hot-loop telemetry: distribution probes and RNG-draw
//! accounting.
//!
//! The phase profiler (`prof`) answers *where wall time goes*; this
//! module answers *what the simulation state looked like* while it
//! went: the event-queue depth and dirty-set size distributions seen by
//! the hot loop, plus how many raw RNG words each replication consumed.
//! Samples land in fixed-layout [`LogHistogram`]s (see [`crate::hist`])
//! so per-replication results merge deterministically at any worker
//! count.
//!
//! Everything here follows the `prof` contract: without the
//! `telemetry` cargo feature, [`HotTelemetry`] is a zero-sized struct
//! and every probe is an empty `#[inline(always)]` function — the
//! default build pays nothing, not even a branch, which is what keeps
//! disabled-telemetry runs bit- and speed-identical to the pre-telemetry
//! tree (pinned by the golden fingerprints in `tests/` and the
//! `bench_gate.sh` throughput gate). Check [`ENABLED`] at run time to
//! discover which kind of build this is.
//!
//! RNG draws are counted in a thread-local because the engines thread
//! `SimRng` values through deep call chains; a replication always runs
//! on one thread, so the experiment layer attributes draws to a
//! replication by differencing [`rng_draws`] around it.

use crate::hist::LogHistogram;

/// `true` when this build was compiled with the `telemetry` feature
/// and the probes below actually record; `false` when they are no-ops.
pub const ENABLED: bool = cfg!(feature = "telemetry");

#[cfg(feature = "telemetry")]
thread_local! {
    static RNG_DRAWS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
    static REDRAWS_ELIDED: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Counts one raw RNG word drawn on this thread. Called from the
/// `SimRng` refill path; free when the feature is off.
#[inline(always)]
pub fn note_rng_draw() {
    #[cfg(feature = "telemetry")]
    RNG_DRAWS.with(|c| c.set(c.get() + 1));
}

/// Raw RNG words drawn on this thread so far (0 in a no-feature
/// build). Monotone within a thread; difference around a replication
/// to attribute draws to it.
#[must_use]
pub fn rng_draws() -> u64 {
    #[cfg(feature = "telemetry")]
    {
        RNG_DRAWS.with(std::cell::Cell::get)
    }
    #[cfg(not(feature = "telemetry"))]
    {
        0
    }
}

/// Counts one reactivation redraw skipped by `Reactivation` lazy mode:
/// a `Resample` timer whose marking-independent exponential delay was
/// kept instead of being redrawn and requeued (valid by
/// memorylessness). Free when the feature is off.
#[inline(always)]
pub fn note_redraw_elided() {
    #[cfg(feature = "telemetry")]
    REDRAWS_ELIDED.with(|c| c.set(c.get() + 1));
}

/// Reactivation redraws elided on this thread so far (0 in a
/// no-feature build). Monotone within a thread; difference around a
/// replication to attribute elisions to it.
#[must_use]
pub fn redraws_elided() -> u64 {
    #[cfg(feature = "telemetry")]
    {
        REDRAWS_ELIDED.with(std::cell::Cell::get)
    }
    #[cfg(not(feature = "telemetry"))]
    {
        0
    }
}

/// Hot-loop distribution probes owned by a simulator.
///
/// Zero-sized with the feature off; with it on, holds one
/// [`LogHistogram`] per probed quantity.
#[derive(Debug, Clone, Default)]
pub struct HotTelemetry {
    #[cfg(feature = "telemetry")]
    queue_depth: LogHistogram,
    #[cfg(feature = "telemetry")]
    dirty_set: LogHistogram,
    #[cfg(feature = "telemetry")]
    band_occupancy: LogHistogram,
}

impl HotTelemetry {
    /// An empty probe set.
    #[must_use]
    pub fn new() -> HotTelemetry {
        HotTelemetry::default()
    }

    /// Records the event-queue depth observed after popping an event.
    #[inline(always)]
    pub fn record_queue_depth(&mut self, depth: usize) {
        #[cfg(feature = "telemetry")]
        self.queue_depth.record(depth as u64);
        #[cfg(not(feature = "telemetry"))]
        {
            let _ = depth;
        }
    }

    /// Records the dirty-place set size seen while settling an event.
    #[inline(always)]
    pub fn record_dirty_set(&mut self, size: usize) {
        #[cfg(feature = "telemetry")]
        self.dirty_set.record(size as u64);
        #[cfg(not(feature = "telemetry"))]
        {
            let _ = size;
        }
    }

    /// Records the live occupancy of the calendar queue's current band
    /// (bucket) observed after popping an event. Calendar backend only;
    /// heap runs record nothing here.
    #[inline(always)]
    pub fn record_band_occupancy(&mut self, occupancy: usize) {
        #[cfg(feature = "telemetry")]
        self.band_occupancy.record(occupancy as u64);
        #[cfg(not(feature = "telemetry"))]
        {
            let _ = occupancy;
        }
    }

    /// Copies the accumulated distributions out. Empty histograms in a
    /// no-feature build, so callers need no gates.
    #[must_use]
    pub fn snapshot(&self) -> TelemetrySnapshot {
        #[cfg(feature = "telemetry")]
        {
            TelemetrySnapshot {
                queue_depth: self.queue_depth.clone(),
                dirty_set: self.dirty_set.clone(),
                band_occupancy: self.band_occupancy.clone(),
            }
        }
        #[cfg(not(feature = "telemetry"))]
        {
            TelemetrySnapshot::default()
        }
    }
}

/// Engine-side telemetry copied out of a finished run.
///
/// Always available (APIs returning one need no feature gates); all
/// histograms are empty unless the build has the `telemetry` feature.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySnapshot {
    /// Event-queue depth at each hot-loop pop.
    pub queue_depth: LogHistogram,
    /// Dirty-place set size at each settled event (SAN engine only).
    pub dirty_set: LogHistogram,
    /// Live per-band (bucket) occupancy of the calendar queue at each
    /// hot-loop pop; empty on the heap backend.
    pub band_occupancy: LogHistogram,
}

impl TelemetrySnapshot {
    /// True when no probe recorded anything (the no-feature build, or
    /// a run with zero events).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.queue_depth.is_empty() && self.dirty_set.is_empty() && self.band_occupancy.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(not(feature = "telemetry"))]
    #[test]
    fn disabled_probes_are_free() {
        const { assert!(!ENABLED) };
        assert_eq!(std::mem::size_of::<HotTelemetry>(), 0);
        let mut t = HotTelemetry::new();
        t.record_queue_depth(17);
        t.record_dirty_set(3);
        t.record_band_occupancy(5);
        assert!(t.snapshot().is_empty());
        note_rng_draw();
        assert_eq!(rng_draws(), 0);
        note_redraw_elided();
        assert_eq!(redraws_elided(), 0);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn enabled_probes_record() {
        const { assert!(ENABLED) };
        let mut t = HotTelemetry::new();
        t.record_queue_depth(17);
        t.record_queue_depth(2);
        t.record_dirty_set(3);
        let snap = t.snapshot();
        assert_eq!(snap.queue_depth.count(), 2);
        assert_eq!(snap.queue_depth.max(), 17);
        assert_eq!(snap.dirty_set.count(), 1);
        t.record_band_occupancy(4);
        assert_eq!(t.snapshot().band_occupancy.count(), 1);
        let before = rng_draws();
        note_rng_draw();
        note_rng_draw();
        assert_eq!(rng_draws() - before, 2);
        let before = redraws_elided();
        note_redraw_elided();
        assert_eq!(redraws_elided() - before, 1);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn sim_rng_draws_are_counted_per_raw_word() {
        use crate::SimRng;
        let before = rng_draws();
        let mut rng = SimRng::seed_from_u64(42);
        let mut acc = 0.0;
        for _ in 0..10 {
            acc += rng.open_unit();
        }
        assert!(acc > 0.0);
        // open_unit consumes at least one raw word per call.
        assert!(
            rng_draws() - before >= 10,
            "draws: {}",
            rng_draws() - before
        );
    }
}
