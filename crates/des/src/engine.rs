//! Run-control: drives an [`EventHandler`] over an [`EventQueue`].

use crate::queue::EventQueue;
use crate::time::SimTime;

/// The model side of the simulation loop: owns all model state and
/// reacts to events popped from the queue, usually scheduling follow-up
/// events.
pub trait EventHandler {
    /// The event payload type this handler understands.
    type Event;

    /// Processes one event that fired at simulated time `now`.
    ///
    /// The handler may schedule new events (at `now` or later) and cancel
    /// pending ones through `queue`.
    fn handle(&mut self, now: SimTime, event: Self::Event, queue: &mut EventQueue<Self::Event>);
}

/// Why a call to [`Engine::run_until`] / [`Engine::run_for_events`]
/// returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained before the limit was reached.
    QueueEmpty,
    /// The time horizon was reached (the next event lies beyond it).
    HorizonReached,
    /// The event budget was exhausted.
    BudgetExhausted,
}

/// Pairs an [`EventHandler`] with an [`EventQueue`] and a clock, and runs
/// the classic event loop: pop, advance clock, dispatch.
///
/// See the [crate-level example](crate) for usage.
#[derive(Debug)]
pub struct Engine<H: EventHandler> {
    handler: H,
    queue: EventQueue<H::Event>,
    now: SimTime,
    events_processed: u64,
}

impl<H: EventHandler> Engine<H> {
    /// Creates an engine at time zero with an empty queue.
    pub fn new(handler: H) -> Engine<H> {
        Engine {
            handler,
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            events_processed: 0,
        }
    }

    /// Current simulated time (time of the last processed event).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Borrows the model.
    pub fn handler(&self) -> &H {
        &self.handler
    }

    /// Mutably borrows the model (e.g. to read off results between runs).
    pub fn handler_mut(&mut self) -> &mut H {
        &mut self.handler
    }

    /// Borrows the queue mutably, e.g. to seed initial events.
    pub fn queue_mut(&mut self) -> &mut EventQueue<H::Event> {
        &mut self.queue
    }

    /// Consumes the engine, returning the model.
    pub fn into_handler(self) -> H {
        self.handler
    }

    /// Runs until the queue drains or the next event would fire after
    /// `horizon`. Events exactly at the horizon are processed; the clock
    /// is left at `max(now, horizon)` so rate-integrals can close out the
    /// final interval.
    pub fn run_until(&mut self, horizon: SimTime) -> RunOutcome {
        loop {
            match self.queue.peek_time() {
                None => {
                    self.now = self.now.max(horizon);
                    return RunOutcome::QueueEmpty;
                }
                Some(t) if t > horizon => {
                    self.now = horizon;
                    return RunOutcome::HorizonReached;
                }
                Some(_) => {
                    let Some(ev) = self.queue.pop() else {
                        unreachable!("peek_time returned Some")
                    };
                    self.now = ev.time();
                    self.events_processed += 1;
                    self.handler
                        .handle(self.now, ev.into_payload(), &mut self.queue);
                }
            }
        }
    }

    /// Processes at most `budget` events (or until the queue drains).
    pub fn run_for_events(&mut self, budget: u64) -> RunOutcome {
        for _ in 0..budget {
            let Some(ev) = self.queue.pop() else {
                return RunOutcome::QueueEmpty;
            };
            self.now = ev.time();
            self.events_processed += 1;
            self.handler
                .handle(self.now, ev.into_payload(), &mut self.queue);
        }
        if self.queue.is_empty() {
            RunOutcome::QueueEmpty
        } else {
            RunOutcome::BudgetExhausted
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Collector {
        seen: Vec<(f64, u32)>,
    }

    impl EventHandler for Collector {
        type Event = u32;

        fn handle(&mut self, now: SimTime, ev: u32, queue: &mut EventQueue<u32>) {
            self.seen.push((now.as_secs(), ev));
            if ev < 3 {
                queue.schedule(now + SimTime::from_secs(1.0), ev + 1);
            }
        }
    }

    #[test]
    fn chain_of_events_runs_to_completion() {
        let mut engine = Engine::new(Collector { seen: vec![] });
        engine.queue_mut().schedule(SimTime::ZERO, 0);
        let outcome = engine.run_until(SimTime::from_secs(100.0));
        assert_eq!(outcome, RunOutcome::QueueEmpty);
        assert_eq!(
            engine.handler().seen,
            vec![(0.0, 0), (1.0, 1), (2.0, 2), (3.0, 3)]
        );
        assert_eq!(engine.events_processed(), 4);
        // Clock advances to the horizon even after the queue drains.
        assert_eq!(engine.now(), SimTime::from_secs(100.0));
    }

    #[test]
    fn horizon_stops_mid_chain() {
        let mut engine = Engine::new(Collector { seen: vec![] });
        engine.queue_mut().schedule(SimTime::ZERO, 0);
        let outcome = engine.run_until(SimTime::from_secs(1.5));
        assert_eq!(outcome, RunOutcome::HorizonReached);
        assert_eq!(engine.handler().seen, vec![(0.0, 0), (1.0, 1)]);
        assert_eq!(engine.now(), SimTime::from_secs(1.5));
        // Resuming picks up where we left off.
        let outcome = engine.run_until(SimTime::from_secs(10.0));
        assert_eq!(outcome, RunOutcome::QueueEmpty);
        assert_eq!(engine.handler().seen.len(), 4);
    }

    #[test]
    fn event_at_horizon_is_processed() {
        let mut engine = Engine::new(Collector { seen: vec![] });
        engine.queue_mut().schedule(SimTime::from_secs(5.0), 3);
        let outcome = engine.run_until(SimTime::from_secs(5.0));
        assert_eq!(outcome, RunOutcome::QueueEmpty);
        assert_eq!(engine.handler().seen, vec![(5.0, 3)]);
    }

    #[test]
    fn event_budget_is_respected() {
        let mut engine = Engine::new(Collector { seen: vec![] });
        engine.queue_mut().schedule(SimTime::ZERO, 0);
        let outcome = engine.run_for_events(2);
        assert_eq!(outcome, RunOutcome::BudgetExhausted);
        assert_eq!(engine.handler().seen.len(), 2);
    }

    #[test]
    fn into_handler_returns_model() {
        let mut engine = Engine::new(Collector { seen: vec![] });
        engine.queue_mut().schedule(SimTime::ZERO, 3);
        engine.run_until(SimTime::from_secs(1.0));
        let model = engine.into_handler();
        assert_eq!(model.seen, vec![(0.0, 3)]);
    }
}
