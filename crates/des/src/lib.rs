//! Discrete-event simulation kernel for the `ckptsim` project.
//!
//! This crate provides the minimal substrate every simulator in the
//! workspace is built on:
//!
//! * [`SimTime`] — a strongly typed simulation clock value (seconds,
//!   `f64`), with total ordering that rejects NaN at construction.
//! * [`EventQueue`] — a cancellable priority queue of scheduled events,
//!   backed by either an indexed binary heap (the default) or a
//!   calendar queue, selected per simulation via [`QueueKind`]. Both
//!   backends pop the identical `(time, FIFO)` event order.
//! * [`RngFactory`] / [`SimRng`] — deterministic, splittable random-number
//!   streams so that every stochastic component of a model draws from its
//!   own substream and simulations are exactly reproducible from a single
//!   master seed.
//! * [`Engine`] — a tiny run-control harness that drives an
//!   [`EventHandler`] until a time horizon or event budget is exhausted.
//!
//! The kernel is deliberately policy-free: it knows nothing about Petri
//! nets, SANs, or checkpointing. Higher layers (`ckpt-san`,
//! `ckpt-core::direct`) define what an event *means*.
//!
//! # Example
//!
//! ```
//! use ckpt_des::{Engine, EventHandler, EventQueue, SimTime};
//!
//! /// Counts how many times it has been woken up, re-arming itself
//! /// every 2 simulated seconds.
//! struct Ticker {
//!     ticks: u64,
//! }
//!
//! impl EventHandler for Ticker {
//!     type Event = ();
//!
//!     fn handle(&mut self, now: SimTime, _ev: (), queue: &mut EventQueue<()>) {
//!         self.ticks += 1;
//!         queue.schedule(now + SimTime::from_secs(2.0), ());
//!     }
//! }
//!
//! let mut engine = Engine::new(Ticker { ticks: 0 });
//! engine.queue_mut().schedule(SimTime::ZERO, ());
//! engine.run_until(SimTime::from_secs(10.0));
//! assert_eq!(engine.handler().ticks, 6); // t = 0,2,4,6,8,10
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod calendar;
mod engine;
mod event;
pub mod hist;
pub mod prof;
mod queue;
mod rng;
pub mod telem;
mod time;

pub use engine::{Engine, EventHandler, RunOutcome};
pub use event::{EventId, ScheduledEvent};
pub use hist::LogHistogram;
pub use queue::{EventQueue, QueueKind};
pub use rng::{RngFactory, Sampling, SimRng, StreamId};
pub use time::{SimTime, TimeError};
