//! Cancellable future-event list.

use crate::event::{EventId, ScheduledEvent};
use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The future-event list of a simulation: a min-heap of
/// [`ScheduledEvent`]s keyed by time (FIFO among ties), with O(1)
/// cancellation by tombstoning.
///
/// Bookkeeping is a slab of per-event slots indexed directly by the
/// [`EventId`] (generation-counted so recycled slots never confuse a
/// stale handle with a live event) — the hot schedule/cancel/pop path
/// does no hashing and no per-event allocation once the slab has grown
/// to the working-set size.
///
/// Cancelled entries remain in the heap until they surface at the top and
/// are silently skipped, so memory is reclaimed lazily; an explicit
/// in-place (allocation-free) compaction pass runs automatically once
/// tombstones outnumber live entries, which keeps the heap — and every
/// sift — near the live working-set size even when far-future events are
/// cancelled faster than they surface.
///
/// # Example
///
/// ```
/// use ckpt_des::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// let early = q.schedule(SimTime::from_secs(1.0), "early");
/// q.schedule(SimTime::from_secs(2.0), "late");
/// q.cancel(early);
///
/// let next = q.pop().expect("one live event left");
/// assert_eq!(next.into_payload(), "late");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<ScheduledEvent<E>>>,
    /// One slot per in-flight event, indexed by the low half of the
    /// [`EventId`]; the high half must match the slot's generation.
    slots: Vec<Slot>,
    /// Indices of slots available for reuse.
    free: Vec<u32>,
    pending: usize,
    cancelled: usize,
    /// Monotone insertion sequence, the FIFO tie-breaker among events
    /// scheduled at the same time (slot ids recycle, so they cannot
    /// order insertions).
    next_seq: u64,
    /// Time of the most recently popped event; schedules before this are
    /// rejected to preserve causality.
    watermark: SimTime,
}

/// Lifecycle of one slab slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    /// No event currently uses this slot.
    Free,
    /// Scheduled, neither fired nor cancelled.
    Pending,
    /// Cancelled; its heap entry is a tombstone awaiting reclamation.
    Cancelled,
}

#[derive(Debug)]
struct Slot {
    /// Bumped on every release; a handle whose generation mismatches is
    /// stale (already fired or cancelled).
    gen: u32,
    state: SlotState,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the watermark at time zero.
    #[must_use]
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            pending: 0,
            cancelled: 0,
            next_seq: 0,
            watermark: SimTime::ZERO,
        }
    }

    /// Schedules `payload` to fire at absolute time `time`, returning a
    /// handle usable with [`EventQueue::cancel`].
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the most recently popped event:
    /// scheduling into the past would violate causality and always
    /// indicates a model bug.
    pub fn schedule(&mut self, time: SimTime, payload: E) -> EventId {
        assert!(
            time >= self.watermark,
            "attempted to schedule an event at {time} before current time {}",
            self.watermark
        );
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                let s = u32::try_from(self.slots.len()).expect("more than 2^32 in-flight events");
                self.slots.push(Slot {
                    gen: 0,
                    state: SlotState::Free,
                });
                s
            }
        };
        debug_assert_eq!(self.slots[slot as usize].state, SlotState::Free);
        self.slots[slot as usize].state = SlotState::Pending;
        self.pending += 1;
        let id = EventId(u64::from(self.slots[slot as usize].gen) << 32 | u64::from(slot));
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(ScheduledEvent {
            time,
            id,
            seq,
            payload,
        }));
        id
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event was still pending, `false` if it had
    /// already fired, been cancelled, or never existed.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let Some(slot) = self.resolve(id) else {
            return false;
        };
        if self.slots[slot].state != SlotState::Pending {
            return false;
        }
        self.slots[slot].state = SlotState::Cancelled;
        self.pending -= 1;
        self.cancelled += 1;
        self.maybe_compact();
        true
    }

    /// Removes and returns the earliest live event, advancing the
    /// watermark to its time.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        while let Some(Reverse(ev)) = self.heap.pop() {
            let slot = (ev.id.0 & 0xFFFF_FFFF) as usize;
            match self.slots[slot].state {
                SlotState::Cancelled => {
                    self.cancelled -= 1;
                    self.release(slot);
                }
                SlotState::Pending => {
                    self.pending -= 1;
                    self.release(slot);
                    self.watermark = ev.time;
                    return Some(ev);
                }
                SlotState::Free => unreachable!("heap entry for a freed slot"),
            }
        }
        None
    }

    /// The time of the earliest live event without removing it.
    #[must_use]
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(Reverse(ev)) = self.heap.peek() {
            let slot = (ev.id.0 & 0xFFFF_FFFF) as usize;
            if self.slots[slot].state == SlotState::Cancelled {
                self.heap.pop();
                self.cancelled -= 1;
                self.release(slot);
                continue;
            }
            return Some(ev.time);
        }
        None
    }

    /// Number of live (non-cancelled) events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pending
    }

    /// True if no live events remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The causality watermark: the time of the most recently popped
    /// event. New events must not be scheduled before it.
    #[must_use]
    pub fn watermark(&self) -> SimTime {
        self.watermark
    }

    /// Drops every pending event (live and cancelled) without changing the
    /// watermark. Previously issued handles become stale, never aliases
    /// of later events.
    pub fn clear(&mut self) {
        self.heap.clear();
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if slot.state != SlotState::Free {
                slot.state = SlotState::Free;
                slot.gen = slot.gen.wrapping_add(1);
                self.free.push(i as u32);
            }
        }
        self.pending = 0;
        self.cancelled = 0;
    }

    /// Maps a handle to its slot index, `None` when stale or foreign.
    fn resolve(&self, id: EventId) -> Option<usize> {
        let slot = (id.0 & 0xFFFF_FFFF) as usize;
        let gen = (id.0 >> 32) as u32;
        (slot < self.slots.len() && self.slots[slot].gen == gen).then_some(slot)
    }

    /// Returns a slot to the free list under a fresh generation.
    fn release(&mut self, slot: usize) {
        Self::release_in(&mut self.slots, &mut self.free, slot);
    }

    /// [`EventQueue::release`] on borrowed fields, callable where `self`
    /// is partially borrowed (the compaction closure).
    fn release_in(slots: &mut [Slot], free: &mut Vec<u32>, slot: usize) {
        slots[slot].state = SlotState::Free;
        slots[slot].gen = slots[slot].gen.wrapping_add(1);
        free.push(slot as u32);
    }

    fn maybe_compact(&mut self) {
        // Workloads with `Resample`-style churn cancel several far-future
        // events per step; those tombstones never surface at `pop`, so
        // without compaction the heap depth (and every sift) grows with
        // the cancellation backlog. A low threshold keeps the heap near
        // its live size; `retain` rebuilds in place without allocating.
        if self.cancelled <= 16 || self.cancelled * 2 <= self.heap.len() {
            return;
        }
        let slots = &mut self.slots;
        let free = &mut self.free;
        let mut reclaimed = 0usize;
        self.heap.retain(|Reverse(ev)| {
            let slot = (ev.id.0 & 0xFFFF_FFFF) as usize;
            if slots[slot].state == SlotState::Cancelled {
                Self::release_in(slots, free, slot);
                reclaimed += 1;
                false
            } else {
                true
            }
        });
        self.cancelled -= reclaimed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3.0), 3);
        q.schedule(SimTime::from_secs(1.0), 1);
        q.schedule(SimTime::from_secs(2.0), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.into_payload())).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5.0);
        q.schedule(t, "first");
        q.schedule(t, "second");
        q.schedule(t, "third");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.into_payload())).collect();
        assert_eq!(order, vec!["first", "second", "third"]);
    }

    #[test]
    fn ties_are_fifo_across_slot_reuse() {
        // Slot indices recycle after pops/cancels; insertion order at a
        // shared timestamp must still win, not slot order.
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1.0), "warmup0");
        q.schedule(SimTime::from_secs(1.0), "warmup1");
        q.cancel(a);
        assert_eq!(q.pop().unwrap().into_payload(), "warmup1");
        // Both slots are now free; reuse happens in LIFO free-list order,
        // so the ids come out in an order unrelated to insertion.
        let t = SimTime::from_secs(5.0);
        q.schedule(t, "first");
        q.schedule(t, "second");
        q.schedule(t, "third");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.into_payload())).collect();
        assert_eq!(order, vec!["first", "second", "third"]);
    }

    #[test]
    fn cancellation_hides_events() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1.0), "a");
        q.schedule(SimTime::from_secs(2.0), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().into_payload(), "b");
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1.0), "a");
        let fired = q.pop().unwrap();
        assert_eq!(fired.id(), a);
        assert!(!q.cancel(a));
        // A tombstone for a fired id must not kill a later event.
        let b = q.schedule(SimTime::from_secs(2.0), "b");
        assert_ne!(a, b);
        assert_eq!(q.pop().unwrap().into_payload(), "b");
    }

    #[test]
    fn stale_handle_after_slot_reuse_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1.0), "a");
        q.pop();
        // "b" reuses a's slot under a new generation.
        let b = q.schedule(SimTime::from_secs(2.0), "b");
        assert_ne!(a, b);
        assert!(!q.cancel(a), "stale handle must not cancel the new event");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().into_payload(), "b");
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1.0), "a");
        q.schedule(SimTime::from_secs(2.0), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2.0)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10.0), ());
        q.pop();
        q.schedule(SimTime::from_secs(5.0), ());
    }

    #[test]
    fn watermark_tracks_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(4.0), ());
        assert_eq!(q.watermark(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.watermark(), SimTime::from_secs(4.0));
    }

    #[test]
    fn compaction_preserves_live_events() {
        let mut q = EventQueue::new();
        let mut keep = Vec::new();
        for i in 0..500 {
            let id = q.schedule(SimTime::from_secs(f64::from(i)), i);
            if i % 10 != 0 {
                q.cancel(id);
            } else {
                keep.push(i);
            }
        }
        assert_eq!(q.len(), keep.len());
        let popped: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.into_payload())).collect();
        assert_eq!(popped, keep);
    }

    #[test]
    fn slots_are_recycled() {
        // A long-lived queue with churn must not grow its slab beyond the
        // in-flight working set.
        let mut q = EventQueue::new();
        for round in 0..1_000 {
            let t = SimTime::from_secs(f64::from(round));
            q.schedule(t, round);
            q.schedule(t, round);
            q.pop();
            q.pop();
        }
        assert!(
            q.slots.len() <= 4,
            "slab grew to {} slots for 2 in-flight events",
            q.slots.len()
        );
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1.0), ());
        q.clear();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
        // Handles issued before the clear are stale, not aliases.
        assert!(!q.cancel(a));
        let b = q.schedule(SimTime::from_secs(1.0), ());
        assert_ne!(a, b);
        assert_eq!(q.len(), 1);
    }
}
