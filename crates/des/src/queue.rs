//! Cancellable future-event list.

use crate::calendar::CalendarQueue;
use crate::event::{EventId, ScheduledEvent};
use crate::time::SimTime;

/// Sentinel for "this slot has no heap position".
const NO_POS: u32 = u32::MAX;

/// Which future-event-list implementation an [`EventQueue`] runs on.
///
/// Both backends implement the identical observable contract — the
/// same `(time, seq)` total order with FIFO among equal times, the
/// same generation-counted handles, the same watermark causality
/// panics — so a simulation pops the identical event sequence on
/// either and its results are bit-identical. The choice is purely a
/// performance trade:
///
/// * [`QueueKind::IndexedHeap`] (the default, and the pinned oracle):
///   an indexed binary min-heap with true O(log n) cancellation. Best
///   for small in-flight sets and the reference for all equivalence
///   tests.
/// * [`QueueKind::Calendar`]: a calendar queue (Brown 1988) with O(1)
///   amortized enqueue/dequeue in the dense near-horizon band and a
///   min-scan fallback for the sparse far tail. Wins when event
///   populations grow or dispatch dominates the hot loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueKind {
    /// Indexed binary min-heap (the default and bit-identity oracle).
    #[default]
    IndexedHeap,
    /// Calendar queue: bucketed near-horizon band, scan fallback.
    Calendar,
}

impl QueueKind {
    /// Canonical CLI / spec name (`heap` or `calendar`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            QueueKind::IndexedHeap => "heap",
            QueueKind::Calendar => "calendar",
        }
    }

    /// Parses a CLI / spec name.
    ///
    /// # Errors
    ///
    /// A human-readable message listing the valid names.
    pub fn parse(s: &str) -> Result<QueueKind, String> {
        match s {
            "heap" => Ok(QueueKind::IndexedHeap),
            "calendar" => Ok(QueueKind::Calendar),
            other => Err(format!("unknown queue kind '{other}' (heap|calendar)")),
        }
    }
}

impl std::fmt::Display for QueueKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The future-event list of a simulation: scheduled events keyed by
/// time (FIFO among ties), with cancellation and in-place reschedule
/// through generation-counted [`EventId`] handles.
///
/// `EventQueue` is a thin facade over two interchangeable backends
/// selected by [`QueueKind`] — see there for the trade-off. All
/// documented semantics below hold for both; the backend never leaks
/// into observable behaviour.
///
/// # Example
///
/// ```
/// use ckpt_des::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// let early = q.schedule(SimTime::from_secs(1.0), "early");
/// q.schedule(SimTime::from_secs(2.0), "late");
/// q.cancel(early);
///
/// let next = q.pop().expect("one live event left");
/// assert_eq!(next.into_payload(), "late");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    backend: Backend<E>,
}

#[derive(Debug)]
enum Backend<E> {
    Heap(IndexedHeap<E>),
    Calendar(CalendarQueue<E>),
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue on the default indexed-heap backend with
    /// the watermark at time zero.
    #[must_use]
    pub fn new() -> EventQueue<E> {
        EventQueue::with_kind(QueueKind::IndexedHeap)
    }

    /// Creates an empty queue on the selected backend.
    #[must_use]
    pub fn with_kind(kind: QueueKind) -> EventQueue<E> {
        EventQueue {
            backend: match kind {
                QueueKind::IndexedHeap => Backend::Heap(IndexedHeap::new()),
                QueueKind::Calendar => Backend::Calendar(CalendarQueue::new()),
            },
        }
    }

    /// Which backend this queue runs on.
    #[must_use]
    pub fn kind(&self) -> QueueKind {
        match &self.backend {
            Backend::Heap(_) => QueueKind::IndexedHeap,
            Backend::Calendar(_) => QueueKind::Calendar,
        }
    }

    /// Schedules `payload` to fire at absolute time `time`, returning a
    /// handle usable with [`EventQueue::cancel`].
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the most recently popped event:
    /// scheduling into the past would violate causality and always
    /// indicates a model bug.
    pub fn schedule(&mut self, time: SimTime, payload: E) -> EventId {
        match &mut self.backend {
            Backend::Heap(q) => q.schedule(time, payload),
            Backend::Calendar(q) => q.schedule(time, payload),
        }
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event was still pending, `false` if it had
    /// already fired, been cancelled, or never existed.
    pub fn cancel(&mut self, id: EventId) -> bool {
        match &mut self.backend {
            Backend::Heap(q) => q.cancel(id),
            Backend::Calendar(q) => q.cancel(id),
        }
    }

    /// Moves a pending event to a new firing time under a fresh FIFO
    /// sequence — behaviourally `cancel(id)` followed by re-scheduling
    /// the same payload at `time`, but without slot churn. The handle
    /// stays valid (same slot, same generation).
    ///
    /// This is the `Resample` hot path: reactivation redraws a timer's
    /// delay on every marking change, and moving the existing entry
    /// halves the queue traffic of the cancel-then-schedule pair.
    ///
    /// Returns `true` if the event was pending and has been moved,
    /// `false` (leaving the queue untouched) if the handle was stale.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the most recently popped event,
    /// like [`EventQueue::schedule`].
    pub fn reschedule(&mut self, id: EventId, time: SimTime) -> bool {
        match &mut self.backend {
            Backend::Heap(q) => q.reschedule(id, time),
            Backend::Calendar(q) => q.reschedule(id, time),
        }
    }

    /// Removes and returns the earliest live event, advancing the
    /// watermark to its time.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        match &mut self.backend {
            Backend::Heap(q) => q.pop(),
            Backend::Calendar(q) => q.pop(),
        }
    }

    /// Removes and returns the earliest live event **iff** its time is
    /// at or before `limit`; otherwise leaves it queued and returns
    /// `None`, exactly like [`EventQueue::peek_time`] + bounds check +
    /// [`EventQueue::pop`] fused into one call — the simulator's
    /// run-loop entry point.
    pub fn pop_before(&mut self, limit: SimTime) -> Option<ScheduledEvent<E>> {
        match &mut self.backend {
            Backend::Heap(q) => q.pop_before(limit),
            Backend::Calendar(q) => q.pop_before(limit),
        }
    }

    /// The time of the earliest live event without removing it.
    #[must_use]
    pub fn peek_time(&mut self) -> Option<SimTime> {
        match &mut self.backend {
            Backend::Heap(q) => q.peek_time(),
            Backend::Calendar(q) => q.peek_time(),
        }
    }

    /// Number of live (non-cancelled) events.
    #[must_use]
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Heap(q) => q.len(),
            Backend::Calendar(q) => q.len(),
        }
    }

    /// True if no live events remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The causality watermark: the time of the most recently popped
    /// event. New events must not be scheduled before it.
    #[must_use]
    pub fn watermark(&self) -> SimTime {
        match &self.backend {
            Backend::Heap(q) => q.watermark,
            Backend::Calendar(q) => q.watermark(),
        }
    }

    /// Drops every pending event without changing the watermark.
    /// Previously issued handles become stale, never aliases of later
    /// events.
    pub fn clear(&mut self) {
        match &mut self.backend {
            Backend::Heap(q) => q.clear(),
            Backend::Calendar(q) => q.clear(),
        }
    }

    /// Live entries in the calendar band the dequeue cursor currently
    /// points at — the per-band occupancy telemetry probe. `None` on
    /// the heap backend, which has no banding to observe.
    #[must_use]
    pub fn band_occupancy(&self) -> Option<usize> {
        match &self.backend {
            Backend::Heap(_) => None,
            Backend::Calendar(q) => Some(q.band_occupancy()),
        }
    }
}

/// The indexed-binary-heap backend: an **indexed** binary min-heap of
/// [`ScheduledEvent`]s keyed by time (FIFO among ties), with true
/// O(log n) cancellation.
///
/// Bookkeeping is a slab of per-event slots indexed directly by the
/// [`EventId`] (generation-counted so recycled slots never confuse a
/// stale handle with a live event) — the hot schedule/cancel/pop path
/// does no hashing and no per-event allocation once the slab has grown
/// to the working-set size. Each slot tracks its entry's current heap
/// position, so [`IndexedHeap::cancel`] removes the entry outright
/// instead of tombstoning it.
///
/// That eager removal is what keeps the heap at exactly the *live* event
/// count: `Resample`-style workloads cancel and reschedule several
/// timers per step, and with lazy deletion those tombstones pile up
/// between the root and the live entries, deepening every sift and
/// forcing periodic compaction passes. Here every operation works on a
/// heap of only live events — for the checkpoint model's ~10 in-flight
/// timers, each sift touches three or four cache-hot entries.
#[derive(Debug)]
struct IndexedHeap<E> {
    /// Binary min-heap ordered by `(time, seq)`; `slots[entry-slot].pos`
    /// always names each entry's current index.
    heap: Vec<ScheduledEvent<E>>,
    /// One slot per in-flight event, indexed by the low half of the
    /// [`EventId`]; the high half must match the slot's generation.
    slots: Vec<Slot>,
    /// Indices of slots available for reuse.
    free: Vec<u32>,
    /// Monotone insertion sequence, the FIFO tie-breaker among events
    /// scheduled at the same time (slot ids recycle, so they cannot
    /// order insertions).
    next_seq: u64,
    /// Time of the most recently popped event; schedules before this are
    /// rejected to preserve causality.
    watermark: SimTime,
}

#[derive(Debug)]
struct Slot {
    /// Bumped on every release; a handle whose generation mismatches is
    /// stale (already fired or cancelled).
    gen: u32,
    /// Current index of this slot's entry in `heap`, or [`NO_POS`] when
    /// the slot is free.
    pos: u32,
}

impl<E> IndexedHeap<E> {
    fn new() -> IndexedHeap<E> {
        IndexedHeap {
            heap: Vec::new(),
            slots: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
            watermark: SimTime::ZERO,
        }
    }

    fn schedule(&mut self, time: SimTime, payload: E) -> EventId {
        assert!(
            time >= self.watermark,
            "attempted to schedule an event at {time} before current time {}",
            self.watermark
        );
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                let s = u32::try_from(self.slots.len()).expect("more than 2^32 in-flight events");
                self.slots.push(Slot {
                    gen: 0,
                    pos: NO_POS,
                });
                s
            }
        };
        debug_assert_eq!(self.slots[slot as usize].pos, NO_POS);
        let id = EventId(u64::from(self.slots[slot as usize].gen) << 32 | u64::from(slot));
        let seq = self.next_seq;
        self.next_seq += 1;
        let pos = self.heap.len();
        self.slots[slot as usize].pos = pos as u32;
        self.heap.push(ScheduledEvent {
            time,
            id,
            seq,
            payload,
        });
        self.sift_up(pos);
        id
    }

    /// Cancels a previously scheduled event, removing it from the heap
    /// immediately (O(log n), no tombstone).
    fn cancel(&mut self, id: EventId) -> bool {
        let Some(slot) = self.resolve(id) else {
            return false;
        };
        let pos = self.slots[slot].pos;
        debug_assert_ne!(pos, NO_POS, "live generation with no heap entry");
        self.remove_at(pos as usize);
        self.release(slot);
        true
    }

    /// Moves a pending event in one sift pass with no slot churn.
    fn reschedule(&mut self, id: EventId, time: SimTime) -> bool {
        let Some(slot) = self.resolve(id) else {
            return false;
        };
        assert!(
            time >= self.watermark,
            "attempted to reschedule an event at {time} before current time {}",
            self.watermark
        );
        let pos = self.slots[slot].pos as usize;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap[pos].time = time;
        self.heap[pos].seq = seq;
        // The entry may need to move in either direction.
        self.sift_down(pos);
        self.sift_up(pos);
        true
    }

    fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        if self.heap.is_empty() {
            return None;
        }
        let ev = self.remove_at(0);
        self.release((ev.id.0 & 0xFFFF_FFFF) as usize);
        self.watermark = ev.time;
        Some(ev)
    }

    fn pop_before(&mut self, limit: SimTime) -> Option<ScheduledEvent<E>> {
        if self.heap.first()?.time > limit {
            return None;
        }
        self.pop()
    }

    fn peek_time(&mut self) -> Option<SimTime> {
        self.heap.first().map(|ev| ev.time)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn clear(&mut self) {
        for ev in self.heap.drain(..) {
            let slot = (ev.id.0 & 0xFFFF_FFFF) as usize;
            Self::release_in(&mut self.slots, &mut self.free, slot);
        }
    }

    /// Maps a handle to its slot index, `None` when stale or foreign.
    fn resolve(&self, id: EventId) -> Option<usize> {
        let slot = (id.0 & 0xFFFF_FFFF) as usize;
        let gen = (id.0 >> 32) as u32;
        (slot < self.slots.len() && self.slots[slot].gen == gen).then_some(slot)
    }

    /// Returns a slot to the free list under a fresh generation.
    fn release(&mut self, slot: usize) {
        Self::release_in(&mut self.slots, &mut self.free, slot);
    }

    /// [`IndexedHeap::release`] on borrowed fields, callable where
    /// `self` is partially borrowed.
    fn release_in(slots: &mut [Slot], free: &mut Vec<u32>, slot: usize) {
        slots[slot].gen = slots[slot].gen.wrapping_add(1);
        slots[slot].pos = NO_POS;
        free.push(slot as u32);
    }

    /// Removes and returns the entry at heap index `pos`, restoring the
    /// heap invariant. Does **not** release the entry's slot.
    fn remove_at(&mut self, pos: usize) -> ScheduledEvent<E> {
        let last = self.heap.len() - 1;
        if pos != last {
            self.heap.swap(pos, last);
            let ev = self.heap.pop().expect("heap is non-empty");
            // The moved-in entry may be out of place in either direction
            // (it came from an unrelated subtree).
            self.sift_down(pos);
            self.sift_up(pos);
            ev
        } else {
            self.heap.pop().expect("heap is non-empty")
        }
    }

    /// Records `heap[pos]`'s new position in its slot.
    #[inline]
    fn reposition(&mut self, pos: usize) {
        let slot = (self.heap[pos].id.0 & 0xFFFF_FFFF) as usize;
        self.slots[slot].pos = pos as u32;
    }

    /// Moves `heap[pos]` toward the root until its parent is no later.
    fn sift_up(&mut self, mut pos: usize) {
        while pos > 0 {
            let parent = (pos - 1) / 2;
            if self.heap[pos] >= self.heap[parent] {
                break;
            }
            self.heap.swap(pos, parent);
            self.reposition(pos);
            pos = parent;
        }
        self.reposition(pos);
    }

    /// Moves `heap[pos]` toward the leaves until no child is earlier.
    fn sift_down(&mut self, mut pos: usize) {
        let len = self.heap.len();
        if pos >= len {
            return;
        }
        loop {
            let left = 2 * pos + 1;
            if left >= len {
                break;
            }
            let right = left + 1;
            let child = if right < len && self.heap[right] < self.heap[left] {
                right
            } else {
                left
            };
            if self.heap[pos] <= self.heap[child] {
                break;
            }
            self.heap.swap(pos, child);
            self.reposition(pos);
            pos = child;
        }
        self.reposition(pos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The heap internals behind a facade, for invariant assertions.
    fn heap_of<E>(q: &EventQueue<E>) -> &IndexedHeap<E> {
        match &q.backend {
            Backend::Heap(h) => h,
            Backend::Calendar(_) => panic!("test expects the heap backend"),
        }
    }

    /// Every slot's recorded position points at its own entry — the
    /// indexed-heap invariant behind O(log n) cancellation.
    fn assert_positions_consistent<E>(q: &EventQueue<E>) {
        let h = heap_of(q);
        for (pos, ev) in h.heap.iter().enumerate() {
            let slot = (ev.id.0 & 0xFFFF_FFFF) as usize;
            assert_eq!(h.slots[slot].pos, pos as u32, "slot {slot} desynced");
        }
    }

    /// Both backends, for the contract tests that must hold on each.
    const KINDS: [QueueKind; 2] = [QueueKind::IndexedHeap, QueueKind::Calendar];

    #[test]
    fn kind_round_trips_names() {
        for kind in KINDS {
            assert_eq!(QueueKind::parse(kind.name()), Ok(kind));
            assert_eq!(EventQueue::<()>::with_kind(kind).kind(), kind);
        }
        assert!(QueueKind::parse("splay").is_err());
        assert_eq!(QueueKind::default(), QueueKind::IndexedHeap);
        assert_eq!(EventQueue::<()>::new().kind(), QueueKind::IndexedHeap);
    }

    #[test]
    fn pops_in_time_order() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            q.schedule(SimTime::from_secs(3.0), 3);
            q.schedule(SimTime::from_secs(1.0), 1);
            q.schedule(SimTime::from_secs(2.0), 2);
            let order: Vec<i32> =
                std::iter::from_fn(|| q.pop().map(|e| e.into_payload())).collect();
            assert_eq!(order, vec![1, 2, 3], "{kind}");
        }
    }

    #[test]
    fn ties_are_fifo() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            let t = SimTime::from_secs(5.0);
            q.schedule(t, "first");
            q.schedule(t, "second");
            q.schedule(t, "third");
            let order: Vec<&str> =
                std::iter::from_fn(|| q.pop().map(|e| e.into_payload())).collect();
            assert_eq!(order, vec!["first", "second", "third"], "{kind}");
        }
    }

    #[test]
    fn ties_are_fifo_across_slot_reuse() {
        // Slot indices recycle after pops/cancels; insertion order at a
        // shared timestamp must still win, not slot order.
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            let a = q.schedule(SimTime::from_secs(1.0), "warmup0");
            q.schedule(SimTime::from_secs(1.0), "warmup1");
            q.cancel(a);
            assert_eq!(q.pop().unwrap().into_payload(), "warmup1");
            // Both slots are now free; reuse happens in LIFO free-list
            // order, so the ids come out in an order unrelated to
            // insertion.
            let t = SimTime::from_secs(5.0);
            q.schedule(t, "first");
            q.schedule(t, "second");
            q.schedule(t, "third");
            let order: Vec<&str> =
                std::iter::from_fn(|| q.pop().map(|e| e.into_payload())).collect();
            assert_eq!(order, vec!["first", "second", "third"], "{kind}");
        }
    }

    #[test]
    fn cancellation_removes_events_eagerly() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1.0), "a");
        q.schedule(SimTime::from_secs(2.0), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(
            heap_of(&q).heap.len(),
            1,
            "cancelled entry must leave the heap"
        );
        assert_positions_consistent(&q);
        assert_eq!(q.pop().unwrap().into_payload(), "b");
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            let a = q.schedule(SimTime::from_secs(1.0), "a");
            let fired = q.pop().unwrap();
            assert_eq!(fired.id(), a);
            assert!(!q.cancel(a));
            // A stale handle for a fired id must not kill a later event.
            let b = q.schedule(SimTime::from_secs(2.0), "b");
            assert_ne!(a, b);
            assert_eq!(q.pop().unwrap().into_payload(), "b");
        }
    }

    #[test]
    fn stale_handle_after_slot_reuse_is_noop() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            let a = q.schedule(SimTime::from_secs(1.0), "a");
            q.pop();
            // "b" reuses a's slot under a new generation.
            let b = q.schedule(SimTime::from_secs(2.0), "b");
            assert_ne!(a, b);
            assert!(!q.cancel(a), "stale handle must not cancel the new event");
            assert_eq!(q.len(), 1);
            assert_eq!(q.pop().unwrap().into_payload(), "b");
        }
    }

    #[test]
    fn peek_time_sees_earliest_live_event() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            let a = q.schedule(SimTime::from_secs(1.0), "a");
            q.schedule(SimTime::from_secs(2.0), "b");
            q.cancel(a);
            assert_eq!(q.peek_time(), Some(SimTime::from_secs(2.0)));
            assert_eq!(q.len(), 1);
        }
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10.0), ());
        q.pop();
        q.schedule(SimTime::from_secs(5.0), ());
    }

    #[test]
    fn watermark_tracks_pops() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            q.schedule(SimTime::from_secs(4.0), ());
            assert_eq!(q.watermark(), SimTime::ZERO);
            q.pop();
            assert_eq!(q.watermark(), SimTime::from_secs(4.0));
        }
    }

    #[test]
    fn mass_cancellation_preserves_live_events() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            let mut keep = Vec::new();
            for i in 0..500 {
                let id = q.schedule(SimTime::from_secs(f64::from(i)), i);
                if i % 10 != 0 {
                    q.cancel(id);
                } else {
                    keep.push(i);
                }
            }
            assert_eq!(q.len(), keep.len());
            if kind == QueueKind::IndexedHeap {
                assert_eq!(
                    heap_of(&q).heap.len(),
                    keep.len(),
                    "heap must hold only live events"
                );
                assert_positions_consistent(&q);
            }
            let popped: Vec<i32> =
                std::iter::from_fn(|| q.pop().map(|e| e.into_payload())).collect();
            assert_eq!(popped, keep, "{kind}");
        }
    }

    #[test]
    fn cancel_from_the_middle_reheapifies() {
        // Removing an interior entry swaps the last entry into its place;
        // that entry may need to move *up* (toward the root), not just
        // down. Build a shape that exercises the sift-up branch: cancel a
        // deep entry whose replacement is earlier than its new parent.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1.0), 1);
        let d = q.schedule(SimTime::from_secs(50.0), 50);
        q.schedule(SimTime::from_secs(2.0), 2);
        q.schedule(SimTime::from_secs(60.0), 60);
        q.schedule(SimTime::from_secs(70.0), 70);
        q.schedule(SimTime::from_secs(3.0), 3);
        q.cancel(d);
        assert_positions_consistent(&q);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.into_payload())).collect();
        assert_eq!(order, vec![1, 2, 3, 60, 70]);
    }

    #[test]
    fn reschedule_moves_event_and_keeps_handle() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            let a = q.schedule(SimTime::from_secs(5.0), "a");
            q.schedule(SimTime::from_secs(2.0), "b");
            // Move a ahead of b; the handle survives the move.
            assert!(q.reschedule(a, SimTime::from_secs(1.0)));
            assert_eq!(q.peek_time(), Some(SimTime::from_secs(1.0)));
            assert!(q.cancel(a), "handle must stay live across reschedule");
            assert_eq!(q.pop().unwrap().into_payload(), "b");
            // Stale handles are rejected without touching the queue.
            assert!(!q.reschedule(a, SimTime::from_secs(9.0)));
            assert!(q.is_empty());
        }
    }

    #[test]
    fn reschedule_requeues_at_the_fifo_tail() {
        // A rescheduled event takes a fresh sequence number: among ties
        // it fires after events that were already queued at that time,
        // exactly as cancel + schedule would order it.
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            let t = SimTime::from_secs(5.0);
            let a = q.schedule(t, "a");
            q.schedule(t, "b");
            assert!(q.reschedule(a, t));
            let order: Vec<&str> =
                std::iter::from_fn(|| q.pop().map(|e| e.into_payload())).collect();
            assert_eq!(order, vec!["b", "a"], "{kind}");
        }
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn rescheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(10.0), "a");
        q.schedule(SimTime::from_secs(8.0), "b");
        q.pop();
        q.reschedule(a, SimTime::from_secs(5.0));
    }

    #[test]
    fn pop_before_respects_limit_and_cancellations() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            let a = q.schedule(SimTime::from_secs(1.0), "a");
            q.schedule(SimTime::from_secs(2.0), "b");
            q.schedule(SimTime::from_secs(5.0), "c");
            q.cancel(a);
            // The cancelled t=1 event is gone even though it beats the
            // limit.
            let ev = q.pop_before(SimTime::from_secs(3.0)).unwrap();
            assert_eq!(ev.time(), SimTime::from_secs(2.0));
            assert_eq!(q.watermark(), SimTime::from_secs(2.0));
            // c is beyond the limit: left queued, watermark unchanged.
            assert!(q.pop_before(SimTime::from_secs(3.0)).is_none());
            assert_eq!(q.len(), 1);
            assert_eq!(q.watermark(), SimTime::from_secs(2.0));
            // An exact-time limit is inclusive, matching peek+pop
            // semantics.
            let ev = q.pop_before(SimTime::from_secs(5.0)).unwrap();
            assert_eq!(ev.into_payload(), "c");
            assert!(q.pop_before(SimTime::from_secs(9.0)).is_none());
        }
    }

    #[test]
    fn slots_are_recycled() {
        // A long-lived queue with churn must not grow its slab beyond the
        // in-flight working set.
        let mut q = EventQueue::new();
        for round in 0..1_000 {
            let t = SimTime::from_secs(f64::from(round));
            q.schedule(t, round);
            q.schedule(t, round);
            q.pop();
            q.pop();
        }
        assert!(
            heap_of(&q).slots.len() <= 4,
            "slab grew to {} slots for 2 in-flight events",
            heap_of(&q).slots.len()
        );
    }

    #[test]
    fn clear_empties_queue() {
        for kind in KINDS {
            let mut q = EventQueue::with_kind(kind);
            let a = q.schedule(SimTime::from_secs(1.0), ());
            q.clear();
            assert!(q.is_empty());
            assert!(q.pop().is_none());
            // Handles issued before the clear are stale, not aliases.
            assert!(!q.cancel(a));
            let b = q.schedule(SimTime::from_secs(1.0), ());
            assert_ne!(a, b);
            assert_eq!(q.len(), 1);
        }
    }

    #[test]
    fn band_occupancy_is_calendar_only() {
        let mut heap = EventQueue::new();
        heap.schedule(SimTime::from_secs(1.0), ());
        assert_eq!(heap.band_occupancy(), None);
        let mut cal = EventQueue::with_kind(QueueKind::Calendar);
        cal.schedule(SimTime::from_secs(0.25), ());
        cal.schedule(SimTime::from_secs(0.5), ());
        assert_eq!(cal.band_occupancy(), Some(2));
    }
}
