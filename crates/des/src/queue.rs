//! Cancellable future-event list.

use crate::event::{EventId, ScheduledEvent};
use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// The future-event list of a simulation: a min-heap of
/// [`ScheduledEvent`]s keyed by time (FIFO among ties), with O(1)
/// cancellation by tombstoning.
///
/// Cancelled entries remain in the heap until they surface at the top and
/// are silently skipped, so memory is reclaimed lazily; an explicit
/// compaction pass runs automatically when more than half of the stored
/// entries are dead.
///
/// # Example
///
/// ```
/// use ckpt_des::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// let early = q.schedule(SimTime::from_secs(1.0), "early");
/// q.schedule(SimTime::from_secs(2.0), "late");
/// q.cancel(early);
///
/// let next = q.pop().expect("one live event left");
/// assert_eq!(next.into_payload(), "late");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<ScheduledEvent<E>>>,
    /// Ids of events that are scheduled and neither fired nor cancelled.
    pending: HashSet<EventId>,
    cancelled: HashSet<EventId>,
    next_id: u64,
    /// Time of the most recently popped event; schedules before this are
    /// rejected to preserve causality.
    watermark: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the watermark at time zero.
    #[must_use]
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            pending: HashSet::new(),
            cancelled: HashSet::new(),
            next_id: 0,
            watermark: SimTime::ZERO,
        }
    }

    /// Schedules `payload` to fire at absolute time `time`, returning a
    /// handle usable with [`EventQueue::cancel`].
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the most recently popped event:
    /// scheduling into the past would violate causality and always
    /// indicates a model bug.
    pub fn schedule(&mut self, time: SimTime, payload: E) -> EventId {
        assert!(
            time >= self.watermark,
            "attempted to schedule an event at {time} before current time {}",
            self.watermark
        );
        let id = EventId(self.next_id);
        self.next_id += 1;
        self.pending.insert(id);
        self.heap
            .push(Reverse(ScheduledEvent { time, id, payload }));
        id
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event was still pending, `false` if it had
    /// already fired, been cancelled, or never existed.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if !self.pending.remove(&id) {
            return false;
        }
        self.cancelled.insert(id);
        self.maybe_compact();
        true
    }

    /// Removes and returns the earliest live event, advancing the
    /// watermark to its time.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        while let Some(Reverse(ev)) = self.heap.pop() {
            if self.cancelled.remove(&ev.id) {
                continue;
            }
            self.pending.remove(&ev.id);
            self.watermark = ev.time;
            return Some(ev);
        }
        None
    }

    /// The time of the earliest live event without removing it.
    #[must_use]
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(Reverse(ev)) = self.heap.peek() {
            if self.cancelled.contains(&ev.id) {
                let Some(Reverse(dead)) = self.heap.pop() else {
                    unreachable!("peek just returned an entry")
                };
                self.cancelled.remove(&dead.id);
                continue;
            }
            return Some(ev.time);
        }
        None
    }

    /// Number of live (non-cancelled) events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True if no live events remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The causality watermark: the time of the most recently popped
    /// event. New events must not be scheduled before it.
    #[must_use]
    pub fn watermark(&self) -> SimTime {
        self.watermark
    }

    /// Drops every pending event (live and cancelled) without changing the
    /// watermark.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.pending.clear();
        self.cancelled.clear();
    }

    fn maybe_compact(&mut self) {
        if self.cancelled.len() > 64 && self.cancelled.len() * 2 > self.heap.len() {
            let cancelled = std::mem::take(&mut self.cancelled);
            let live: Vec<_> = std::mem::take(&mut self.heap)
                .into_iter()
                .filter(|Reverse(ev)| !cancelled.contains(&ev.id))
                .collect();
            self.heap = live.into();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3.0), 3);
        q.schedule(SimTime::from_secs(1.0), 1);
        q.schedule(SimTime::from_secs(2.0), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.into_payload())).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5.0);
        q.schedule(t, "first");
        q.schedule(t, "second");
        q.schedule(t, "third");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.into_payload())).collect();
        assert_eq!(order, vec!["first", "second", "third"]);
    }

    #[test]
    fn cancellation_hides_events() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1.0), "a");
        q.schedule(SimTime::from_secs(2.0), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().into_payload(), "b");
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1.0), "a");
        let fired = q.pop().unwrap();
        assert_eq!(fired.id(), a);
        assert!(!q.cancel(a));
        // A tombstone for a fired id must not kill a later event.
        let b = q.schedule(SimTime::from_secs(2.0), "b");
        assert_ne!(a, b);
        assert_eq!(q.pop().unwrap().into_payload(), "b");
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1.0), "a");
        q.schedule(SimTime::from_secs(2.0), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2.0)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10.0), ());
        q.pop();
        q.schedule(SimTime::from_secs(5.0), ());
    }

    #[test]
    fn watermark_tracks_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(4.0), ());
        assert_eq!(q.watermark(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.watermark(), SimTime::from_secs(4.0));
    }

    #[test]
    fn compaction_preserves_live_events() {
        let mut q = EventQueue::new();
        let mut keep = Vec::new();
        for i in 0..500 {
            let id = q.schedule(SimTime::from_secs(f64::from(i)), i);
            if i % 10 != 0 {
                q.cancel(id);
            } else {
                keep.push(i);
            }
        }
        assert_eq!(q.len(), keep.len());
        let popped: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.into_payload())).collect();
        assert_eq!(popped, keep);
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1.0), ());
        q.clear();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }
}
