//! Deterministic, splittable random-number streams.
//!
//! Every stochastic component of a model should draw from its own
//! substream so that (a) a simulation is exactly reproducible from a
//! single master seed, and (b) changing how often one component samples
//! does not perturb the sequence seen by any other component (common
//! random numbers across configurations).

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};
use std::fmt;

/// Identifies an independent random-number substream.
///
/// Streams are identified by a string label (hashed with a stable 64-bit
/// FNV-1a) plus an integer index so that replications of the same
/// component get distinct substreams.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamId {
    label_hash: u64,
    index: u64,
}

impl StreamId {
    /// Constructs a stream id from a component label and an index
    /// (e.g. the replication number).
    #[must_use]
    pub fn new(label: &str, index: u64) -> StreamId {
        StreamId {
            label_hash: fnv1a(label.as_bytes()),
            index,
        }
    }
}

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stream({:016x},{})", self.label_hash, self.index)
    }
}

/// Stable 64-bit FNV-1a hash (independent of `std`'s randomized hasher,
/// so stream assignment never changes across runs or Rust versions).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// SplitMix64 — used only to derive seeds; guarantees well-distributed
/// seeds even for adjacent stream ids.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Factory deriving independent [`SimRng`] streams from one master seed.
///
/// # Example
///
/// ```
/// use ckpt_des::{RngFactory, StreamId};
/// use rand::Rng;
///
/// let factory = RngFactory::new(42);
/// let mut failures = factory.stream(StreamId::new("failures", 0));
/// let mut quiesce = factory.stream(StreamId::new("quiesce", 0));
///
/// // Streams are independent but reproducible:
/// let again = factory.stream(StreamId::new("failures", 0)).gen::<u64>();
/// assert_eq!(failures.gen::<u64>(), again);
/// let _ = quiesce.gen::<f64>();
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RngFactory {
    master_seed: u64,
}

impl RngFactory {
    /// Creates a factory for the given master seed.
    #[must_use]
    pub fn new(master_seed: u64) -> RngFactory {
        RngFactory { master_seed }
    }

    /// The master seed this factory derives all streams from.
    #[must_use]
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Derives the substream for `id`. Calling this twice with the same
    /// id yields generators producing identical sequences.
    #[must_use]
    pub fn stream(&self, id: StreamId) -> SimRng {
        let mut state = self
            .master_seed
            .wrapping_add(id.label_hash.rotate_left(17))
            .wrapping_add(id.index.wrapping_mul(0x2545_f491_4f6c_dd1d));
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_exact_mut(8) {
            chunk.copy_from_slice(&splitmix64(&mut state).to_le_bytes());
        }
        SimRng::from_inner(SmallRng::from_seed(seed))
    }
}

/// Selects the exponential sampling kernel used by
/// [`SimRng::exponential`].
///
/// Every exponential draw in the workspace — plain [`exponential`]
/// calls, Erlang/hyper-exponential mixtures, and marking-dependent
/// delay closures — funnels through [`SimRng::exponential`], so this
/// one switch selects the kernel for an entire simulation.
///
/// [`exponential`]: SimRng::exponential
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Sampling {
    /// Inverse-CDF transform `-ln(U) / rate`: one uniform, one `ln`.
    ///
    /// This is the default and the *bit-identity oracle*: its draw
    /// sequence is pinned by tests and must never change, so results
    /// stay reproducible across releases.
    #[default]
    InverseCdf,
    /// 256-strip ziggurat rejection sampler (Marsaglia–Tsang).
    ///
    /// ~98.9% of draws are a table lookup and one multiply, no
    /// transcendental. Distribution-equivalent to [`InverseCdf`]
    /// (same exponential law, held to the same KS/moment contract in
    /// `ckpt-stats`) but draws a *different* stream: selecting it
    /// changes trajectories, never statistics.
    ///
    /// [`InverseCdf`]: Sampling::InverseCdf
    Ziggurat,
}

/// Number of raw 64-bit words buffered per refill of a [`SimRng`].
const RNG_BLOCK: usize = 8;

/// Tail cutoff of the 256-strip exponential ziggurat.
const ZIG_R: f64 = 7.697_117_470_131_487;
/// Common area of each ziggurat strip (and of the base strip + tail).
const ZIG_V: f64 = 3.949_659_822_581_572e-3;
/// Number of ziggurat strips.
const ZIG_N: usize = 256;

/// Lazily built ziggurat tables: strip edges `x[i]` (descending,
/// `x[1] = R`, `x[N] = 0`, `x[0]` the extended base strip) and their
/// densities `f[i] = exp(-x[i])`.
fn zig_tables() -> &'static ([f64; ZIG_N + 1], [f64; ZIG_N + 1]) {
    use std::sync::OnceLock;
    static TABLES: OnceLock<([f64; ZIG_N + 1], [f64; ZIG_N + 1])> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut x = [0.0f64; ZIG_N + 1];
        x[0] = ZIG_V / (-ZIG_R).exp();
        x[1] = ZIG_R;
        for i in 2..ZIG_N {
            // Each strip has area V: f(x_i) = f(x_{i-1}) + V / x_{i-1}.
            let prev = x[i - 1];
            x[i] = -(ZIG_V / prev + (-prev).exp()).ln();
        }
        x[ZIG_N] = 0.0;
        let mut f = [0.0f64; ZIG_N + 1];
        for (fi, xi) in f.iter_mut().zip(x.iter()) {
            *fi = (-xi).exp();
        }
        (x, f)
    })
}

/// A deterministic random-number generator for one model component.
///
/// Wraps a fast non-cryptographic PRNG and adds the samplers most used
/// by the simulators. Raw 64-bit words are drawn through a small
/// refill block (8 words) so the underlying generator advances in
/// unrolled batches; consumption order is unchanged, so every sampler
/// returns exactly the same sequence as an unbuffered generator
/// (pinned by tests).
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
    /// Buffered raw words; `buf[pos..]` are not yet consumed.
    buf: [u64; RNG_BLOCK],
    pos: usize,
    sampling: Sampling,
}

impl SimRng {
    fn from_inner(inner: SmallRng) -> SimRng {
        SimRng {
            inner,
            buf: [0; RNG_BLOCK],
            pos: RNG_BLOCK,
            sampling: Sampling::default(),
        }
    }

    /// Creates a standalone generator from an explicit seed (mostly for
    /// tests; models should go through [`RngFactory`]).
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> SimRng {
        SimRng::from_inner(SmallRng::seed_from_u64(seed))
    }

    /// The exponential sampling kernel currently selected.
    #[must_use]
    pub fn sampling(&self) -> Sampling {
        self.sampling
    }

    /// Selects the exponential sampling kernel. The default,
    /// [`Sampling::InverseCdf`], is the bit-identity oracle;
    /// [`Sampling::Ziggurat`] is faster but draws a different (equally
    /// distributed) stream.
    pub fn set_sampling(&mut self, sampling: Sampling) {
        self.sampling = sampling;
    }

    /// Next buffered raw word, refilling the block when exhausted.
    #[inline]
    fn next_raw(&mut self) -> u64 {
        // Every sampler and the `RngCore` impl funnel through here, so
        // this one probe counts all consumed words (free when the
        // `telemetry` feature is off).
        crate::telem::note_rng_draw();
        if self.pos == RNG_BLOCK {
            for slot in &mut self.buf {
                *slot = self.inner.next_u64();
            }
            self.pos = 0;
        }
        let v = self.buf[self.pos];
        self.pos += 1;
        v
    }

    /// Uniform in `[0, 1)` with 53 bits of precision — the same mapping
    /// as the `rand` crate's `Standard` distribution for `f64`.
    #[inline]
    fn unit_f64(&mut self) -> f64 {
        (self.next_raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample in `(0, 1)` — never exactly 0 or 1, so it is safe
    /// to take logarithms of either `u` or `1 - u`.
    pub fn open_unit(&mut self) -> f64 {
        loop {
            let u = self.unit_f64();
            if u > 0.0 && u < 1.0 {
                return u;
            }
        }
    }

    /// Exponential sample with the given rate (mean `1/rate`), using
    /// the kernel selected by [`SimRng::set_sampling`].
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive and finite.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(
            rate > 0.0 && rate.is_finite(),
            "exponential rate must be positive and finite, got {rate}"
        );
        match self.sampling {
            Sampling::InverseCdf => -self.open_unit().ln() / rate,
            Sampling::Ziggurat => self.exp1_ziggurat() / rate,
        }
    }

    /// Unit-rate exponential via the 256-strip ziggurat.
    ///
    /// One raw word supplies both the strip index (low 8 bits) and the
    /// horizontal coordinate (top 52 bits); most draws accept on the
    /// in-rectangle test without evaluating any transcendental.
    fn exp1_ziggurat(&mut self) -> f64 {
        let (x_tab, f_tab) = zig_tables();
        loop {
            let bits = self.next_raw();
            let i = (bits & 0xff) as usize;
            let u = (bits >> 12) as f64 * (1.0 / (1u64 << 52) as f64);
            let x = u * x_tab[i];
            if x < x_tab[i + 1] {
                // Strictly inside strip i+1's rectangle: accept.
                // Guard x > 0 so callers can take logs, matching the
                // open-interval contract of the inverse-CDF path.
                if x > 0.0 {
                    return x;
                }
                continue;
            }
            if i == 0 {
                // Tail beyond R: exact conditional tail of Exp(1).
                return ZIG_R - self.open_unit().ln();
            }
            // Wedge between the rectangle and the density.
            if f_tab[i + 1] + (f_tab[i] - f_tab[i + 1]) * self.unit_f64() < (-x).exp() && x > 0.0 {
                return x;
            }
        }
    }

    /// Bernoulli trial with success probability `p` (clamped to [0, 1]).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.unit_f64() < p
    }

    /// Standard normal sample (Marsaglia polar method).
    pub fn standard_normal(&mut self) -> f64 {
        loop {
            let u = 2.0 * self.open_unit() - 1.0;
            let v = 2.0 * self.open_unit() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        // The underlying `SmallRng` derives `next_u32` from `next_u64`,
        // so routing through the block preserves the exact stream.
        self.next_raw() as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.next_raw()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_raw().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn streams_are_reproducible() {
        let f = RngFactory::new(7);
        let a: Vec<u64> = {
            let mut r = f.stream(StreamId::new("x", 0));
            (0..8).map(|_| r.gen()).collect()
        };
        let b: Vec<u64> = {
            let mut r = f.stream(StreamId::new("x", 0));
            (0..8).map(|_| r.gen()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn streams_differ_by_label_and_index() {
        let f = RngFactory::new(7);
        let a: u64 = f.stream(StreamId::new("x", 0)).gen();
        let b: u64 = f.stream(StreamId::new("y", 0)).gen();
        let c: u64 = f.stream(StreamId::new("x", 1)).gen();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn different_master_seeds_differ() {
        let a: u64 = RngFactory::new(1).stream(StreamId::new("x", 0)).gen();
        let b: u64 = RngFactory::new(2).stream(StreamId::new("x", 0)).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = SimRng::seed_from_u64(11);
        let n = 200_000;
        let rate = 0.25;
        let mean: f64 = (0..n).map(|_| r.exponential(rate)).sum::<f64>() / f64::from(n);
        assert!(
            (mean - 4.0).abs() < 0.05,
            "sample mean {mean} too far from 4.0"
        );
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn exponential_rejects_zero_rate() {
        let mut r = SimRng::seed_from_u64(1);
        let _ = r.exponential(0.0);
    }

    #[test]
    fn open_unit_is_strictly_interior() {
        let mut r = SimRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let u = r.open_unit();
            assert!(u > 0.0 && u < 1.0);
        }
    }

    #[test]
    fn bernoulli_extremes() {
        let mut r = SimRng::seed_from_u64(5);
        assert!(!r.bernoulli(0.0));
        assert!(r.bernoulli(1.0));
        // Out-of-range probabilities are clamped rather than panicking.
        assert!(r.bernoulli(2.0));
        assert!(!r.bernoulli(-1.0));
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = SimRng::seed_from_u64(13);
        let n = 200_000;
        let (mut sum, mut sum2) = (0.0, 0.0);
        for _ in 0..n {
            let x = r.standard_normal();
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / f64::from(n);
        let var = sum2 / f64::from(n) - mean * mean;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "variance {var}");
    }

    #[test]
    fn bernoulli_frequency() {
        let mut r = SimRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| r.bernoulli(0.3)).count();
        let freq = hits as f64 / 100_000.0;
        assert!((freq - 0.3).abs() < 0.01, "frequency {freq}");
    }

    /// Pinned oracle stream: these exact values were produced by the
    /// pre-buffering implementation (one `next_u64` per draw, straight
    /// from `SmallRng`). The block refill must never change them —
    /// this is the bit-identity contract of `Sampling::InverseCdf`.
    #[test]
    fn inverse_cdf_stream_is_pinned() {
        let mut r = SimRng::seed_from_u64(42);
        assert_eq!(r.open_unit(), 0.8143051451229099);
        assert_eq!(r.open_unit(), 0.3188210400616611);
        assert_eq!(r.open_unit(), 0.9838941681774888);
        assert_eq!(r.open_unit(), 0.7011355981347556);
        assert_eq!(r.exponential(0.5), 0.4625921618901303);
        assert_eq!(r.next_u64(), 10848501901068131965);
        assert_eq!(r.next_u32(), 572142934);
        assert!(!r.bernoulli(0.5));
        assert_eq!(r.standard_normal(), 0.1962265296745266);
        let mut b = [0u8; 11];
        r.fill_bytes(&mut b);
        assert_eq!(b, [152, 155, 53, 84, 112, 231, 20, 174, 189, 13, 89]);
        assert_eq!(r.open_unit(), 0.40307330082561377);
    }

    #[test]
    fn sampling_default_is_inverse_cdf() {
        assert_eq!(Sampling::default(), Sampling::InverseCdf);
        assert_eq!(SimRng::seed_from_u64(1).sampling(), Sampling::InverseCdf);
    }

    #[test]
    fn ziggurat_tables_are_well_formed() {
        let (x, f) = super::zig_tables();
        assert_eq!(x[1], super::ZIG_R);
        assert_eq!(x[super::ZIG_N], 0.0);
        assert_eq!(f[super::ZIG_N], 1.0);
        // Edges descend, densities ascend, and the recursion closes
        // near zero (r and V are a matched pair).
        for i in 1..super::ZIG_N {
            assert!(x[i] > x[i + 1], "x[{i}]={} !> x[{}]", x[i], i + 1);
            assert!(f[i] < f[i + 1]);
        }
        // Closure: the top strip [0, x_255] × (f(x_255), 1] must have
        // area V like every other strip — that is what pins r and V.
        let top = x[super::ZIG_N - 1] * (1.0 - f[super::ZIG_N - 1]);
        assert!(
            (top - super::ZIG_V).abs() < 1e-5,
            "top strip area {top} vs V {}",
            super::ZIG_V
        );
        assert!(x[0] > x[1], "base strip must extend past R");
    }

    #[test]
    fn ziggurat_moments_match_exponential() {
        let mut r = SimRng::seed_from_u64(17);
        r.set_sampling(Sampling::Ziggurat);
        let n = 400_000;
        let rate = 0.25;
        let (mut sum, mut sum2, mut min) = (0.0f64, 0.0f64, f64::MAX);
        for _ in 0..n {
            let x = r.exponential(rate);
            assert!(x > 0.0 && x.is_finite());
            sum += x;
            sum2 += x * x;
            min = min.min(x);
        }
        let mean = sum / f64::from(n);
        let var = sum2 / f64::from(n) - mean * mean;
        // Exp(rate): mean 1/rate = 4, variance 1/rate^2 = 16.
        assert!((mean - 4.0).abs() < 0.03, "mean {mean}");
        assert!((var - 16.0).abs() < 0.35, "variance {var}");
        assert!(min < 1e-3, "left tail unexplored, min {min}");
    }

    #[test]
    fn ziggurat_reaches_the_tail() {
        let mut r = SimRng::seed_from_u64(23);
        r.set_sampling(Sampling::Ziggurat);
        // P(X > R) = exp(-R) ≈ 4.5e-4; 100k draws ⇒ ~45 tail hits.
        let tail = (0..100_000)
            .filter(|_| r.exponential(1.0) > super::ZIG_R)
            .count();
        assert!((10..200).contains(&tail), "tail draws {tail}");
    }

    #[test]
    fn buffered_raw_draws_match_unbuffered_smallrng() {
        use rand::rngs::SmallRng;
        let mut raw = SmallRng::seed_from_u64(99);
        let mut sim = SimRng::seed_from_u64(99);
        // Interleave word sizes to cross refill boundaries.
        for k in 0..100 {
            if k % 3 == 0 {
                assert_eq!(sim.next_u32(), raw.next_u64() as u32);
            } else {
                assert_eq!(sim.next_u64(), raw.next_u64());
            }
        }
    }

    #[test]
    fn fnv_is_stable() {
        // Pinned reference value: stream assignment must never change
        // across builds (FNV-1a of the empty string is the offset basis).
        assert_eq!(super::fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(super::fnv1a(b"abc"), super::fnv1a(b"abc"));
        assert_ne!(super::fnv1a(b"abc"), super::fnv1a(b"abd"));
    }
}
