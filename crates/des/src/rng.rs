//! Deterministic, splittable random-number streams.
//!
//! Every stochastic component of a model should draw from its own
//! substream so that (a) a simulation is exactly reproducible from a
//! single master seed, and (b) changing how often one component samples
//! does not perturb the sequence seen by any other component (common
//! random numbers across configurations).

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use std::fmt;

/// Identifies an independent random-number substream.
///
/// Streams are identified by a string label (hashed with a stable 64-bit
/// FNV-1a) plus an integer index so that replications of the same
/// component get distinct substreams.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamId {
    label_hash: u64,
    index: u64,
}

impl StreamId {
    /// Constructs a stream id from a component label and an index
    /// (e.g. the replication number).
    #[must_use]
    pub fn new(label: &str, index: u64) -> StreamId {
        StreamId {
            label_hash: fnv1a(label.as_bytes()),
            index,
        }
    }
}

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stream({:016x},{})", self.label_hash, self.index)
    }
}

/// Stable 64-bit FNV-1a hash (independent of `std`'s randomized hasher,
/// so stream assignment never changes across runs or Rust versions).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// SplitMix64 — used only to derive seeds; guarantees well-distributed
/// seeds even for adjacent stream ids.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Factory deriving independent [`SimRng`] streams from one master seed.
///
/// # Example
///
/// ```
/// use ckpt_des::{RngFactory, StreamId};
/// use rand::Rng;
///
/// let factory = RngFactory::new(42);
/// let mut failures = factory.stream(StreamId::new("failures", 0));
/// let mut quiesce = factory.stream(StreamId::new("quiesce", 0));
///
/// // Streams are independent but reproducible:
/// let again = factory.stream(StreamId::new("failures", 0)).gen::<u64>();
/// assert_eq!(failures.gen::<u64>(), again);
/// let _ = quiesce.gen::<f64>();
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RngFactory {
    master_seed: u64,
}

impl RngFactory {
    /// Creates a factory for the given master seed.
    #[must_use]
    pub fn new(master_seed: u64) -> RngFactory {
        RngFactory { master_seed }
    }

    /// The master seed this factory derives all streams from.
    #[must_use]
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Derives the substream for `id`. Calling this twice with the same
    /// id yields generators producing identical sequences.
    #[must_use]
    pub fn stream(&self, id: StreamId) -> SimRng {
        let mut state = self
            .master_seed
            .wrapping_add(id.label_hash.rotate_left(17))
            .wrapping_add(id.index.wrapping_mul(0x2545_f491_4f6c_dd1d));
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_exact_mut(8) {
            chunk.copy_from_slice(&splitmix64(&mut state).to_le_bytes());
        }
        SimRng {
            inner: SmallRng::from_seed(seed),
        }
    }
}

/// A deterministic random-number generator for one model component.
///
/// Wraps a fast non-cryptographic PRNG and adds the inverse-transform
/// samplers most used by the simulators.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Creates a standalone generator from an explicit seed (mostly for
    /// tests; models should go through [`RngFactory`]).
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> SimRng {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Uniform sample in `(0, 1)` — never exactly 0 or 1, so it is safe
    /// to take logarithms of either `u` or `1 - u`.
    pub fn open_unit(&mut self) -> f64 {
        loop {
            let u: f64 = self.inner.gen();
            if u > 0.0 && u < 1.0 {
                return u;
            }
        }
    }

    /// Exponential sample with the given rate (mean `1/rate`).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive and finite.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(
            rate > 0.0 && rate.is_finite(),
            "exponential rate must be positive and finite, got {rate}"
        );
        -self.open_unit().ln() / rate
    }

    /// Bernoulli trial with success probability `p` (clamped to [0, 1]).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.inner.gen::<f64>() < p
    }

    /// Standard normal sample (Marsaglia polar method).
    pub fn standard_normal(&mut self) -> f64 {
        loop {
            let u = 2.0 * self.open_unit() - 1.0;
            let v = 2.0 * self.open_unit() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest);
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn streams_are_reproducible() {
        let f = RngFactory::new(7);
        let a: Vec<u64> = {
            let mut r = f.stream(StreamId::new("x", 0));
            (0..8).map(|_| r.gen()).collect()
        };
        let b: Vec<u64> = {
            let mut r = f.stream(StreamId::new("x", 0));
            (0..8).map(|_| r.gen()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn streams_differ_by_label_and_index() {
        let f = RngFactory::new(7);
        let a: u64 = f.stream(StreamId::new("x", 0)).gen();
        let b: u64 = f.stream(StreamId::new("y", 0)).gen();
        let c: u64 = f.stream(StreamId::new("x", 1)).gen();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn different_master_seeds_differ() {
        let a: u64 = RngFactory::new(1).stream(StreamId::new("x", 0)).gen();
        let b: u64 = RngFactory::new(2).stream(StreamId::new("x", 0)).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = SimRng::seed_from_u64(11);
        let n = 200_000;
        let rate = 0.25;
        let mean: f64 = (0..n).map(|_| r.exponential(rate)).sum::<f64>() / f64::from(n);
        assert!(
            (mean - 4.0).abs() < 0.05,
            "sample mean {mean} too far from 4.0"
        );
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn exponential_rejects_zero_rate() {
        let mut r = SimRng::seed_from_u64(1);
        let _ = r.exponential(0.0);
    }

    #[test]
    fn open_unit_is_strictly_interior() {
        let mut r = SimRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let u = r.open_unit();
            assert!(u > 0.0 && u < 1.0);
        }
    }

    #[test]
    fn bernoulli_extremes() {
        let mut r = SimRng::seed_from_u64(5);
        assert!(!r.bernoulli(0.0));
        assert!(r.bernoulli(1.0));
        // Out-of-range probabilities are clamped rather than panicking.
        assert!(r.bernoulli(2.0));
        assert!(!r.bernoulli(-1.0));
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = SimRng::seed_from_u64(13);
        let n = 200_000;
        let (mut sum, mut sum2) = (0.0, 0.0);
        for _ in 0..n {
            let x = r.standard_normal();
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / f64::from(n);
        let var = sum2 / f64::from(n) - mean * mean;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "variance {var}");
    }

    #[test]
    fn bernoulli_frequency() {
        let mut r = SimRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| r.bernoulli(0.3)).count();
        let freq = hits as f64 / 100_000.0;
        assert!((freq - 0.3).abs() < 0.01, "frequency {freq}");
    }

    #[test]
    fn fnv_is_stable() {
        // Pinned reference value: stream assignment must never change
        // across builds (FNV-1a of the empty string is the offset basis).
        assert_eq!(super::fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(super::fnv1a(b"abc"), super::fnv1a(b"abc"));
        assert_ne!(super::fnv1a(b"abc"), super::fnv1a(b"abd"));
    }
}
