//! Scheduled-event bookkeeping types.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::fmt;

/// Opaque handle identifying a scheduled event so that it can later be
/// cancelled.
///
/// Handles are cheap to copy. Internally the low half indexes a slot in
/// the issuing [`EventQueue`]'s slab and the high half carries that
/// slot's generation, so a handle held past its event's firing or
/// cancellation goes stale instead of aliasing a later event.
///
/// [`EventQueue`]: crate::EventQueue
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub(crate) u64);

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "event#{}", self.0)
    }
}

/// A payload scheduled at a particular simulated time.
///
/// Ordering is by time, then by insertion sequence (FIFO among equal
/// times), which keeps simulations deterministic when several events share
/// a timestamp.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    pub(crate) time: SimTime,
    pub(crate) id: EventId,
    /// Monotone insertion sequence; the FIFO tie-breaker (ids recycle
    /// slab slots, so they do not order insertions).
    pub(crate) seq: u64,
    pub(crate) payload: E,
}

impl<E> ScheduledEvent<E> {
    /// The time this event fires.
    #[must_use]
    pub fn time(&self) -> SimTime {
        self.time
    }

    /// The cancellation handle.
    #[must_use]
    pub fn id(&self) -> EventId {
        self.id
    }

    /// Borrows the payload.
    #[must_use]
    pub fn payload(&self) -> &E {
        &self.payload
    }

    /// Consumes the entry, returning the payload.
    #[must_use]
    pub fn into_payload(self) -> E {
        self.payload
    }
}

impl<E> PartialEq for ScheduledEvent<E> {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.time
            .cmp(&other.time)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_time_then_sequence() {
        let a = ScheduledEvent {
            time: SimTime::from_secs(1.0),
            id: EventId(7),
            seq: 0,
            payload: "a",
        };
        let b = ScheduledEvent {
            time: SimTime::from_secs(1.0),
            // A smaller id (recycled slot) must not jump the FIFO line.
            id: EventId(2),
            seq: 1,
            payload: "b",
        };
        let c = ScheduledEvent {
            time: SimTime::from_secs(0.5),
            id: EventId(9),
            seq: 2,
            payload: "c",
        };
        assert!(c < a);
        assert!(a < b);
    }

    #[test]
    fn accessors() {
        let e = ScheduledEvent {
            time: SimTime::from_secs(2.0),
            id: EventId(1),
            seq: 0,
            payload: 42,
        };
        assert_eq!(e.time(), SimTime::from_secs(2.0));
        assert_eq!(e.id(), EventId(1));
        assert_eq!(*e.payload(), 42);
        assert_eq!(e.into_payload(), 42);
    }

    #[test]
    fn event_id_display() {
        assert_eq!(EventId(3).to_string(), "event#3");
    }
}
