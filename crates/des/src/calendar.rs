//! Calendar-queue backend for the future-event list.
//!
//! A calendar queue (Brown 1988) hashes each event by time into a
//! circular array of buckets, each covering one `width`-wide window of
//! the clock ("day"); the array as a whole covers one "year" and wraps.
//! Dequeue walks the bucket that contains the current window and pops
//! its earliest entry in O(1) amortized; enqueue binary-searches one
//! (short) bucket. The bucket count and width adapt to the live event
//! population, so both operations stay O(1) amortized for the dense
//! near-horizon band that dominates the checkpoint model, while a
//! direct min-scan fallback handles the sparse far tail (failure
//! timers months out) without ever popping out of order.
//!
//! # The renegotiated parts and the preserved contract
//!
//! [`CalendarQueue`] reproduces the indexed heap's **observable
//! contract exactly** — same `(time, seq)` total order (FIFO among
//! equal times by a globally monotone insertion sequence, *not* bucket
//! insertion order), same generation-counted handles, same watermark
//! causality panics, same `reschedule` fresh-sequence semantics — so a
//! simulation run on the calendar pops the identical event sequence
//! and is bit-identical to one run on the heap. What changes is purely
//! mechanical: cancellation and reschedule *tombstone* the old bucket
//! entry (the slot's live sequence number moves on and stale entries
//! are skipped and purged when their bucket is next visited) instead
//! of eagerly removing it, and a garbage-ratio trigger rebuilds the
//! calendar before tombstones can dominate a reschedule-heavy
//! workload.
//!
//! Windows are indexed by the integer `floor(time / width)` — never by
//! accumulated floating-point bucket boundaries — so an event
//! qualifies for the current window by exact integer equality and no
//! rounding drift can reorder events across adjacent buckets.

use crate::event::{EventId, ScheduledEvent};
use crate::time::SimTime;

/// Sequence sentinel for a slot with no live event (free or consumed).
const NO_SEQ: u64 = u64::MAX;

/// Smallest bucket-array size (a power of two).
const MIN_BUCKETS: usize = 16;

/// Largest bucket-array size; beyond this, extra population just
/// deepens buckets (still correct, still fast — buckets are sorted).
const MAX_BUCKETS: usize = 1 << 20;

/// One bucket entry: where a (possibly stale) scheduled occurrence of
/// a slot's event lives. The entry is live iff the slot still carries
/// exactly this sequence number.
#[derive(Debug, Clone, Copy)]
struct Entry {
    time: SimTime,
    seq: u64,
    slot: u32,
}

/// Per-event slot: the payload home and the handle/liveness registry.
#[derive(Debug)]
struct CalSlot<E> {
    /// Bumped on every release; a handle whose generation mismatches is
    /// stale (already fired or cancelled).
    gen: u32,
    /// Sequence number of this slot's live bucket entry, or [`NO_SEQ`]
    /// when the slot holds no live event. Sequences are globally unique,
    /// so a stale bucket entry can never collide with a later tenant.
    seq: u64,
    /// Firing time of the live entry (undefined when `seq == NO_SEQ`).
    time: SimTime,
    /// The event payload, present exactly while the slot is live.
    payload: Option<E>,
}

/// Calendar-queue future-event list. See the module docs for the
/// design; see [`crate::EventQueue`] for the user-facing facade.
#[derive(Debug)]
pub(crate) struct CalendarQueue<E> {
    /// `1 << bits` buckets, each sorted by `(time, seq)` **descending**
    /// so the bucket's earliest entry is `last()` and pops are `pop()`.
    buckets: Vec<Vec<Entry>>,
    /// Window width in seconds (always finite and positive).
    width: f64,
    /// Cached `1.0 / width`; `window_of` runs on every schedule,
    /// reschedule, and walk step, and the multiply is several times
    /// cheaper than the division it replaces.
    inv_width: f64,
    /// Global index of the window the dequeue scan is currently in:
    /// events with `floor(time / width) == cur_window` qualify.
    cur_window: u64,
    slots: Vec<CalSlot<E>>,
    /// Indices of slots available for reuse.
    free: Vec<u32>,
    /// Live (non-cancelled, non-fired) event count.
    live: usize,
    /// Stale bucket entries not yet purged.
    garbage: usize,
    /// Monotone insertion sequence, the FIFO tie-breaker among events
    /// scheduled at the same time.
    next_seq: u64,
    /// Time of the most recently popped event; schedules before this
    /// are rejected to preserve causality.
    watermark: SimTime,
    /// Queue operations since the last rebuild; gates the
    /// fallback-triggered width recalibration in [`Self::find_min`] so
    /// a pathological spacing mix cannot thrash rebuilds on every pop.
    ops_since_rebuild: u32,
}

impl<E> CalendarQueue<E> {
    pub(crate) fn new() -> CalendarQueue<E> {
        CalendarQueue {
            buckets: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            width: 1.0,
            inv_width: 1.0,
            cur_window: 0,
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            garbage: 0,
            next_seq: 0,
            watermark: SimTime::ZERO,
            ops_since_rebuild: 0,
        }
    }

    /// The global window index of `time`: `floor(time / width)`.
    /// Saturates for times astronomically beyond the width scale, which
    /// only collapses the far tail into one window (slower, never
    /// wrong — qualification is by exact index equality).
    #[inline]
    fn window_of(&self, time: SimTime) -> u64 {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        {
            (time.as_secs() * self.inv_width).floor() as u64
        }
    }

    #[inline]
    fn bucket_of_window(&self, window: u64) -> usize {
        #[allow(clippy::cast_possible_truncation)]
        {
            (window as usize) & (self.buckets.len() - 1)
        }
    }

    /// True when the slot still owns exactly this bucket entry.
    #[inline]
    fn is_live(&self, e: &Entry) -> bool {
        self.slots[e.slot as usize].seq == e.seq
    }

    pub(crate) fn schedule(&mut self, time: SimTime, payload: E) -> EventId {
        assert!(
            time >= self.watermark,
            "attempted to schedule an event at {time} before current time {}",
            self.watermark
        );
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                let s = u32::try_from(self.slots.len()).expect("more than 2^32 in-flight events");
                self.slots.push(CalSlot {
                    gen: 0,
                    seq: NO_SEQ,
                    time: SimTime::ZERO,
                    payload: None,
                });
                s
            }
        };
        let id = EventId(u64::from(self.slots[slot as usize].gen) << 32 | u64::from(slot));
        let seq = self.next_seq;
        self.next_seq += 1;
        let s = &mut self.slots[slot as usize];
        debug_assert!(s.seq == NO_SEQ && s.payload.is_none());
        s.seq = seq;
        s.time = time;
        s.payload = Some(payload);
        self.live += 1;
        self.ops_since_rebuild = self.ops_since_rebuild.saturating_add(1);
        self.insert_entry(Entry { time, seq, slot });
        self.maybe_rebuild();
        id
    }

    pub(crate) fn cancel(&mut self, id: EventId) -> bool {
        let Some(slot) = self.resolve(id) else {
            return false;
        };
        self.release(slot);
        self.live -= 1;
        self.garbage += 1;
        true
    }

    pub(crate) fn reschedule(&mut self, id: EventId, time: SimTime) -> bool {
        let Some(slot) = self.resolve(id) else {
            return false;
        };
        assert!(
            time >= self.watermark,
            "attempted to reschedule an event at {time} before current time {}",
            self.watermark
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let s = &mut self.slots[slot];
        s.seq = seq;
        s.time = time;
        // The previous bucket entry keeps the old sequence and is now
        // stale; it gets skipped and purged when its bucket is visited.
        self.garbage += 1;
        self.ops_since_rebuild = self.ops_since_rebuild.saturating_add(1);
        #[allow(clippy::cast_possible_truncation)]
        self.insert_entry(Entry {
            time,
            seq,
            slot: slot as u32,
        });
        self.maybe_rebuild();
        true
    }

    pub(crate) fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        let (bucket, _) = self.find_min()?;
        let entry = self.buckets[bucket].pop().expect("find_min found an entry");
        Some(self.consume(entry))
    }

    pub(crate) fn pop_before(&mut self, limit: SimTime) -> Option<ScheduledEvent<E>> {
        let (bucket, time) = self.find_min()?;
        if time > limit {
            return None;
        }
        let entry = self.buckets[bucket].pop().expect("find_min found an entry");
        Some(self.consume(entry))
    }

    pub(crate) fn peek_time(&mut self) -> Option<SimTime> {
        self.find_min().map(|(_, time)| time)
    }

    pub(crate) fn len(&self) -> usize {
        self.live
    }

    pub(crate) fn watermark(&self) -> SimTime {
        self.watermark
    }

    pub(crate) fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        for slot in 0..self.slots.len() {
            if self.slots[slot].seq != NO_SEQ {
                self.release(slot);
            }
        }
        self.live = 0;
        self.garbage = 0;
        self.cur_window = self.window_of(self.watermark);
    }

    /// Live entries in the bucket the dequeue scan currently points at —
    /// the "band occupancy" telemetry probe. Counts live entries only,
    /// so the number reflects real scheduling density, not tombstones.
    pub(crate) fn band_occupancy(&self) -> usize {
        let bucket = self.bucket_of_window(self.cur_window);
        self.buckets[bucket]
            .iter()
            .filter(|e| self.is_live(e))
            .count()
    }

    /// Locates the earliest live event, leaving it as the `last()` of
    /// the returned bucket, and advances the window cursor to its
    /// window. Purges stale tail entries along the way.
    fn find_min(&mut self) -> Option<(usize, SimTime)> {
        if self.live == 0 {
            return None;
        }
        loop {
            let nbuckets = self.buckets.len();
            // One full year of windows, then fall out of the walk.
            for _ in 0..nbuckets {
                let bucket = self.bucket_of_window(self.cur_window);
                while let Some(&last) = self.buckets[bucket].last() {
                    if !self.is_live(&last) {
                        self.buckets[bucket].pop();
                        self.garbage -= 1;
                        continue;
                    }
                    if self.window_of(last.time) == self.cur_window {
                        return Some((bucket, last.time));
                    }
                    break;
                }
                self.cur_window += 1;
            }
            // The next event is more than a full year of windows past
            // the cursor — the width no longer matches the live event
            // spacing. Recalibrate and retry: the rebuild re-derives
            // the width from the live population and parks the cursor
            // on the earliest entry's window, so the retried walk hits
            // it in its first bucket. The op gate keeps a pathological
            // spacing mix from rebuilding on every pop; rebuild()
            // resets it, so the retry cannot recalibrate twice.
            if self.ops_since_rebuild >= 16 {
                self.rebuild();
                continue;
            }
            break;
        }
        // Sparse tail right after a recalibration: nothing within a
        // year of the cursor even at the freshly fitted width. Find
        // the global minimum directly and jump the cursor to its
        // window.
        let nbuckets = self.buckets.len();
        let mut best: Option<Entry> = None;
        for b in 0..nbuckets {
            for e in &self.buckets[b] {
                if self.slots[e.slot as usize].seq == e.seq
                    && best.is_none_or(|m| (e.time, e.seq) < (m.time, m.seq))
                {
                    best = Some(*e);
                }
            }
        }
        let min = best.expect("live > 0 but no live entry found");
        self.cur_window = self.window_of(min.time);
        let bucket = self.bucket_of_window(self.cur_window);
        // Purge the stale tail so the minimum is last() as promised.
        while let Some(&last) = self.buckets[bucket].last() {
            if self.is_live(&last) {
                break;
            }
            self.buckets[bucket].pop();
            self.garbage -= 1;
        }
        debug_assert_eq!(self.buckets[bucket].last().map(|e| e.seq), Some(min.seq));
        Some((bucket, min.time))
    }

    /// Finalizes a popped live entry: releases its slot, advances the
    /// watermark, and materializes the [`ScheduledEvent`].
    fn consume(&mut self, entry: Entry) -> ScheduledEvent<E> {
        let slot = entry.slot as usize;
        let gen = self.slots[slot].gen;
        let payload = self.release(slot).expect("popped entry was live");
        self.live -= 1;
        self.watermark = entry.time;
        ScheduledEvent {
            time: entry.time,
            id: EventId(u64::from(gen) << 32 | u64::from(entry.slot)),
            seq: entry.seq,
            payload,
        }
    }

    /// Inserts a bucket entry in `(time, seq)`-descending order and
    /// pulls the window cursor back if the event lands behind it.
    fn insert_entry(&mut self, entry: Entry) {
        let window = self.window_of(entry.time);
        if window < self.cur_window {
            self.cur_window = window;
        }
        let bucket = self.bucket_of_window(window);
        let b = &mut self.buckets[bucket];
        let at = b.partition_point(|e| (e.time, e.seq) > (entry.time, entry.seq));
        b.insert(at, entry);
    }

    /// Maps a handle to its slot index, `None` when stale or foreign.
    fn resolve(&self, id: EventId) -> Option<usize> {
        let slot = (id.0 & 0xFFFF_FFFF) as usize;
        let gen = (id.0 >> 32) as u32;
        (slot < self.slots.len() && self.slots[slot].gen == gen && self.slots[slot].seq != NO_SEQ)
            .then_some(slot)
    }

    /// Returns a slot to the free list under a fresh generation,
    /// yielding its payload.
    fn release(&mut self, slot: usize) -> Option<E> {
        let s = &mut self.slots[slot];
        s.gen = s.gen.wrapping_add(1);
        s.seq = NO_SEQ;
        self.free.push(slot as u32);
        s.payload.take()
    }

    /// Rebuilds the calendar when the live population outgrew (or far
    /// undershot) the bucket array, or when tombstones dominate it.
    fn maybe_rebuild(&mut self) {
        let nbuckets = self.buckets.len();
        let grown = self.live > 2 * nbuckets && nbuckets < MAX_BUCKETS;
        let shrunk = self.live < nbuckets / 4 && nbuckets > MIN_BUCKETS;
        let dirty = self.garbage > 64 && self.garbage > self.live;
        if grown || shrunk || dirty {
            self.rebuild();
        }
    }

    /// Re-sizes the bucket array to the live population, re-estimates
    /// the width from the observed event spacing, and re-buckets every
    /// live entry (dropping all tombstones).
    fn rebuild(&mut self) {
        self.ops_since_rebuild = 0;
        let mut entries: Vec<Entry> = Vec::with_capacity(self.live);
        for b in &mut self.buckets {
            for e in b.drain(..) {
                if self.slots[e.slot as usize].seq == e.seq {
                    entries.push(e);
                }
            }
        }
        debug_assert_eq!(entries.len(), self.live);
        self.garbage = 0;
        entries.sort_unstable_by_key(|e| (e.time, e.seq));

        let nbuckets = entries
            .len()
            .next_power_of_two()
            .clamp(MIN_BUCKETS, MAX_BUCKETS);
        if self.buckets.len() != nbuckets {
            self.buckets = (0..nbuckets).map(|_| Vec::new()).collect();
        }
        // Width from the middle half of the inter-event gaps: robust
        // against the far-tail timers (months out) that would blow up a
        // plain mean and against the duplicate-time spikes at zero.
        // Tiny populations (2–3 events) have no middle half; their full
        // span serves instead — an outlier-inflated width only merges
        // them into one sorted bucket, which is optimal at that size.
        let (lo, hi) = if entries.len() >= 4 {
            (entries.len() / 4, (3 * entries.len()) / 4)
        } else {
            (0, entries.len().saturating_sub(1))
        };
        if hi > lo {
            let span = entries[hi].time.as_secs() - entries[lo].time.as_secs();
            let gaps = (hi - lo) as f64;
            let est = 3.0 * span / gaps;
            if est.is_finite() && est > 0.0 {
                self.width = est;
                self.inv_width = 1.0 / est;
            }
        }
        self.cur_window = self.window_of(entries.first().map_or(self.watermark, |e| e.time));
        for e in entries.into_iter().rev() {
            let bucket = self.bucket_of_window(self.window_of(e.time));
            self.buckets[bucket].push(e);
        }
        debug_assert!(self.buckets.iter().all(|b| b
            .windows(2)
            .all(|w| (w[0].time, w[0].seq) > (w[1].time, w[1].seq))));
    }
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        CalendarQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain<E>(q: &mut CalendarQueue<E>) -> Vec<E> {
        std::iter::from_fn(|| q.pop().map(ScheduledEvent::into_payload)).collect()
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = CalendarQueue::new();
        q.schedule(SimTime::from_secs(3.0), 3);
        q.schedule(SimTime::from_secs(1.0), 1);
        q.schedule(SimTime::from_secs(2.0), 2);
        assert_eq!(drain(&mut q), vec![1, 2, 3]);
    }

    #[test]
    fn ties_are_fifo_by_insertion_not_bucket_order() {
        let mut q = CalendarQueue::new();
        let t = SimTime::from_secs(5.0);
        q.schedule(t, "first");
        q.schedule(t, "second");
        q.schedule(t, "third");
        assert_eq!(drain(&mut q), vec!["first", "second", "third"]);
    }

    #[test]
    fn ties_are_fifo_across_slot_reuse() {
        let mut q = CalendarQueue::new();
        let a = q.schedule(SimTime::from_secs(1.0), "warmup0");
        q.schedule(SimTime::from_secs(1.0), "warmup1");
        q.cancel(a);
        assert_eq!(q.pop().unwrap().into_payload(), "warmup1");
        let t = SimTime::from_secs(5.0);
        q.schedule(t, "first");
        q.schedule(t, "second");
        q.schedule(t, "third");
        assert_eq!(drain(&mut q), vec!["first", "second", "third"]);
    }

    #[test]
    fn cancel_and_stale_handles_match_heap_semantics() {
        let mut q = CalendarQueue::new();
        let a = q.schedule(SimTime::from_secs(1.0), "a");
        q.schedule(SimTime::from_secs(2.0), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().into_payload(), "b");
        // Fired handles are stale and never alias a later event.
        let c = q.schedule(SimTime::from_secs(3.0), "c");
        let fired = q.pop().unwrap();
        assert_eq!(fired.id(), c);
        assert!(!q.cancel(c));
        let d = q.schedule(SimTime::from_secs(4.0), "d");
        assert_ne!(c, d);
        assert_eq!(q.pop().unwrap().into_payload(), "d");
    }

    #[test]
    fn reschedule_keeps_handle_and_requeues_at_fifo_tail() {
        let mut q = CalendarQueue::new();
        let t = SimTime::from_secs(5.0);
        let a = q.schedule(t, "a");
        q.schedule(t, "b");
        assert!(q.reschedule(a, t));
        assert!(q.cancel(a), "handle stays live across reschedule");
        assert_eq!(drain(&mut q), vec!["b"]);
        assert!(!q.reschedule(a, t), "stale handle rejected");
    }

    #[test]
    fn reschedule_backwards_is_found_before_later_events() {
        // Moving an event behind the dequeue cursor must pull the
        // cursor back, or the scan would skip it for a whole year.
        let mut q = CalendarQueue::new();
        q.schedule(SimTime::from_secs(0.5), "warm");
        let a = q.schedule(SimTime::from_secs(400.0), "a");
        q.schedule(SimTime::from_secs(7.0), "b");
        assert_eq!(q.pop().unwrap().into_payload(), "warm");
        assert!(q.reschedule(a, SimTime::from_secs(3.0)));
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(3.0)));
        assert_eq!(drain(&mut q), vec!["a", "b"]);
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_into_the_past_panics() {
        let mut q = CalendarQueue::new();
        q.schedule(SimTime::from_secs(10.0), ());
        q.pop();
        q.schedule(SimTime::from_secs(5.0), ());
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn rescheduling_into_the_past_panics() {
        let mut q = CalendarQueue::new();
        let a = q.schedule(SimTime::from_secs(10.0), "a");
        q.schedule(SimTime::from_secs(8.0), "b");
        q.pop();
        q.reschedule(a, SimTime::from_secs(5.0));
    }

    #[test]
    fn pop_before_is_inclusive_and_leaves_later_events() {
        let mut q = CalendarQueue::new();
        let a = q.schedule(SimTime::from_secs(1.0), "a");
        q.schedule(SimTime::from_secs(2.0), "b");
        q.schedule(SimTime::from_secs(5.0), "c");
        q.cancel(a);
        assert_eq!(
            q.pop_before(SimTime::from_secs(3.0)).unwrap().time(),
            SimTime::from_secs(2.0)
        );
        assert!(q.pop_before(SimTime::from_secs(3.0)).is_none());
        assert_eq!(q.watermark(), SimTime::from_secs(2.0));
        assert_eq!(
            q.pop_before(SimTime::from_secs(5.0))
                .unwrap()
                .into_payload(),
            "c"
        );
    }

    #[test]
    fn sparse_far_tail_pops_in_order() {
        // Events separated by far more than a full calendar year of
        // windows exercise the direct-scan fallback.
        let mut q = CalendarQueue::new();
        q.schedule(SimTime::from_hours(20_000.0), "far");
        q.schedule(SimTime::from_secs(1.0), "near");
        q.schedule(SimTime::from_hours(2.0), "mid");
        assert_eq!(drain(&mut q), vec!["near", "mid", "far"]);
        assert_eq!(q.watermark(), SimTime::from_hours(20_000.0));
    }

    #[test]
    fn growth_and_shrink_rebuilds_keep_order() {
        let mut q = CalendarQueue::new();
        let mut ids = Vec::new();
        for i in 0..2_000u32 {
            ids.push(q.schedule(SimTime::from_secs(f64::from(i % 97)), i));
        }
        assert!(
            q.buckets.len() > MIN_BUCKETS,
            "population should grow the array"
        );
        for (k, id) in ids.iter().enumerate() {
            if k % 3 == 0 {
                q.cancel(*id);
            }
        }
        let mut last = (SimTime::ZERO, 0u64);
        let mut n = 0;
        while let Some(ev) = q.pop() {
            assert!((ev.time(), ev.seq) > last || n == 0);
            last = (ev.time(), ev.seq);
            n += 1;
        }
        assert_eq!(n, 2_000 - ids.len().div_ceil(3));
    }

    #[test]
    fn heavy_reschedule_churn_purges_tombstones() {
        let mut q = CalendarQueue::new();
        let ids: Vec<_> = (0..8u32)
            .map(|i| q.schedule(SimTime::from_secs(f64::from(i) + 100.0), i))
            .collect();
        for round in 0..10_000u32 {
            let id = ids[(round % 8) as usize];
            q.reschedule(id, SimTime::from_secs(100.0 + f64::from(round % 50)));
        }
        let total: usize = q.buckets.iter().map(Vec::len).sum();
        assert!(
            total <= 8 + 64 + 8,
            "tombstones piled up: {total} entries for 8 live events"
        );
        assert_eq!(q.len(), 8);
        assert_eq!(drain(&mut q).len(), 8);
    }

    #[test]
    fn slots_are_recycled() {
        let mut q = CalendarQueue::new();
        for round in 0..1_000 {
            let t = SimTime::from_secs(f64::from(round));
            q.schedule(t, round);
            q.schedule(t, round);
            q.pop();
            q.pop();
        }
        assert!(
            q.slots.len() <= 4,
            "slab grew to {} slots for 2 in-flight events",
            q.slots.len()
        );
    }

    #[test]
    fn clear_empties_queue_and_stales_handles() {
        let mut q = CalendarQueue::new();
        let a = q.schedule(SimTime::from_secs(1.0), ());
        q.clear();
        assert_eq!(q.len(), 0);
        assert!(q.pop().is_none());
        assert!(!q.cancel(a));
        let b = q.schedule(SimTime::from_secs(1.0), ());
        assert_ne!(a, b);
        assert_eq!(q.len(), 1);
    }
}
