//! Simulation time.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Error returned when constructing a [`SimTime`] from an invalid float.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeError {
    kind: TimeErrorKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TimeErrorKind {
    NotFinite,
    Negative,
}

impl fmt::Display for TimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            TimeErrorKind::NotFinite => write!(f, "simulation time must be finite"),
            TimeErrorKind::Negative => write!(f, "simulation time must be non-negative"),
        }
    }
}

impl std::error::Error for TimeError {}

/// A point on (or duration along) the simulation clock, in seconds.
///
/// `SimTime` wraps an `f64` that is guaranteed finite and non-negative,
/// which makes it totally ordered (it implements [`Ord`]) and therefore
/// usable directly as a priority in the event queue.
///
/// Arithmetic saturates at zero on subtraction: the kernel never produces
/// negative times.
///
/// # Example
///
/// ```
/// use ckpt_des::SimTime;
///
/// let t = SimTime::from_secs(90.0);
/// assert_eq!(t.as_mins(), 1.5);
/// assert!(SimTime::from_hours(1.0) > t);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Constructs a time from seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or infinite. Use
    /// [`SimTime::try_from_secs`] for a fallible version.
    #[must_use]
    pub fn from_secs(secs: f64) -> SimTime {
        match SimTime::try_from_secs(secs) {
            Ok(t) => t,
            Err(e) => panic!("invalid SimTime ({secs}): {e}"),
        }
    }

    /// Constructs a time from seconds, rejecting NaN, infinities and
    /// negative values.
    ///
    /// # Errors
    ///
    /// Returns [`TimeError`] when `secs` is not a finite non-negative
    /// number.
    pub fn try_from_secs(secs: f64) -> Result<SimTime, TimeError> {
        if !secs.is_finite() {
            Err(TimeError {
                kind: TimeErrorKind::NotFinite,
            })
        } else if secs < 0.0 {
            Err(TimeError {
                kind: TimeErrorKind::Negative,
            })
        } else {
            // `+ 0.0` canonicalizes -0.0 (which passes the sign check) to
            // +0.0, preserving the invariant that the wrapped bits of
            // equal times are equal — see `Ord`.
            Ok(SimTime(secs + 0.0))
        }
    }

    /// Constructs a time from minutes.
    #[must_use]
    pub fn from_mins(mins: f64) -> SimTime {
        SimTime::from_secs(mins * 60.0)
    }

    /// Constructs a time from hours.
    #[must_use]
    pub fn from_hours(hours: f64) -> SimTime {
        SimTime::from_secs(hours * 3600.0)
    }

    /// Constructs a time from years (Julian year = 8766 h, the convention
    /// used for MTTF figures in the DSN'05 paper's sources).
    #[must_use]
    pub fn from_years(years: f64) -> SimTime {
        SimTime::from_hours(years * 8766.0)
    }

    /// The value in seconds.
    #[must_use]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// The value in minutes.
    #[must_use]
    pub fn as_mins(self) -> f64 {
        self.0 / 60.0
    }

    /// The value in hours.
    #[must_use]
    pub fn as_hours(self) -> f64 {
        self.0 / 3600.0
    }

    /// The value in Julian years (8766 h).
    #[must_use]
    pub fn as_years(self) -> f64 {
        self.as_hours() / 8766.0
    }

    /// Returns the larger of two times.
    #[must_use]
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two times.
    #[must_use]
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Difference `self - other`, saturating at zero.
    #[must_use]
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime((self.0 - other.0).max(0.0))
    }

    /// True if this is exactly the zero time.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl Eq for SimTime {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for SimTime {
    #[inline]
    fn cmp(&self, other: &SimTime) -> std::cmp::Ordering {
        // Invariant: the wrapped value is finite, non-negative, and never
        // -0.0 (canonicalized at construction), so the IEEE-754 bit
        // patterns order exactly like the values. The integer compare is
        // branch-free and inlines into the event queue's heap sifts,
        // where this is the hottest comparison in the simulator.
        self.0.to_bits().cmp(&other.0.to_bits())
    }
}

impl PartialOrd for SimTime {
    #[inline]
    fn partial_cmp(&self, other: &SimTime) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Add for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimTime) -> SimTime {
        SimTime::from_secs(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;

    /// Saturating subtraction; the clock never goes negative.
    fn sub(self, rhs: SimTime) -> SimTime {
        self.saturating_sub(rhs)
    }
}

impl SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for SimTime {
    type Output = SimTime;

    fn mul(self, rhs: f64) -> SimTime {
        SimTime::from_secs(self.0 * rhs)
    }
}

impl Div<f64> for SimTime {
    type Output = SimTime;

    fn div(self, rhs: f64) -> SimTime {
        SimTime::from_secs(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 3600.0 {
            write!(f, "{:.3}h", self.as_hours())
        } else if self.0 >= 60.0 {
            write!(f, "{:.3}m", self.as_mins())
        } else {
            write!(f, "{:.3}s", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let t = SimTime::from_hours(2.0);
        assert_eq!(t.as_secs(), 7200.0);
        assert_eq!(t.as_mins(), 120.0);
        assert_eq!(t.as_hours(), 2.0);
    }

    #[test]
    fn years_use_julian_convention() {
        let t = SimTime::from_years(1.0);
        assert_eq!(t.as_hours(), 8766.0);
        assert!((t.as_years() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_nan_and_negative() {
        assert!(SimTime::try_from_secs(f64::NAN).is_err());
        assert!(SimTime::try_from_secs(f64::INFINITY).is_err());
        assert!(SimTime::try_from_secs(-1.0).is_err());
        assert!(SimTime::try_from_secs(0.0).is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid SimTime")]
    fn from_secs_panics_on_nan() {
        let _ = SimTime::from_secs(f64::NAN);
    }

    #[test]
    fn negative_zero_is_canonicalized() {
        // -0.0 passes the sign check; it must collapse to +0.0 so the
        // bitwise Ord stays consistent with numeric equality.
        let t = SimTime::from_secs(-0.0);
        assert_eq!(t.as_secs().to_bits(), 0.0f64.to_bits());
        assert_eq!(t.cmp(&SimTime::ZERO), std::cmp::Ordering::Equal);
        assert!(t < SimTime::from_secs(1.0));
    }

    #[test]
    fn subtraction_saturates() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(5.0);
        assert_eq!(a - b, SimTime::ZERO);
        assert_eq!(b - a, SimTime::from_secs(4.0));
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![
            SimTime::from_secs(3.0),
            SimTime::ZERO,
            SimTime::from_secs(1.5),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                SimTime::ZERO,
                SimTime::from_secs(1.5),
                SimTime::from_secs(3.0)
            ]
        );
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(SimTime::from_secs(1.0).to_string(), "1.000s");
        assert_eq!(SimTime::from_secs(90.0).to_string(), "1.500m");
        assert_eq!(SimTime::from_hours(3.0).to_string(), "3.000h");
    }

    #[test]
    fn min_max() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn scalar_mul_div() {
        let t = SimTime::from_secs(10.0);
        assert_eq!((t * 2.0).as_secs(), 20.0);
        assert_eq!((t / 4.0).as_secs(), 2.5);
    }
}
