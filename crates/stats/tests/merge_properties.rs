//! Property tests for the parallel-merge path of [`OnlineStats`]:
//! merging per-partition accumulators must agree with one sequential
//! accumulator over the same data, which is what makes per-worker
//! statistics safe to combine after a parallel replication run.

use ckpt_stats::OnlineStats;
use proptest::prelude::*;

fn sequential(values: &[f64]) -> OnlineStats {
    let mut s = OnlineStats::new();
    for &x in values {
        s.push(x);
    }
    s
}

proptest! {
    /// Splitting the value stream into arbitrary contiguous partitions,
    /// accumulating each independently, and merging the parts matches
    /// the sequential accumulator to within 1e-10.
    #[test]
    fn merge_of_partitions_matches_sequential(
        values in proptest::collection::vec(-1e3f64..1e3, 1..200),
        parts in 1usize..8,
    ) {
        let reference = sequential(&values);

        let chunk = values.len().div_ceil(parts).max(1);
        let mut merged = OnlineStats::new();
        for part in values.chunks(chunk) {
            merged.merge(&sequential(part));
        }

        prop_assert_eq!(merged.count(), reference.count());
        // 1e-10 relative (1e-10 absolute near zero): both accumulators
        // see the same numbers, only the association order differs.
        let tol = |x: f64| 1e-10 * x.abs().max(1.0);
        prop_assert!(
            (merged.mean() - reference.mean()).abs() <= tol(reference.mean()),
            "mean: merged {} vs sequential {}",
            merged.mean(),
            reference.mean()
        );
        prop_assert!(
            (merged.variance() - reference.variance()).abs() <= tol(reference.variance()),
            "variance: merged {} vs sequential {}",
            merged.variance(),
            reference.variance()
        );
    }

    /// Merging an empty accumulator on either side is the identity.
    #[test]
    fn merge_with_empty_is_identity(
        values in proptest::collection::vec(-1e3f64..1e3, 1..50),
    ) {
        let reference = sequential(&values);

        let mut left = sequential(&values);
        left.merge(&OnlineStats::new());
        prop_assert_eq!(left.count(), reference.count());
        prop_assert!((left.mean() - reference.mean()).abs() <= 1e-12);

        let mut right = OnlineStats::new();
        right.merge(&reference);
        prop_assert_eq!(right.count(), reference.count());
        prop_assert!((right.mean() - reference.mean()).abs() <= 1e-12);
        prop_assert!((right.variance() - reference.variance()).abs() <= 1e-12);
    }
}
