//! Distributional contract of the engine's hot-loop samplers.
//!
//! `SimRng` is the single RNG behind both simulation engines; its
//! `exponential` draw sits on the hottest path (every `Resample` timer
//! resamples on every marking change). This suite pins the contract
//! both samplers must honor:
//!
//! * `Sampling::InverseCdf` (default) — the bit-identity oracle, the
//!   exact stream every pre-existing result was produced with;
//! * `Sampling::Ziggurat` — the fast path, distribution-equivalent but
//!   deliberately *not* stream-identical.
//!
//! It also pins the memorylessness identity that lazy reactivation
//! (`ReactivationMode::Lazy`) relies on to skip those resamples
//! entirely: the residual of an interrupted exponential timer is
//! distributed exactly as a fresh redraw.
//!
//! Each distribution gets a Kolmogorov–Smirnov test against its true
//! CDF plus moment checks with tolerance bands sized for the sample
//! size. Seeds are fixed, so these are deterministic regression tests,
//! not flaky statistical ones: the tolerances were chosen with head
//! room above the realized error at these exact seeds.

use ckpt_des::{Sampling, SimRng};
use ckpt_stats::gof::ks_test;

const N: usize = 20_000;
const ALPHA: f64 = 0.005;

fn draw<F: FnMut(&mut SimRng) -> f64>(seed: u64, sampling: Sampling, mut f: F) -> Vec<f64> {
    let mut rng = SimRng::seed_from_u64(seed);
    rng.set_sampling(sampling);
    (0..N).map(|_| f(&mut rng)).collect()
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

fn variance(xs: &[f64]) -> f64 {
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Exponential(rate): KS against `1 − e^{−λx}`, mean within ~5 standard
/// errors of `1/λ`, variance within 10 % of `1/λ²`. Run for both
/// samplers — the ziggurat must satisfy the *same* contract as the
/// inverse-CDF oracle.
#[test]
fn exponential_matches_distribution_under_both_samplers() {
    for (sampling, seed) in [(Sampling::InverseCdf, 11), (Sampling::Ziggurat, 12)] {
        for rate in [0.5, 1.0, 4.0] {
            let xs = draw(seed, sampling, |r| r.exponential(rate));
            assert!(xs.iter().all(|&x| x > 0.0), "{sampling:?} rate={rate}");
            let ks = ks_test(&xs, |x| 1.0 - (-rate * x).exp());
            assert!(ks.accepts(ALPHA), "{sampling:?} rate={rate}: {ks}");
            let se = 1.0 / (rate * (N as f64).sqrt());
            assert!(
                (mean(&xs) - 1.0 / rate).abs() < 5.0 * se,
                "{sampling:?} rate={rate}: mean {} vs {}",
                mean(&xs),
                1.0 / rate
            );
            let var_target = 1.0 / (rate * rate);
            assert!(
                (variance(&xs) - var_target).abs() < 0.1 * var_target,
                "{sampling:?} rate={rate}: var {} vs {var_target}",
                variance(&xs)
            );
        }
    }
}

/// The two samplers agree on summary statistics (they sample the same
/// distribution) while producing different streams (the ziggurat is
/// not, and must not silently become, the inverse CDF in disguise).
#[test]
fn samplers_are_equivalent_in_distribution_but_not_in_stream() {
    let seed = 21;
    let inv = draw(seed, Sampling::InverseCdf, |r| r.exponential(1.0));
    let zig = draw(seed, Sampling::Ziggurat, |r| r.exponential(1.0));
    assert!((mean(&inv) - mean(&zig)).abs() < 0.03);
    assert!((variance(&inv) - variance(&zig)).abs() < 0.1);
    assert_ne!(inv, zig, "ziggurat produced the inverse-CDF stream");
}

/// The memorylessness contract behind `ReactivationMode::Lazy`: a
/// marking change at time `u` interrupts an exponential timer drawn at
/// time 0 with expiry `t`. The eager oracle redraws a fresh
/// `Exp(rate)` delay at `u`; lazy keeps the timer, which amounts to
/// using the residual `t − u`. This test pins that the residual,
/// conditioned on the timer surviving the interruption (`u < t`), is
/// itself `Exp(rate)` — KS against the true CDF plus mean/variance
/// bands — so eliding the redraw is *exactly* distribution-equivalent,
/// not an approximation. Interruption times come from an independent
/// exponential process, mirroring how other activities' firings
/// perturb the marking in the simulator.
#[test]
fn lazy_residuals_after_interruption_are_exponential() {
    for (rate, interrupt_rate, seed) in [(1.0, 2.0, 61), (0.25, 1.0, 62), (4.0, 4.0, 63)] {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut residuals = Vec::with_capacity(N);
        while residuals.len() < N {
            let t = rng.exponential(rate);
            let u = rng.exponential(interrupt_rate);
            if u < t {
                residuals.push(t - u);
            }
        }
        let ks = ks_test(&residuals, |x| 1.0 - (-rate * x).exp());
        assert!(ks.accepts(ALPHA), "rate={rate}: {ks}");
        let se = 1.0 / (rate * (N as f64).sqrt());
        assert!(
            (mean(&residuals) - 1.0 / rate).abs() < 5.0 * se,
            "rate={rate}: residual mean {} vs {}",
            mean(&residuals),
            1.0 / rate
        );
        let var_target = 1.0 / (rate * rate);
        assert!(
            (variance(&residuals) - var_target).abs() < 0.1 * var_target,
            "rate={rate}: residual var {} vs {var_target}",
            variance(&residuals)
        );
    }
}

/// Abramowitz–Stegun 7.1.26 erf approximation, |error| ≤ 1.5e-7 —
/// orders of magnitude below the KS statistic's resolution at n = 2e4.
fn erf(x: f64) -> f64 {
    let sign = x.signum();
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Standard normal: KS against Φ (via erf), mean within ~5/√n, variance
/// within 5 %, symmetry via the third moment.
#[test]
fn standard_normal_matches_distribution() {
    let xs = draw(31, Sampling::InverseCdf, SimRng::standard_normal);
    let phi = |x: f64| 0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2));
    let ks = ks_test(&xs, phi);
    assert!(ks.accepts(ALPHA), "{ks}");
    assert!(
        mean(&xs).abs() < 5.0 / (N as f64).sqrt(),
        "mean {}",
        mean(&xs)
    );
    assert!((variance(&xs) - 1.0).abs() < 0.05, "var {}", variance(&xs));
    let m = mean(&xs);
    let skew = xs.iter().map(|x| (x - m).powi(3)).sum::<f64>() / N as f64;
    assert!(skew.abs() < 0.1, "skew {skew}");
}

/// `open_unit` is uniform on the *open* interval: KS against `F(x)=x`,
/// strict bounds, mean 1/2 and variance 1/12 within band.
#[test]
fn open_unit_is_uniform_on_the_open_interval() {
    let xs = draw(41, Sampling::InverseCdf, SimRng::open_unit);
    assert!(xs.iter().all(|&x| x > 0.0 && x < 1.0));
    let ks = ks_test(&xs, |x| x.clamp(0.0, 1.0));
    assert!(ks.accepts(ALPHA), "{ks}");
    assert!((mean(&xs) - 0.5).abs() < 5.0 * (1.0 / 12f64).sqrt() / (N as f64).sqrt());
    assert!((variance(&xs) - 1.0 / 12.0).abs() < 0.05 / 12.0);
}

/// The sampling mode only affects `exponential`: `open_unit` and
/// `standard_normal` draw the identical stream either way, so switching
/// to the ziggurat perturbs nothing else.
#[test]
fn sampling_mode_leaves_other_draws_untouched() {
    let a = draw(51, Sampling::InverseCdf, SimRng::open_unit);
    let b = draw(51, Sampling::Ziggurat, SimRng::open_unit);
    assert_eq!(a, b);
    let a = draw(52, Sampling::InverseCdf, SimRng::standard_normal);
    let b = draw(52, Sampling::Ziggurat, SimRng::standard_normal);
    assert_eq!(a, b);
}
