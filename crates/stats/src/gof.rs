//! Goodness-of-fit utilities: empirical CDFs and the one-sample
//! Kolmogorov–Smirnov test.
//!
//! Used throughout the test suites to validate the inverse-transform
//! samplers (most importantly the closed-form max-of-n-exponentials
//! coordination time) against their analytic CDFs, rather than just
//! matching a couple of moments.

use std::fmt;

/// An empirical cumulative distribution function over a sample.
///
/// # Example
///
/// ```
/// use ckpt_stats::gof::Ecdf;
///
/// let ecdf = Ecdf::new(vec![3.0, 1.0, 2.0, 2.0]);
/// assert_eq!(ecdf.eval(0.5), 0.0);
/// assert_eq!(ecdf.eval(2.0), 0.75);
/// assert_eq!(ecdf.eval(10.0), 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from a sample (NaNs are rejected).
    ///
    /// # Panics
    ///
    /// Panics if the sample is empty or contains NaN.
    #[must_use]
    pub fn new(mut sample: Vec<f64>) -> Ecdf {
        assert!(!sample.is_empty(), "ECDF needs a non-empty sample");
        assert!(
            sample.iter().all(|x| !x.is_nan()),
            "ECDF sample must not contain NaN"
        );
        sample.sort_by(|a, b| a.partial_cmp(b).expect("no NaN after check"));
        Ecdf { sorted: sample }
    }

    /// `F̂(x)`: the fraction of the sample ≤ `x`.
    #[must_use]
    pub fn eval(&self, x: f64) -> f64 {
        // partition_point gives the count of elements <= x.
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Sample size.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false ([`Ecdf::new`] rejects empty samples); provided for
    /// API completeness.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Empirical quantile (type-1 / inverse-CDF convention).
    ///
    /// # Panics
    ///
    /// Panics unless `p ∈ [0, 1]`.
    #[must_use]
    pub fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
        let n = self.sorted.len();
        let idx = ((p * n as f64).ceil() as usize).clamp(1, n) - 1;
        self.sorted[idx]
    }

    /// The sorted sample.
    #[must_use]
    pub fn sorted(&self) -> &[f64] {
        &self.sorted
    }
}

/// Result of a one-sample Kolmogorov–Smirnov test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsResult {
    /// The KS statistic `D_n = sup |F̂(x) − F(x)|`.
    pub statistic: f64,
    /// Approximate p-value (Kolmogorov asymptotic distribution, accurate
    /// for n ≳ 35).
    pub p_value: f64,
    /// Sample size.
    pub n: usize,
}

impl KsResult {
    /// True if the null hypothesis (sample ~ F) survives at significance
    /// level `alpha`.
    #[must_use]
    pub fn accepts(&self, alpha: f64) -> bool {
        self.p_value > alpha
    }
}

impl fmt::Display for KsResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "KS D={:.5}, p={:.4} (n={})",
            self.statistic, self.p_value, self.n
        )
    }
}

/// One-sample KS test of `sample` against the continuous CDF `cdf`.
///
/// # Panics
///
/// Panics if the sample is empty or contains NaN.
///
/// # Example
///
/// ```
/// use ckpt_des::SimRng;
/// use ckpt_stats::gof::ks_test;
///
/// let mut rng = SimRng::seed_from_u64(1);
/// let sample: Vec<f64> = (0..2000).map(|_| rng.exponential(2.0)).collect();
/// let result = ks_test(&sample, |x| 1.0 - (-2.0 * x).exp());
/// assert!(result.accepts(0.01), "{result}");
/// ```
pub fn ks_test<F: Fn(f64) -> f64>(sample: &[f64], cdf: F) -> KsResult {
    let ecdf = Ecdf::new(sample.to_vec());
    let n = ecdf.len();
    let nf = n as f64;
    let mut d: f64 = 0.0;
    for (i, &x) in ecdf.sorted().iter().enumerate() {
        let f = cdf(x).clamp(0.0, 1.0);
        let upper = ((i + 1) as f64 / nf - f).abs();
        let lower = (f - i as f64 / nf).abs();
        d = d.max(upper).max(lower);
    }
    KsResult {
        statistic: d,
        p_value: kolmogorov_sf((nf.sqrt() + 0.12 + 0.11 / nf.sqrt()) * d),
        n,
    }
}

/// Survival function of the Kolmogorov distribution,
/// `Q(t) = 2 Σ_{k≥1} (−1)^{k−1} e^{−2k²t²}` (Stephens' approximation is
/// applied by the caller through the effective-n correction).
#[must_use]
pub fn kolmogorov_sf(t: f64) -> f64 {
    if t <= 0.0 {
        return 1.0;
    }
    if t > 5.0 {
        return 0.0;
    }
    let mut sum = 0.0;
    for k in 1..=100u32 {
        let term = (-2.0 * f64::from(k * k) * t * t).exp();
        sum += if k % 2 == 1 { term } else { -term };
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{sample_max_exponential, Dist, Sample};
    use ckpt_des::SimRng;

    #[test]
    fn ecdf_basics() {
        let e = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.len(), 4);
        assert!(!e.is_empty());
        assert_eq!(e.eval(0.0), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.5), 0.5);
        assert_eq!(e.eval(4.0), 1.0);
        assert_eq!(e.quantile(0.0), 1.0);
        assert_eq!(e.quantile(0.5), 2.0);
        assert_eq!(e.quantile(1.0), 4.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn ecdf_rejects_empty() {
        let _ = Ecdf::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn ecdf_rejects_nan() {
        let _ = Ecdf::new(vec![1.0, f64::NAN]);
    }

    #[test]
    fn kolmogorov_sf_reference_values() {
        // Known: Q(0.8276) ≈ 0.5; Q(1.2238) ≈ 0.10; Q(1.3581) ≈ 0.05.
        assert!((kolmogorov_sf(0.8276) - 0.5).abs() < 0.01);
        assert!((kolmogorov_sf(1.2238) - 0.10).abs() < 0.005);
        assert!((kolmogorov_sf(1.3581) - 0.05).abs() < 0.005);
        assert_eq!(kolmogorov_sf(0.0), 1.0);
        assert_eq!(kolmogorov_sf(10.0), 0.0);
    }

    #[test]
    fn ks_accepts_correct_exponential() {
        let mut rng = SimRng::seed_from_u64(5);
        let sample: Vec<f64> = (0..5_000).map(|_| rng.exponential(0.5)).collect();
        let r = ks_test(&sample, |x| 1.0 - (-0.5 * x).exp());
        assert!(r.accepts(0.01), "{r}");
        assert!(r.statistic < 0.03);
    }

    #[test]
    fn ks_rejects_wrong_rate() {
        let mut rng = SimRng::seed_from_u64(6);
        let sample: Vec<f64> = (0..5_000).map(|_| rng.exponential(0.5)).collect();
        let r = ks_test(&sample, |x| 1.0 - (-x).exp());
        assert!(!r.accepts(0.01), "must reject a 2x-wrong rate: {r}");
    }

    #[test]
    fn max_exponential_sampler_matches_its_cdf() {
        // The core validation behind the Figure-5/6 machinery: the
        // closed-form sampler follows F(y) = (1 − e^{−λy})^n.
        for n in [16u64, 1_024, 65_536] {
            let mut rng = SimRng::seed_from_u64(7 + n);
            let sample: Vec<f64> = (0..4_000)
                .map(|_| sample_max_exponential(n, 0.1, &mut rng))
                .collect();
            let r = ks_test(&sample, |y| (1.0 - (-0.1 * y).exp()).powf(n as f64));
            assert!(r.accepts(0.01), "n={n}: {r}");
        }
    }

    #[test]
    fn weibull_sampler_matches_its_cdf() {
        let d = Dist::weibull(1.7, 4.0);
        let mut rng = SimRng::seed_from_u64(8);
        let sample: Vec<f64> = (0..4_000).map(|_| d.sample(&mut rng)).collect();
        let r = ks_test(&sample, |x| 1.0 - (-(x / 4.0).powf(1.7)).exp());
        assert!(r.accepts(0.01), "{r}");
    }

    #[test]
    fn hyper_exponential_sampler_matches_its_cdf() {
        let d = Dist::hyper_exponential(0.4, 2.0, 0.2);
        let mut rng = SimRng::seed_from_u64(9);
        let sample: Vec<f64> = (0..4_000).map(|_| d.sample(&mut rng)).collect();
        let r = ks_test(&sample, |x| {
            0.4 * (1.0 - (-2.0 * x).exp()) + 0.6 * (1.0 - (-0.2 * x).exp())
        });
        assert!(r.accepts(0.01), "{r}");
    }

    #[test]
    fn ks_display() {
        let r = KsResult {
            statistic: 0.0123,
            p_value: 0.45,
            n: 100,
        };
        let s = r.to_string();
        assert!(s.contains("0.0123"));
        assert!(s.contains("n=100"));
    }
}
