//! Continuous-time Markov chain utilities.
//!
//! Two pieces:
//!
//! * a small dense **steady-state solver** for irreducible CTMCs
//!   (`πQ = 0`, `Σπ = 1` by Gaussian elimination), and
//! * [`BirthDeathCorrelation`] — the paper's Figure-3 birth–death process
//!   of correlated failures due to error propagation, with the
//!   closed-form relations between the conditional failure probability
//!   `p` and the `frate_correlated_factor` `r`:
//!
//!   ```text
//!   p = λc / (λc + µ)            ⇒  λc = pµ/(1−p)
//!   λc = λi + r·n·λ = n·λ(1+r)   ⇒  r  = pµ/((1−p)·n·λ) − 1
//!   ```
//!
//!   For the paper's example (n = 1024, p = 0.3, MTTR = 10 min,
//!   MTTF = 25 y) this gives r ≈ 600, which is verified in the tests and
//!   cross-checked against the numeric steady-state solver.

use std::fmt;

/// Error from the CTMC steady-state solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CtmcError {
    /// The generator matrix was not square or was empty.
    BadShape,
    /// Rows of a generator must sum to zero (within tolerance).
    NotAGenerator {
        /// Index of the offending row.
        row: usize,
    },
    /// Elimination hit a (numerically) singular system, e.g. a reducible
    /// chain.
    Singular,
}

impl fmt::Display for CtmcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtmcError::BadShape => write!(f, "generator matrix must be square and non-empty"),
            CtmcError::NotAGenerator { row } => {
                write!(f, "row {row} of the generator does not sum to zero")
            }
            CtmcError::Singular => write!(f, "singular system: chain may be reducible"),
        }
    }
}

impl std::error::Error for CtmcError {}

/// Solves `πQ = 0, Σπ = 1` for an irreducible CTMC given its generator
/// `q` in row-major order (`q[i][j]` = rate i→j for i≠j, diagonal =
/// −row-sum).
///
/// # Errors
///
/// Returns [`CtmcError`] when the matrix is not a valid generator or the
/// system is singular.
///
/// # Example
///
/// ```
/// // Two-state machine: up --(0.1)--> down, down --(0.9)--> up.
/// let q = vec![vec![-0.1, 0.1], vec![0.9, -0.9]];
/// let pi = ckpt_stats::markov::steady_state(&q)?;
/// assert!((pi[0] - 0.9).abs() < 1e-12);
/// assert!((pi[1] - 0.1).abs() < 1e-12);
/// # Ok::<(), ckpt_stats::CtmcError>(())
/// ```
pub fn steady_state(q: &[Vec<f64>]) -> Result<Vec<f64>, CtmcError> {
    let n = q.len();
    if n == 0 || q.iter().any(|row| row.len() != n) {
        return Err(CtmcError::BadShape);
    }
    for (i, row) in q.iter().enumerate() {
        let sum: f64 = row.iter().sum();
        let scale: f64 = row.iter().map(|x| x.abs()).sum::<f64>().max(1.0);
        if sum.abs() > 1e-9 * scale {
            return Err(CtmcError::NotAGenerator { row: i });
        }
    }

    // Build A = Qᵀ with the last balance equation replaced by Σπ = 1.
    let mut a = vec![vec![0.0; n + 1]; n];
    for (i, row) in a.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().take(n).enumerate() {
            *cell = q[j][i];
        }
    }
    for cell in a[n - 1].iter_mut() {
        *cell = 1.0;
    }

    // Gaussian elimination with partial pivoting.
    for col in 0..n {
        let pivot = (col..n)
            .max_by(|&r1, &r2| {
                a[r1][col]
                    .abs()
                    .partial_cmp(&a[r2][col].abs())
                    .expect("pivot magnitudes are never NaN")
            })
            .expect("non-empty pivot range");
        if a[pivot][col].abs() < 1e-14 {
            return Err(CtmcError::Singular);
        }
        a.swap(col, pivot);
        for row in 0..n {
            if row != col {
                let factor = a[row][col] / a[col][col];
                if factor != 0.0 {
                    let pivot_row = a[col].clone();
                    for (cell, pv) in a[row][col..=n].iter_mut().zip(&pivot_row[col..=n]) {
                        *cell -= factor * pv;
                    }
                }
            }
        }
    }
    let mut pi: Vec<f64> = (0..n).map(|i| a[i][n] / a[i][i]).collect();
    // Clean tiny negative round-off and renormalize.
    for p in &mut pi {
        if *p < 0.0 && *p > -1e-10 {
            *p = 0.0;
        }
    }
    let total: f64 = pi.iter().sum();
    if !(total.is_finite() && total > 0.0) {
        return Err(CtmcError::Singular);
    }
    for p in &mut pi {
        *p /= total;
    }
    Ok(pi)
}

/// The paper's Figure-3 birth–death process of correlated failures due to
/// error propagation, parameterized by the number of nodes `n`, the
/// per-node independent failure rate `λ` and the recovery rate `µ`.
///
/// State `F_i` means "i failures have occurred before a successful
/// recovery"; every state recovers directly to `F_0` at rate µ, failures
/// escalate `F_i → F_{i+1}` at the correlated rate `λc` (i ≥ 1) and
/// `F_0 → F_1` at the system-wide independent rate `λi = n·λ`.
///
/// # Example
///
/// The paper's calibration point — 1024 nodes, conditional probability
/// 0.3, MTTR 10 min, MTTF 25 y — yields a correlated-failure factor of
/// about 600:
///
/// ```
/// use ckpt_stats::BirthDeathCorrelation;
///
/// let bd = BirthDeathCorrelation::new(
///     1024,
///     1.0 / (25.0 * 8766.0 * 3600.0), // λ: 25-year per-node MTTF, in 1/s
///     1.0 / 600.0,                    // µ: 10-minute MTTR, in 1/s
/// );
/// let r = bd.factor_from_conditional_probability(0.3);
/// // exact value ≈ 549; the paper rounds to "about 600"
/// assert!((r - 600.0).abs() / 600.0 < 0.15, "r = {r}");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BirthDeathCorrelation {
    n: u64,
    lambda: f64,
    mu: f64,
}

impl BirthDeathCorrelation {
    /// Creates the process for `n` nodes with per-node failure rate
    /// `lambda` and recovery rate `mu` (all rates in the same time unit).
    ///
    /// # Panics
    ///
    /// Panics unless `n ≥ 1` and both rates are positive and finite.
    #[must_use]
    pub fn new(n: u64, lambda: f64, mu: f64) -> BirthDeathCorrelation {
        assert!(n >= 1, "need at least one node");
        assert!(
            lambda.is_finite() && lambda > 0.0,
            "per-node failure rate must be positive, got {lambda}"
        );
        assert!(
            mu.is_finite() && mu > 0.0,
            "recovery rate must be positive, got {mu}"
        );
        BirthDeathCorrelation { n, lambda, mu }
    }

    /// System-wide independent failure rate `λi = n·λ`.
    #[must_use]
    pub fn independent_rate(&self) -> f64 {
        self.n as f64 * self.lambda
    }

    /// Correlated (escalation) rate `λc` implied by a conditional
    /// probability `p` of another failure following a failure:
    /// `λc = pµ/(1−p)`.
    ///
    /// # Panics
    ///
    /// Panics unless `p ∈ [0, 1)`.
    #[must_use]
    pub fn correlated_rate_from_probability(&self, p: f64) -> f64 {
        assert!((0.0..1.0).contains(&p), "p must be in [0,1), got {p}");
        p * self.mu / (1.0 - p)
    }

    /// The `frate_correlated_factor` `r` such that `λc = n·λ·(1+r)`,
    /// i.e. `r = pµ/((1−p)·n·λ) − 1` (Section 6 of the paper).
    ///
    /// # Panics
    ///
    /// Panics unless `p ∈ [0, 1)`.
    #[must_use]
    pub fn factor_from_conditional_probability(&self, p: f64) -> f64 {
        self.correlated_rate_from_probability(p) / self.independent_rate() - 1.0
    }

    /// Inverse of [`Self::factor_from_conditional_probability`]: the
    /// conditional probability implied by a factor `r`,
    /// `p = λc/(λc + µ)` with `λc = n·λ·(1+r)`.
    ///
    /// # Panics
    ///
    /// Panics if `r < 0`.
    #[must_use]
    pub fn conditional_probability_from_factor(&self, r: f64) -> f64 {
        assert!(r >= 0.0, "factor must be non-negative, got {r}");
        let lambda_c = self.independent_rate() * (1.0 + r);
        lambda_c / (lambda_c + self.mu)
    }

    /// Builds the truncated generator matrix with states `F_0..F_k`
    /// (escalation out of `F_k` is dropped), suitable for
    /// [`steady_state`]. Used to cross-check the closed forms numerically.
    #[must_use]
    pub fn generator(&self, p: f64, k: usize) -> Vec<Vec<f64>> {
        let lambda_i = self.independent_rate();
        let lambda_c = self.correlated_rate_from_probability(p);
        let n = k + 1;
        let mut q = vec![vec![0.0; n]; n];
        for i in 0..n {
            if i > 0 {
                q[i][0] += self.mu; // recovery wipes all latent errors
            }
            let birth = if i == 0 { lambda_i } else { lambda_c };
            if i + 1 < n {
                q[i][i + 1] += birth;
            }
            let row_sum: f64 = q[i].iter().sum::<f64>() - q[i][i];
            q[i][i] = -row_sum;
        }
        q
    }

    /// Expected number of failures per successful recovery when the
    /// conditional probability is `p`: the burst length `1/(1−p)`.
    #[must_use]
    pub fn expected_burst_length(&self, p: f64) -> f64 {
        assert!((0.0..1.0).contains(&p), "p must be in [0,1), got {p}");
        1.0 / (1.0 - p)
    }
}

/// Transient state probabilities `π(t) = π(0)·e^{Qt}` of a CTMC by
/// **uniformization** (Jensen's method): with `Λ ≥ max|q_ii|` and
/// `P = I + Q/Λ`,
///
/// ```text
/// π(t) = Σ_{k≥0} e^{−Λt} (Λt)^k / k! · π(0) P^k
/// ```
///
/// truncated when the accumulated Poisson weight exceeds `1 − 1e-12`.
///
/// # Errors
///
/// Returns [`CtmcError`] if `q` is not a valid generator or the initial
/// distribution does not sum to 1.
///
/// # Example
///
/// ```
/// // Two-state repair model: closed form for P(up at t) is
/// // µ/(λ+µ) + λ/(λ+µ)·e^{−(λ+µ)t} starting from up.
/// let (lam, mu) = (0.1, 0.9);
/// let q = vec![vec![-lam, lam], vec![mu, -mu]];
/// let pi = ckpt_stats::markov::transient(&q, &[1.0, 0.0], 2.0)?;
/// let expect = mu / (lam + mu) + lam / (lam + mu) * (-(lam + mu) * 2.0f64).exp();
/// assert!((pi[0] - expect).abs() < 1e-9);
/// # Ok::<(), ckpt_stats::CtmcError>(())
/// ```
pub fn transient(q: &[Vec<f64>], initial: &[f64], t: f64) -> Result<Vec<f64>, CtmcError> {
    let n = q.len();
    if n == 0 || q.iter().any(|row| row.len() != n) || initial.len() != n {
        return Err(CtmcError::BadShape);
    }
    for (i, row) in q.iter().enumerate() {
        let sum: f64 = row.iter().sum();
        let scale: f64 = row.iter().map(|x| x.abs()).sum::<f64>().max(1.0);
        if sum.abs() > 1e-9 * scale {
            return Err(CtmcError::NotAGenerator { row: i });
        }
    }
    let total: f64 = initial.iter().sum();
    if (total - 1.0).abs() > 1e-9 || initial.iter().any(|&p| p < 0.0) {
        return Err(CtmcError::BadShape);
    }
    if t <= 0.0 {
        return Ok(initial.to_vec());
    }

    // Uniformization rate.
    let lambda = q
        .iter()
        .enumerate()
        .map(|(i, row)| row[i].abs())
        .fold(0.0f64, f64::max)
        .max(1e-300);
    // P = I + Q/Λ (row-stochastic).
    let p: Vec<Vec<f64>> = q
        .iter()
        .enumerate()
        .map(|(i, row)| {
            row.iter()
                .enumerate()
                .map(|(j, &v)| if i == j { 1.0 + v / lambda } else { v / lambda })
                .collect()
        })
        .collect();

    let lt = lambda * t;
    // Poisson weights computed iteratively; start in log space to avoid
    // underflow of e^{−Λt} for large Λt.
    let mut result = vec![0.0; n];
    let mut v = initial.to_vec(); // π(0) P^k
    let mut log_weight = -lt; // ln of e^{−Λt} (Λt)^0 / 0!
    let mut accumulated = 0.0;
    let max_terms = (lt + 10.0 * lt.sqrt() + 50.0) as usize;
    for k in 0..=max_terms {
        let w = log_weight.exp();
        if w > 0.0 {
            for (r, &x) in result.iter_mut().zip(&v) {
                *r += w * x;
            }
            accumulated += w;
            if accumulated > 1.0 - 1e-12 {
                break;
            }
        }
        // v ← v P
        let mut next = vec![0.0; n];
        for (i, &vi) in v.iter().enumerate() {
            if vi != 0.0 {
                for (nj, &pij) in next.iter_mut().zip(&p[i]) {
                    *nj += vi * pij;
                }
            }
        }
        v = next;
        log_weight += lt.ln() - ((k + 1) as f64).ln();
    }
    // Renormalize the truncation remainder.
    if accumulated > 0.0 {
        for r in &mut result {
            *r /= accumulated;
        }
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SECS_PER_YEAR: f64 = 8766.0 * 3600.0;

    #[test]
    fn two_state_steady_state() {
        let q = vec![vec![-0.1, 0.1], vec![0.9, -0.9]];
        let pi = steady_state(&q).unwrap();
        assert!((pi[0] - 0.9).abs() < 1e-12);
        assert!((pi[1] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn mm1_queue_truncated() {
        // M/M/1/K with λ=1, µ=2, K=10: π_i ∝ (1/2)^i.
        let k = 10;
        let mut q = vec![vec![0.0; k + 1]; k + 1];
        for i in 0..=k {
            if i < k {
                q[i][i + 1] = 1.0;
            }
            if i > 0 {
                q[i][i - 1] = 2.0;
            }
            let s: f64 = q[i].iter().sum::<f64>() - q[i][i];
            q[i][i] = -s;
        }
        let pi = steady_state(&q).unwrap();
        let rho: f64 = 0.5;
        let norm: f64 = (0..=k).map(|i| rho.powi(i as i32)).sum();
        for (i, &p) in pi.iter().enumerate() {
            let expect = rho.powi(i as i32) / norm;
            assert!((p - expect).abs() < 1e-10, "state {i}: {p} vs {expect}");
        }
    }

    #[test]
    fn solver_rejects_bad_shapes() {
        assert_eq!(steady_state(&[]).unwrap_err(), CtmcError::BadShape);
        let ragged = vec![vec![-1.0, 1.0], vec![0.0]];
        assert_eq!(steady_state(&ragged).unwrap_err(), CtmcError::BadShape);
    }

    #[test]
    fn solver_rejects_non_generator() {
        let q = vec![vec![-0.1, 0.5], vec![0.9, -0.9]];
        assert!(matches!(
            steady_state(&q).unwrap_err(),
            CtmcError::NotAGenerator { row: 0 }
        ));
    }

    #[test]
    fn solver_rejects_reducible_chain() {
        // Two absorbing states → singular.
        let q = vec![vec![0.0, 0.0], vec![0.0, 0.0]];
        assert_eq!(steady_state(&q).unwrap_err(), CtmcError::Singular);
    }

    #[test]
    fn paper_calibration_point_gives_r_about_600() {
        // n=1024, p=0.3, MTTR=10 min, MTTF=25 y  ⇒  r ≈ 600 (paper §6).
        let bd = BirthDeathCorrelation::new(1024, 1.0 / (25.0 * SECS_PER_YEAR), 1.0 / 600.0);
        let r = bd.factor_from_conditional_probability(0.3);
        // The exact value is ≈549.2; the paper quotes "about 600".
        assert!(
            (500.0..650.0).contains(&r),
            "expected r ≈ 600 per the paper, got {r}"
        );
        assert!((r - 549.2).abs() < 1.0, "pinned exact value, got {r}");
    }

    #[test]
    fn probability_factor_round_trip() {
        let bd = BirthDeathCorrelation::new(4096, 1.0 / SECS_PER_YEAR, 1.0 / 600.0);
        for p in [0.05, 0.1, 0.3, 0.5, 0.9] {
            let r = bd.factor_from_conditional_probability(p);
            if r >= 0.0 {
                let p2 = bd.conditional_probability_from_factor(r);
                assert!((p - p2).abs() < 1e-12, "p={p} round-tripped to {p2}");
            }
        }
    }

    #[test]
    fn closed_form_matches_numeric_steady_state() {
        // In the truncated chain, p should equal the fraction of
        // F_1-departures that escalate rather than recover; equivalently
        // the stationary odds π_{i+1}/π_i = λc/(λc+µ) for i ≥ 1.
        let bd = BirthDeathCorrelation::new(1024, 1.0 / SECS_PER_YEAR, 1.0 / 600.0);
        let p = 0.3;
        let q = bd.generator(p, 12);
        let pi = steady_state(&q).unwrap();
        for i in 1..10 {
            let ratio = pi[i + 1] / pi[i];
            assert!(
                (ratio - p).abs() < 1e-6,
                "π_{}/π_{} = {ratio}, expected {p}",
                i + 1,
                i
            );
        }
    }

    #[test]
    fn burst_length() {
        let bd = BirthDeathCorrelation::new(2, 1.0, 1.0);
        assert_eq!(bd.expected_burst_length(0.0), 1.0);
        assert!((bd.expected_burst_length(0.5) - 2.0).abs() < 1e-12);
        assert!((bd.expected_burst_length(0.9) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn transient_matches_two_state_closed_form() {
        let (lam, mu) = (0.3, 1.7);
        let q = vec![vec![-lam, lam], vec![mu, -mu]];
        for t in [0.1, 0.5, 1.0, 5.0, 50.0] {
            let pi = transient(&q, &[1.0, 0.0], t).unwrap();
            let expect = mu / (lam + mu) + lam / (lam + mu) * (-(lam + mu) * t).exp();
            assert!(
                (pi[0] - expect).abs() < 1e-9,
                "t={t}: {} vs {expect}",
                pi[0]
            );
            assert!((pi[0] + pi[1] - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn transient_converges_to_steady_state() {
        let q = vec![
            vec![-0.5, 0.3, 0.2],
            vec![0.1, -0.4, 0.3],
            vec![0.6, 0.2, -0.8],
        ];
        let pi_t = transient(&q, &[0.0, 1.0, 0.0], 200.0).unwrap();
        let pi_inf = steady_state(&q).unwrap();
        for (a, b) in pi_t.iter().zip(&pi_inf) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }

    #[test]
    fn transient_at_zero_is_initial() {
        let q = vec![vec![-1.0, 1.0], vec![1.0, -1.0]];
        let pi = transient(&q, &[0.25, 0.75], 0.0).unwrap();
        assert_eq!(pi, vec![0.25, 0.75]);
    }

    #[test]
    fn transient_handles_stiff_rates() {
        // Λt ≈ 1e4: the log-space Poisson weights must not underflow.
        let q = vec![vec![-100.0, 100.0], vec![900.0, -900.0]];
        let pi = transient(&q, &[1.0, 0.0], 10.0).unwrap();
        assert!((pi[0] - 0.9).abs() < 1e-6, "{}", pi[0]);
    }

    #[test]
    fn transient_rejects_bad_inputs() {
        let q = vec![vec![-1.0, 1.0], vec![1.0, -1.0]];
        assert!(
            transient(&q, &[0.5, 0.4], 1.0).is_err(),
            "not a distribution"
        );
        assert!(transient(&q, &[1.0], 1.0).is_err(), "wrong length");
        let bad = vec![vec![-1.0, 2.0], vec![1.0, -1.0]];
        assert!(transient(&bad, &[1.0, 0.0], 1.0).is_err());
    }

    #[test]
    fn error_display() {
        assert!(CtmcError::BadShape.to_string().contains("square"));
        assert!(CtmcError::NotAGenerator { row: 3 }
            .to_string()
            .contains('3'));
        assert!(CtmcError::Singular.to_string().contains("singular"));
    }
}
