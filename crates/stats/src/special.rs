//! Special functions used by the distributions and analytic models.

/// Euler–Mascheroni constant.
pub const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;

/// `n`-th harmonic number `H_n = Σ_{k=1..n} 1/k`.
///
/// Exact summation is used up to `n = 1_000_000`; beyond that the
/// asymptotic expansion `ln n + γ + 1/(2n) − 1/(12n²)` is used, whose
/// absolute error at the switch-over point is below 1e-25. This keeps the
/// function O(1) for the paper's Figure-5 sweep up to 10⁹ processors.
///
/// # Example
///
/// ```
/// let h4 = ckpt_stats::special::harmonic(4);
/// assert!((h4 - (1.0 + 0.5 + 1.0 / 3.0 + 0.25)).abs() < 1e-12);
/// ```
#[must_use]
pub fn harmonic(n: u64) -> f64 {
    if n == 0 {
        return 0.0;
    }
    if n <= 1_000_000 {
        // Sum smallest-first for floating-point accuracy.
        let mut acc = 0.0;
        for k in (1..=n).rev() {
            acc += 1.0 / k as f64;
        }
        acc
    } else {
        let x = n as f64;
        x.ln() + EULER_GAMMA + 1.0 / (2.0 * x) - 1.0 / (12.0 * x * x)
    }
}

/// Generalized harmonic number of order 2, `H_n^{(2)} = Σ 1/k²`,
/// used for the variance of the maximum of `n` exponentials:
/// `Var[Y] = H_n^{(2)} / λ²`.
#[must_use]
pub fn harmonic2(n: u64) -> f64 {
    const PI2_OVER_6: f64 = std::f64::consts::PI * std::f64::consts::PI / 6.0;
    if n == 0 {
        return 0.0;
    }
    if n <= 1_000_000 {
        let mut acc = 0.0;
        for k in (1..=n).rev() {
            let kf = k as f64;
            acc += 1.0 / (kf * kf);
        }
        acc
    } else {
        // ζ(2) − tail; tail ≈ 1/n − 1/(2n²) + 1/(6n³).
        let x = n as f64;
        PI2_OVER_6 - (1.0 / x - 1.0 / (2.0 * x * x) + 1.0 / (6.0 * x * x * x))
    }
}

/// Natural log of the gamma function (Lanczos approximation, |ε| < 1e-13
/// for positive arguments), used by the Weibull/Erlang moments.
#[must_use]
pub fn ln_gamma(x: f64) -> f64 {
    // Lanczos g=7, n=9 coefficients.
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        pi.ln() - (pi * x).sin().ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut a = COEFFS[0];
        let t = x + 7.5;
        for (i, &c) in COEFFS.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
    }
}

/// Gamma function for positive arguments.
#[must_use]
pub fn gamma(x: f64) -> f64 {
    ln_gamma(x).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harmonic_small_values() {
        assert_eq!(harmonic(0), 0.0);
        assert_eq!(harmonic(1), 1.0);
        assert!((harmonic(2) - 1.5).abs() < 1e-15);
        assert!((harmonic(10) - 2.928_968_253_968_254).abs() < 1e-12);
    }

    #[test]
    fn harmonic_asymptotic_matches_exact_at_switchover() {
        let n = 1_000_000u64;
        let exact = harmonic(n);
        let x = n as f64;
        let asym = x.ln() + EULER_GAMMA + 1.0 / (2.0 * x) - 1.0 / (12.0 * x * x);
        assert!((exact - asym).abs() < 1e-10, "exact {exact} vs asym {asym}");
    }

    #[test]
    fn harmonic_is_monotone_across_switchover() {
        assert!(harmonic(1_000_001) > harmonic(1_000_000));
        assert!(harmonic(2_000_000) > harmonic(1_000_001));
    }

    #[test]
    fn harmonic2_converges_to_zeta2() {
        let h = harmonic2(100_000_000);
        let zeta2 = std::f64::consts::PI * std::f64::consts::PI / 6.0;
        assert!((h - zeta2).abs() < 1e-7);
    }

    #[test]
    fn harmonic2_small_values() {
        assert!((harmonic2(1) - 1.0).abs() < 1e-15);
        assert!((harmonic2(2) - 1.25).abs() < 1e-15);
        assert!((harmonic2(3) - (1.0 + 0.25 + 1.0 / 9.0)).abs() < 1e-14);
    }

    #[test]
    fn gamma_matches_factorials() {
        for n in 1..10u64 {
            let fact: f64 = (1..n).map(|k| k as f64).product();
            assert!(
                (gamma(n as f64) - fact).abs() / fact < 1e-10,
                "gamma({n}) = {} expected {fact}",
                gamma(n as f64)
            );
        }
    }

    #[test]
    fn gamma_half() {
        let sqrt_pi = std::f64::consts::PI.sqrt();
        assert!((gamma(0.5) - sqrt_pi).abs() < 1e-10);
        assert!((gamma(1.5) - 0.5 * sqrt_pi).abs() < 1e-10);
    }
}
