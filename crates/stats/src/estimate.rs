//! Online estimators and confidence intervals.
//!
//! The paper estimates steady-state measures by simulation "with an
//! initial transient period of 1000 hours" at "95 % confidence". This
//! module provides the matching machinery: Welford single-pass moments,
//! Student-t confidence intervals, batch means for single long runs, and
//! a replication aggregator for independent runs.

use std::fmt;

/// Single-pass (Welford) accumulator for mean and variance.
///
/// # Example
///
/// ```
/// use ckpt_stats::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> OnlineStats {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance.
    ///
    /// # Degenerate cases
    ///
    /// With fewer than two observations the sample variance is
    /// undefined (the `n − 1` denominator vanishes); this returns `0.0`
    /// rather than NaN so downstream interval arithmetic stays finite.
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    ///
    /// # Degenerate cases
    ///
    /// Returns `0.0` for fewer than two observations (the guard on the
    /// empty set avoids `0/0 = NaN`; a single observation inherits the
    /// zero [`variance`](Self::variance)).
    #[must_use]
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Smallest observation (`+inf` when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`−inf` when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Two-sided confidence interval for the mean at the given level
    /// using the Student-t distribution (e.g. `0.95`).
    ///
    /// With fewer than two observations the interval is degenerate
    /// (half-width 0).
    #[must_use]
    pub fn confidence_interval(&self, level: f64) -> ConfidenceInterval {
        let half = if self.count < 2 {
            0.0
        } else {
            t_critical(level, self.count - 1) * self.std_error()
        };
        ConfidenceInterval {
            mean: self.mean(),
            half_width: half,
            level,
            count: self.count,
        }
    }

    /// Raw accumulator state `(count, mean, M2, min, max)` — the exact
    /// Welford internals, exposed so a checkpointing harness can
    /// persist an in-flight estimate and later restore it
    /// bit-identically with [`OnlineStats::from_state`].
    #[must_use]
    pub fn state(&self) -> (u64, f64, f64, f64, f64) {
        (self.count, self.mean, self.m2, self.min, self.max)
    }

    /// Rebuilds an accumulator from state captured by
    /// [`OnlineStats::state`]. The restored accumulator continues the
    /// original Welford recurrence exactly: pushing the same subsequent
    /// observations yields bit-identical moments.
    #[must_use]
    pub fn from_state(count: u64, mean: f64, m2: f64, min: f64, max: f64) -> OnlineStats {
        OnlineStats {
            count,
            mean,
            m2,
            min,
            max,
        }
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A symmetric confidence interval `mean ± half_width`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate.
    pub mean: f64,
    /// Half-width of the interval.
    pub half_width: f64,
    /// Confidence level the interval was built for (e.g. 0.95).
    pub level: f64,
    /// Number of observations behind the estimate.
    pub count: u64,
}

impl ConfidenceInterval {
    /// Lower bound.
    #[must_use]
    pub fn low(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper bound.
    #[must_use]
    pub fn high(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Relative half-width `half_width / |mean|` — the usual stopping
    /// criterion for sequential simulation.
    ///
    /// # Degenerate cases
    ///
    /// A zero or non-finite mean has no meaningful relative precision;
    /// both return `+inf` ("not precise enough" for any threshold)
    /// rather than letting `0/0` or `x/NaN` leak NaN into stopping
    /// rules, where every `<` comparison would silently hold.
    #[must_use]
    pub fn relative_half_width(&self) -> f64 {
        if self.mean == 0.0 || !self.mean.is_finite() {
            f64::INFINITY
        } else {
            self.half_width / self.mean.abs()
        }
    }

    /// True if `value` lies inside the interval.
    #[must_use]
    pub fn contains(&self, value: f64) -> bool {
        value >= self.low() && value <= self.high()
    }
}

impl fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.6} ± {:.6} ({}% CI, n={})",
            self.mean,
            self.half_width,
            self.level * 100.0,
            self.count
        )
    }
}

/// Aggregates the per-replication means of independent simulation runs —
/// the estimation procedure used for every figure in the paper.
///
/// # Example
///
/// ```
/// use ckpt_stats::Replications;
///
/// let mut reps = Replications::new();
/// for m in [0.52, 0.55, 0.53, 0.54, 0.51] {
///     reps.push(m);
/// }
/// let ci = reps.confidence_interval(0.95);
/// assert!(ci.contains(0.53));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Replications {
    stats: OnlineStats,
    values: Vec<f64>,
}

impl Replications {
    /// Creates an empty set.
    #[must_use]
    pub fn new() -> Replications {
        Replications::default()
    }

    /// Records the summary value of one replication.
    pub fn push(&mut self, replicate_mean: f64) {
        self.stats.push(replicate_mean);
        self.values.push(replicate_mean);
    }

    /// Number of replications recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.stats.count()
    }

    /// Grand mean across replications.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.stats.mean()
    }

    /// The recorded per-replication values.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Confidence interval across replications.
    #[must_use]
    pub fn confidence_interval(&self, level: f64) -> ConfidenceInterval {
        self.stats.confidence_interval(level)
    }
}

impl FromIterator<f64> for Replications {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Replications {
        let mut r = Replications::new();
        for x in iter {
            r.push(x);
        }
        r
    }
}

impl Extend<f64> for Replications {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

/// Batch-means estimator for a single long steady-state run: the
/// observation stream is cut into `batch_size`-long batches whose means
/// are treated as (approximately) independent.
#[derive(Debug, Clone)]
pub struct BatchMeans {
    batch_size: u64,
    current_sum: f64,
    current_count: u64,
    batches: OnlineStats,
}

impl BatchMeans {
    /// Creates an estimator with the given batch size (observations per
    /// batch). A batch size of zero saturates to 1 — an estimator that
    /// can never complete a batch would silently report an empty,
    /// zero-width interval forever.
    #[must_use]
    pub fn new(batch_size: u64) -> BatchMeans {
        BatchMeans {
            batch_size: batch_size.max(1),
            current_sum: 0.0,
            current_count: 0,
            batches: OnlineStats::new(),
        }
    }

    /// Adds one observation; completes a batch every `batch_size` pushes.
    pub fn push(&mut self, x: f64) {
        self.current_sum += x;
        self.current_count += 1;
        if self.current_count == self.batch_size {
            self.batches.push(self.current_sum / self.batch_size as f64);
            self.current_sum = 0.0;
            self.current_count = 0;
        }
    }

    /// Number of completed batches.
    #[must_use]
    pub fn batch_count(&self) -> u64 {
        self.batches.count()
    }

    /// Mean over completed batches.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.batches.mean()
    }

    /// Confidence interval over completed batch means.
    #[must_use]
    pub fn confidence_interval(&self, level: f64) -> ConfidenceInterval {
        self.batches.confidence_interval(level)
    }
}

/// Lag-`k` sample autocorrelation of a series (biased estimator,
/// denominator `n`), used to diagnose residual correlation between batch
/// means: values near 0 mean the batches behave independently, values
/// near 1 mean the batch size is too small for the confidence interval
/// to be trusted.
///
/// Returns 0 for series shorter than `k + 2` or with zero variance.
///
/// # Example
///
/// ```
/// use ckpt_stats::estimate::autocorrelation;
///
/// let alternating = [1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0];
/// assert!(autocorrelation(&alternating, 1) < -0.8);
/// let constant_trend = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
/// assert!(autocorrelation(&constant_trend, 1) > 0.5);
/// ```
#[must_use]
pub fn autocorrelation(series: &[f64], k: usize) -> f64 {
    let n = series.len();
    if n < k + 2 {
        return 0.0;
    }
    let mean = series.iter().sum::<f64>() / n as f64;
    let var: f64 = series.iter().map(|x| (x - mean) * (x - mean)).sum();
    if var <= 0.0 {
        return 0.0;
    }
    let cov: f64 = series[..n - k]
        .iter()
        .zip(&series[k..])
        .map(|(a, b)| (a - mean) * (b - mean))
        .sum();
    cov / var
}

/// Two-sided Student-t critical value `t_{(1+level)/2, df}`.
///
/// Exact tabulation for small degrees of freedom at the three standard
/// levels (0.90 / 0.95 / 0.99, interpolated otherwise), falling back to
/// the normal quantile plus the Cornish–Fisher `O(1/df)` correction for
/// larger `df` — accurate to ~1e-3, far below simulation noise.
#[must_use]
pub fn t_critical(level: f64, df: u64) -> f64 {
    assert!(
        (0.5..1.0).contains(&level),
        "confidence level must be in [0.5, 1), got {level}"
    );
    let z = normal_quantile(0.5 + level / 2.0);
    if df == 0 {
        return f64::INFINITY;
    }
    // Rows: df 1..=30; columns: level 0.90, 0.95, 0.99.
    const TABLE: [[f64; 3]; 30] = [
        [6.314, 12.706, 63.657],
        [2.920, 4.303, 9.925],
        [2.353, 3.182, 5.841],
        [2.132, 2.776, 4.604],
        [2.015, 2.571, 4.032],
        [1.943, 2.447, 3.707],
        [1.895, 2.365, 3.499],
        [1.860, 2.306, 3.355],
        [1.833, 2.262, 3.250],
        [1.812, 2.228, 3.169],
        [1.796, 2.201, 3.106],
        [1.782, 2.179, 3.055],
        [1.771, 2.160, 3.012],
        [1.761, 2.145, 2.977],
        [1.753, 2.131, 2.947],
        [1.746, 2.120, 2.921],
        [1.740, 2.110, 2.898],
        [1.734, 2.101, 2.878],
        [1.729, 2.093, 2.861],
        [1.725, 2.086, 2.845],
        [1.721, 2.080, 2.831],
        [1.717, 2.074, 2.819],
        [1.714, 2.069, 2.807],
        [1.711, 2.064, 2.797],
        [1.708, 2.060, 2.787],
        [1.706, 2.056, 2.779],
        [1.703, 2.052, 2.771],
        [1.701, 2.048, 2.763],
        [1.699, 2.045, 2.756],
        [1.697, 2.042, 2.750],
    ];
    if df <= 30 {
        let row = TABLE[(df - 1) as usize];
        // Piecewise-linear interpolation in the level dimension.
        let (levels, values) = ([0.90, 0.95, 0.99], row);
        if level <= levels[0] {
            return values[0] * z / normal_quantile(0.5 + levels[0] / 2.0);
        }
        if level >= levels[2] {
            return values[2] * z / normal_quantile(0.5 + levels[2] / 2.0);
        }
        let (i, j) = if level <= levels[1] { (0, 1) } else { (1, 2) };
        let w = (level - levels[i]) / (levels[j] - levels[i]);
        return values[i] + w * (values[j] - values[i]);
    }
    // Cornish–Fisher expansion of the t quantile around the normal one.
    let d = df as f64;
    z + (z * z * z + z) / (4.0 * d)
}

/// Standard normal quantile via the Acklam rational approximation
/// (|relative error| < 1.15e-9 over the open unit interval).
#[must_use]
pub fn normal_quantile(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "normal quantile needs p in (0,1), got {p}"
    );
    const A: [f64; 6] = [
        -39.696_830_286_653_76,
        220.946_098_424_520_8,
        -275.928_510_446_969_1,
        138.357_751_867_269,
        -30.664_798_066_147_16,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -54.476_098_798_224_06,
        161.585_836_858_040_9,
        -155.698_979_859_886_6,
        66.801_311_887_719_72,
        -13.280_681_552_885_72,
    ];
    const C: [f64; 6] = [
        -0.007_784_894_002_430_293,
        -0.322_396_458_041_136_4,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        0.007_784_695_709_041_462,
        0.322_467_129_070_039_8,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    const P_HIGH: f64 = 1.0 - P_LOW;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass() {
        let data = [1.0, 2.5, 3.7, -4.0, 5.5, 0.0, 2.2];
        let mut s = OnlineStats::new();
        for &x in &data {
            s.push(x);
        }
        let n = data.len() as f64;
        let mean = data.iter().sum::<f64>() / n;
        let var = data.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.variance() - var).abs() < 1e-12);
        assert_eq!(s.min(), -4.0);
        assert_eq!(s.max(), 5.5);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_error(), 0.0);
        let ci = s.confidence_interval(0.95);
        assert_eq!(ci.half_width, 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = OnlineStats::new();
        for &x in &data {
            all.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &data[..37] {
            a.push(x);
        }
        for &x in &data[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.variance() - all.variance()).abs() < 1e-10);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(2.0);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);

        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn state_round_trip_is_bit_identical() {
        let mut s = OnlineStats::new();
        for i in 0..17 {
            s.push((f64::from(i)).cos() * 3.5);
        }
        let (count, mean, m2, min, max) = s.state();
        let mut restored = OnlineStats::from_state(count, mean, m2, min, max);
        assert_eq!(restored, s);
        // The recurrence continues exactly from the restored state.
        s.push(0.25);
        restored.push(0.25);
        assert_eq!(restored.state(), s.state());
        assert_eq!(restored.mean().to_bits(), s.mean().to_bits());
    }

    #[test]
    fn normal_quantile_known_values() {
        assert!((normal_quantile(0.975) - 1.959_964).abs() < 1e-5);
        assert!((normal_quantile(0.95) - 1.644_854).abs() < 1e-5);
        assert!((normal_quantile(0.5)).abs() < 1e-9);
        assert!((normal_quantile(0.025) + 1.959_964).abs() < 1e-5);
    }

    #[test]
    fn t_critical_matches_tables() {
        assert!((t_critical(0.95, 1) - 12.706).abs() < 1e-3);
        assert!((t_critical(0.95, 9) - 2.262).abs() < 1e-3);
        assert!((t_critical(0.99, 9) - 3.250).abs() < 1e-3);
        assert!((t_critical(0.90, 29) - 1.699).abs() < 1e-3);
        // Large df approaches the normal quantile.
        assert!((t_critical(0.95, 1_000_000) - 1.959_964).abs() < 1e-3);
        // df in the Cornish–Fisher regime stays close to R's qt().
        assert!((t_critical(0.95, 40) - 2.021).abs() < 5e-3);
        assert!((t_critical(0.95, 100) - 1.984).abs() < 5e-3);
    }

    #[test]
    fn t_critical_is_decreasing_in_df() {
        let mut last = f64::INFINITY;
        for df in [1u64, 2, 5, 10, 30, 50, 100, 1000] {
            let t = t_critical(0.95, df);
            assert!(t < last, "t({df}) = {t} not below {last}");
            last = t;
        }
    }

    #[test]
    fn ci_contains_population_mean_usually() {
        // Deterministic data → degenerate check of the arithmetic.
        let mut s = OnlineStats::new();
        for x in [10.0, 12.0, 9.0, 11.0, 10.5, 9.5, 11.5, 10.0] {
            s.push(x);
        }
        let ci = s.confidence_interval(0.95);
        assert!(ci.contains(s.mean()));
        assert!(ci.low() < ci.mean && ci.mean < ci.high());
        assert!(ci.relative_half_width() > 0.0);
    }

    #[test]
    fn replications_aggregate() {
        let reps: Replications = [0.5, 0.52, 0.48, 0.51, 0.49].into_iter().collect();
        assert_eq!(reps.count(), 5);
        assert!((reps.mean() - 0.5).abs() < 1e-12);
        let ci = reps.confidence_interval(0.95);
        assert!(ci.contains(0.5));
        assert_eq!(reps.values().len(), 5);
    }

    #[test]
    fn batch_means_basic() {
        let mut bm = BatchMeans::new(10);
        for i in 0..100 {
            bm.push(f64::from(i % 10));
        }
        assert_eq!(bm.batch_count(), 10);
        assert!((bm.mean() - 4.5).abs() < 1e-12);
        // Every batch mean is identical → zero-width interval.
        assert!(bm.confidence_interval(0.95).half_width < 1e-12);
    }

    #[test]
    fn batch_means_ignores_partial_batch() {
        let mut bm = BatchMeans::new(10);
        for _ in 0..25 {
            bm.push(1.0);
        }
        assert_eq!(bm.batch_count(), 2);
    }

    #[test]
    fn batch_means_zero_size_saturates_to_one() {
        // Regression: `new(0)` used to be a panic (and before that, an
        // estimator that never completed a batch). Saturating to 1
        // makes every push its own batch.
        let mut bm = BatchMeans::new(0);
        for x in [1.0, 2.0, 3.0] {
            bm.push(x);
        }
        assert_eq!(bm.batch_count(), 3);
        assert!((bm.mean() - 2.0).abs() < 1e-12);
        let mut one = BatchMeans::new(1);
        for x in [1.0, 2.0, 3.0] {
            one.push(x);
        }
        assert_eq!(bm.batch_count(), one.batch_count());
        assert_eq!(bm.mean().to_bits(), one.mean().to_bits());
    }

    #[test]
    fn degenerate_stats_stay_finite() {
        // count == 1: variance/std_error are defined as 0, not NaN.
        let mut s = OnlineStats::new();
        s.push(42.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.std_error(), 0.0);
        let ci = s.confidence_interval(0.95);
        assert_eq!(ci.half_width, 0.0);
        assert_eq!(ci.mean, 42.0);
    }

    #[test]
    fn relative_half_width_degenerate_cases() {
        fn ci(mean: f64, half: f64) -> ConfidenceInterval {
            ConfidenceInterval {
                mean,
                half_width: half,
                level: 0.95,
                count: 5,
            }
        }
        // Zero mean (of either sign) → +inf, never NaN.
        assert_eq!(ci(0.0, 0.0).relative_half_width(), f64::INFINITY);
        assert_eq!(ci(-0.0, 0.1).relative_half_width(), f64::INFINITY);
        // NaN/infinite mean → +inf, so `rhw < threshold` stopping rules
        // cannot silently accept a garbage estimate.
        assert_eq!(ci(f64::NAN, 0.1).relative_half_width(), f64::INFINITY);
        assert_eq!(ci(f64::INFINITY, 0.1).relative_half_width(), f64::INFINITY);
        let would_stop = ci(f64::NAN, 0.1).relative_half_width() < 0.05;
        assert!(!would_stop, "a NaN mean must never satisfy a stopping rule");
        // Ordinary case unchanged, sign-insensitive.
        assert!((ci(2.0, 0.1).relative_half_width() - 0.05).abs() < 1e-15);
        assert!((ci(-2.0, 0.1).relative_half_width() - 0.05).abs() < 1e-15);
    }

    #[test]
    fn autocorrelation_of_iid_noise_is_small() {
        use ckpt_des::SimRng;
        let mut rng = SimRng::seed_from_u64(17);
        let series: Vec<f64> = (0..10_000).map(|_| rng.exponential(1.0)).collect();
        let r1 = autocorrelation(&series, 1);
        assert!(r1.abs() < 0.05, "lag-1 autocorrelation {r1}");
        let r5 = autocorrelation(&series, 5);
        assert!(r5.abs() < 0.05, "lag-5 autocorrelation {r5}");
    }

    #[test]
    fn autocorrelation_edge_cases() {
        assert_eq!(autocorrelation(&[], 1), 0.0);
        assert_eq!(autocorrelation(&[1.0, 2.0], 1), 0.0);
        assert_eq!(autocorrelation(&[3.0; 10], 1), 0.0, "zero variance");
    }

    #[test]
    fn ci_display() {
        let ci = ConfidenceInterval {
            mean: 0.5,
            half_width: 0.01,
            level: 0.95,
            count: 10,
        };
        let s = ci.to_string();
        assert!(s.contains("95"));
        assert!(s.contains("n=10"));
    }
}
